//! Real packet I/O: pluggable device backends and their supervision.
//!
//! The simulated [`DeviceBank`](crate::router::DeviceBank) queues stay the
//! interface the elements see; a [`DeviceBackend`] slots *underneath* a
//! named device and moves frames between those queues and the outside
//! world (a pcap trace, a UDP socket, a Linux tap or raw-packet device).
//! Every backend is wrapped in a [`SupervisedDevice`], which turns I/O
//! failure into a first-class, accounted event instead of a panic or a
//! silent stall:
//!
//! - a typed [`IoFault`] taxonomy (`WouldBlock` / `Truncated` / `Down` /
//!   `Wedged` / `Corrupt`),
//! - bounded retry with exponential backoff and a per-operation deadline
//!   ([`RetryPolicy`]),
//! - a per-device health state machine `Up -> Flapping -> Down ->
//!   Recovering` driven by an error-rate window ([`HealthPolicy`]),
//! - graceful degradation when a device dies: RX stops cleanly, pending
//!   TX is flushed within a drain deadline or counted as lost, so
//!   `injected == tx + drops` stays exact,
//! - automatic re-open with a budget, mirroring the shard supervisor's
//!   Restart/Degrade policy.
//!
//! Backends are named by URL-ish schemes in the device name itself
//! (`pcap:trace.pcap`, `udp:127.0.0.1:9000>127.0.0.1:9001`, `tap:click0`,
//! `raw:eth0`, `mem:loop`, `fault:DOWN-AFTER 100@mem:loop`), so a plain
//! Click configuration selects real I/O with no new syntax; scheme-less
//! device names keep the simulated in-memory behavior.

use crate::packet::Packet;
use crate::telemetry::DeviceGauges;
use click_core::error::{Error, Result};
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::net::UdpSocket;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Largest frame any backend will accept or deliver; a pcap record that
/// claims more than this is corrupt, not huge.
pub const MAX_FRAME: usize = 256 * 1024;

// ---------------------------------------------------------------------------
// Fault taxonomy
// ---------------------------------------------------------------------------

/// A typed I/O fault surfaced by a [`DeviceBackend`].
///
/// The taxonomy is the contract between backends and the supervision
/// layer: backends classify, [`SupervisedDevice`] decides (retry, back
/// off, flap, declare down, drop with accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoFault {
    /// Transient: nothing to receive right now, or the TX ring is full.
    /// Retry later; only a storm of these is a health signal.
    WouldBlock,
    /// A frame was cut short on the wire or in a capture file; the bytes
    /// read are unusable but the next operation may succeed.
    Truncated {
        /// Bytes the frame claimed to hold.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The device is gone: closed descriptor, unplugged interface, failed
    /// socket. Only a successful re-open recovers.
    Down(String),
    /// The device accepts operations but makes no progress (a stuck TX
    /// queue). Treated like `Down` by the state machine, but reported
    /// distinctly so the gauges can tell the stories apart.
    Wedged,
    /// The device returned bytes that fail the backend's own integrity
    /// check (bad pcap record header, impossible length).
    Corrupt(String),
}

impl IoFault {
    /// True for faults a bounded retry may clear without a re-open.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IoFault::WouldBlock | IoFault::Truncated { .. } | IoFault::Corrupt(_)
        )
    }

    /// True for faults that force the health state machine to `Down`.
    pub fn is_hard(&self) -> bool {
        matches!(self, IoFault::Down(_) | IoFault::Wedged)
    }
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoFault::WouldBlock => write!(f, "operation would block"),
            IoFault::Truncated { expected, got } => {
                write!(f, "short read: expected {expected} bytes, got {got}")
            }
            IoFault::Down(reason) => write!(f, "device down: {reason}"),
            IoFault::Wedged => write!(f, "device wedged (no forward progress)"),
            IoFault::Corrupt(reason) => write!(f, "corrupt frame: {reason}"),
        }
    }
}

/// Result alias for backend operations.
pub type IoResult<T> = std::result::Result<T, IoFault>;

// ---------------------------------------------------------------------------
// The backend trait
// ---------------------------------------------------------------------------

/// A packet source/sink underneath one named device.
///
/// Backends are deliberately dumb: they move one frame per call and
/// classify failures into [`IoFault`]s. Retry, backoff, health, and loss
/// accounting all live in [`SupervisedDevice`], so every backend gets the
/// same robustness for free.
pub trait DeviceBackend: Send + fmt::Debug {
    /// Short scheme name (`"pcap"`, `"udp"`, `"tap"`, `"raw"`, `"mem"`,
    /// `"fault"`).
    fn kind(&self) -> &'static str;
    /// Receives one frame. `Ok(None)` means the source is exhausted for
    /// good (end of a capture file); `Err(WouldBlock)` means nothing is
    /// available *right now*.
    fn recv(&mut self) -> IoResult<Option<Packet>>;
    /// Transmits one frame.
    fn send(&mut self, frame: &[u8]) -> IoResult<()>;
    /// Attempts to bring a `Down` device back (re-open the file,
    /// re-create the socket, re-plug the tap).
    fn reopen(&mut self) -> IoResult<()>;
    /// True once `recv` can never yield another frame.
    fn exhausted(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Policies and health
// ---------------------------------------------------------------------------

/// Bounded-retry knobs applied to each backend operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt of one operation.
    pub max_retries: u32,
    /// First backoff sleep between retries, microseconds. Doubles per
    /// retry up to [`RetryPolicy::backoff_max_us`].
    pub backoff_base_us: u64,
    /// Backoff cap, microseconds.
    pub backoff_max_us: u64,
    /// Total wall-clock budget for one operation including backoffs,
    /// microseconds. The op fails over to the health machinery when the
    /// deadline passes even if retries remain.
    pub op_deadline_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_base_us: 50,
            backoff_max_us: 5_000,
            op_deadline_us: 20_000,
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: u32) -> Duration {
        let us = self
            .backoff_base_us
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.backoff_max_us);
        Duration::from_micros(us)
    }
}

/// Health state machine knobs: when errors flap a device, when they take
/// it down, and what recovery costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failed operations that move `Up -> Flapping`.
    pub flap_threshold: u32,
    /// Sliding error window length in operations (clamped to 64).
    pub window: u32,
    /// Errors inside the window that declare the device `Down`.
    pub down_errors: u32,
    /// Consecutive successful operations that return `Flapping` or
    /// `Recovering` to `Up`.
    pub recovery_ops: u32,
    /// Re-open attempts allowed while `Down` before the device is
    /// abandoned (stays `Down`, pending TX becomes loss).
    pub reopen_budget: u32,
    /// Microseconds pending TX may wait on a blocked or down device
    /// before the drain deadline declares the frames lost.
    pub drain_deadline_us: u64,
    /// First sleep before a re-open attempt, microseconds (doubles per
    /// failed attempt).
    pub reopen_backoff_us: u64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            flap_threshold: 3,
            window: 32,
            down_errors: 8,
            recovery_ops: 4,
            reopen_budget: 8,
            drain_deadline_us: 50_000,
            reopen_backoff_us: 100,
        }
    }
}

/// Per-device health, driven by the error-rate window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Operating normally.
    Up,
    /// Errors above the flap threshold but below the down threshold.
    Flapping,
    /// Hard fault or error rate past the window threshold; only re-open
    /// recovers.
    Down,
    /// Re-opened; probing back toward `Up`.
    Recovering,
}

impl DeviceHealth {
    /// Lower-case label used by gauges and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceHealth::Up => "up",
            DeviceHealth::Flapping => "flapping",
            DeviceHealth::Down => "down",
            DeviceHealth::Recovering => "recovering",
        }
    }
}

/// What became of one packet handed to [`SupervisedDevice::send_pkt`].
#[derive(Debug)]
pub enum SendOutcome {
    /// Delivered to the backend; the packet was recycled.
    Sent,
    /// Could not be delivered now; the caller keeps it queued (the drain
    /// deadline is running).
    Pending(Packet),
    /// Declared lost (counted in `drain_lost`); the packet was recycled.
    Lost,
}

// ---------------------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------------------

/// A backend wrapped in retry, backoff, health, and loss accounting.
#[derive(Debug)]
pub struct SupervisedDevice {
    backend: Box<dyn DeviceBackend>,
    retry: RetryPolicy,
    policy: HealthPolicy,
    health: DeviceHealth,
    /// Sliding error window: one bit per recent operation, 1 = error.
    window_bits: u64,
    window_len: u32,
    consec_errors: u32,
    consec_ok: u32,
    reopen_attempts: u32,
    next_reopen_at: Option<Instant>,
    tx_blocked_since: Option<Instant>,
    gauges: DeviceGauges,
}

impl SupervisedDevice {
    /// Wraps a backend with default policies.
    pub fn new(backend: Box<dyn DeviceBackend>) -> SupervisedDevice {
        SupervisedDevice::with_policies(backend, RetryPolicy::default(), HealthPolicy::default())
    }

    /// Wraps a backend with explicit retry and health policies.
    pub fn with_policies(
        backend: Box<dyn DeviceBackend>,
        retry: RetryPolicy,
        policy: HealthPolicy,
    ) -> SupervisedDevice {
        let gauges = DeviceGauges {
            backend: backend.kind().to_string(),
            ..DeviceGauges::default()
        };
        SupervisedDevice {
            backend,
            retry,
            policy,
            health: DeviceHealth::Up,
            window_bits: 0,
            window_len: 0,
            consec_errors: 0,
            consec_ok: 0,
            reopen_attempts: 0,
            next_reopen_at: None,
            tx_blocked_since: None,
            gauges,
        }
    }

    /// Current health.
    pub fn health(&self) -> DeviceHealth {
        self.health
    }

    /// True once the re-open budget is spent while `Down`.
    pub fn abandoned(&self) -> bool {
        self.health == DeviceHealth::Down && self.reopen_attempts >= self.policy.reopen_budget
    }

    /// True once the backend can never deliver another frame.
    pub fn exhausted(&self) -> bool {
        self.backend.exhausted()
    }

    /// Gauge snapshot; the owner fills `device` with the bank's name.
    pub fn gauges(&self) -> DeviceGauges {
        let mut g = self.gauges.clone();
        g.health = self.health.as_str().to_string();
        g
    }

    /// Frames this device has declared lost (drain deadline, abandonment).
    pub fn lost(&self) -> u64 {
        self.gauges.drain_lost
    }

    /// Direct access to the wrapped backend (tests, tools).
    pub fn backend_mut(&mut self) -> &mut dyn DeviceBackend {
        &mut *self.backend
    }

    /// Advances time-driven supervision: while `Down`, attempts a
    /// budgeted, backed-off re-open. Called once per pump round even when
    /// no traffic moves.
    pub fn tick(&mut self) {
        if self.health != DeviceHealth::Down || self.abandoned() {
            return;
        }
        let due = self.next_reopen_at.is_none_or(|t| Instant::now() >= t);
        if !due {
            return;
        }
        self.reopen_attempts += 1;
        match self.backend.reopen() {
            Ok(()) => {
                self.gauges.reopens += 1;
                self.health = DeviceHealth::Recovering;
                self.window_bits = 0;
                self.window_len = 0;
                self.consec_errors = 0;
                self.consec_ok = 0;
                self.next_reopen_at = None;
                // The re-opened device gets a fresh drain deadline.
                self.tx_blocked_since = None;
            }
            Err(_) => {
                self.gauges.retries += 1;
                let us = self
                    .policy
                    .reopen_backoff_us
                    .saturating_mul(1u64 << self.reopen_attempts.min(16))
                    .min(self.retry.backoff_max_us.max(self.policy.reopen_backoff_us));
                self.next_reopen_at = Some(Instant::now() + Duration::from_micros(us));
            }
        }
    }

    /// Receives one frame under supervision. `None` means "nothing now":
    /// empty poll, exhausted trace, or a device that is down.
    pub fn recv(&mut self) -> Option<Packet> {
        if self.health == DeviceHealth::Down {
            self.tick();
            if self.health == DeviceHealth::Down {
                return None;
            }
        }
        if self.backend.exhausted() {
            return None;
        }
        let mut attempts = 0u32;
        loop {
            match self.backend.recv() {
                Ok(Some(p)) => {
                    self.gauges.rx_packets += 1;
                    self.gauges.rx_bytes += p.len() as u64;
                    self.record_ok();
                    return Some(p);
                }
                Ok(None) => {
                    self.record_ok();
                    return None;
                }
                Err(IoFault::WouldBlock) => {
                    // An empty RX poll is normal, not an error: do not
                    // spin or sleep on an idle device.
                    self.gauges.would_blocks += 1;
                    return None;
                }
                Err(IoFault::Truncated { .. }) => {
                    self.gauges.short_reads += 1;
                    self.record_err();
                }
                Err(IoFault::Corrupt(_)) => {
                    self.gauges.corrupt_drops += 1;
                    self.record_err();
                }
                Err(fault) => {
                    debug_assert!(fault.is_hard());
                    self.go_down();
                    return None;
                }
            }
            if self.health == DeviceHealth::Down || attempts >= self.retry.max_retries {
                return None;
            }
            attempts += 1;
            self.gauges.retries += 1;
        }
    }

    /// Transmits one packet under supervision, retrying transient faults
    /// with exponential backoff inside the operation deadline.
    pub fn send_pkt(&mut self, p: Packet) -> SendOutcome {
        if self.health == DeviceHealth::Down {
            self.tick();
            if self.health == DeviceHealth::Down {
                return self.park_or_lose(p);
            }
        }
        let start = Instant::now();
        let deadline = Duration::from_micros(self.retry.op_deadline_us);
        let mut attempts = 0u32;
        loop {
            match self.backend.send(p.data()) {
                Ok(()) => {
                    self.gauges.tx_packets += 1;
                    self.gauges.tx_bytes += p.len() as u64;
                    self.record_ok();
                    self.tx_blocked_since = None;
                    p.recycle();
                    return SendOutcome::Sent;
                }
                Err(IoFault::WouldBlock) => {
                    self.gauges.would_blocks += 1;
                    if attempts < self.retry.max_retries && start.elapsed() < deadline {
                        attempts += 1;
                        self.gauges.retries += 1;
                        self.gauges.backoffs += 1;
                        std::thread::sleep(self.retry.backoff(attempts - 1));
                        continue;
                    }
                    // The op failed despite retries: that is an error
                    // signal (an EAGAIN storm), and the frame stays
                    // queued with the drain deadline running.
                    self.record_err();
                    if self.tx_blocked_since.is_none() {
                        self.tx_blocked_since = Some(Instant::now());
                    }
                    return SendOutcome::Pending(p);
                }
                Err(IoFault::Truncated { .. }) => {
                    self.gauges.short_reads += 1;
                    self.record_err();
                    if attempts < self.retry.max_retries && start.elapsed() < deadline {
                        attempts += 1;
                        self.gauges.retries += 1;
                        continue;
                    }
                    if self.tx_blocked_since.is_none() {
                        self.tx_blocked_since = Some(Instant::now());
                    }
                    return SendOutcome::Pending(p);
                }
                Err(IoFault::Corrupt(_)) => {
                    // The backend rejected the frame itself: retrying the
                    // same bytes cannot succeed. Accounted loss.
                    self.gauges.corrupt_drops += 1;
                    self.gauges.drain_lost += 1;
                    self.record_err();
                    p.recycle();
                    return SendOutcome::Lost;
                }
                Err(fault) => {
                    debug_assert!(fault.is_hard());
                    self.go_down();
                    return self.park_or_lose(p);
                }
            }
        }
    }

    /// True when pending TX for this device should be declared lost: the
    /// drain deadline expired while blocked, or the device was abandoned.
    pub fn should_drop_pending(&self) -> bool {
        if self.abandoned() {
            return true;
        }
        self.tx_blocked_since
            .is_some_and(|t| t.elapsed() >= Duration::from_micros(self.policy.drain_deadline_us))
    }

    /// Records `n` pending frames dropped by the owner after
    /// [`SupervisedDevice::should_drop_pending`] fired.
    pub fn count_drain_lost(&mut self, n: u64) {
        self.gauges.drain_lost += n;
        self.tx_blocked_since = None;
    }

    fn park_or_lose(&mut self, p: Packet) -> SendOutcome {
        if self.should_drop_pending() {
            self.gauges.drain_lost += 1;
            self.tx_blocked_since = None;
            p.recycle();
            SendOutcome::Lost
        } else {
            if self.tx_blocked_since.is_none() {
                self.tx_blocked_since = Some(Instant::now());
            }
            SendOutcome::Pending(p)
        }
    }

    fn window_cap(&self) -> u32 {
        self.policy.window.clamp(1, 64)
    }

    fn window_errors(&self) -> u32 {
        self.window_bits.count_ones()
    }

    fn window_push(&mut self, err: bool) {
        let cap = self.window_cap();
        self.window_bits = (self.window_bits << 1) | u64::from(err);
        if cap < 64 {
            self.window_bits &= (1u64 << cap) - 1;
        }
        self.window_len = (self.window_len + 1).min(cap);
    }

    fn record_ok(&mut self) {
        self.window_push(false);
        self.consec_errors = 0;
        self.consec_ok = self.consec_ok.saturating_add(1);
        match self.health {
            DeviceHealth::Flapping | DeviceHealth::Recovering
                if self.consec_ok >= self.policy.recovery_ops =>
            {
                self.health = DeviceHealth::Up;
                self.reopen_attempts = 0;
            }
            _ => {}
        }
    }

    fn record_err(&mut self) {
        self.window_push(true);
        self.consec_ok = 0;
        self.consec_errors = self.consec_errors.saturating_add(1);
        match self.health {
            DeviceHealth::Up => {
                if self.consec_errors >= self.policy.flap_threshold
                    || self.window_errors() >= self.policy.down_errors
                {
                    self.health = DeviceHealth::Flapping;
                    self.gauges.flaps += 1;
                }
            }
            DeviceHealth::Flapping | DeviceHealth::Recovering => {
                if self.window_errors() >= self.policy.down_errors {
                    self.set_down();
                }
            }
            DeviceHealth::Down => {}
        }
    }

    fn go_down(&mut self) {
        self.gauges.down_events += 1;
        if self.health == DeviceHealth::Up {
            self.gauges.flaps += 1;
        }
        self.set_down();
    }

    fn set_down(&mut self) {
        if self.health != DeviceHealth::Down {
            self.health = DeviceHealth::Down;
            self.reopen_attempts = 0;
            self.next_reopen_at =
                Some(Instant::now() + Duration::from_micros(self.policy.reopen_backoff_us));
            if self.tx_blocked_since.is_none() {
                self.tx_blocked_since = Some(Instant::now());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Backend schemes
// ---------------------------------------------------------------------------

/// Device-name schemes the runtime can open.
///
/// `click_core::check` keeps a copy of this list (core cannot depend on
/// this crate); a test here asserts the two stay identical.
pub const BACKEND_SCHEMES: &[&str] = &["mem", "pcap", "udp", "tap", "raw", "fault"];

/// Returns the backend scheme of a device name (`udp:...` -> `udp`), or
/// `None` for plain simulated device names like `eth0`.
pub fn backend_scheme(device: &str) -> Option<&str> {
    let idx = device.find(':')?;
    let scheme = &device[..idx];
    if !scheme.is_empty() && scheme.bytes().all(|b| b.is_ascii_alphabetic()) {
        Some(scheme)
    } else {
        None
    }
}

/// Opens a backend from a scheme-bearing device name.
///
/// | spec | backend |
/// |---|---|
/// | `mem:NAME` | in-memory echo loopback (TX re-appears on RX) |
/// | `pcap:IN` / `pcap:IN>OUT` | replay `IN`, optionally record TX to `OUT` |
/// | `udp:BIND` / `udp:BIND>PEER` | nonblocking UDP socket |
/// | `tap:NAME` | Linux tap device (x86_64, raw syscalls) |
/// | `raw:IFACE` | Linux `AF_PACKET` raw socket bound to `IFACE` |
/// | `fault:CLAUSES@INNER` | deterministic fault shim over `INNER` |
///
/// # Errors
///
/// Unknown schemes, malformed specs, and failed opens return
/// [`Error::Runtime`].
pub fn open_backend(spec: &str) -> Result<Box<dyn DeviceBackend>> {
    let scheme = backend_scheme(spec)
        .ok_or_else(|| Error::runtime(format!("device `{spec}` has no backend scheme")))?;
    let rest = &spec[scheme.len() + 1..];
    match scheme {
        "mem" => Ok(Box::new(MemBackend::echo())),
        "pcap" => {
            let (input, output) = match rest.split_once('>') {
                Some((i, o)) => (i, Some(o)),
                None => (rest, None),
            };
            if input.is_empty() {
                return Err(Error::runtime(
                    "pcap backend needs an input file: pcap:FILE",
                ));
            }
            Ok(Box::new(PcapBackend::open(input, output)?))
        }
        "udp" => {
            let (bind, peer) = match rest.split_once('>') {
                Some((b, p)) => (b, Some(p.to_string())),
                None => (rest, None),
            };
            if bind.is_empty() {
                return Err(Error::runtime(
                    "udp backend needs a bind address: udp:ADDR[>PEER]",
                ));
            }
            Ok(Box::new(UdpBackend::open(bind, peer)?))
        }
        "tap" => Ok(Box::new(TapBackend::open(rest)?)),
        "raw" => Ok(Box::new(RawSocketBackend::open(rest)?)),
        "fault" => {
            let (clauses, inner) = rest
                .split_once('@')
                .ok_or_else(|| Error::runtime("fault backend spec is fault:CLAUSES@INNER-SPEC"))?;
            let inner = open_backend(inner)?;
            Ok(Box::new(FaultInjectBackend::parse(clauses, inner)?))
        }
        other => Err(Error::runtime(format!(
            "unknown device backend scheme `{other}:` (known: {})",
            BACKEND_SCHEMES.join(", ")
        ))),
    }
}

// ---------------------------------------------------------------------------
// MemBackend: in-memory frames behind the backend interface
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemState {
    rx: VecDeque<Vec<u8>>,
    tx: Vec<Vec<u8>>,
    closed: bool,
}

/// Shared handles onto a [`MemBackend`]'s queues, for tests and chaos
/// drivers that feed frames in and read transmitted frames out.
#[derive(Debug, Clone, Default)]
pub struct MemQueues {
    inner: Arc<Mutex<MemState>>,
}

impl MemQueues {
    /// Queues a frame for the backend to receive.
    pub fn push_rx(&self, frame: &[u8]) {
        self.inner.lock().unwrap().rx.push_back(frame.to_vec());
    }

    /// Takes every frame the backend has transmitted so far.
    pub fn take_tx(&self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.inner.lock().unwrap().tx)
    }

    /// Frames waiting to be received.
    pub fn rx_len(&self) -> usize {
        self.inner.lock().unwrap().rx.len()
    }

    /// Frames transmitted since the last take.
    pub fn tx_len(&self) -> usize {
        self.inner.lock().unwrap().tx.len()
    }

    /// Simulates unplugging: subsequent backend ops fail `Down` until a
    /// re-open.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
    }
}

/// An in-memory [`DeviceBackend`]: deterministic frames for tests, CI,
/// and as the inner device under [`FaultInjectBackend`].
#[derive(Debug)]
pub struct MemBackend {
    q: MemQueues,
    echo: bool,
}

impl MemBackend {
    /// A backend plus the shared handles that feed and drain it.
    pub fn with_handles() -> (MemBackend, MemQueues) {
        let q = MemQueues::default();
        (
            MemBackend {
                q: q.clone(),
                echo: false,
            },
            q,
        )
    }

    /// An echo loopback: transmitted frames re-appear on RX (the `mem:`
    /// scheme).
    pub fn echo() -> MemBackend {
        MemBackend {
            q: MemQueues::default(),
            echo: true,
        }
    }
}

impl DeviceBackend for MemBackend {
    fn kind(&self) -> &'static str {
        "mem"
    }
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        let mut st = self.q.inner.lock().unwrap();
        if st.closed {
            return Err(IoFault::Down("mem backend closed".to_string()));
        }
        match st.rx.pop_front() {
            Some(frame) => Ok(Some(Packet::from_data(&frame))),
            None => Err(IoFault::WouldBlock),
        }
    }
    fn send(&mut self, frame: &[u8]) -> IoResult<()> {
        let mut st = self.q.inner.lock().unwrap();
        if st.closed {
            return Err(IoFault::Down("mem backend closed".to_string()));
        }
        if self.echo {
            st.rx.push_back(frame.to_vec());
        } else {
            st.tx.push(frame.to_vec());
        }
        Ok(())
    }
    fn reopen(&mut self) -> IoResult<()> {
        self.q.inner.lock().unwrap().closed = false;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pcap: classic capture files, read and written with no dependencies
// ---------------------------------------------------------------------------

const PCAP_MAGIC_US: u32 = 0xa1b2_c3d4;
const PCAP_MAGIC_NS: u32 = 0xa1b2_3c4d;

/// Writes a classic little-endian pcap file (linktype 1, Ethernet).
/// Timestamps are a deterministic frame counter, so two writes of the
/// same frames are bit-identical.
#[derive(Debug)]
pub struct PcapWriter {
    file: File,
    frames: u32,
}

impl PcapWriter {
    /// Creates the file and writes the global header.
    pub fn create(path: impl Into<PathBuf>) -> Result<PcapWriter> {
        let path = path.into();
        let mut file = File::create(&path)
            .map_err(|e| Error::runtime(format!("pcap create {}: {e}", path.display())))?;
        let mut hdr = Vec::with_capacity(24);
        hdr.extend_from_slice(&PCAP_MAGIC_US.to_le_bytes());
        hdr.extend_from_slice(&2u16.to_le_bytes()); // version major
        hdr.extend_from_slice(&4u16.to_le_bytes()); // version minor
        hdr.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        hdr.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        hdr.extend_from_slice(&(MAX_FRAME as u32).to_le_bytes()); // snaplen
        hdr.extend_from_slice(&1u32.to_le_bytes()); // linktype: Ethernet
        file.write_all(&hdr)
            .map_err(|e| Error::runtime(format!("pcap header write: {e}")))?;
        Ok(PcapWriter { file, frames: 0 })
    }

    /// Appends one frame record.
    pub fn write_frame(&mut self, frame: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(16 + frame.len());
        rec.extend_from_slice(&(self.frames / 1_000_000).to_le_bytes()); // ts_sec
        rec.extend_from_slice(&(self.frames % 1_000_000).to_le_bytes()); // ts_usec
        rec.extend_from_slice(&(frame.len() as u32).to_le_bytes()); // incl_len
        rec.extend_from_slice(&(frame.len() as u32).to_le_bytes()); // orig_len
        rec.extend_from_slice(frame);
        self.frames += 1;
        self.file
            .write_all(&rec)
            .map_err(|e| Error::runtime(format!("pcap record write: {e}")))
    }

    /// Flushes to disk.
    pub fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| Error::runtime(format!("pcap flush: {e}")))
    }
}

/// Writes `frames` to `path` as a pcap file (test/tool convenience).
pub fn write_pcap(path: impl Into<PathBuf>, frames: &[Vec<u8>]) -> Result<()> {
    let mut w = PcapWriter::create(path)?;
    for f in frames {
        w.write_frame(f)?;
    }
    w.flush()
}

/// Appends `frames` as records to an existing capture at `path`,
/// creating it (with a fresh global header) when it is missing or
/// empty. The appended records restart the deterministic timestamp
/// counter, so repeated identical appends stay bit-identical.
pub fn append_pcap(path: impl Into<PathBuf>, frames: &[Vec<u8>]) -> Result<()> {
    let path = path.into();
    let has_header = std::fs::metadata(&path).is_ok_and(|m| m.len() >= 24);
    if !has_header {
        return write_pcap(path, frames);
    }
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| Error::runtime(format!("pcap append {}: {e}", path.display())))?;
    for (i, f) in frames.iter().enumerate() {
        let counter = i as u32;
        let mut rec = Vec::with_capacity(16 + f.len());
        rec.extend_from_slice(&(counter / 1_000_000).to_le_bytes()); // ts_sec
        rec.extend_from_slice(&(counter % 1_000_000).to_le_bytes()); // ts_usec
        rec.extend_from_slice(&(f.len() as u32).to_le_bytes()); // incl_len
        rec.extend_from_slice(&(f.len() as u32).to_le_bytes()); // orig_len
        rec.extend_from_slice(f);
        file.write_all(&rec)
            .map_err(|e| Error::runtime(format!("pcap append write: {e}")))?;
    }
    file.flush()
        .map_err(|e| Error::runtime(format!("pcap append flush: {e}")))
}

/// Reads every frame of a pcap file into memory (tool convenience: the
/// crash drill feeds a trace frame-by-frame with an abort point, which
/// a streaming backend cannot express). Tolerates a trailing truncated
/// record — the frames before it are returned.
///
/// # Errors
///
/// [`Error::Runtime`] when the file cannot be opened or is not a pcap
/// capture.
pub fn read_pcap(path: impl Into<PathBuf>) -> Result<Vec<Vec<u8>>> {
    let path = path.into();
    let bytes = std::fs::read(&path)
        .map_err(|e| Error::runtime(format!("pcap read {}: {e}", path.display())))?;
    if bytes.len() < 24 {
        return Err(Error::runtime(format!(
            "{}: not a pcap file (too short)",
            path.display()
        )));
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let swapped = match magic {
        PCAP_MAGIC_US | PCAP_MAGIC_NS => false,
        m if m.swap_bytes() == PCAP_MAGIC_US || m.swap_bytes() == PCAP_MAGIC_NS => true,
        m => {
            return Err(Error::runtime(format!(
                "{}: not a pcap file (magic {m:#010x})",
                path.display()
            )))
        }
    };
    let mut frames = Vec::new();
    let mut at = 24usize;
    while bytes.len() - at >= 16 {
        let incl = pcap_u32(swapped, &bytes, at + 8) as usize;
        at += 16;
        if bytes.len() - at < incl {
            break; // torn trailing record: keep what precedes it
        }
        frames.push(bytes[at..at + incl].to_vec());
        at += incl;
    }
    Ok(frames)
}

/// Replays a pcap file frame by frame; optionally records transmitted
/// frames to a second pcap file. The `pcap:` scheme backend.
#[derive(Debug)]
pub struct PcapBackend {
    path: PathBuf,
    file: Option<File>,
    /// Byte offset of the next unread record (survives re-open).
    offset: u64,
    swapped: bool,
    exhausted: bool,
    writer: Option<PcapWriter>,
}

impl PcapBackend {
    /// Opens `input` for replay; `output` (if given) records TX frames.
    pub fn open(input: &str, output: Option<&str>) -> Result<PcapBackend> {
        let path = PathBuf::from(input);
        let (file, swapped) = Self::open_and_check(&path)?;
        let writer = match output {
            Some(o) if !o.is_empty() => Some(PcapWriter::create(o)?),
            _ => None,
        };
        Ok(PcapBackend {
            path,
            file: Some(file),
            offset: 24,
            swapped,
            exhausted: false,
            writer,
        })
    }

    fn open_and_check(path: &PathBuf) -> Result<(File, bool)> {
        let mut file = File::open(path)
            .map_err(|e| Error::runtime(format!("pcap open {}: {e}", path.display())))?;
        let mut hdr = [0u8; 24];
        file.read_exact(&mut hdr)
            .map_err(|e| Error::runtime(format!("pcap {} header: {e}", path.display())))?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            PCAP_MAGIC_US | PCAP_MAGIC_NS => false,
            m if m.swap_bytes() == PCAP_MAGIC_US || m.swap_bytes() == PCAP_MAGIC_NS => true,
            m => {
                return Err(Error::runtime(format!(
                    "{}: not a pcap file (magic {m:#010x})",
                    path.display()
                )))
            }
        };
        Ok((file, swapped))
    }
}

fn pcap_u32(swapped: bool, b: &[u8], i: usize) -> u32 {
    let raw = u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
    if swapped {
        raw.swap_bytes()
    } else {
        raw
    }
}

impl DeviceBackend for PcapBackend {
    fn kind(&self) -> &'static str {
        "pcap"
    }
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        if self.exhausted {
            return Ok(None);
        }
        let Some(file) = self.file.as_mut() else {
            return Err(IoFault::Down("pcap file closed".to_string()));
        };
        let mut hdr = [0u8; 16];
        let mut got = 0usize;
        while got < hdr.len() {
            match file.read(&mut hdr[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(IoFault::Down(format!("pcap read: {e}"))),
            }
        }
        if got == 0 {
            // Clean end of trace.
            self.exhausted = true;
            return Ok(None);
        }
        if got < hdr.len() {
            // The file ends inside a record header; nothing more can
            // follow, so the next call reports clean exhaustion.
            self.exhausted = true;
            return Err(IoFault::Truncated {
                expected: hdr.len(),
                got,
            });
        }
        let incl_len = pcap_u32(self.swapped, &hdr, 8) as usize;
        if incl_len == 0 || incl_len > MAX_FRAME {
            self.exhausted = true;
            return Err(IoFault::Corrupt(format!(
                "pcap record claims {incl_len} bytes"
            )));
        }
        let mut frame = vec![0u8; incl_len];
        let mut fgot = 0usize;
        while fgot < incl_len {
            match file.read(&mut frame[fgot..]) {
                Ok(0) => break,
                Ok(n) => fgot += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(IoFault::Down(format!("pcap read: {e}"))),
            }
        }
        if fgot < incl_len {
            self.exhausted = true;
            return Err(IoFault::Truncated {
                expected: incl_len,
                got: fgot,
            });
        }
        self.offset += 16 + incl_len as u64;
        Ok(Some(Packet::from_data(&frame)))
    }
    fn send(&mut self, frame: &[u8]) -> IoResult<()> {
        match self.writer.as_mut() {
            Some(w) => w
                .write_frame(frame)
                .map_err(|e| IoFault::Down(e.to_string())),
            // A replay-only pcap device quietly sinks TX, like replaying
            // a trace at a real interface nobody listens on.
            None => Ok(()),
        }
    }
    fn reopen(&mut self) -> IoResult<()> {
        let (mut file, swapped) =
            Self::open_and_check(&self.path).map_err(|e| IoFault::Down(e.to_string()))?;
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|e| IoFault::Down(format!("pcap seek: {e}")))?;
        self.swapped = swapped;
        self.file = Some(file);
        self.exhausted = false;
        Ok(())
    }
    fn exhausted(&self) -> bool {
        self.exhausted
    }
}

// ---------------------------------------------------------------------------
// UdpBackend: frames over a nonblocking UDP socket
// ---------------------------------------------------------------------------

/// One Ethernet frame per UDP datagram over a nonblocking socket: the
/// `udp:BIND[>PEER]` scheme. Without a peer the device is receive-only.
#[derive(Debug)]
pub struct UdpBackend {
    bind: String,
    peer: Option<String>,
    sock: Option<UdpSocket>,
    buf: Vec<u8>,
}

impl UdpBackend {
    /// Binds the socket.
    pub fn open(bind: &str, peer: Option<String>) -> Result<UdpBackend> {
        let sock = Self::make_socket(bind)?;
        Ok(UdpBackend {
            bind: bind.to_string(),
            peer,
            sock: Some(sock),
            buf: vec![0u8; 65536],
        })
    }

    fn make_socket(bind: &str) -> Result<UdpSocket> {
        let sock =
            UdpSocket::bind(bind).map_err(|e| Error::runtime(format!("udp bind {bind}: {e}")))?;
        sock.set_nonblocking(true)
            .map_err(|e| Error::runtime(format!("udp nonblocking: {e}")))?;
        Ok(sock)
    }
}

impl DeviceBackend for UdpBackend {
    fn kind(&self) -> &'static str {
        "udp"
    }
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        let Some(sock) = self.sock.as_ref() else {
            return Err(IoFault::Down("udp socket closed".to_string()));
        };
        match sock.recv_from(&mut self.buf) {
            Ok((n, _)) => Ok(Some(Packet::from_data(&self.buf[..n]))),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Err(IoFault::WouldBlock),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Err(IoFault::WouldBlock),
            Err(e) => {
                self.sock = None;
                Err(IoFault::Down(format!("udp recv: {e}")))
            }
        }
    }
    fn send(&mut self, frame: &[u8]) -> IoResult<()> {
        let Some(peer) = self.peer.as_ref() else {
            return Err(IoFault::Down("udp backend has no peer address".to_string()));
        };
        let Some(sock) = self.sock.as_ref() else {
            return Err(IoFault::Down("udp socket closed".to_string()));
        };
        match sock.send_to(frame, peer.as_str()) {
            Ok(n) if n == frame.len() => Ok(()),
            Ok(n) => Err(IoFault::Truncated {
                expected: frame.len(),
                got: n,
            }),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Err(IoFault::WouldBlock),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Err(IoFault::WouldBlock),
            Err(e) => {
                self.sock = None;
                Err(IoFault::Down(format!("udp send: {e}")))
            }
        }
    }
    fn reopen(&mut self) -> IoResult<()> {
        self.sock = Some(Self::make_socket(&self.bind).map_err(|e| IoFault::Down(e.to_string()))?);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Linux tap / raw-packet backends (raw syscalls, no libc)
// ---------------------------------------------------------------------------

/// Raw Linux syscall shims for the tap and `AF_PACKET` backends. The
/// workspace has no libc crate, so descriptor setup (ioctl, socket, bind,
/// connect) is done with inline-assembly syscalls; actual frame I/O goes
/// through `std::fs::File` over the raw descriptor, which already maps
/// `EAGAIN` to `ErrorKind::WouldBlock`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)] // raw syscalls: the workspace has no libc crate
pub mod sys {
    use std::arch::asm;
    use std::fs::File;
    use std::io;
    use std::os::fd::FromRawFd;

    const SYS_IOCTL: i64 = 16;
    const SYS_SOCKET: i64 = 41;
    const SYS_CONNECT: i64 = 42;
    const SYS_BIND: i64 = 49;
    const SYS_CLOSE: i64 = 3;

    const AF_INET: i64 = 2;
    const AF_PACKET: i64 = 17;
    const SOCK_DGRAM: i64 = 2;
    const SOCK_RAW: i64 = 3;
    const SOCK_NONBLOCK: i64 = 0x800;
    const IPPROTO_ICMP: i64 = 1;
    /// `ETH_P_ALL` in network byte order, as `socket(2)` wants it.
    const ETH_P_ALL_BE: i64 = 0x0300;

    const TUNSETIFF: i64 = 0x4004_54ca;
    const IFF_TAP: u16 = 0x0002;
    const IFF_NO_PI: u16 = 0x1000;

    const SIOCGIFFLAGS: i64 = 0x8913;
    const SIOCSIFFLAGS: i64 = 0x8914;
    const SIOCSIFADDR: i64 = 0x8916;
    const SIOCSIFNETMASK: i64 = 0x891c;
    const SIOCGIFINDEX: i64 = 0x8933;
    const IFF_UP: u16 = 0x0001;
    const IFF_RUNNING: u16 = 0x0040;

    unsafe fn syscall3(n: i64, a: i64, b: i64, c: i64) -> i64 {
        let ret: i64;
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// A 40-byte `struct ifreq`: 16-byte name + 24-byte union.
    fn ifreq(name: &str) -> io::Result<[u8; 40]> {
        let mut req = [0u8; 40];
        let bytes = name.as_bytes();
        if bytes.is_empty() || bytes.len() > 15 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "interface name must be 1..=15 bytes",
            ));
        }
        req[..bytes.len()].copy_from_slice(bytes);
        Ok(req)
    }

    unsafe fn ioctl(fd: i64, req: i64, arg: *mut u8) -> io::Result<i64> {
        check(syscall3(SYS_IOCTL, fd, req, arg as i64))
    }

    fn close_fd(fd: i64) {
        unsafe {
            let _ = syscall3(SYS_CLOSE, fd, 0, 0);
        }
    }

    /// Opens `/dev/net/tun` nonblocking and attaches it to tap `name`
    /// (`IFF_TAP | IFF_NO_PI`: raw Ethernet frames, no packet-info
    /// header). Returns the tap as a `File`.
    pub fn tap_open(name: &str) -> io::Result<File> {
        use std::os::fd::AsRawFd;
        use std::os::unix::fs::OpenOptionsExt;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .custom_flags(0x800) // O_NONBLOCK
            .open("/dev/net/tun")?;
        let mut req = ifreq(name)?;
        req[16..18].copy_from_slice(&(IFF_TAP | IFF_NO_PI).to_ne_bytes());
        unsafe { ioctl(file.as_raw_fd() as i64, TUNSETIFF, req.as_mut_ptr())? };
        Ok(file)
    }

    /// Assigns `ip/prefix` to the host side of interface `name` and
    /// brings it up — what `ip addr add` + `ip link set up` would do.
    pub fn configure_iface(name: &str, ip: [u8; 4], prefix: u8) -> io::Result<()> {
        let fd = unsafe { check(syscall3(SYS_SOCKET, AF_INET, SOCK_DGRAM, 0))? };
        let result = (|| {
            // sockaddr_in lives in the ifreq union at offset 16.
            let mut addr_req = ifreq(name)?;
            addr_req[16..18].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            addr_req[20..24].copy_from_slice(&ip);
            unsafe { ioctl(fd, SIOCSIFADDR, addr_req.as_mut_ptr())? };

            let mask = if prefix >= 32 {
                u32::MAX
            } else {
                !(u32::MAX >> prefix)
            };
            let mut mask_req = ifreq(name)?;
            mask_req[16..18].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            mask_req[20..24].copy_from_slice(&mask.to_be_bytes());
            unsafe { ioctl(fd, SIOCSIFNETMASK, mask_req.as_mut_ptr())? };

            let mut flags_req = ifreq(name)?;
            unsafe { ioctl(fd, SIOCGIFFLAGS, flags_req.as_mut_ptr())? };
            let flags = u16::from_ne_bytes([flags_req[16], flags_req[17]]);
            let flags = flags | IFF_UP | IFF_RUNNING;
            flags_req[16..18].copy_from_slice(&flags.to_ne_bytes());
            unsafe { ioctl(fd, SIOCSIFFLAGS, flags_req.as_mut_ptr())? };
            Ok(())
        })();
        close_fd(fd);
        result
    }

    /// Opens a nonblocking `AF_PACKET` raw socket bound to `iface`,
    /// receiving every protocol (`ETH_P_ALL`).
    pub fn raw_socket(iface: &str) -> io::Result<File> {
        let fd = unsafe {
            check(syscall3(
                SYS_SOCKET,
                AF_PACKET,
                SOCK_RAW | SOCK_NONBLOCK,
                ETH_P_ALL_BE,
            ))?
        };
        let result = (|| {
            let mut req = ifreq(iface)?;
            unsafe { ioctl(fd, SIOCGIFINDEX, req.as_mut_ptr())? };
            let ifindex = i32::from_ne_bytes([req[16], req[17], req[18], req[19]]);

            // struct sockaddr_ll, 20 bytes.
            let mut sll = [0u8; 20];
            sll[0..2].copy_from_slice(&(AF_PACKET as u16).to_ne_bytes());
            sll[2..4].copy_from_slice(&(ETH_P_ALL_BE as u16).to_ne_bytes());
            sll[4..8].copy_from_slice(&ifindex.to_ne_bytes());
            unsafe { check(syscall3(SYS_BIND, fd, sll.as_ptr() as i64, 20))? };
            Ok(())
        })();
        match result {
            Ok(()) => Ok(unsafe { File::from_raw_fd(fd as i32) }),
            Err(e) => {
                close_fd(fd);
                Err(e)
            }
        }
    }

    /// Opens a nonblocking raw ICMP socket connected to `peer` (lets a
    /// test ping without a `ping` binary). Requires root.
    pub fn icmp_socket(peer: [u8; 4]) -> io::Result<File> {
        let fd = unsafe {
            check(syscall3(
                SYS_SOCKET,
                AF_INET,
                SOCK_RAW | SOCK_NONBLOCK,
                IPPROTO_ICMP,
            ))?
        };
        // struct sockaddr_in, 16 bytes.
        let mut sin = [0u8; 16];
        sin[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
        sin[4..8].copy_from_slice(&peer);
        let result = unsafe { check(syscall3(SYS_CONNECT, fd, sin.as_ptr() as i64, 16)) };
        match result {
            Ok(_) => Ok(unsafe { File::from_raw_fd(fd as i32) }),
            Err(e) => {
                close_fd(fd);
                Err(e)
            }
        }
    }
}

/// Shared read/write plumbing for file-descriptor backends (tap, raw).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn fd_recv(file: &mut File, buf: &mut [u8], what: &str) -> IoResult<Option<Packet>> {
    match file.read(buf) {
        Ok(0) => Err(IoFault::Down(format!("{what} closed"))),
        Ok(n) => Ok(Some(Packet::from_data(&buf[..n]))),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Err(IoFault::WouldBlock),
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Err(IoFault::WouldBlock),
        Err(e) => Err(IoFault::Down(format!("{what} read: {e}"))),
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn fd_send(file: &mut File, frame: &[u8], what: &str) -> IoResult<()> {
    match file.write(frame) {
        Ok(n) if n == frame.len() => Ok(()),
        Ok(n) => Err(IoFault::Truncated {
            expected: frame.len(),
            got: n,
        }),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Err(IoFault::WouldBlock),
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Err(IoFault::WouldBlock),
        Err(e) => Err(IoFault::Down(format!("{what} write: {e}"))),
    }
}

/// A Linux tap device: the kernel's side is a real network interface, our
/// side reads and writes raw Ethernet frames. The `tap:NAME` scheme.
#[derive(Debug)]
pub struct TapBackend {
    name: String,
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    file: Option<File>,
    buf: Vec<u8>,
}

impl TapBackend {
    /// Creates (or re-attaches) tap `name`. Requires root or
    /// `CAP_NET_ADMIN` plus a usable `/dev/net/tun`.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub fn open(name: &str) -> Result<TapBackend> {
        let file =
            sys::tap_open(name).map_err(|e| Error::runtime(format!("tap open {name}: {e}")))?;
        Ok(TapBackend {
            name: name.to_string(),
            file: Some(file),
            buf: vec![0u8; MAX_FRAME],
        })
    }

    /// Tap devices need Linux on x86_64 (raw-syscall shims).
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    pub fn open(name: &str) -> Result<TapBackend> {
        Err(Error::runtime(format!(
            "tap backend `{name}` requires linux/x86_64"
        )))
    }
}

impl DeviceBackend for TapBackend {
    fn kind(&self) -> &'static str {
        "tap"
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        let Some(file) = self.file.as_mut() else {
            return Err(IoFault::Down("tap closed".to_string()));
        };
        fd_recv(file, &mut self.buf, "tap")
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn send(&mut self, frame: &[u8]) -> IoResult<()> {
        let Some(file) = self.file.as_mut() else {
            return Err(IoFault::Down("tap closed".to_string()));
        };
        fd_send(file, frame, "tap")
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn reopen(&mut self) -> IoResult<()> {
        self.file =
            Some(sys::tap_open(&self.name).map_err(|e| IoFault::Down(format!("tap reopen: {e}")))?);
        Ok(())
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        Err(IoFault::Down(
            "tap unsupported on this platform".to_string(),
        ))
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn send(&mut self, _frame: &[u8]) -> IoResult<()> {
        Err(IoFault::Down(
            "tap unsupported on this platform".to_string(),
        ))
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn reopen(&mut self) -> IoResult<()> {
        Err(IoFault::Down(
            "tap unsupported on this platform".to_string(),
        ))
    }
}

/// An `AF_PACKET` raw socket bound to a real interface: every frame the
/// interface sees, sent frames injected directly. The `raw:IFACE` scheme.
#[derive(Debug)]
pub struct RawSocketBackend {
    iface: String,
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    file: Option<File>,
    buf: Vec<u8>,
}

impl RawSocketBackend {
    /// Binds to `iface`. Requires root or `CAP_NET_RAW`.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub fn open(iface: &str) -> Result<RawSocketBackend> {
        let file = sys::raw_socket(iface)
            .map_err(|e| Error::runtime(format!("raw socket {iface}: {e}")))?;
        Ok(RawSocketBackend {
            iface: iface.to_string(),
            file: Some(file),
            buf: vec![0u8; MAX_FRAME],
        })
    }

    /// Raw sockets need Linux on x86_64 (raw-syscall shims).
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    pub fn open(iface: &str) -> Result<RawSocketBackend> {
        Err(Error::runtime(format!(
            "raw backend `{iface}` requires linux/x86_64"
        )))
    }
}

impl DeviceBackend for RawSocketBackend {
    fn kind(&self) -> &'static str {
        "raw"
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        let Some(file) = self.file.as_mut() else {
            return Err(IoFault::Down("raw socket closed".to_string()));
        };
        fd_recv(file, &mut self.buf, "raw socket")
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn send(&mut self, frame: &[u8]) -> IoResult<()> {
        let Some(file) = self.file.as_mut() else {
            return Err(IoFault::Down("raw socket closed".to_string()));
        };
        fd_send(file, frame, "raw socket")
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn reopen(&mut self) -> IoResult<()> {
        self.file = Some(
            sys::raw_socket(&self.iface).map_err(|e| IoFault::Down(format!("raw reopen: {e}")))?,
        );
        Ok(())
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        Err(IoFault::Down(
            "raw unsupported on this platform".to_string(),
        ))
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn send(&mut self, _frame: &[u8]) -> IoResult<()> {
        Err(IoFault::Down(
            "raw unsupported on this platform".to_string(),
        ))
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn reopen(&mut self) -> IoResult<()> {
        Err(IoFault::Down(
            "raw unsupported on this platform".to_string(),
        ))
    }
}

// ---------------------------------------------------------------------------
// FaultInjectBackend: deterministic chaos without real NICs
// ---------------------------------------------------------------------------

/// Fixed-point probability denominator (matches the `FaultInject`
/// element).
const PROB_ONE: u64 = 1 << 32;
/// The PCG/Knuth LCG multiplier the `FaultInject` element uses.
const LCG_MUL: u64 = 6364136223846793005;

/// A deterministic fault shim wrapped around any inner backend: the
/// device-level sibling of the `FaultInject` element, so chaos tests and
/// CI exercise every supervision transition without real hardware.
///
/// Clause language (the `fault:CLAUSES@INNER` scheme):
///
/// | clause | effect |
/// |---|---|
/// | `DROP p` | RX/TX frame silently lost on the wire with probability `p` |
/// | `TRUNCATE p` | RX frame cut short (`Truncated`) with probability `p` |
/// | `EAGAIN p` | operation fails `WouldBlock` with probability `p` |
/// | `STORM n` | each `EAGAIN` firing starts a storm of `n` consecutive blocks |
/// | `DOWN-AFTER n` | device goes hard `Down` after `n` operations |
/// | `DOWN-FOR n` | the first `n` re-open attempts are refused |
/// | `WEDGE-AFTER n` | TX wedges (`Wedged`) after `n` operations |
/// | `SEED n` | LCG seed (default 1) |
#[derive(Debug)]
pub struct FaultInjectBackend {
    inner: Box<dyn DeviceBackend>,
    drop_p: u64,
    trunc_p: u64,
    eagain_p: u64,
    storm: u32,
    storm_left: u32,
    down_after: Option<u64>,
    down_for: u32,
    reopens_refused: u32,
    wedge_after: Option<u64>,
    ops: u64,
    down: bool,
    wedged: bool,
    state: u64,
}

impl FaultInjectBackend {
    /// A transparent shim (no faults) over `inner`; configure with the
    /// builder methods.
    pub fn new(inner: Box<dyn DeviceBackend>) -> FaultInjectBackend {
        FaultInjectBackend {
            inner,
            drop_p: 0,
            trunc_p: 0,
            eagain_p: 0,
            storm: 1,
            storm_left: 0,
            down_after: None,
            down_for: 0,
            reopens_refused: 0,
            wedge_after: None,
            ops: 0,
            down: false,
            wedged: false,
            state: 1,
        }
    }

    /// Parses the clause language.
    pub fn parse(clauses: &str, inner: Box<dyn DeviceBackend>) -> Result<FaultInjectBackend> {
        let mut fb = FaultInjectBackend::new(inner);
        let mut rest = clauses.trim();
        while !rest.is_empty() {
            let (key, after) = match rest.split_once(char::is_whitespace) {
                Some((k, a)) => (k, a.trim_start()),
                None => (rest, ""),
            };
            let (val, after) = match after.split_once(char::is_whitespace) {
                Some((v, a)) => (v, a.trim_start()),
                None => (after, ""),
            };
            // Tolerate the element clause language's comma separators
            // (`DOWN-AFTER 500, DOWN-FOR 2`).
            let val = val.trim_end_matches(',');
            if val.is_empty() {
                return Err(Error::runtime(format!(
                    "fault clause `{key}` is missing its value"
                )));
            }
            let key_up = key.to_ascii_uppercase();
            match key_up.as_str() {
                "DROP" => fb.drop_p = prob(val)?,
                "TRUNCATE" => fb.trunc_p = prob(val)?,
                "EAGAIN" => fb.eagain_p = prob(val)?,
                "STORM" => fb.storm = int(val)? as u32,
                "DOWN-AFTER" => fb.down_after = Some(int(val)?),
                "DOWN-FOR" => fb.down_for = int(val)? as u32,
                "WEDGE-AFTER" => fb.wedge_after = Some(int(val)?),
                "SEED" => fb.state = int(val)?,
                other => {
                    return Err(Error::runtime(format!(
                        "unknown fault clause `{other}` (known: DROP, TRUNCATE, EAGAIN, \
                         STORM, DOWN-AFTER, DOWN-FOR, WEDGE-AFTER, SEED)"
                    )))
                }
            }
            rest = after;
        }
        Ok(fb)
    }

    /// Builder: go `Down` after `n` operations.
    pub fn down_after(mut self, n: u64) -> Self {
        self.down_after = Some(n);
        self
    }
    /// Builder: refuse the first `n` re-open attempts.
    pub fn down_for(mut self, n: u32) -> Self {
        self.down_for = n;
        self
    }
    /// Builder: `WouldBlock` probability.
    pub fn eagain(mut self, p: f64) -> Self {
        self.eagain_p = (p.clamp(0.0, 1.0) * PROB_ONE as f64) as u64;
        self
    }
    /// Builder: EAGAIN storm length.
    pub fn storm(mut self, n: u32) -> Self {
        self.storm = n.max(1);
        self
    }
    /// Builder: silent-drop probability.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_p = (p.clamp(0.0, 1.0) * PROB_ONE as f64) as u64;
        self
    }
    /// Builder: truncation probability.
    pub fn truncate_prob(mut self, p: f64) -> Self {
        self.trunc_p = (p.clamp(0.0, 1.0) * PROB_ONE as f64) as u64;
        self
    }
    /// Builder: wedge TX after `n` operations.
    pub fn wedge_after(mut self, n: u64) -> Self {
        self.wedge_after = Some(n);
        self
    }
    /// Builder: LCG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.state = s;
        self
    }

    fn roll(&mut self, p: u64) -> bool {
        if p == 0 {
            return false;
        }
        self.state = self.state.wrapping_mul(LCG_MUL).wrapping_add(1);
        u64::from((self.state >> 32) as u32) < p
    }

    /// Counts an op; returns the hard fault the op must fail with, if any.
    fn op_faults(&mut self) -> Option<IoFault> {
        if self.down {
            return Some(IoFault::Down("injected fault: device down".to_string()));
        }
        if self.storm_left > 0 {
            self.storm_left -= 1;
            return Some(IoFault::WouldBlock);
        }
        self.ops += 1;
        if let Some(n) = self.down_after {
            if self.ops >= n {
                self.down = true;
                return Some(IoFault::Down("injected fault: DOWN-AFTER".to_string()));
            }
        }
        if self.roll(self.eagain_p) {
            self.storm_left = self.storm.saturating_sub(1);
            return Some(IoFault::WouldBlock);
        }
        None
    }
}

fn prob(s: &str) -> Result<u64> {
    let v: f64 = s
        .parse()
        .map_err(|_| Error::runtime(format!("bad probability `{s}`")))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(Error::runtime(format!("probability `{s}` not in [0, 1]")));
    }
    Ok((v * PROB_ONE as f64) as u64)
}

fn int(s: &str) -> Result<u64> {
    s.parse()
        .map_err(|_| Error::runtime(format!("bad integer `{s}`")))
}

impl DeviceBackend for FaultInjectBackend {
    fn kind(&self) -> &'static str {
        "fault"
    }
    fn recv(&mut self) -> IoResult<Option<Packet>> {
        if let Some(f) = self.op_faults() {
            return Err(f);
        }
        loop {
            match self.inner.recv()? {
                Some(p) => {
                    if self.roll(self.drop_p) {
                        // Lost on the wire before we ever saw it.
                        p.recycle();
                        continue;
                    }
                    if self.roll(self.trunc_p) {
                        let expected = p.len();
                        let got = expected / 2;
                        p.recycle();
                        return Err(IoFault::Truncated { expected, got });
                    }
                    return Ok(Some(p));
                }
                None => return Ok(None),
            }
        }
    }
    fn send(&mut self, frame: &[u8]) -> IoResult<()> {
        if self.wedged {
            return Err(IoFault::Wedged);
        }
        if let Some(f) = self.op_faults() {
            return Err(f);
        }
        if let Some(n) = self.wedge_after {
            if self.ops >= n {
                self.wedged = true;
                return Err(IoFault::Wedged);
            }
        }
        if self.roll(self.drop_p) {
            // Lost on the wire after a successful send: the sender
            // cannot tell, so this is a success here.
            return Ok(());
        }
        self.inner.send(frame)
    }
    fn reopen(&mut self) -> IoResult<()> {
        if self.down || self.wedged {
            if self.reopens_refused < self.down_for {
                self.reopens_refused += 1;
                return Err(IoFault::Down("injected fault: reopen refused".to_string()));
            }
            self.inner.reopen()?;
            self.down = false;
            self.wedged = false;
            // One-shot triggers: a recovered device stays recovered.
            self.down_after = None;
            self.wedge_after = None;
            self.reopens_refused = 0;
            return Ok(());
        }
        self.inner.reopen()
    }
    fn exhausted(&self) -> bool {
        self.inner.exhausted()
    }
}

// ---------------------------------------------------------------------------
// Pump statistics
// ---------------------------------------------------------------------------

/// What one pump round moved between backends and device queues.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PumpStats {
    /// Frames received from backends into RX queues.
    pub rx: usize,
    /// Frames delivered from TX queues to backends.
    pub tx: usize,
    /// TX frames declared lost (drain deadline, abandoned device).
    pub lost: u64,
}

impl PumpStats {
    /// Folds another round's stats into this one.
    pub fn absorb(&mut self, other: PumpStats) {
        self.rx += other.rx;
        self.tx += other.tx;
        self.lost += other.lost;
    }

    /// True if the round moved nothing at all.
    pub fn idle(&self) -> bool {
        self.rx == 0 && self.tx == 0 && self.lost == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8, len: usize) -> Vec<u8> {
        let mut f = vec![0u8; len];
        f[0] = tag;
        f
    }

    /// Tight policies so tests run fast and deterministically.
    fn fast_policies() -> (RetryPolicy, HealthPolicy) {
        (
            RetryPolicy {
                max_retries: 2,
                backoff_base_us: 1,
                backoff_max_us: 4,
                op_deadline_us: 10_000,
            },
            HealthPolicy {
                flap_threshold: 2,
                window: 16,
                down_errors: 6,
                recovery_ops: 2,
                reopen_budget: 4,
                drain_deadline_us: 1_000,
                reopen_backoff_us: 1,
            },
        )
    }

    #[test]
    fn scheme_parsing() {
        assert_eq!(backend_scheme("udp:127.0.0.1:9000"), Some("udp"));
        assert_eq!(backend_scheme("pcap:t.pcap"), Some("pcap"));
        assert_eq!(backend_scheme("fault:DROP 0.5@mem:x"), Some("fault"));
        assert_eq!(backend_scheme("eth0"), None);
        assert_eq!(backend_scheme("127.0.0.1:9000"), None);
        assert_eq!(backend_scheme(":oops"), None);
    }

    #[test]
    fn open_backend_rejects_unknown_scheme() {
        let err = open_backend("ring:foo").unwrap_err();
        assert!(err.to_string().contains("unknown device backend scheme"));
        assert!(open_backend("pcap:").is_err());
        assert!(open_backend("udp:").is_err());
        assert!(open_backend("fault:DROP 0.5").is_err(), "missing @inner");
    }

    #[test]
    fn mem_backend_round_trip() {
        let (mut be, q) = MemBackend::with_handles();
        q.push_rx(&frame(1, 60));
        let p = be.recv().unwrap().unwrap();
        assert_eq!(p.data()[0], 1);
        p.recycle();
        assert_eq!(be.recv().unwrap_err(), IoFault::WouldBlock);
        be.send(&frame(2, 40)).unwrap();
        assert_eq!(q.take_tx(), vec![frame(2, 40)]);
        q.close();
        assert!(matches!(be.recv(), Err(IoFault::Down(_))));
        be.reopen().unwrap();
        assert_eq!(be.recv().unwrap_err(), IoFault::WouldBlock);
    }

    #[test]
    fn mem_echo_loops_tx_to_rx() {
        let mut be = MemBackend::echo();
        be.send(&frame(7, 20)).unwrap();
        let p = be.recv().unwrap().unwrap();
        assert_eq!(p.data()[0], 7);
        p.recycle();
    }

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("click-iodev-{}-{tag}.pcap", std::process::id()));
        p
    }

    #[test]
    fn pcap_write_then_replay() {
        let path = tmp_path("roundtrip");
        let frames: Vec<Vec<u8>> = (0..5).map(|i| frame(i as u8, 60 + i)).collect();
        write_pcap(&path, &frames).unwrap();
        let mut be = PcapBackend::open(path.to_str().unwrap(), None).unwrap();
        for f in &frames {
            let p = be.recv().unwrap().unwrap();
            assert_eq!(p.data(), &f[..]);
            p.recycle();
        }
        assert_eq!(be.recv().unwrap(), None);
        assert!(be.exhausted());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pcap_truncated_record_is_typed() {
        let path = tmp_path("trunc");
        write_pcap(&path, &[frame(1, 64)]).unwrap();
        // Chop the last 10 bytes off the only record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let mut be = PcapBackend::open(path.to_str().unwrap(), None).unwrap();
        assert!(matches!(be.recv(), Err(IoFault::Truncated { .. })));
        assert_eq!(be.recv().unwrap(), None, "truncated tail ends the trace");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pcap_rejects_garbage() {
        let path = tmp_path("garbage");
        std::fs::write(&path, b"this is not a capture file at all").unwrap();
        assert!(PcapBackend::open(path.to_str().unwrap(), None).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pcap_reopen_resumes_at_offset() {
        let path = tmp_path("resume");
        let frames: Vec<Vec<u8>> = (0..4).map(|i| frame(i as u8, 60)).collect();
        write_pcap(&path, &frames).unwrap();
        let mut be = PcapBackend::open(path.to_str().unwrap(), None).unwrap();
        let p = be.recv().unwrap().unwrap();
        assert_eq!(p.data()[0], 0);
        p.recycle();
        be.reopen().unwrap();
        let p = be.recv().unwrap().unwrap();
        assert_eq!(p.data()[0], 1, "reopen resumes, not restarts");
        p.recycle();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn udp_backend_loopback() {
        // Bind both ends on ephemeral ports, then wire them together.
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let peer_addr = probe.local_addr().unwrap();
        let mut be = UdpBackend::open("127.0.0.1:0", Some(peer_addr.to_string())).unwrap();
        let be_addr = be.sock.as_ref().unwrap().local_addr().unwrap();

        assert_eq!(be.recv().unwrap_err(), IoFault::WouldBlock);
        be.send(&frame(9, 80)).unwrap();
        let mut buf = [0u8; 256];
        probe
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let (n, _) = probe.recv_from(&mut buf).unwrap();
        assert_eq!(n, 80);
        assert_eq!(buf[0], 9);

        probe.send_to(&frame(4, 33), be_addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match be.recv() {
                Ok(Some(p)) => {
                    assert_eq!(p.len(), 33);
                    assert_eq!(p.data()[0], 4);
                    p.recycle();
                    break;
                }
                Ok(None) => panic!("udp backend never exhausts"),
                Err(IoFault::WouldBlock) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("udp recv: {e}"),
            }
        }
    }

    #[test]
    fn fault_clause_parsing() {
        let inner = Box::new(MemBackend::echo());
        let fb = FaultInjectBackend::parse(
            "DROP 0.25 EAGAIN 0.5 STORM 4 DOWN-AFTER 100 DOWN-FOR 2 SEED 7",
            inner,
        )
        .unwrap();
        assert_eq!(fb.drop_p, (0.25 * PROB_ONE as f64) as u64);
        assert_eq!(fb.storm, 4);
        assert_eq!(fb.down_after, Some(100));
        assert_eq!(fb.down_for, 2);
        assert_eq!(fb.state, 7);
        let inner = Box::new(MemBackend::echo());
        assert!(FaultInjectBackend::parse("BOGUS 1", inner).is_err());
        let inner = Box::new(MemBackend::echo());
        assert!(FaultInjectBackend::parse("DROP", inner).is_err());
    }

    #[test]
    fn fault_down_after_and_recovery() {
        let (inner, q) = MemBackend::with_handles();
        let mut fb = FaultInjectBackend::new(Box::new(inner))
            .down_after(3)
            .down_for(2);
        q.push_rx(&frame(0, 60));
        q.push_rx(&frame(1, 60));
        let p = fb.recv().unwrap().unwrap(); // op 1
        p.recycle();
        let p = fb.recv().unwrap().unwrap(); // op 2
        p.recycle();
        assert!(matches!(fb.recv(), Err(IoFault::Down(_)))); // op 3: dies
        assert!(matches!(fb.recv(), Err(IoFault::Down(_))));
        // First two reopens refused, third succeeds.
        assert!(fb.reopen().is_err());
        assert!(fb.reopen().is_err());
        fb.reopen().unwrap();
        q.push_rx(&frame(2, 60));
        let p = fb.recv().unwrap().unwrap();
        assert_eq!(p.data()[0], 2);
        p.recycle();
    }

    #[test]
    fn fault_eagain_storm_blocks_consecutively() {
        let (inner, q) = MemBackend::with_handles();
        q.push_rx(&frame(1, 60));
        let mut fb = FaultInjectBackend::new(Box::new(inner))
            .eagain(1.0)
            .storm(3);
        // Every op rolls EAGAIN; each roll starts a storm of 3.
        for _ in 0..3 {
            assert_eq!(fb.recv().unwrap_err(), IoFault::WouldBlock);
        }
        // Storm over; next op rolls EAGAIN again (p = 1.0).
        assert_eq!(fb.recv().unwrap_err(), IoFault::WouldBlock);
    }

    #[test]
    fn supervised_flap_down_recover_cycle() {
        let (inner, q) = MemBackend::with_handles();
        let fb = FaultInjectBackend::new(Box::new(inner))
            .down_after(3)
            .down_for(1);
        let (retry, health) = fast_policies();
        let mut sup = SupervisedDevice::with_policies(Box::new(fb), retry, health);
        for i in 0..2 {
            q.push_rx(&frame(i, 60));
        }
        assert!(sup.recv().is_some());
        assert!(sup.recv().is_some());
        assert_eq!(sup.health(), DeviceHealth::Up);
        // Third op injects Down.
        assert!(sup.recv().is_none());
        assert_eq!(sup.health(), DeviceHealth::Down);
        let g = sup.gauges();
        assert_eq!(g.down_events, 1);
        assert_eq!(g.flaps, 1);
        // Ticks retry the reopen: first refused, then accepted.
        let deadline = Instant::now() + Duration::from_secs(2);
        while sup.health() == DeviceHealth::Down && Instant::now() < deadline {
            sup.tick();
            std::thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(sup.health(), DeviceHealth::Recovering);
        assert_eq!(sup.gauges().reopens, 1);
        // Successful ops walk Recovering back to Up.
        q.push_rx(&frame(8, 60));
        q.push_rx(&frame(9, 60));
        assert!(sup.recv().is_some());
        assert!(sup.recv().is_some());
        assert_eq!(sup.health(), DeviceHealth::Up);
    }

    #[test]
    fn supervised_send_blocks_then_loses_on_deadline() {
        let (inner, q) = MemBackend::with_handles();
        let fb = FaultInjectBackend::new(Box::new(inner))
            .eagain(1.0)
            .storm(1000);
        let (retry, health) = fast_policies();
        let mut sup = SupervisedDevice::with_policies(Box::new(fb), retry, health);
        // TX can never succeed: the first sends come back Pending with
        // retries and backoffs counted...
        let p = Packet::from_data(&frame(1, 60));
        let outcome = sup.send_pkt(p);
        let p = match outcome {
            SendOutcome::Pending(p) => p,
            other => panic!("expected Pending, got {other:?}"),
        };
        let g = sup.gauges();
        assert!(g.retries >= 2);
        assert!(g.backoffs >= 2);
        assert!(g.would_blocks >= 3);
        // ...and once the drain deadline passes, pending TX is lost.
        std::thread::sleep(Duration::from_micros(health.drain_deadline_us + 200));
        assert!(sup.should_drop_pending());
        sup.count_drain_lost(1);
        p.recycle();
        assert_eq!(sup.gauges().drain_lost, 1);
        let _ = q;
    }

    #[test]
    fn supervised_abandons_after_reopen_budget() {
        let (inner, _q) = MemBackend::with_handles();
        // Refuse more reopens than the budget allows.
        let fb = FaultInjectBackend::new(Box::new(inner))
            .down_after(1)
            .down_for(100);
        let (retry, health) = fast_policies();
        let mut sup = SupervisedDevice::with_policies(Box::new(fb), retry, health);
        assert!(sup.recv().is_none()); // op 1: down
        let deadline = Instant::now() + Duration::from_secs(2);
        while !sup.abandoned() && Instant::now() < deadline {
            sup.tick();
            std::thread::sleep(Duration::from_micros(50));
        }
        assert!(sup.abandoned());
        assert_eq!(sup.health(), DeviceHealth::Down);
        assert_eq!(sup.gauges().reopens, 0);
        assert!(sup.should_drop_pending());
    }

    #[test]
    fn schemes_list_matches_known_openers() {
        // Every listed scheme must be understood by open_backend (even if
        // opening fails for environmental reasons, it must not be
        // "unknown scheme").
        for s in BACKEND_SCHEMES {
            let err = match open_backend(&format!("{s}:")) {
                Ok(_) => continue, // mem: opens fine
                Err(e) => e.to_string(),
            };
            assert!(
                !err.contains("unknown device backend scheme"),
                "scheme {s} rejected as unknown: {err}"
            );
        }
    }
    #[test]
    fn schemes_list_matches_click_check() {
        // click-core's `check_devices` lint keeps its own copy of this
        // list (core cannot depend on this crate); they must not drift.
        assert_eq!(
            click_core::check::KNOWN_BACKEND_SCHEMES,
            BACKEND_SCHEMES,
            "update click_core::check::KNOWN_BACKEND_SCHEMES"
        );
    }
}
