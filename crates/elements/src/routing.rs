//! Longest-prefix-match IP routing tables.
//!
//! The substrate for `StaticIPLookup`/`LookupIPRoute`. Two engines with
//! identical semantics:
//!
//! * [`IpTrie`] — the original one-bit-per-level binary trie, kept as
//!   the reference implementation and for small tables.
//! * [`MultibitTrie`] — a Poptrie/DXR-style compressed multibit trie: a
//!   16-bit direct-index root stride followed by popcount-compressed
//!   6/6/4-bit strides with flat `Vec`-backed node and leaf arrays, so
//!   a full-BGP-sized table answers a lookup in at most four indexed
//!   loads. Insert/remove/update are incremental (chunk-local), so a
//!   live million-route table survives a hot swap without a rebuild.

use std::collections::HashMap;

/// A binary trie mapping IPv4 prefixes to values.
#[derive(Debug, Clone)]
pub struct IpTrie<T> {
    nodes: Vec<Node<T>>,
}

#[derive(Debug, Clone)]
struct Node<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Default for IpTrie<T> {
    fn default() -> Self {
        IpTrie {
            nodes: vec![Node {
                children: [None, None],
                value: None,
            }],
        }
    }
}

impl<T> IpTrie<T> {
    /// Creates an empty table.
    pub fn new() -> IpTrie<T> {
        IpTrie::default()
    }

    /// Inserts a prefix of `plen` bits. Replaces any existing value for
    /// the exact same prefix and returns the old value.
    ///
    /// # Panics
    ///
    /// Panics if `plen > 32`.
    pub fn insert(&mut self, addr: u32, plen: u8, value: T) -> Option<T> {
        assert!(plen <= 32, "prefix length must be at most 32");
        let mut cur = 0usize;
        for i in 0..plen {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            cur = match self.nodes[cur].children[bit] {
                Some(n) => n as usize,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node {
                        children: [None, None],
                        value: None,
                    });
                    self.nodes[cur].children[bit] = Some(n as u32);
                    n
                }
            };
        }
        self.nodes[cur].value.replace(value)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: u32) -> Option<&T> {
        let mut cur = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match self.nodes[cur].children[bit] {
                Some(n) => {
                    cur = n as usize;
                    if let Some(v) = &self.nodes[cur].value {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-prefix lookup.
    pub fn get(&self, addr: u32, plen: u8) -> Option<&T> {
        let mut cur = 0usize;
        for i in 0..plen {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            cur = self.nodes[cur].children[bit].map(|n| n as usize)?;
        }
        self.nodes[cur].value.as_ref()
    }

    /// Removes an exact prefix, returning its value. Interior nodes are
    /// left in place (they are tiny and may be reused by reinserts).
    pub fn remove(&mut self, addr: u32, plen: u8) -> Option<T> {
        let mut cur = 0usize;
        for i in 0..plen {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            cur = self.nodes[cur].children[bit].map(|n| n as usize)?;
        }
        self.nodes[cur].value.take()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.value.is_some()).count()
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sentinel for "no value / no node" in the packed arrays.
const NONE: u32 = u32::MAX;

/// Stride plan over the low 16 bits: `(shift, width)` per level. The
/// top 16 bits are consumed by the direct-index root, the rest by at
/// most three popcount-compressed strides (6 + 6 + 4 = 16).
const LEVELS: [(u32, u32); 3] = [(10, 6), (4, 6), (0, 4)];

fn mask_addr(addr: u32, plen: u8) -> u32 {
    if plen == 0 {
        0
    } else {
        addr & (u32::MAX << (32 - u32::from(plen)))
    }
}

/// One entry of the 2^16-slot direct-index root: the leaf-pushed best
/// short-prefix value (`plen <= 16`) plus the root of the chunk's
/// subtree of longer prefixes, if any.
#[derive(Debug, Clone, Copy)]
struct RootSlot {
    leaf: u32,
    child: u32,
    leaf_plen: u8,
}

const EMPTY_SLOT: RootSlot = RootSlot {
    leaf: NONE,
    child: NONE,
    leaf_plen: 0,
};

/// A popcount-compressed interior node: two 64-bit occupancy bitmaps
/// and base offsets into the shared [`MultibitTrie::pool`] where the
/// node's leaf values and child indices are stored contiguously.
#[derive(Debug, Clone, Copy)]
struct PackedNode {
    child_bm: u64,
    leaf_bm: u64,
    base_children: u32,
    base_leaves: u32,
}

/// A Poptrie/DXR-style compressed multibit trie over IPv4 prefixes.
///
/// Layout: a 65 536-slot direct-index array covers the top 16 address
/// bits; each slot carries the leaf-pushed longest short prefix
/// (`plen <= 16`) covering it and, when the chunk holds longer
/// prefixes, the root of a subtree of packed nodes with 6-, 6- and
/// 4-bit strides. Per-node leaf/child arrays live contiguously in one
/// shared pool, so a lookup is a root load plus at most three
/// bitmap-popcount hops regardless of table size.
///
/// Mutation is incremental: a short-prefix insert or remove repaints
/// only the root slots it covers; a long-prefix insert or remove
/// rebuilds only its own chunk's subtree (a handful of nodes).
/// Replacing the value of an existing prefix is O(1) — the value arena
/// is updated in place and no nodes move. Freed nodes and pool ranges
/// are recycled, with the pool compacted when over half garbage.
#[derive(Debug, Clone)]
pub struct MultibitTrie<T> {
    root: Vec<RootSlot>,
    nodes: Vec<PackedNode>,
    /// Shared storage for per-node leaf-value and child-index ranges.
    pool: Vec<u32>,
    /// Value arena; one slot per stored prefix.
    values: Vec<Option<T>>,
    free_values: Vec<u32>,
    free_nodes: Vec<u32>,
    pool_garbage: usize,
    /// Authoritative store for prefixes with `plen <= 16`:
    /// prefix -> (value index, plen).
    short: IpTrie<(u32, u8)>,
    /// Authoritative store for prefixes with `plen > 16`, keyed by the
    /// top-16-bit chunk they live in.
    long: HashMap<u16, Vec<LongEntry>>,
    count: usize,
}

#[derive(Debug, Clone, Copy)]
struct LongEntry {
    addr: u32,
    plen: u8,
    validx: u32,
}

impl<T> Default for MultibitTrie<T> {
    fn default() -> Self {
        MultibitTrie {
            root: vec![EMPTY_SLOT; 1 << 16],
            nodes: Vec::new(),
            pool: Vec::new(),
            values: Vec::new(),
            free_values: Vec::new(),
            free_nodes: Vec::new(),
            pool_garbage: 0,
            short: IpTrie::new(),
            long: HashMap::new(),
            count: 0,
        }
    }
}

impl<T> MultibitTrie<T> {
    /// Creates an empty table.
    pub fn new() -> MultibitTrie<T> {
        MultibitTrie::default()
    }

    /// Inserts a prefix of `plen` bits. Replaces any existing value for
    /// the exact same prefix and returns the old value. Replacement is
    /// O(1); a fresh insert touches only the root slots or the one
    /// chunk subtree the prefix lives in.
    ///
    /// # Panics
    ///
    /// Panics if `plen > 32`.
    pub fn insert(&mut self, addr: u32, plen: u8, value: T) -> Option<T> {
        assert!(plen <= 32, "prefix length must be at most 32");
        let addr = mask_addr(addr, plen);
        if plen <= 16 {
            self.insert_short(addr, plen, value)
        } else {
            self.insert_long(addr, plen, value)
        }
    }

    fn alloc_value(&mut self, value: T) -> u32 {
        if let Some(i) = self.free_values.pop() {
            self.values[i as usize] = Some(value);
            i
        } else {
            self.values.push(Some(value));
            (self.values.len() - 1) as u32
        }
    }

    fn insert_short(&mut self, addr: u32, plen: u8, value: T) -> Option<T> {
        if let Some(&(vi, _)) = self.short.get(addr, plen) {
            return self.values[vi as usize].replace(value);
        }
        let vi = self.alloc_value(value);
        self.short.insert(addr, plen, (vi, plen));
        self.count += 1;
        // Leaf-push: paint every root slot this prefix covers, unless a
        // longer short prefix already owns the slot. Two distinct short
        // prefixes of equal length never cover the same slot.
        let start = (addr >> 16) as usize;
        for slot in &mut self.root[start..start + (1usize << (16 - plen))] {
            if slot.leaf == NONE || slot.leaf_plen < plen {
                slot.leaf = vi;
                slot.leaf_plen = plen;
            }
        }
        None
    }

    fn insert_long(&mut self, addr: u32, plen: u8, value: T) -> Option<T> {
        let chunk = (addr >> 16) as u16;
        if let Some(list) = self.long.get(&chunk) {
            if let Some(e) = list.iter().find(|e| e.addr == addr && e.plen == plen) {
                // In-place value update: no structure moves.
                return self.values[e.validx as usize].replace(value);
            }
        }
        let vi = self.alloc_value(value);
        self.long.entry(chunk).or_default().push(LongEntry {
            addr,
            plen,
            validx: vi,
        });
        self.count += 1;
        self.rebuild_chunk(chunk);
        None
    }

    /// Removes an exact prefix, returning its value. Touches only the
    /// root slots or the one chunk subtree the prefix lives in.
    pub fn remove(&mut self, addr: u32, plen: u8) -> Option<T> {
        assert!(plen <= 32, "prefix length must be at most 32");
        let addr = mask_addr(addr, plen);
        if plen <= 16 {
            let (vi, _) = self.short.remove(addr, plen)?;
            let old = self.values[vi as usize].take();
            self.free_values.push(vi);
            self.count -= 1;
            // Repaint the covered slots that the removed prefix owned
            // with the next-longest short prefix covering them.
            let start = (addr >> 16) as usize;
            for s in start..start + (1usize << (16 - plen)) {
                if self.root[s].leaf != vi {
                    continue;
                }
                let (leaf, leaf_plen) = match self.short.lookup((s as u32) << 16) {
                    Some(&(v, p)) => (v, p),
                    None => (NONE, 0),
                };
                self.root[s].leaf = leaf;
                self.root[s].leaf_plen = leaf_plen;
            }
            old
        } else {
            let chunk = (addr >> 16) as u16;
            let list = self.long.get_mut(&chunk)?;
            let pos = list.iter().position(|e| e.addr == addr && e.plen == plen)?;
            let entry = list.remove(pos);
            if list.is_empty() {
                self.long.remove(&chunk);
            }
            let old = self.values[entry.validx as usize].take();
            self.free_values.push(entry.validx);
            self.count -= 1;
            self.rebuild_chunk(chunk);
            old
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: u32) -> Option<&T> {
        self.lookup_steps(addr).0
    }

    /// Longest-prefix-match lookup that also reports how many interior
    /// stride nodes were visited (0–3); the cost model charges lookups
    /// by this depth.
    pub fn lookup_steps(&self, addr: u32) -> (Option<&T>, usize) {
        let slot = self.root[(addr >> 16) as usize];
        let mut best = slot.leaf;
        let mut node = slot.child;
        let mut steps = 0usize;
        if node != NONE {
            let low = addr & 0xFFFF;
            for (shift, width) in LEVELS {
                steps += 1;
                let n = self.nodes[node as usize];
                let i = (low >> shift) & ((1 << width) - 1);
                let bit = 1u64 << i;
                if n.leaf_bm & bit != 0 {
                    let pos = (n.leaf_bm & (bit - 1)).count_ones() as usize;
                    best = self.pool[n.base_leaves as usize + pos];
                }
                if n.child_bm & bit != 0 {
                    let pos = (n.child_bm & (bit - 1)).count_ones() as usize;
                    node = self.pool[n.base_children as usize + pos];
                } else {
                    break;
                }
            }
        }
        if best == NONE {
            (None, steps)
        } else {
            (self.values[best as usize].as_ref(), steps)
        }
    }

    /// Exact-prefix lookup.
    pub fn get(&self, addr: u32, plen: u8) -> Option<&T> {
        let addr = mask_addr(addr, plen.min(32));
        if plen <= 16 {
            let &(vi, _) = self.short.get(addr, plen)?;
            self.values[vi as usize].as_ref()
        } else {
            let list = self.long.get(&((addr >> 16) as u16))?;
            let e = list.iter().find(|e| e.addr == addr && e.plen == plen)?;
            self.values[e.validx as usize].as_ref()
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tears down and rebuilds the subtree for one 16-bit chunk from
    /// the chunk's authoritative long-prefix list. Old nodes and pool
    /// ranges go on free lists; the pool is compacted when over half
    /// garbage.
    fn rebuild_chunk(&mut self, chunk: u16) {
        let old = self.root[chunk as usize].child;
        if old != NONE {
            self.free_subtree(old);
        }
        let entries = self.long.get(&chunk).cloned().unwrap_or_default();
        self.root[chunk as usize].child = if entries.is_empty() {
            NONE
        } else {
            self.build_node(&entries, 0)
        };
        self.maybe_compact();
    }

    fn free_subtree(&mut self, idx: u32) {
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            let n = self.nodes[i as usize];
            let nc = n.child_bm.count_ones() as usize;
            self.pool_garbage += nc + n.leaf_bm.count_ones() as usize;
            for k in 0..nc {
                stack.push(self.pool[n.base_children as usize + k]);
            }
            self.free_nodes.push(i);
        }
    }

    /// Builds one stride node (and its descendants) covering `entries`,
    /// which all share the address bits above this level. Returns the
    /// node index.
    fn build_node(&mut self, entries: &[LongEntry], level: usize) -> u32 {
        let (shift, width) = LEVELS[level];
        // Address bits of the low 16 consumed once this level resolves.
        let boundary = 16 - shift;
        let wmask = (1u32 << width) - 1;
        let mut leaf_bm = 0u64;
        let mut child_bm = 0u64;
        let mut leaf_vals: Vec<u32> = Vec::new();
        let mut child_idxs: Vec<u32> = Vec::new();
        for i in 0..(1u32 << width) {
            // Leaf-push: the longest prefix resolving at this level
            // that covers slot `i`.
            let mut best: Option<(u32, u32)> = None;
            let mut sub: Vec<LongEntry> = Vec::new();
            for e in entries {
                let low = e.addr & 0xFFFF;
                let plen_low = u32::from(e.plen) - 16;
                let slot = (low >> shift) & wmask;
                if plen_low <= boundary {
                    let free = boundary - plen_low;
                    if (i & !((1u32 << free) - 1)) == slot && best.is_none_or(|(p, _)| p < plen_low)
                    {
                        best = Some((plen_low, e.validx));
                    }
                } else if slot == i {
                    sub.push(*e);
                }
            }
            if let Some((_, vi)) = best {
                leaf_bm |= 1u64 << i;
                leaf_vals.push(vi);
            }
            if !sub.is_empty() {
                child_bm |= 1u64 << i;
                child_idxs.push(self.build_node(&sub, level + 1));
            }
        }
        let base_leaves = self.pool.len() as u32;
        self.pool.extend_from_slice(&leaf_vals);
        let base_children = self.pool.len() as u32;
        self.pool.extend_from_slice(&child_idxs);
        let node = PackedNode {
            child_bm,
            leaf_bm,
            base_children,
            base_leaves,
        };
        if let Some(i) = self.free_nodes.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn maybe_compact(&mut self) {
        if self.pool.len() < 1024 || self.pool_garbage * 2 <= self.pool.len() {
            return;
        }
        let mut new_pool = Vec::with_capacity(self.pool.len() - self.pool_garbage);
        for s in 0..self.root.len() {
            let c = self.root[s].child;
            if c != NONE {
                self.compact_node(c, &mut new_pool);
            }
        }
        self.pool = new_pool;
        self.pool_garbage = 0;
    }

    fn compact_node(&mut self, idx: u32, new_pool: &mut Vec<u32>) {
        let n = self.nodes[idx as usize];
        let nl = n.leaf_bm.count_ones() as usize;
        let nc = n.child_bm.count_ones() as usize;
        let bl = new_pool.len() as u32;
        new_pool.extend_from_slice(&self.pool[n.base_leaves as usize..n.base_leaves as usize + nl]);
        let bc = new_pool.len() as u32;
        new_pool
            .extend_from_slice(&self.pool[n.base_children as usize..n.base_children as usize + nc]);
        self.nodes[idx as usize].base_leaves = bl;
        self.nodes[idx as usize].base_children = bc;
        for k in 0..nc {
            let child = new_pool[bc as usize + k];
            self.compact_node(child, new_pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_elements_test_util::*;

    mod click_elements_test_util {
        pub fn ip(s: &str) -> u32 {
            crate::headers::parse_ip(s).unwrap()
        }
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: IpTrie<u32> = IpTrie::new();
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = IpTrie::new();
        t.insert(0, 0, "default");
        assert_eq!(t.lookup(ip("1.2.3.4")), Some(&"default"));
        assert_eq!(t.lookup(ip("255.255.255.255")), Some(&"default"));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = IpTrie::new();
        t.insert(0, 0, 0);
        t.insert(ip("10.0.0.0"), 8, 1);
        t.insert(ip("10.0.1.0"), 24, 2);
        t.insert(ip("10.0.1.7"), 32, 3);
        assert_eq!(t.lookup(ip("9.9.9.9")), Some(&0));
        assert_eq!(t.lookup(ip("10.7.7.7")), Some(&1));
        assert_eq!(t.lookup(ip("10.0.1.200")), Some(&2));
        assert_eq!(t.lookup(ip("10.0.1.7")), Some(&3));
    }

    #[test]
    fn insert_replaces_exact_prefix() {
        let mut t = IpTrie::new();
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 1), None);
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.1.1.1")), Some(&2));
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        let mut t = IpTrie::new();
        t.insert(ip("10.0.0.0"), 9, "low");
        t.insert(ip("10.128.0.0"), 9, "high");
        assert_eq!(t.lookup(ip("10.1.0.0")), Some(&"low"));
        assert_eq!(t.lookup(ip("10.200.0.0")), Some(&"high"));
        assert_eq!(t.lookup(ip("11.0.0.0")), None);
    }

    #[test]
    fn exact_get() {
        let mut t = IpTrie::new();
        t.insert(ip("10.0.0.0"), 8, 1);
        assert_eq!(t.get(ip("10.0.0.0"), 8), Some(&1));
        assert_eq!(t.get(ip("10.0.0.0"), 9), None);
        assert_eq!(t.get(ip("10.0.0.0"), 7), None);
    }

    #[test]
    fn host_routes() {
        let mut t = IpTrie::new();
        for i in 0..32u32 {
            t.insert(0x0A000000 | i, 32, i);
        }
        assert_eq!(t.len(), 32);
        for i in 0..32u32 {
            assert_eq!(t.lookup(0x0A000000 | i), Some(&i));
        }
        assert_eq!(t.lookup(0x0A000040), None);
    }

    #[test]
    fn randomized_against_linear_scan() {
        // Deterministic pseudo-random prefixes; compare trie lookup with a
        // brute-force longest-match scan.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let mut t = IpTrie::new();
        let mut prefixes: Vec<(u32, u8, usize)> = Vec::new();
        for i in 0..200 {
            let plen = (next() % 33) as u8;
            let addr = if plen == 0 {
                0
            } else {
                next() & (u32::MAX << (32 - plen))
            };
            // Only record first-insert per exact prefix to mirror replace
            // semantics simply.
            if t.insert(addr, plen, i).is_none() {
                prefixes.push((addr, plen, i));
            } else {
                prefixes.retain(|&(a, l, _)| !(a == addr && l == plen));
                prefixes.push((addr, plen, i));
            }
        }
        for _ in 0..1000 {
            let q = next();
            let expected = prefixes
                .iter()
                .filter(|&&(a, l, _)| l == 0 || (q ^ a) >> (32 - l as u32) == 0)
                .max_by_key(|&&(_, l, _)| l)
                .map(|&(_, _, v)| v);
            assert_eq!(t.lookup(q).copied(), expected, "query {q:#x}");
        }
    }

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u32
        }
    }

    /// Brute-force longest-prefix scan: the ground truth.
    fn linear_lpm(prefixes: &[(u32, u8, usize)], q: u32) -> Option<usize> {
        prefixes
            .iter()
            .filter(|&&(a, l, _)| l == 0 || (q ^ a) >> (32 - u32::from(l)) == 0)
            .max_by_key(|&&(_, l, _)| l)
            .map(|&(_, _, v)| v)
    }

    #[test]
    fn multibit_default_route_matches_everything() {
        let mut t = MultibitTrie::new();
        t.insert(0, 0, "default");
        assert_eq!(t.lookup(ip("1.2.3.4")), Some(&"default"));
        assert_eq!(t.lookup(ip("255.255.255.255")), Some(&"default"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn multibit_longest_prefix_wins_across_root_boundary() {
        let mut t = MultibitTrie::new();
        t.insert(0, 0, 0);
        t.insert(ip("10.0.0.0"), 8, 1);
        t.insert(ip("10.1.0.0"), 16, 2);
        t.insert(ip("10.1.2.0"), 24, 3);
        t.insert(ip("10.1.2.3"), 32, 4);
        assert_eq!(t.lookup(ip("9.9.9.9")), Some(&0));
        assert_eq!(t.lookup(ip("10.7.7.7")), Some(&1));
        assert_eq!(t.lookup(ip("10.1.200.200")), Some(&2));
        assert_eq!(t.lookup(ip("10.1.2.200")), Some(&3));
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(&4));
    }

    #[test]
    fn multibit_insert_replaces_and_remove_restores() {
        let mut t = MultibitTrie::new();
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 1), None);
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 2), Some(1));
        assert_eq!(t.insert(ip("10.0.1.0"), 24, 3), None);
        assert_eq!(t.insert(ip("10.0.1.0"), 24, 4), Some(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(ip("10.0.1.9")), Some(&4));
        assert_eq!(t.remove(ip("10.0.1.0"), 24), Some(4));
        assert_eq!(t.lookup(ip("10.0.1.9")), Some(&2));
        assert_eq!(t.remove(ip("10.0.0.0"), 8), Some(2));
        assert_eq!(t.lookup(ip("10.0.1.9")), None);
        assert!(t.is_empty());
        assert_eq!(t.remove(ip("10.0.0.0"), 8), None);
    }

    #[test]
    fn multibit_exact_get_and_depth_bound() {
        let mut t = MultibitTrie::new();
        t.insert(ip("10.0.0.0"), 8, 1);
        t.insert(ip("10.0.0.0"), 28, 2);
        assert_eq!(t.get(ip("10.0.0.0"), 8), Some(&1));
        assert_eq!(t.get(ip("10.0.0.0"), 28), Some(&2));
        assert_eq!(t.get(ip("10.0.0.0"), 9), None);
        let (v, steps) = t.lookup_steps(ip("10.0.0.1"));
        assert_eq!(v, Some(&2));
        assert!(steps <= 3, "stride depth {steps} exceeds plan");
    }

    #[test]
    fn multibit_host_routes_at_chunk_edges() {
        let mut t = MultibitTrie::new();
        // /32s straddling a 16-bit chunk boundary.
        for i in 0..8u32 {
            t.insert(0x0A00FFFC + i, 32, i);
        }
        for i in 0..8u32 {
            assert_eq!(t.lookup(0x0A00FFFC + i), Some(&i));
        }
        assert_eq!(t.lookup(0x0A00FFFB), None);
        assert_eq!(t.lookup(0x0A010004), None);
    }

    /// Fuzz-style differential test (churn): LCG-generated prefix sets
    /// with overlaps, a /0 default, /32 hosts, and inserts interleaved
    /// with removes, checked address-by-address against a naive linear
    /// longest-prefix scan — for both the old and the new trie.
    #[test]
    fn differential_churn_old_and_multibit_vs_linear_scan() {
        let mut next = lcg(0xfeed_beef);
        let mut old: IpTrie<usize> = IpTrie::new();
        let mut multi: MultibitTrie<usize> = MultibitTrie::new();
        let mut model: Vec<(u32, u8, usize)> = Vec::new();
        for step in 0..600usize {
            let roll = next() % 10;
            if roll < 7 || model.is_empty() {
                // Insert, with plen biased toward interesting shapes.
                let plen = match next() % 8 {
                    0 => 0,
                    1 => 32,
                    2 => 16,
                    3 => 17,
                    _ => (next() % 33) as u8,
                };
                let addr = mask_addr(next(), plen);
                let o = old.insert(addr, plen, step);
                let m = multi.insert(addr, plen, step);
                assert_eq!(o, m, "insert {addr:#x}/{plen}");
                model.retain(|&(a, l, _)| !(a == addr && l == plen));
                model.push((addr, plen, step));
            } else {
                // Remove: usually an existing prefix, sometimes a miss.
                let (addr, plen) = if next().is_multiple_of(4) {
                    let plen = (next() % 33) as u8;
                    (mask_addr(next(), plen), plen)
                } else {
                    let &(a, l, _) = &model[(next() as usize) % model.len()];
                    (a, l)
                };
                let o = old.remove(addr, plen);
                let m = multi.remove(addr, plen);
                assert_eq!(o, m, "remove {addr:#x}/{plen}");
                model.retain(|&(a, l, _)| !(a == addr && l == plen));
            }
            assert_eq!(multi.len(), model.len(), "count after step {step}");
            if step % 40 != 0 {
                continue;
            }
            // Random probes plus targeted probes around stored prefixes.
            let mut probes: Vec<u32> = (0..200).map(|_| next()).collect();
            for &(a, l, _) in model.iter().take(40) {
                probes.push(a);
                probes.push(a.wrapping_add(1));
                probes.push(a.wrapping_sub(1));
                probes.push(a | !mask_addr(u32::MAX, l));
            }
            for q in probes {
                let want = linear_lpm(&model, q);
                assert_eq!(old.lookup(q).copied(), want, "old trie, query {q:#x}");
                assert_eq!(multi.lookup(q).copied(), want, "multibit, query {q:#x}");
            }
        }
    }

    #[test]
    fn multibit_dense_chunk_rebuild_recycles_storage() {
        // Hammer one chunk with inserts and removes; storage must not
        // grow without bound and lookups must stay correct.
        let mut t = MultibitTrie::new();
        let mut model: Vec<(u32, u8, usize)> = Vec::new();
        let mut next = lcg(42);
        for round in 0..40usize {
            for i in 0..32u32 {
                let plen = 17 + (next() % 16) as u8;
                let addr = mask_addr(0x0A0A0000 | (next() % 0x10000), plen);
                if t.insert(addr, plen, round * 100 + i as usize).is_some() {
                    model.retain(|&(a, l, _)| !(a == addr && l == plen));
                }
                model.push((addr, plen, round * 100 + i as usize));
            }
            while model.len() > 24 {
                let (a, l, v) = model.remove((next() as usize) % model.len());
                assert_eq!(t.remove(a, l), Some(v));
            }
            for _ in 0..64 {
                let q = 0x0A0A0000 | (next() % 0x10000);
                assert_eq!(t.lookup(q).copied(), linear_lpm(&model, q));
            }
        }
        // Bounded: a 24-entry table must not retain hundreds of nodes.
        assert!(
            t.nodes.len() - t.free_nodes.len() <= 4 * 24,
            "live nodes {} for {} prefixes",
            t.nodes.len() - t.free_nodes.len(),
            t.len()
        );
        assert!(
            t.pool.len() < 1 << 14,
            "pool grew without compaction: {}",
            t.pool.len()
        );
    }

    #[test]
    fn iptrie_remove_returns_value_and_unshadows() {
        let mut t = IpTrie::new();
        t.insert(ip("10.0.0.0"), 8, 1);
        t.insert(ip("10.0.0.0"), 16, 2);
        assert_eq!(t.lookup(ip("10.0.9.9")), Some(&2));
        assert_eq!(t.remove(ip("10.0.0.0"), 16), Some(2));
        assert_eq!(t.lookup(ip("10.0.9.9")), Some(&1));
        assert_eq!(t.remove(ip("10.0.0.0"), 16), None);
        assert_eq!(t.remove(ip("11.0.0.0"), 8), None);
    }
}
