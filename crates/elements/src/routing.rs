//! Longest-prefix-match IP routing table.
//!
//! The substrate for `StaticIPLookup`/`LookupIPRoute`: a binary trie over
//! address bits, built from scratch (no dependency), with exact
//! longest-match semantics.

/// A binary trie mapping IPv4 prefixes to values.
#[derive(Debug, Clone)]
pub struct IpTrie<T> {
    nodes: Vec<Node<T>>,
}

#[derive(Debug, Clone)]
struct Node<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Default for IpTrie<T> {
    fn default() -> Self {
        IpTrie {
            nodes: vec![Node {
                children: [None, None],
                value: None,
            }],
        }
    }
}

impl<T> IpTrie<T> {
    /// Creates an empty table.
    pub fn new() -> IpTrie<T> {
        IpTrie::default()
    }

    /// Inserts a prefix of `plen` bits. Replaces any existing value for
    /// the exact same prefix and returns the old value.
    ///
    /// # Panics
    ///
    /// Panics if `plen > 32`.
    pub fn insert(&mut self, addr: u32, plen: u8, value: T) -> Option<T> {
        assert!(plen <= 32, "prefix length must be at most 32");
        let mut cur = 0usize;
        for i in 0..plen {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            cur = match self.nodes[cur].children[bit] {
                Some(n) => n as usize,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node {
                        children: [None, None],
                        value: None,
                    });
                    self.nodes[cur].children[bit] = Some(n as u32);
                    n
                }
            };
        }
        self.nodes[cur].value.replace(value)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: u32) -> Option<&T> {
        let mut cur = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match self.nodes[cur].children[bit] {
                Some(n) => {
                    cur = n as usize;
                    if let Some(v) = &self.nodes[cur].value {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-prefix lookup.
    pub fn get(&self, addr: u32, plen: u8) -> Option<&T> {
        let mut cur = 0usize;
        for i in 0..plen {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            cur = self.nodes[cur].children[bit].map(|n| n as usize)?;
        }
        self.nodes[cur].value.as_ref()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.value.is_some()).count()
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_elements_test_util::*;

    mod click_elements_test_util {
        pub fn ip(s: &str) -> u32 {
            crate::headers::parse_ip(s).unwrap()
        }
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: IpTrie<u32> = IpTrie::new();
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = IpTrie::new();
        t.insert(0, 0, "default");
        assert_eq!(t.lookup(ip("1.2.3.4")), Some(&"default"));
        assert_eq!(t.lookup(ip("255.255.255.255")), Some(&"default"));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = IpTrie::new();
        t.insert(0, 0, 0);
        t.insert(ip("10.0.0.0"), 8, 1);
        t.insert(ip("10.0.1.0"), 24, 2);
        t.insert(ip("10.0.1.7"), 32, 3);
        assert_eq!(t.lookup(ip("9.9.9.9")), Some(&0));
        assert_eq!(t.lookup(ip("10.7.7.7")), Some(&1));
        assert_eq!(t.lookup(ip("10.0.1.200")), Some(&2));
        assert_eq!(t.lookup(ip("10.0.1.7")), Some(&3));
    }

    #[test]
    fn insert_replaces_exact_prefix() {
        let mut t = IpTrie::new();
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 1), None);
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.1.1.1")), Some(&2));
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        let mut t = IpTrie::new();
        t.insert(ip("10.0.0.0"), 9, "low");
        t.insert(ip("10.128.0.0"), 9, "high");
        assert_eq!(t.lookup(ip("10.1.0.0")), Some(&"low"));
        assert_eq!(t.lookup(ip("10.200.0.0")), Some(&"high"));
        assert_eq!(t.lookup(ip("11.0.0.0")), None);
    }

    #[test]
    fn exact_get() {
        let mut t = IpTrie::new();
        t.insert(ip("10.0.0.0"), 8, 1);
        assert_eq!(t.get(ip("10.0.0.0"), 8), Some(&1));
        assert_eq!(t.get(ip("10.0.0.0"), 9), None);
        assert_eq!(t.get(ip("10.0.0.0"), 7), None);
    }

    #[test]
    fn host_routes() {
        let mut t = IpTrie::new();
        for i in 0..32u32 {
            t.insert(0x0A000000 | i, 32, i);
        }
        assert_eq!(t.len(), 32);
        for i in 0..32u32 {
            assert_eq!(t.lookup(0x0A000000 | i), Some(&i));
        }
        assert_eq!(t.lookup(0x0A000040), None);
    }

    #[test]
    fn randomized_against_linear_scan() {
        // Deterministic pseudo-random prefixes; compare trie lookup with a
        // brute-force longest-match scan.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let mut t = IpTrie::new();
        let mut prefixes: Vec<(u32, u8, usize)> = Vec::new();
        for i in 0..200 {
            let plen = (next() % 33) as u8;
            let addr = if plen == 0 {
                0
            } else {
                next() & (u32::MAX << (32 - plen))
            };
            // Only record first-insert per exact prefix to mirror replace
            // semantics simply.
            if t.insert(addr, plen, i).is_none() {
                prefixes.push((addr, plen, i));
            } else {
                prefixes.retain(|&(a, l, _)| !(a == addr && l == plen));
                prefixes.push((addr, plen, i));
            }
        }
        for _ in 0..1000 {
            let q = next();
            let expected = prefixes
                .iter()
                .filter(|&&(a, l, _)| l == 0 || (q ^ a) >> (32 - l as u32) == 0)
                .max_by_key(|&&(_, l, _)| l)
                .map(|&(_, _, v)| v);
            assert_eq!(t.lookup(q).copied(), expected, "query {q:#x}");
        }
    }
}
