//! The element trait and its supporting plumbing.
//!
//! Elements are "fine-grained packet processing modules" (paper §3). Each
//! element receives packets on numbered input ports and emits them on
//! numbered output ports, via *push* (upstream initiates) or *pull*
//! (downstream initiates) transfer. Simpler elements implement only
//! [`Element::simple_action`], the sugar the paper's footnote 1 mentions;
//! the default `push`/`pull` adapt it to either discipline.

use crate::batch::{BatchEmitter, PacketBatch};
use crate::packet::Packet;
use crate::swap::ElementState;
use click_core::error::Result;
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

/// Identifies a simulated network device within a router's
/// [`DeviceBank`](crate::router::DeviceBank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub usize);

/// Collects the packets an element emits during one `push` call; the
/// engine routes them to downstream elements afterwards.
#[derive(Debug, Default)]
pub struct Emitter {
    items: Vec<(usize, Packet)>,
}

impl Emitter {
    /// Creates an empty emitter.
    pub fn new() -> Emitter {
        Emitter::default()
    }

    /// Emits `p` on output `port`.
    #[inline]
    pub fn emit(&mut self, port: usize, p: Packet) {
        self.items.push((port, p));
    }

    /// Drains emitted packets in emission order.
    pub fn drain(&mut self) -> impl Iterator<Item = (usize, Packet)> + '_ {
        self.items.drain(..)
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// What a pulling element can do: pull its own inputs, and push error
/// packets out of push-side outputs (needed by agnostic elements like
/// `CheckIPHeader` running in a pull context).
pub trait PullContext {
    /// Pulls a packet from the element's input `port`.
    fn pull(&mut self, port: usize) -> Option<Packet>;
    /// Pushes `p` out of the element's output `port` (used for
    /// always-push error outputs).
    fn push_out(&mut self, port: usize, p: Packet);
    /// Number of connected input ports.
    fn ninputs(&self) -> usize;
}

/// What a scheduled task can do: pull inputs, push outputs, and talk to
/// devices.
///
/// The batch methods have scalar-loop defaults, so custom task contexts
/// (tests, harnesses) keep working; the router's context overrides them
/// to run the batched engine when batch mode is on.
pub trait TaskContext {
    /// Pulls a packet from the element's input `port`.
    fn pull(&mut self, port: usize) -> Option<Packet>;
    /// Pushes `p` out of the element's output `port`, running the
    /// downstream push chain.
    fn emit(&mut self, port: usize, p: Packet);
    /// Pops a received packet from a device's RX queue.
    fn rx_pop(&mut self, dev: DeviceId) -> Option<Packet>;
    /// Appends a packet to a device's TX queue.
    fn tx_push(&mut self, dev: DeviceId, p: Packet);

    /// True if the scheduler wants tasks to move batches instead of
    /// single packets.
    fn batching(&self) -> bool {
        false
    }
    /// Packets a task should move per quantum in batch mode.
    fn burst(&self) -> usize {
        crate::elements::device::BURST
    }
    /// Drains up to `max` received packets from a device RX queue into
    /// `into`; returns how many were moved.
    fn rx_pop_batch(&mut self, dev: DeviceId, max: usize, into: &mut PacketBatch) -> usize {
        let mut n = 0;
        while n < max {
            let Some(p) = self.rx_pop(dev) else { break };
            into.push(p);
            n += 1;
        }
        n
    }
    /// Pushes a whole batch out of output `port`, running the downstream
    /// push chain once per hop rather than once per packet.
    fn emit_batch(&mut self, port: usize, batch: &mut PacketBatch) {
        for p in batch.drain() {
            self.emit(port, p);
        }
    }
    /// Pulls up to `max` packets from input `port` into `into`; returns
    /// how many arrived.
    fn pull_batch(&mut self, port: usize, max: usize, into: &mut PacketBatch) -> usize {
        let mut n = 0;
        while n < max {
            let Some(p) = self.pull(port) else { break };
            into.push(p);
            n += 1;
        }
        n
    }
    /// Appends a whole batch to a device TX queue.
    fn tx_push_batch(&mut self, dev: DeviceId, batch: &mut PacketBatch) {
        for p in batch.drain() {
            self.tx_push(dev, p);
        }
    }
}

/// A packet-processing element.
///
/// Implement [`simple_action`](Element::simple_action) for 1-in/1-out
/// filters; override [`push`](Element::push) / [`pull`](Element::pull) for
/// multi-port or stateful behavior; override
/// [`run_task`](Element::run_task) (and return `true` from
/// [`is_task`](Element::is_task)) for actively scheduled elements like
/// `ToDevice`.
pub trait Element {
    /// The element's class name (for diagnostics and stats lookup).
    fn class_name(&self) -> &str;

    /// Push-path processing: handle `p` arriving on input `port`, emitting
    /// results through `out`. The default applies
    /// [`simple_action`](Element::simple_action) and emits on output 0.
    fn push(&mut self, port: usize, p: Packet, out: &mut Emitter) {
        let _ = port;
        if let Some(q) = self.simple_action(p) {
            out.emit(0, q);
        }
    }

    /// Pull-path processing: produce a packet for output `port` on demand.
    /// The default pulls input 0 and applies
    /// [`simple_action`](Element::simple_action); if the action consumes
    /// the packet, `None` is returned (the pull fails for this attempt).
    fn pull(&mut self, port: usize, ctx: &mut dyn PullContext) -> Option<Packet> {
        let _ = port;
        let p = ctx.pull(0)?;
        self.simple_action(p)
    }

    /// Batched push-path processing: handle a whole [`PacketBatch`]
    /// arriving on input `port`, emitting results through the
    /// branch-sorted `out`. The default loops over
    /// [`push`](Element::push), so every element is batch-capable; hot
    /// elements override this to amortize per-packet work (one bounds
    /// check, one discriminant match, one borrow per *batch* instead of
    /// per packet).
    fn push_batch(&mut self, port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        for p in batch.drain() {
            out.with_scalar(|e| self.push(port, p, e));
        }
        out.recycle_storage(batch);
    }

    /// Batched pull-path processing: produce up to `max` packets for
    /// output `port` into `into`, returning how many were produced. The
    /// default loops over [`pull`](Element::pull); storage elements
    /// (`Queue`) override it to drain in one pass.
    fn pull_batch(
        &mut self,
        port: usize,
        max: usize,
        ctx: &mut dyn PullContext,
        into: &mut PacketBatch,
    ) -> usize {
        let mut n = 0;
        while n < max {
            let Some(p) = self.pull(port, ctx) else { break };
            into.push(p);
            n += 1;
        }
        n
    }

    /// Uniform processing for simple filters: return `Some` to forward on
    /// port 0, `None` to consume/drop.
    fn simple_action(&mut self, p: Packet) -> Option<Packet> {
        Some(p)
    }

    /// True if the element needs active scheduling.
    fn is_task(&self) -> bool {
        false
    }

    /// One scheduling quantum for task elements. Returns the number of
    /// packets moved (0 = idle, used for quiescence detection).
    fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize {
        let _ = ctx;
        0
    }

    /// Named statistics (Click handler analogue): `"count"`, `"drops"`, ...
    fn stat(&self, name: &str) -> Option<u64> {
        let _ = name;
        None
    }

    /// For storage elements: a shared handle to the current queue depth,
    /// used by RED's downstream-queue discovery.
    fn queue_depth_handle(&self) -> Option<Rc<Cell<usize>>> {
        None
    }

    /// For RED-like droppers: receives the depth handle of the nearest
    /// downstream storage element after the router is wired.
    fn attach_downstream_queue(&mut self, handle: Rc<Cell<usize>>) {
        let _ = handle;
    }

    /// Surrenders this element's transferable state for a hot swap
    /// ([`crate::router::Router::hot_swap`]): counters and buffered
    /// packets that should survive a configuration change. The element is
    /// left empty (it is about to be discarded). Stateless elements — the
    /// default — return `None`.
    fn take_state(&mut self) -> Option<ElementState> {
        None
    }

    /// Absorbs state taken from this element's predecessor in the old
    /// configuration (matched by name and class, see
    /// [`crate::swap::TransferPlan`]). The default discards the state,
    /// recycling any buffered packets.
    fn restore_state(&mut self, state: ElementState) {
        state.recycle_packets();
    }
}

/// Maps device names (`eth0`) to dense [`DeviceId`]s at element-creation
/// time.
#[derive(Debug, Default, Clone)]
pub struct DeviceMap {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl DeviceMap {
    /// Creates an empty map.
    pub fn new() -> DeviceMap {
        DeviceMap::default()
    }

    /// Returns the id for `name`, allocating one if new.
    pub fn id_for(&mut self, name: &str) -> DeviceId {
        if let Some(&i) = self.index.get(name) {
            return DeviceId(i);
        }
        let i = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        DeviceId(i)
    }

    /// Looks up an existing device by name.
    pub fn get(&self, name: &str) -> Option<DeviceId> {
        self.index.get(name).map(|&i| DeviceId(i))
    }

    /// The name of a device.
    pub fn name(&self, id: DeviceId) -> &str {
        &self.names[id.0]
    }

    /// Number of devices registered.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Context passed to element constructors.
#[derive(Debug, Default)]
pub struct CreateCtx {
    /// Device name registry.
    pub devices: DeviceMap,
    /// The worker shard this router instance runs in (0 for a serial
    /// router). Elements that scope behavior to one shard — `FaultInject`
    /// with a `SHARD` clause — read it at construction time.
    pub shard: usize,
}

impl CreateCtx {
    /// Creates an empty context (shard 0).
    pub fn new() -> CreateCtx {
        CreateCtx::default()
    }

    /// Creates a context for a router built inside worker shard `shard`.
    pub fn for_shard(shard: usize) -> CreateCtx {
        CreateCtx {
            shard,
            ..CreateCtx::default()
        }
    }
}

/// Helper: the element-configuration error type with a consistent shape.
pub fn config_err(class: &str, message: impl Into<String>) -> click_core::Error {
    click_core::Error::config(class, message)
}

/// Splits a config string into arguments (re-export for element impls).
pub fn args(config: &str) -> Vec<String> {
    click_core::config::split_args(config)
}

/// Parses a `Result`-producing integer argument.
pub fn int_arg<T: std::str::FromStr>(class: &str, what: &str, s: &str) -> Result<T> {
    s.trim()
        .parse::<T>()
        .map_err(|_| config_err(class, format!("bad {what} {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AddOne;

    impl Element for AddOne {
        fn class_name(&self) -> &str {
            "AddOne"
        }
        fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
            p.data_mut()[0] += 1;
            Some(p)
        }
    }

    struct NoPulls;
    impl PullContext for NoPulls {
        fn pull(&mut self, _port: usize) -> Option<Packet> {
            None
        }
        fn push_out(&mut self, _port: usize, _p: Packet) {}
        fn ninputs(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_push_uses_simple_action() {
        let mut e = AddOne;
        let mut out = Emitter::new();
        e.push(0, Packet::from_data(&[41]), &mut out);
        let emitted: Vec<_> = out.drain().collect();
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].0, 0);
        assert_eq!(emitted[0].1.data(), &[42]);
    }

    #[test]
    fn default_pull_fails_without_upstream() {
        let mut e = AddOne;
        assert!(e.pull(0, &mut NoPulls).is_none());
    }

    #[test]
    fn device_map_allocates_dense_ids() {
        let mut m = DeviceMap::new();
        let a = m.id_for("eth0");
        let b = m.id_for("eth1");
        let a2 = m.id_for("eth0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.name(a), "eth0");
        assert_eq!(m.get("eth1"), Some(b));
        assert_eq!(m.get("eth9"), None);
    }

    #[test]
    fn emitter_preserves_order() {
        let mut out = Emitter::new();
        out.emit(1, Packet::from_data(&[1]));
        out.emit(0, Packet::from_data(&[2]));
        let v: Vec<usize> = out.drain().map(|(p, _)| p).collect();
        assert_eq!(v, vec![1, 0]);
    }
}
