//! Live reconfiguration: element-state transfer between an old and a new
//! router graph.
//!
//! The paper's optimizers rewrite *configurations*, but a production
//! router cannot afford to restart — and lose every queued packet and
//! counter — just to adopt an optimized graph. This module provides the
//! pieces a hot swap needs:
//!
//! * [`ElementState`] — the portable state one element surrenders
//!   ([`crate::element::Element::take_state`]) and its successor absorbs
//!   ([`crate::element::Element::restore_state`]): named counters plus
//!   buffered packets (queue contents, delay lines).
//! * [`TransferPlan`] — which old element hands its state to which new
//!   element. Matching is Click-style: by element *name*, provided the
//!   (devirtualization-normalized) class agrees, so a `Counter` named
//!   `c` carries its totals into the optimized graph's `Counter__DV3`
//!   also named `c`.
//! * [`SwapReport`] — what a completed swap did: how much state moved,
//!   what was retired, and (for the sharded runtime) how the canary
//!   rollout went.
//!
//! The swap itself lives on the engines:
//! [`crate::router::Router::hot_swap`] performs the quiesced, atomic
//! serial swap; [`crate::parallel::ParallelRouter::hot_swap`] rolls the
//! new graph out shard by shard behind a canary with automatic rollback.

use click_core::registry::devirt_base;
use std::any::Any;
use std::collections::HashMap;

use crate::packet::Packet;

/// A typed-but-opaque payload an element can attach to its
/// [`ElementState`]: bulk structures (a million-route trie, a compiled
/// classifier) that would be absurd to serialize through the named
/// counters and must move, not rebuild, across a hot swap.
///
/// The transfer machinery never looks inside; the successor element
/// downcasts with [`ElementState::take_payload`] and decides whether the
/// carried structure is still valid for its own configuration.
pub struct OpaqueState(Box<dyn Any + Send>);

impl std::fmt::Debug for OpaqueState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OpaqueState(..)")
    }
}

/// Portable state extracted from one element for transfer into its
/// successor across a hot swap.
///
/// The representation is deliberately schema-free — named counters plus
/// a packet list — so elements evolve their state without touching the
/// transfer machinery, and a mismatch degrades to "counter ignored"
/// rather than an error.
#[derive(Debug, Default)]
pub struct ElementState {
    /// Class name of the donor element (normalized by the *plan*, not
    /// here: a devirtualized donor reports its mangled class).
    pub class: String,
    /// Named counters, e.g. `("drops", 3)`. Order is not significant.
    pub counters: Vec<(String, u64)>,
    /// Buffered packets in FIFO order (queue contents, delay lines).
    pub packets: Vec<Packet>,
    /// Optional bulk payload ([`OpaqueState`]) moved by reference, not
    /// rebuilt — e.g. a live routing table.
    pub payload: Option<OpaqueState>,
}

impl ElementState {
    /// Creates empty state tagged with the donor's class name.
    pub fn new(class: &str) -> ElementState {
        ElementState {
            class: class.to_owned(),
            counters: Vec::new(),
            packets: Vec::new(),
            payload: None,
        }
    }

    /// Adds a named counter (builder style).
    #[must_use]
    pub fn counter(mut self, name: &str, value: u64) -> ElementState {
        self.counters.push((name.to_owned(), value));
        self
    }

    /// Attaches a bulk payload (builder style). The successor element
    /// reclaims it with [`ElementState::take_payload`].
    #[must_use]
    pub fn with_payload<P: Any + Send>(mut self, payload: P) -> ElementState {
        self.payload = Some(OpaqueState(Box::new(payload)));
        self
    }

    /// Takes the payload out, if present and of the expected type.
    /// A payload of the wrong type is left in place (and eventually
    /// dropped with the state).
    pub fn take_payload<P: Any>(&mut self) -> Option<Box<P>> {
        if self.payload.as_ref().is_some_and(|p| p.0.is::<P>()) {
            let OpaqueState(boxed) = self.payload.take()?;
            boxed.downcast::<P>().ok()
        } else {
            None
        }
    }

    /// Looks up a counter by name.
    pub fn find(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a counter by name, defaulting to zero when absent.
    pub fn get(&self, name: &str) -> u64 {
        self.find(name).unwrap_or(0)
    }

    /// Recycles every buffered packet back into the thread-local pool
    /// (the fate of state nobody adopts).
    pub fn recycle_packets(self) {
        for p in self.packets {
            p.recycle();
        }
    }
}

/// The pairing of old-graph elements to new-graph elements computed
/// before a hot swap.
///
/// Indices refer to the two `(name, class)` tables handed to
/// [`TransferPlan::compute`] (element slot order in each engine).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TransferPlan {
    /// `(old_index, new_index)` pairs whose state carries over.
    pub matched: Vec<(usize, usize)>,
    /// Old elements with no successor: their state is retired (packets
    /// recycled and counted by the swap).
    pub retired: Vec<usize>,
    /// New elements with no predecessor: they start fresh.
    pub fresh: Vec<usize>,
}

impl TransferPlan {
    /// Computes the transfer plan between two `(name, class)` tables.
    ///
    /// An old element's state carries over iff the new graph declares an
    /// element of the same name whose class — after stripping any
    /// `click-devirtualize` mangling on either side — agrees. A same-name
    /// element of a *different* class starts fresh (its predecessor's
    /// state is retired), exactly like Click's install-time matching.
    pub fn compute(old: &[(String, String)], new: &[(String, String)]) -> TransferPlan {
        let base = |class: &str| -> String { devirt_base(class).unwrap_or(class).to_owned() };
        let new_by_name: HashMap<&str, usize> = new
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.as_str(), i))
            .collect();
        let mut plan = TransferPlan::default();
        let mut claimed = vec![false; new.len()];
        for (oi, (name, class)) in old.iter().enumerate() {
            match new_by_name.get(name.as_str()) {
                Some(&ni) if base(class) == base(&new[ni].1) => {
                    plan.matched.push((oi, ni));
                    claimed[ni] = true;
                }
                _ => plan.retired.push(oi),
            }
        }
        plan.fresh = (0..new.len()).filter(|&ni| !claimed[ni]).collect();
        plan
    }
}

/// What a hot swap did.
///
/// A serial [`crate::router::Router::hot_swap`] fills the state-transfer
/// fields and reports one swapped shard; the sharded
/// [`crate::parallel::ParallelRouter::hot_swap`] additionally reports the
/// canary outcome.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SwapReport {
    /// Elements whose state carried over (matched by name + base class).
    pub matched: usize,
    /// New elements that started with fresh state.
    pub fresh: usize,
    /// Old elements retired with no successor.
    pub retired: usize,
    /// Packets moved into the new graph: element state (queue contents,
    /// delay lines) plus device RX/TX queues carried by device name.
    pub packets_transferred: u64,
    /// Buffered packets with no home in the new graph — retired-element
    /// state and queues of devices the new graph lacks. Recycled, and
    /// part of the swap's bounded loss.
    pub packets_dropped: u64,
    /// Shards now running the configuration this swap installed.
    pub swapped_shards: usize,
    /// The shard that ran the new configuration first (sharded swaps).
    pub canary_shard: Option<usize>,
    /// Packets the canary processed during its judgment window.
    pub canary_packets: u64,
    /// Drop-gauge delta on the canary while it ran the new
    /// configuration (through rollback, if one happened).
    pub canary_drops: u64,
    /// True when the canary's drop gauge regressed past the margin and
    /// the shard was rolled back to the retained old graph.
    pub rolled_back: bool,
}

impl SwapReport {
    /// Folds one shard's serial swap into this rollout-level report
    /// (packet accounting sums; element matching is per-shard identical,
    /// so those fields keep the canary's values).
    pub fn absorb(&mut self, shard: &SwapReport) {
        self.packets_transferred += shard.packets_transferred;
        self.packets_dropped += shard.packets_dropped;
        self.swapped_shards += shard.swapped_shards;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[(&str, &str)]) -> Vec<(String, String)> {
        rows.iter()
            .map(|&(n, c)| (n.to_owned(), c.to_owned()))
            .collect()
    }

    #[test]
    fn plan_matches_by_name_and_class() {
        let old = table(&[("c", "Counter"), ("q", "Queue"), ("d", "Discard")]);
        let new = table(&[("q", "Queue"), ("c", "Counter"), ("t", "Tee")]);
        let plan = TransferPlan::compute(&old, &new);
        assert_eq!(plan.matched, vec![(0, 1), (1, 0)]);
        assert_eq!(plan.retired, vec![2]);
        assert_eq!(plan.fresh, vec![2]);
    }

    #[test]
    fn plan_normalizes_devirtualized_classes() {
        let old = table(&[("c", "Counter")]);
        let new = table(&[("c", "Counter__DV3")]);
        let plan = TransferPlan::compute(&old, &new);
        assert_eq!(plan.matched, vec![(0, 0)]);
        assert!(plan.retired.is_empty() && plan.fresh.is_empty());
    }

    #[test]
    fn plan_retires_same_name_different_class() {
        let old = table(&[("x", "Counter")]);
        let new = table(&[("x", "Queue")]);
        let plan = TransferPlan::compute(&old, &new);
        assert!(plan.matched.is_empty());
        assert_eq!(plan.retired, vec![0]);
        assert_eq!(plan.fresh, vec![0]);
    }

    #[test]
    fn state_counters_round_trip() {
        let s = ElementState::new("Queue").counter("drops", 7);
        assert_eq!(s.get("drops"), 7);
        assert_eq!(s.find("missing"), None);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn payload_round_trips_by_type() {
        let mut s = ElementState::new("X").with_payload(vec![1u32, 2, 3]);
        // Wrong type: left in place.
        assert!(s.take_payload::<String>().is_none());
        assert!(s.payload.is_some());
        // Right type: moved out exactly once.
        assert_eq!(*s.take_payload::<Vec<u32>>().unwrap(), vec![1, 2, 3]);
        assert!(s.payload.is_none());
        assert!(s.take_payload::<Vec<u32>>().is_none());
    }
}
