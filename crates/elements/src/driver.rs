//! Bridges real device backends to the sharded runtime.
//!
//! A [`crate::router::Router`] owns its `DeviceBank` and pumps backends
//! in place ([`crate::router::Router::run_with_devices`]); the sharded
//! [`ParallelRouter`] cannot, because each worker shard owns a private
//! bank on its own thread. [`DeviceDriver`] fills the gap: it owns the
//! supervised backends on the control thread, feeds received frames into
//! [`ParallelRouter::inject`] (which steers them across shards), and
//! drains the collected TX banks back out to the backends — with the same
//! supervision rules (retry, backoff, health, drain deadline) and the
//! same exact accounting: `injected == sent + router drops + device
//! losses` at every quiescent point.

use crate::batch::PacketBatch;
use crate::iodev::{open_backend, DeviceBackend, PumpStats, SendOutcome, SupervisedDevice};
use crate::packet::Packet;
use crate::parallel::ParallelRouter;
use crate::telemetry::DeviceGauges;
use click_core::error::{Error, Result};
use std::collections::VecDeque;

/// One driven device: its router-side name, its supervised backend, and
/// the TX frames the backend could not take yet (drain deadline running).
#[derive(Debug)]
struct DriverDev {
    name: String,
    sup: SupervisedDevice,
    pending: VecDeque<Packet>,
}

/// Pumps frames between supervised backends and a [`ParallelRouter`].
#[derive(Debug, Default)]
pub struct DeviceDriver {
    devs: Vec<DriverDev>,
    scratch: PacketBatch,
    injected: u64,
    sent: u64,
}

impl DeviceDriver {
    /// An empty driver; attach backends before pumping.
    pub fn new() -> DeviceDriver {
        DeviceDriver::default()
    }

    /// Attaches a backend (default supervision) under router device
    /// `name`.
    pub fn attach(&mut self, name: &str, backend: Box<dyn DeviceBackend>) {
        self.attach_supervised(name, SupervisedDevice::new(backend));
    }

    /// Attaches an already-supervised backend under router device `name`.
    pub fn attach_supervised(&mut self, name: &str, sup: SupervisedDevice) {
        self.devs.push(DriverDev {
            name: name.to_string(),
            sup,
            pending: VecDeque::new(),
        });
    }

    /// Opens a backend for every scheme-bearing name in `names`
    /// (typically [`ParallelRouter::device_names`]); scheme-less names
    /// are skipped. Returns how many backends were opened.
    ///
    /// # Errors
    ///
    /// Fails on the first spec that cannot be opened.
    pub fn open_scheme_devices(&mut self, names: &[String]) -> Result<usize> {
        let mut opened = 0;
        for name in names {
            if crate::iodev::backend_scheme(name).is_none() {
                continue;
            }
            if self.devs.iter().any(|d| d.name == *name) {
                continue;
            }
            self.attach(name, open_backend(name)?);
            opened += 1;
        }
        Ok(opened)
    }

    /// Frames injected into the router so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Frames delivered to backends so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames declared lost by the supervision layer (drain deadline,
    /// abandoned devices).
    pub fn lost(&self) -> u64 {
        self.devs.iter().map(|d| d.sup.lost()).sum()
    }

    /// TX frames parked at the driver waiting for sick backends.
    pub fn pending(&self) -> usize {
        self.devs.iter().map(|d| d.pending.len()).sum()
    }

    /// True once every attached RX source is exhausted.
    pub fn all_exhausted(&self) -> bool {
        self.devs.iter().all(|d| d.sup.exhausted())
    }

    /// Always-live per-device gauges, in attach order.
    pub fn gauges(&self) -> Vec<DeviceGauges> {
        self.devs
            .iter()
            .map(|d| {
                let mut g = d.sup.gauges();
                g.device = d.name.clone();
                g
            })
            .collect()
    }

    /// One pump round: RX up to `burst` frames per device into the
    /// router, flush the steering, collect worker TX, and drain it back
    /// to the backends under supervision. Returns what moved.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Runtime`] from a device name the router does
    /// not know.
    pub fn pump(&mut self, r: &mut ParallelRouter, burst: usize) -> Result<PumpStats> {
        let mut stats = PumpStats::default();
        // RX: backends -> router.
        for d in &mut self.devs {
            let dev = r.device_id(&d.name).ok_or_else(|| {
                Error::runtime(format!("driver device `{}` not in the router", d.name))
            })?;
            d.sup.tick();
            for _ in 0..burst.max(1) {
                let Some(p) = d.sup.recv() else { break };
                r.inject(dev, p);
                self.injected += 1;
                stats.rx += 1;
            }
        }
        r.flush();
        r.collect();
        // TX: router banks -> backends; pending (blocked) frames first so
        // order per device is preserved.
        for d in &mut self.devs {
            let dev = r.device_id(&d.name).ok_or_else(|| {
                Error::runtime(format!("driver device `{}` not in the router", d.name))
            })?;
            // `scratch` is empty here: `take_all` below empties it and
            // keeps its storage warm for the next round.
            r.drain_tx_into(dev, &mut self.scratch);
            d.pending.extend(self.scratch.take_all());
            if d.pending.is_empty() {
                continue;
            }
            if d.sup.should_drop_pending() {
                let n = d.pending.len() as u64;
                for p in d.pending.drain(..) {
                    p.recycle();
                }
                d.sup.count_drain_lost(n);
                stats.lost += n;
                continue;
            }
            while let Some(p) = d.pending.pop_front() {
                match d.sup.send_pkt(p) {
                    SendOutcome::Sent => {
                        self.sent += 1;
                        stats.tx += 1;
                    }
                    SendOutcome::Lost => stats.lost += 1,
                    SendOutcome::Pending(p) => {
                        d.pending.push_front(p);
                        break;
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Pumps until a full round moves nothing, the workers are idle, and
    /// every backend is exhausted with no pending TX — or `max_rounds`
    /// passes (live sockets never exhaust; loop [`DeviceDriver::pump`]
    /// yourself for those). Returns cumulative totals.
    ///
    /// # Errors
    ///
    /// Propagates pump errors and worker wedge timeouts.
    pub fn run(
        &mut self,
        r: &mut ParallelRouter,
        burst: usize,
        max_rounds: usize,
    ) -> Result<PumpStats> {
        let mut totals = PumpStats::default();
        for _ in 0..max_rounds {
            let round = self.pump(r, burst)?;
            let moved = r.try_run_until_idle()?;
            // Collect what the idle run produced before judging quiescence.
            let drain = self.pump(r, burst)?;
            totals.absorb(round);
            totals.absorb(drain);
            if round.idle() && drain.idle() && moved == 0 {
                if self.all_exhausted() && self.pending() == 0 {
                    break;
                }
                // Blocked TX with the deadline still running: give the
                // supervision clock a moment to progress.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        Ok(totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iodev::MemBackend;
    use crate::parallel::ParallelOpts;
    use click_core::lang::read_config;

    fn udp_frame(seq: u8) -> Vec<u8> {
        // Minimal Ethernet + IPv4 + UDP frame the steerer can hash.
        let mut f = vec![0u8; 60];
        f[12] = 0x08; // ethertype IPv4
        f[23] = 17; // protocol UDP
        f[30] = 10; // dst ip 10.0.0.x
        f[33] = seq;
        f
    }

    #[test]
    fn driver_pumps_parallel_router() {
        let g =
            read_config("FromDevice(in0) -> c :: Counter -> q :: Queue(256) -> ToDevice(out0);")
                .unwrap();
        let mut r = ParallelRouter::from_graph::<Box<dyn crate::element::Element>>(
            &g,
            ParallelOpts::new(2).batched(8),
        )
        .unwrap();
        let mut drv = DeviceDriver::new();
        let (in_be, in_q) = MemBackend::with_handles();
        let (out_be, out_q) = MemBackend::with_handles();
        drv.attach("in0", Box::new(in_be));
        drv.attach("out0", Box::new(out_be));
        for i in 0..20 {
            in_q.push_rx(&udp_frame(i));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while drv.sent() < 20 && std::time::Instant::now() < deadline {
            drv.pump(&mut r, 8).unwrap();
            r.run_until_idle();
        }
        drv.pump(&mut r, 8).unwrap();
        assert_eq!(drv.injected(), 20);
        assert_eq!(drv.sent(), 20);
        assert_eq!(drv.lost(), 0);
        assert_eq!(out_q.tx_len(), 20);
        let gauges = drv.gauges();
        assert_eq!(gauges[0].rx_packets, 20);
        assert_eq!(gauges[1].tx_packets, 20);
        r.shutdown();
    }

    #[test]
    fn driver_rejects_unknown_device() {
        let g = read_config("FromDevice(in0) -> Discard;").unwrap();
        let mut r = ParallelRouter::from_graph::<Box<dyn crate::element::Element>>(
            &g,
            ParallelOpts::new(1),
        )
        .unwrap();
        let mut drv = DeviceDriver::new();
        drv.attach("nosuch", Box::new(MemBackend::echo()));
        assert!(drv.pump(&mut r, 8).is_err());
        r.shutdown();
    }
}
