//! Vector packet processing: packet batches and the branch-sorted batch
//! emitter.
//!
//! The paper's optimizations attack *per-call* dispatch cost; batching
//! attacks *per-packet* dispatch cost by moving a whole burst of packets
//! across each element boundary in one call (VPP-style vector
//! processing). A [`PacketBatch`] is the unit of transfer; a
//! [`BatchEmitter`] collects an element's outputs *sorted by output
//! port*, so a batch that takes the same branch stays coalesced
//! hop-to-hop instead of degenerating back into single packets.
//!
//! Batch storage is recycled through the emitter's free list, mirroring
//! the packet pool in [`crate::packet`]: a steady-state forwarding path
//! moves batches without allocating.

use crate::element::Emitter;
use crate::packet::Packet;

/// A burst of packets traveling together between two elements.
///
/// Order within a batch is the arrival order of the packets; every
/// batch operation preserves it, so per-path FIFO behavior matches the
/// scalar engine exactly.
#[derive(Debug, Default)]
pub struct PacketBatch {
    pkts: Vec<Packet>,
}

impl PacketBatch {
    /// An empty batch.
    pub fn new() -> PacketBatch {
        PacketBatch::default()
    }

    /// An empty batch with room for `cap` packets.
    pub fn with_capacity(cap: usize) -> PacketBatch {
        PacketBatch {
            pkts: Vec::with_capacity(cap),
        }
    }

    /// Appends a packet (at the tail: batches are FIFO).
    #[inline]
    pub fn push(&mut self, p: Packet) {
        self.pkts.push(p);
    }

    /// Number of packets in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.pkts.len()
    }

    /// True if the batch holds no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// Removes all packets, in order. Keeps the storage for reuse.
    pub fn drain(&mut self) -> impl Iterator<Item = Packet> + '_ {
        self.pkts.drain(..)
    }

    /// Iterates over the packets.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.pkts.iter()
    }

    /// Iterates mutably over the packets (for in-place header edits —
    /// the hand-batched `Strip`/`Paint`/`DecIPTTL` path).
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Packet> {
        self.pkts.iter_mut()
    }

    /// Drops all packets, recycling their buffers into the packet pool.
    pub fn recycle_packets(&mut self) {
        for p in self.pkts.drain(..) {
            p.recycle();
        }
    }

    /// Removes and returns packets without consuming the batch storage.
    pub fn take_all(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.pkts)
    }
}

impl Extend<Packet> for PacketBatch {
    fn extend<T: IntoIterator<Item = Packet>>(&mut self, iter: T) {
        self.pkts.extend(iter);
    }
}

impl IntoIterator for PacketBatch {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.pkts.into_iter()
    }
}

impl FromIterator<Packet> for PacketBatch {
    fn from_iter<T: IntoIterator<Item = Packet>>(iter: T) -> PacketBatch {
        PacketBatch {
            pkts: iter.into_iter().collect(),
        }
    }
}

/// Collects the packets an element emits during one
/// [`push_batch`](crate::element::Element::push_batch) call, grouped by
/// output port — the branch-sorted output map.
///
/// Ports appear in first-emission order; packets within a port keep
/// their relative order. Empty batch storage is kept on a free list so
/// repeated hops reuse allocations.
#[derive(Debug, Default)]
pub struct BatchEmitter {
    ports: Vec<(usize, PacketBatch)>,
    free: Vec<PacketBatch>,
    scratch: Emitter,
}

impl BatchEmitter {
    /// Creates an empty emitter.
    pub fn new() -> BatchEmitter {
        BatchEmitter::default()
    }

    fn batch_for(&mut self, port: usize) -> &mut PacketBatch {
        // Linear search: elements have a handful of output ports, and the
        // common case (port 0, most recently used) hits immediately.
        if let Some(i) = self.ports.iter().position(|(p, _)| *p == port) {
            return &mut self.ports[i].1;
        }
        let b = self.free.pop().unwrap_or_default();
        self.ports.push((port, b));
        &mut self.ports.last_mut().expect("just pushed").1
    }

    /// Emits one packet on `port`.
    #[inline]
    pub fn emit(&mut self, port: usize, p: Packet) {
        self.batch_for(port).push(p);
    }

    /// Emits a whole batch on `port`, keeping it coalesced. The incoming
    /// batch's storage is recycled.
    pub fn emit_batch(&mut self, port: usize, mut batch: PacketBatch) {
        if let Some(i) = self.ports.iter().position(|(p, _)| *p == port) {
            self.ports[i].1.extend(batch.drain());
            self.free.push(batch);
        } else {
            self.ports.push((port, batch));
        }
    }

    /// True if nothing was emitted since the last drain.
    pub fn is_empty(&self) -> bool {
        self.ports.iter().all(|(_, b)| b.is_empty())
    }

    /// Removes the most recently emitted port group (used by the engine
    /// to process groups in reverse, preserving depth-first order).
    pub fn pop_group(&mut self) -> Option<(usize, PacketBatch)> {
        loop {
            let (port, batch) = self.ports.pop()?;
            if batch.is_empty() {
                self.free.push(batch);
            } else {
                return Some((port, batch));
            }
        }
    }

    /// Takes empty batch storage from the free list (allocating only if
    /// the list is empty).
    pub fn take_storage(&mut self) -> PacketBatch {
        self.free.pop().unwrap_or_default()
    }

    /// Returns empty batch storage for reuse by later hops.
    pub fn recycle_storage(&mut self, mut batch: PacketBatch) {
        debug_assert!(
            batch.is_empty(),
            "recycling a non-empty batch loses packets"
        );
        batch.pkts.clear();
        self.free.push(batch);
    }

    /// Runs a scalar `push`-style closure against a reusable [`Emitter`]
    /// and folds its emissions into the port map. This is the default
    /// `push_batch` adapter: elements without a hand-batched override run
    /// their scalar `push` per packet without allocating an emitter per
    /// call.
    pub fn with_scalar<F: FnOnce(&mut Emitter)>(&mut self, f: F) {
        let mut scratch = std::mem::take(&mut self.scratch);
        f(&mut scratch);
        for (port, p) in scratch.drain() {
            self.emit(port, p);
        }
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(b: u8) -> Packet {
        Packet::from_data(&[b])
    }

    #[test]
    fn batch_preserves_fifo_order() {
        let mut b = PacketBatch::new();
        for i in 0..5u8 {
            b.push(pkt(i));
        }
        let out: Vec<u8> = b.drain().map(|p| p.data()[0]).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn emitter_branch_sorts_by_port() {
        let mut out = BatchEmitter::new();
        out.emit(0, pkt(1));
        out.emit(2, pkt(2));
        out.emit(0, pkt(3));
        // Groups pop in reverse emission order; packets stay ordered.
        let (port, b) = out.pop_group().unwrap();
        assert_eq!(port, 2);
        assert_eq!(b.len(), 1);
        let (port, b) = out.pop_group().unwrap();
        assert_eq!(port, 0);
        let data: Vec<u8> = b.iter().map(|p| p.data()[0]).collect();
        assert_eq!(data, vec![1, 3]);
        assert!(out.pop_group().is_none());
    }

    #[test]
    fn emit_batch_coalesces_into_existing_group() {
        let mut out = BatchEmitter::new();
        out.emit(0, pkt(1));
        let mut extra = PacketBatch::new();
        extra.push(pkt(2));
        extra.push(pkt(3));
        out.emit_batch(0, extra);
        let (_, b) = out.pop_group().unwrap();
        let data: Vec<u8> = b.iter().map(|p| p.data()[0]).collect();
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn storage_is_recycled_between_hops() {
        let mut out = BatchEmitter::new();
        out.emit(1, pkt(9));
        let (_, mut b) = out.pop_group().unwrap();
        b.recycle_packets();
        out.recycle_storage(b);
        assert_eq!(out.free.len(), 1);
        out.emit(0, pkt(1));
        assert!(out.free.is_empty(), "new group must reuse free storage");
    }

    #[test]
    fn with_scalar_folds_emitter_output() {
        let mut out = BatchEmitter::new();
        out.with_scalar(|e| {
            e.emit(1, pkt(7));
            e.emit(0, pkt(8));
        });
        let (port, _) = out.pop_group().unwrap();
        assert_eq!(port, 0);
        let (port, b) = out.pop_group().unwrap();
        assert_eq!(port, 1);
        assert_eq!(b.iter().next().unwrap().data(), &[7]);
    }
}
