//! The multi-core router runtime: N independent shards of the compiled
//! element graph, RSS flow steering, bounded ring queues — and a
//! supervisor that keeps the router forwarding when a shard dies.
//!
//! The paper's runtime is a "constantly-active kernel thread" — one core
//! runs the whole element graph, and any element misbehavior takes the
//! whole router down. [`ParallelRouter`] scales that model across cores
//! the way production packet processors (and Click's own SMP successor)
//! do, and adds the fault-isolation discipline they need:
//!
//! * **Per-shard graph clones.** Every worker thread builds its *own*
//!   [`Router<S>`] from the same configuration graph. Nothing on the
//!   packet path is shared between shards — no locks, no cache-line
//!   ping-pong — and each worker thread gets its own thread-local
//!   packet pool ([`crate::packet`]) and its own element statistics.
//!   Graph-level optimizations (`fastclassifier`, `devirtualize`,
//!   `xform`) compose with sharding unchanged: each shard runs the same
//!   optimized graph, just on a subset of flows.
//! * **RSS flow steering.** The injection side hashes each frame's IP
//!   5-tuple ([`crate::steer`]) to pick a shard, so all packets of one
//!   flow traverse one shard in FIFO order — per-flow ordering is
//!   preserved without cross-core synchronization. Non-IP frames steer
//!   by receiving device.
//! * **Bounded SPSC rings.** [`PacketBatch`]es travel to workers and
//!   back on fixed-capacity single-producer/single-consumer rings
//!   ([`crate::ring`]): batched enqueue/dequeue, busy-poll with a
//!   backoff knob, and backpressure instead of drops when a shard falls
//!   behind.
//!
//! # Fault isolation and supervision
//!
//! Each worker wraps its packet-processing loop in
//! [`std::panic::catch_unwind`]: a panic inside an element (a bug, a
//! malformed frame tripping an assertion, or a deliberate
//! `FaultInject(PANIC …)` chaos element) is confined to that shard. The
//! panicked worker publishes its death through a *health word* (an
//! atomic the supervisor reads on every unproductive poll — never on the
//! per-packet fast path) and then parks as a **zombie**: its thread
//! stays alive answering control-plane queries, so the dead shard's
//! element statistics and telemetry remain readable until shutdown.
//!
//! The supervisor — the main thread, inside [`ParallelRouter::flush`] /
//! [`ParallelRouter::run_until_idle`] — reacts to a death by:
//!
//! 1. salvaging every in-flight batch from the dead shard's rings
//!    ([`crate::ring::RingProducer::reclaim`] is sound once the consumer
//!    is inert) and accounting the irrecoverable remainder (packets that
//!    were *inside* the engine when it died) in [`FaultGauges`];
//! 2. either **restarting** the shard — a fresh worker thread built from
//!    the retained [`RouterGraph`] ([`Recovery::Restart`]) — or entering
//!    **degraded mode** ([`Recovery::Degrade`]): the steering stage's
//!    live-shard mask ([`crate::steer::RssSteering::mark_dead`])
//!    deterministically re-homes the dead shard's flows across the
//!    survivors, while flows homed on live shards keep their original
//!    assignment (and therefore their per-flow order);
//! 3. re-injecting the salvaged packets in FIFO order through the
//!    (updated) steering stage.
//!
//! The control plane is typed-error clean: queries honor
//! [`CTRL_TIMEOUT`] and return [`Error::Runtime`] instead of panicking
//! when a worker is gone or wedged, injection into a wedged router
//! reports a backpressure timeout instead of spinning forever
//! ([`ParallelRouter::try_flush`]), and `Drop` performs a bounded,
//! orderly drain.
//!
//! Statistics aggregate through a control channel:
//! [`ParallelRouter::stat`] / [`ParallelRouter::class_stat`] query every
//! worker (including zombies and restarted shards' predecessors) and
//! sum, so a sharded router answers exactly like a serial [`Router`] and
//! equivalence tests run unchanged.

use crate::batch::PacketBatch;
use crate::element::DeviceId;
use crate::packet::{Packet, PoolStats};
use crate::ring::{spsc, Backoff, RingConsumer, RingProducer};
use crate::router::{Router, Slot};
use crate::steer::{RssSteering, MAX_SHARDS};
use crate::swap::SwapReport;
use crate::telemetry::{
    self, ElementProfile, FaultGauges, ShardGaugeTracker, ShardGauges, SwapGauges,
};
use click_core::error::{Error, Result};
use click_core::graph::RouterGraph;
use click_core::registry::Library;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of ring transfer: a burst of packets for (or from) one
/// simulated device.
type ShardItem = (DeviceId, PacketBatch);

/// A boxed configuration validator: builds a prototype router on the
/// calling thread so a hot swap rejects a bad config before any worker
/// sees it (captures the engine type `S`).
type Validator = Box<dyn Fn(&RouterGraph) -> Result<()>>;

/// Task-scheduling budget a worker grants each ring item; generous —
/// one item carries at most a burst of packets.
const WORKER_ROUNDS: usize = 100_000;

/// How long a control query may wait on a worker before the runtime
/// declares it wedged and returns [`Error::Runtime`].
pub const CTRL_TIMEOUT: Duration = Duration::from_secs(10);

/// Health-word states a worker publishes (see [`WorkerShared`]).
const HEALTH_RUNNING: u8 = 0;
/// The worker's packet loop panicked; the thread is parked as a zombie
/// that still answers control queries.
const HEALTH_PANICKED: u8 = 1;
/// The worker exited cleanly (shutdown).
const HEALTH_EXITED: u8 = 2;
/// The worker could not build its router clone (cannot normally happen:
/// the graph was validated on the main thread).
const HEALTH_BUILD_FAILED: u8 = 3;

/// What the supervisor does when a worker shard dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Enter degraded mode: mark the shard dead in the steering mask and
    /// spread its flows across the survivors. The default.
    Degrade,
    /// Restart the shard from the retained configuration graph, at most
    /// `max_per_shard` times per shard; further deaths degrade.
    Restart {
        /// Restart budget per shard before falling back to degradation.
        max_per_shard: u32,
    },
}

/// Configuration knobs of the sharded runtime.
#[derive(Debug, Clone)]
pub struct ParallelOpts {
    /// Number of worker shards (graph clones / threads).
    pub shards: usize,
    /// Run each shard's engine in batched (vector) transfer mode.
    pub batching: bool,
    /// Packets per transfer batch: the injection side groups frames into
    /// bursts of this size, and batching shards use it as their engine
    /// burst ([`Router::set_batch_burst`]).
    pub burst: usize,
    /// Capacity (in batches) of each SPSC ring.
    pub ring_capacity: usize,
    /// Busy-poll backoff knob: how many times an idle endpoint spins
    /// before it starts yielding and napping ([`Backoff`]).
    pub backoff_spins: u32,
    /// What to do when a worker shard dies.
    pub recovery: Recovery,
    /// How long injection may make zero progress (all target rings full,
    /// nothing arriving) before [`ParallelRouter::try_flush`] /
    /// [`ParallelRouter::try_run_until_idle`] report a backpressure
    /// timeout, and how long `Drop` waits for workers before abandoning
    /// a wedged thread.
    pub wedge_timeout: Duration,
}

impl ParallelOpts {
    /// Defaults for `shards` workers: scalar engine, device burst,
    /// 256-batch rings, 128-spin backoff, degrade-on-fault, 10 s wedge
    /// timeout.
    pub fn new(shards: usize) -> ParallelOpts {
        ParallelOpts {
            shards,
            batching: false,
            burst: crate::elements::device::BURST,
            ring_capacity: 256,
            backoff_spins: 128,
            recovery: Recovery::Degrade,
            wedge_timeout: CTRL_TIMEOUT,
        }
    }

    /// Enables batched (vector) transfers inside each shard.
    pub fn batched(mut self, burst: usize) -> ParallelOpts {
        self.batching = true;
        self.burst = burst.max(1);
        self
    }

    /// Restart dead shards from the retained graph, at most `max` times
    /// per shard.
    pub fn restart_on_fault(mut self, max: u32) -> ParallelOpts {
        self.recovery = Recovery::Restart { max_per_shard: max };
        self
    }

    /// Never restart: re-steer a dead shard's flows across survivors.
    pub fn degrade_on_fault(mut self) -> ParallelOpts {
        self.recovery = Recovery::Degrade;
        self
    }

    /// Sets the zero-progress deadline for injection and shutdown.
    pub fn with_wedge_timeout(mut self, t: Duration) -> ParallelOpts {
        self.wedge_timeout = t;
        self
    }
}

/// Knobs of a canary rollout ([`ParallelRouter::hot_swap_with`]).
#[derive(Debug, Clone, Copy)]
pub struct SwapOpts {
    /// How many packets the canary shard should process under the new
    /// configuration before its drop gauge is judged. The window also
    /// ends early when the buffered traffic drains.
    pub canary_window: u64,
    /// Allowed excess in the canary's drops-per-packet rate over the
    /// surviving shards' aggregate rate. A canary whose rate exceeds
    /// `survivor_rate + drop_margin` is rolled back.
    pub drop_margin: f64,
}

impl Default for SwapOpts {
    fn default() -> SwapOpts {
        SwapOpts {
            canary_window: 256,
            drop_margin: 0.05,
        }
    }
}

/// Reads the retained configuration graph, tolerating lock poisoning
/// (the lock only ever guards an `Arc` pointer swap, so a poisoned
/// value is still intact).
fn read_retained(retained: &RwLock<Arc<RouterGraph>>) -> Arc<RouterGraph> {
    match retained.read() {
        Ok(g) => Arc::clone(&g),
        Err(p) => Arc::clone(&p.into_inner()),
    }
}

/// Control-plane queries the injection thread sends to workers. Rare and
/// cheap; the packet path never touches this channel.
enum Ctrl {
    /// Liveness probe (the control-plane heartbeat).
    Ping,
    /// Read one element's named statistic.
    Stat(String, String),
    /// Sum a statistic across all elements of a class.
    ClassStat(String, String),
    /// Read the engine drop counters.
    EngineDrops,
    /// Snapshot the worker thread's packet-pool counters.
    PoolStats,
    /// Reset the worker thread's packet-pool counters.
    ResetPoolStats,
    /// Snapshot the shard's per-element telemetry profiles.
    Telemetry,
    /// Snapshot the shard's runtime gauges (ring depth, backoff).
    Gauges,
    /// Read the shard's aggregate drop gauge
    /// ([`Router::total_drops`]) — the canary-regression signal.
    DropGauge,
    /// Hot-swap the shard's engine to this configuration graph. Only the
    /// worker's main loop (which owns `&mut Router`) performs the swap;
    /// read-only contexts answer with a busy error.
    Swap(Arc<RouterGraph>),
}

/// Replies to [`Ctrl`] queries.
enum CtrlReply {
    Pong,
    Stat(Option<u64>),
    Value(u64),
    Drops {
        unconnected: u64,
        reentrant: u64,
    },
    Pool(PoolStats),
    Telemetry(Vec<ElementProfile>),
    Gauges(ShardGauges),
    /// Outcome of a [`Ctrl::Swap`] request against this shard's engine.
    Swapped(Result<SwapReport>),
    /// The worker has no router to answer with (build failure zombie).
    Gone,
}

/// State a worker shares with the supervisor: the health word, a
/// heartbeat the worker bumps every poll, and completion counters the
/// supervisor balances against its own enqueue counters to detect both
/// idleness and in-flight loss.
#[derive(Debug, Default)]
struct WorkerShared {
    health: AtomicU8,
    heartbeat: AtomicU64,
    completed_batches: AtomicU64,
    completed_pkts: AtomicU64,
}

/// Main-thread handle to one worker shard (or to a dead predecessor
/// retired to the graveyard, kept for its statistics).
struct Worker {
    shard: usize,
    to_worker: RingProducer<ShardItem>,
    from_worker: RingConsumer<ShardItem>,
    ctrl: mpsc::Sender<Ctrl>,
    reply: mpsc::Receiver<CtrlReply>,
    /// Batches handed to this worker (main thread is the only writer).
    enqueued_batches: u64,
    /// Packets handed to this worker.
    enqueued_pkts: u64,
    shared: Arc<WorkerShared>,
    /// Restarts already spent on this shard slot (carried across
    /// replacements so the budget is per shard, not per incarnation).
    restarts: u32,
    /// Set once the supervisor has processed this worker's death; a dead
    /// worker is skipped by injection and counts as idle.
    dead: bool,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    /// All handed-over batches processed (a reconciled dead worker
    /// counts as idle: the supervisor already settled its accounts).
    fn is_idle(&self) -> bool {
        self.dead || self.shared.completed_batches.load(Ordering::Acquire) == self.enqueued_batches
    }

    /// True when the worker is no longer processing packets: it
    /// panicked, failed to build, or its thread is gone.
    fn is_dead(&self) -> bool {
        if self.dead {
            return true;
        }
        match self.shared.health.load(Ordering::Acquire) {
            HEALTH_PANICKED | HEALTH_BUILD_FAILED => true,
            HEALTH_EXITED => true,
            _ => self.handle.as_ref().is_none_or(JoinHandle::is_finished),
        }
    }

    /// Sends a control query and waits (bounded) for the answer.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when the worker is gone, answers [`CtrlReply::Gone`],
    /// or does not answer within [`CTRL_TIMEOUT`].
    fn query(&self, q: Ctrl) -> Result<CtrlReply> {
        let shard = self.shard;
        self.ctrl
            .send(q)
            .map_err(|_| Error::runtime(format!("shard {shard}: control channel closed")))?;
        match self.reply.recv_timeout(CTRL_TIMEOUT) {
            Ok(CtrlReply::Gone) => Err(Error::runtime(format!(
                "shard {shard}: worker has no router (build failed)"
            ))),
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(Error::runtime(format!(
                "shard {shard}: control query timed out after {CTRL_TIMEOUT:?} (worker wedged?)"
            ))),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(Error::runtime(format!(
                "shard {shard}: worker exited without answering"
            ))),
        }
    }
}

/// A router running as N independent shards on worker threads, fed
/// through RSS flow steering and watched by a supervisor. See the module
/// docs for the architecture.
///
/// # Examples
///
/// ```
/// use click_core::lang::read_config;
/// use click_elements::element::Element;
/// use click_elements::packet::Packet;
/// use click_elements::parallel::{ParallelOpts, ParallelRouter};
///
/// let graph = read_config(
///     "FromDevice(in0) -> Counter -> Queue(64) -> ToDevice(out0);",
/// )?;
/// let mut router =
///     ParallelRouter::from_graph::<Box<dyn Element>>(&graph, ParallelOpts::new(2))?;
/// let in0 = router.device_id("in0").unwrap();
/// let out0 = router.device_id("out0").unwrap();
/// router.inject(in0, Packet::new(60));
/// router.run_until_idle();
/// assert_eq!(router.tx_len(out0), 1);
/// assert_eq!(router.class_stat("Counter", "count"), 1);
/// # Ok::<(), click_core::Error>(())
/// ```
pub struct ParallelRouter {
    workers: Vec<Worker>,
    /// Dead predecessors of restarted shards, kept alive (as zombies)
    /// so their statistics stay queryable until shutdown.
    graveyard: Vec<Worker>,
    steer: RssSteering,
    stop: Arc<AtomicBool>,
    /// Device names; a device's id is its index.
    devices: Vec<String>,
    /// Per-shard injection buffers, grouped into (device, burst) items.
    pending: Vec<Vec<ShardItem>>,
    /// Collected TX packets per device.
    tx: Vec<Vec<Packet>>,
    /// Reusable empty batch storage for injection grouping.
    storage: Vec<PacketBatch>,
    burst: usize,
    backoff_spins: u32,
    recovery: Recovery,
    wedge_timeout: Duration,
    faults: FaultGauges,
    swap: SwapGauges,
    /// The configuration the shards are (supposed to be) running:
    /// restarts rebuild from it, and a canary rollback re-installs it.
    /// A completed hot swap replaces it with the new graph.
    retained: Arc<RwLock<Arc<RouterGraph>>>,
    /// Spawns a replacement worker for a shard slot (captures the
    /// retained graph, the worker config, and the engine type `S`).
    make_worker: Box<dyn Fn(usize) -> Result<Worker>>,
    /// Validates a candidate configuration by building a prototype
    /// `Router<S>` on the calling thread (captures the engine type `S`),
    /// so a hot swap rejects a bad config before any worker sees it.
    validate: Validator,
}

impl ParallelRouter {
    /// Builds and starts a sharded router over `graph`: validates the
    /// configuration, then spawns one worker thread per shard, each
    /// instantiating its own `Router<S>` from the standard element
    /// library.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Router::from_graph`] (configuration
    /// check failures, element construction errors), or
    /// [`Error::Runtime`] for an invalid shard count or a failed thread
    /// spawn; no threads are leaked in either case.
    pub fn from_graph<S: Slot + 'static>(
        graph: &RouterGraph,
        opts: ParallelOpts,
    ) -> Result<ParallelRouter> {
        if opts.shards < 1 || opts.shards > MAX_SHARDS {
            return Err(Error::runtime(format!(
                "shard count {} outside 1..={MAX_SHARDS}",
                opts.shards
            )));
        }
        if opts.ring_capacity < 1 {
            return Err(Error::runtime("ring capacity must be at least 1"));
        }
        // Validate once on this thread so errors surface synchronously;
        // the prototype also yields the device name table.
        let prototype: Router<S> = Router::from_graph(graph, &Library::standard())?;
        let devices: Vec<String> = prototype
            .devices
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        drop(prototype);

        let stop = Arc::new(AtomicBool::new(false));
        let cfg = WorkerCfg {
            shard: 0,
            batching: opts.batching,
            burst: opts.burst,
            backoff_spins: opts.backoff_spins,
            ring_capacity: opts.ring_capacity,
        };
        let retained = Arc::new(RwLock::new(Arc::new(graph.clone())));
        let make_worker: Box<dyn Fn(usize) -> Result<Worker>> = {
            let retained = Arc::clone(&retained);
            let stop = Arc::clone(&stop);
            Box::new(move |shard| {
                let graph = read_retained(&retained);
                spawn_worker::<S>(&graph, WorkerCfg { shard, ..cfg }, &stop)
            })
        };
        let validate: Validator =
            Box::new(|g| Router::<S>::from_graph(g, &Library::standard()).map(|_| ()));
        let mut workers = Vec::with_capacity(opts.shards);
        for shard in 0..opts.shards {
            workers.push(make_worker(shard)?);
        }
        let n_dev = devices.len();
        Ok(ParallelRouter {
            workers,
            graveyard: Vec::new(),
            steer: RssSteering::new(opts.shards),
            stop,
            devices,
            pending: (0..opts.shards).map(|_| Vec::new()).collect(),
            tx: (0..n_dev).map(|_| Vec::new()).collect(),
            storage: Vec::new(),
            burst: opts.burst.max(1),
            backoff_spins: opts.backoff_spins,
            recovery: opts.recovery,
            wedge_timeout: opts.wedge_timeout,
            faults: FaultGauges {
                shards: opts.shards,
                live_shards: opts.shards,
                ..FaultGauges::default()
            },
            swap: SwapGauges::default(),
            retained,
            make_worker,
            validate,
        })
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Number of shards currently accepting traffic.
    pub fn live_shards(&self) -> usize {
        self.steer.live_count()
    }

    /// Supervisor fault gauges: shard deaths, restarts, degraded-mode
    /// entries, and in-flight packet loss. All zero on a healthy run.
    pub fn fault_gauges(&self) -> FaultGauges {
        FaultGauges {
            live_shards: self.steer.live_count(),
            shards: self.workers.len(),
            ..self.faults
        }
    }

    /// Live-reconfiguration gauges: completed swaps, rollbacks, canary
    /// failures, packets transferred, and rejected configs. Always live
    /// (not feature-gated), like [`ParallelRouter::fault_gauges`].
    pub fn swap_gauges(&self) -> SwapGauges {
        self.swap
    }

    /// Rolls `new_graph` out across the shards behind a canary with the
    /// default [`SwapOpts`]. See [`ParallelRouter::hot_swap_with`].
    ///
    /// # Errors
    ///
    /// Same as [`ParallelRouter::hot_swap_with`].
    pub fn hot_swap(&mut self, new_graph: &RouterGraph) -> Result<SwapReport> {
        self.hot_swap_with(new_graph, SwapOpts::default())
    }

    /// Live reconfiguration: installs `new_graph` with a two-phase canary
    /// rollout, preserving element state ([`Router::hot_swap`]) on every
    /// swapped shard.
    ///
    /// 1. **Validate.** The candidate graph is checked and a prototype
    ///    engine is built on this thread; a config that fails
    ///    `click_core::check::check` is rejected here — counted in
    ///    [`SwapGauges::rejected_configs`] — and no worker ever sees it.
    /// 2. **Canary.** The lowest-index live shard is quiesced (its ring
    ///    drains; other shards keep forwarding, so per-flow order on
    ///    their flows is untouched) and swapped to the new graph with
    ///    full state transfer.
    /// 3. **Window.** Buffered traffic is pumped until the canary has
    ///    processed [`SwapOpts::canary_window`] packets (or the traffic
    ///    drains), then the canary's drops-per-packet delta is compared
    ///    against the surviving shards' aggregate delta.
    /// 4. **Roll or roll back.** Within margin: every remaining live
    ///    shard is quiesced and swapped in turn and the new graph becomes
    ///    the retained configuration (future restarts build it). Past
    ///    margin: the canary is quiesced and swapped *back* to the
    ///    retained old graph — again with state transfer, so its counters
    ///    survive the round trip — and the old configuration stays
    ///    installed everywhere.
    ///
    /// Loss is bounded exactly as in the fault path: a quiesced shard
    /// swap loses nothing (queue contents and device queues transfer);
    /// packets the canary *dropped* while running a regressing config are
    /// visible in its drop gauges and reported via
    /// [`SwapReport::canary_drops`].
    ///
    /// # Errors
    ///
    /// [`Error::Check`] for an invalid config (old config untouched);
    /// [`Error::Runtime`] when no live shard exists, a shard fails to
    /// quiesce within the wedge timeout, or a worker's swap fails. If a
    /// later shard of the rollout fails, earlier shards keep the new
    /// graph while the retained configuration stays old — a retry (or a
    /// rollback swap to the old graph) converges the fleet.
    pub fn hot_swap_with(&mut self, new_graph: &RouterGraph, opts: SwapOpts) -> Result<SwapReport> {
        if let Err(e) = (self.validate)(new_graph) {
            self.swap.rejected_configs += 1;
            return Err(e);
        }
        self.supervise();
        let canary = (0..self.workers.len())
            .find(|&i| !self.workers[i].dead && !self.workers[i].is_dead())
            .ok_or_else(|| Error::runtime("hot swap: no live shard to canary"))?;
        let new_arc = Arc::new(new_graph.clone());

        // Phase 1: quiesce and swap the canary.
        self.quiesce_shard(canary)?;
        let before = self.gauge_snapshot();
        let mut report = self.swap_shard(canary, &new_arc)?;
        report.canary_shard = Some(canary);

        // Phase 2: the canary window, over whatever traffic the caller
        // has buffered. Non-canary shards process their share under the
        // old configuration and serve as the comparison baseline.
        let start_pkts = before[canary].map_or(0, |(_, p)| p);
        self.pump_window(canary, opts.canary_window, start_pkts);
        let after = self.gauge_snapshot();

        let (canary_drops, canary_pkts) = match (before[canary], after[canary]) {
            (Some((bd, bp)), Some((ad, ap))) => (ad.saturating_sub(bd), ap.saturating_sub(bp)),
            _ => (0, 0),
        };
        let mut surv_drops = 0u64;
        let mut surv_pkts = 0u64;
        for i in 0..self.workers.len() {
            if i == canary {
                continue;
            }
            if let (Some((bd, bp)), Some((ad, ap))) = (before[i], after[i]) {
                surv_drops += ad.saturating_sub(bd);
                surv_pkts += ap.saturating_sub(bp);
            }
        }
        let canary_rate = if canary_pkts > 0 {
            canary_drops as f64 / canary_pkts as f64
        } else {
            0.0
        };
        let surv_rate = if surv_pkts > 0 {
            surv_drops as f64 / surv_pkts as f64
        } else {
            0.0
        };
        let regressed = canary_pkts > 0 && canary_rate > surv_rate + opts.drop_margin;

        if regressed {
            // Auto-rollback: drain what the canary still holds under the
            // regressing config, measure the full faulty-regime drop
            // delta, then swap it back to the retained old graph.
            self.swap.canary_failures += 1;
            self.quiesce_shard(canary)?;
            let final_snap = self.gauge_snapshot();
            let old = read_retained(&self.retained);
            let rb = self.swap_shard(canary, &old)?;
            report.packets_transferred += rb.packets_transferred;
            report.packets_dropped += rb.packets_dropped;
            report.swapped_shards = 0;
            report.rolled_back = true;
            if let (Some((bd, bp)), Some((fd, fp))) = (before[canary], final_snap[canary]) {
                report.canary_drops = fd.saturating_sub(bd);
                report.canary_packets = fp.saturating_sub(bp);
            }
            self.swap.rollbacks += 1;
            self.swap.packets_transferred += report.packets_transferred;
            return Ok(report);
        }

        // Phase 3: roll the remaining live shards and retain the new
        // graph (restarts now rebuild it).
        report.canary_drops = canary_drops;
        report.canary_packets = canary_pkts;
        for i in 0..self.workers.len() {
            if i == canary || self.workers[i].dead || self.workers[i].is_dead() {
                continue;
            }
            self.quiesce_shard(i)?;
            let r = self.swap_shard(i, &new_arc)?;
            report.packets_transferred += r.packets_transferred;
            report.packets_dropped += r.packets_dropped;
            report.swapped_shards += 1;
        }
        match self.retained.write() {
            Ok(mut g) => *g = Arc::clone(&new_arc),
            Err(mut p) => **p.get_mut() = Arc::clone(&new_arc),
        }
        self.swap.swaps += 1;
        self.swap.packets_transferred += report.packets_transferred;
        Ok(report)
    }

    /// Waits (bounded) for one live shard to finish everything handed to
    /// it, without handing it anything new; other shards' pending traffic
    /// stays buffered too, but TX keeps draining.
    fn quiesce_shard(&mut self, shard: usize) -> Result<()> {
        let deadline = Instant::now() + self.wedge_timeout;
        let mut backoff = Backoff::new(self.backoff_spins);
        loop {
            self.collect();
            self.supervise();
            if self.workers[shard].dead || self.workers[shard].is_dead() {
                return Err(Error::runtime(format!(
                    "hot swap: shard {shard} died while quiescing"
                )));
            }
            if self.workers[shard].is_idle() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(Error::runtime(format!(
                    "hot swap: shard {shard} did not quiesce within {:?}",
                    self.wedge_timeout
                )));
            }
            backoff.snooze();
        }
    }

    /// Asks one worker to hot-swap its engine (it must be quiesced).
    fn swap_shard(&mut self, shard: usize, graph: &Arc<RouterGraph>) -> Result<SwapReport> {
        match self.workers[shard].query(Ctrl::Swap(Arc::clone(graph)))? {
            CtrlReply::Swapped(r) => r,
            _ => Err(Error::runtime(format!(
                "shard {shard}: unexpected control reply to swap"
            ))),
        }
    }

    /// Per-shard `(total_drops, completed_packets)` snapshot; `None` for
    /// shards that are dead or unreachable.
    fn gauge_snapshot(&self) -> Vec<Option<(u64, u64)>> {
        self.workers
            .iter()
            .map(|w| {
                if w.dead || w.is_dead() {
                    return None;
                }
                match w.query(Ctrl::DropGauge) {
                    Ok(CtrlReply::Value(d)) => {
                        Some((d, w.shared.completed_pkts.load(Ordering::Acquire)))
                    }
                    _ => None,
                }
            })
            .collect()
    }

    /// Hands buffered traffic to the shards and pumps until the canary
    /// has processed `window` packets beyond `start_pkts`, everything
    /// drains, or the wedge timeout passes.
    fn pump_window(&mut self, canary: usize, window: u64, start_pkts: u64) {
        let deadline = Instant::now() + self.wedge_timeout;
        let mut backoff = Backoff::new(self.backoff_spins);
        loop {
            self.flush();
            self.collect();
            let canary_pkts = self.workers[canary]
                .shared
                .completed_pkts
                .load(Ordering::Acquire)
                .saturating_sub(start_pkts);
            let idle =
                self.workers.iter().all(Worker::is_idle) && self.pending.iter().all(Vec::is_empty);
            if canary_pkts >= window || idle || Instant::now() >= deadline {
                return;
            }
            backoff.snooze();
        }
    }

    /// Looks up a device id by name (same table every shard uses).
    pub fn device_id(&self, name: &str) -> Option<DeviceId> {
        self.devices.iter().position(|d| d == name).map(DeviceId)
    }

    /// Device names in id order.
    pub fn device_names(&self) -> &[String] {
        &self.devices
    }

    /// The shard a frame received on `dev` steers to when every shard is
    /// live (exposed for tests and the core-scaling benchmark, which
    /// pre-partitions traces with the very same function).
    pub fn shard_for(&self, frame: &[u8], dev: DeviceId) -> usize {
        self.steer.shard_for(frame, dev)
    }

    /// Steers a packet to its (live) shard and buffers it for injection
    /// on `dev`. Call [`ParallelRouter::flush`] (or
    /// [`ParallelRouter::run_until_idle`]) to hand buffered bursts to
    /// the workers. If no live shard remains the packet is dropped and
    /// counted in [`FaultGauges::no_live_shard_drops`].
    pub fn inject(&mut self, dev: DeviceId, p: Packet) {
        let Some(shard) = self.steer.live_shard_for(p.data(), dev) else {
            self.faults.no_live_shard_drops += 1;
            p.recycle();
            return;
        };
        let groups = &mut self.pending[shard];
        match groups.last_mut() {
            Some((d, batch)) if *d == dev && batch.len() < self.burst => batch.push(p),
            _ => {
                let mut batch = self.storage.pop().unwrap_or_default();
                batch.push(p);
                groups.push((dev, batch));
            }
        }
    }

    /// Enqueues every buffered burst onto its shard's ring, spinning
    /// with backpressure (and draining TX output) while rings are full,
    /// and supervising worker health while blocked. Returns the number
    /// of packets collected into the TX banks while waiting for ring
    /// space.
    ///
    /// If a live worker wedges (zero progress for the configured
    /// `wedge_timeout`), this returns early with the packets collected
    /// so far; un-handed bursts stay buffered. Use
    /// [`ParallelRouter::try_flush`] to observe the timeout as an error.
    pub fn flush(&mut self) -> usize {
        self.pump(false).0
    }

    /// Like [`ParallelRouter::flush`], but reports a wedged router.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when injection made no progress for the
    /// configured `wedge_timeout` (a live worker stopped consuming and
    /// its ring is full — backpressure timeout).
    pub fn try_flush(&mut self) -> Result<usize> {
        let (collected, r) = self.pump(false);
        r.map(|()| collected)
    }

    /// Drains every worker's outbound ring into the merged TX banks;
    /// returns how many packets arrived.
    pub fn collect(&mut self) -> usize {
        let mut moved = 0;
        let mut items: Vec<ShardItem> = Vec::new();
        for w in &mut self.workers {
            w.from_worker.pop_batch(usize::MAX, &mut items);
            for (dev, mut batch) in items.drain(..) {
                moved += batch.len();
                self.tx[dev.0].extend(batch.drain());
                if self.storage.len() < 64 {
                    self.storage.push(batch);
                }
            }
        }
        moved
    }

    /// Flushes buffered injections and busy-polls (with backoff) until
    /// every live shard has processed everything handed to it and all TX
    /// output has been collected, supervising worker health along the
    /// way. Returns the number of packets that arrived in the TX banks
    /// during this call.
    ///
    /// This is the sharded counterpart of [`Router::run_until_idle`].
    /// If a live worker wedges, returns early with what was collected;
    /// use [`ParallelRouter::try_run_until_idle`] to observe the timeout
    /// as an error.
    pub fn run_until_idle(&mut self) -> usize {
        self.pump(true).0
    }

    /// Like [`ParallelRouter::run_until_idle`], but reports a wedged
    /// router.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when no progress was made for the configured
    /// `wedge_timeout` while work was still outstanding.
    pub fn try_run_until_idle(&mut self) -> Result<usize> {
        let (collected, r) = self.pump(true);
        r.map(|()| collected)
    }

    /// The shared injection/collection engine. Pushes pending bursts,
    /// drains TX, supervises health when unproductive, and (for
    /// `until_idle`) waits for every live worker to finish. Returns the
    /// packets collected plus `Err` if progress stalled past the wedge
    /// timeout.
    fn pump(&mut self, until_idle: bool) -> (usize, Result<()>) {
        let mut collected = 0;
        let mut backoff = Backoff::new(self.backoff_spins);
        let mut last_progress = Instant::now();
        // One cheap health sweep per burst of work — faults that occurred
        // since the last call are handled before new packets commit to a
        // dead shard's ring.
        self.supervise();
        loop {
            let mut progressed = false;
            // Hand buffered bursts to their shards' rings.
            let mut outstanding = 0usize;
            for shard in 0..self.workers.len() {
                if self.pending[shard].is_empty() {
                    continue;
                }
                if self.workers[shard].dead {
                    // Death detected mid-loop; supervise() re-steers.
                    outstanding += self.pending[shard].len();
                    continue;
                }
                if self.workers[shard].to_worker.is_full() {
                    outstanding += self.pending[shard].len();
                    continue;
                }
                let mut groups = std::mem::take(&mut self.pending[shard]);
                let before_pkts: usize = groups.iter().map(|(_, b)| b.len()).sum();
                let n = self.workers[shard].to_worker.push_batch(&mut groups);
                let after_pkts: usize = groups.iter().map(|(_, b)| b.len()).sum();
                self.workers[shard].enqueued_batches += n as u64;
                self.workers[shard].enqueued_pkts += (before_pkts - after_pkts) as u64;
                if n > 0 {
                    progressed = true;
                }
                outstanding += groups.len();
                self.pending[shard] = groups;
            }
            let got = self.collect();
            collected += got;
            if got > 0 {
                progressed = true;
            }
            // Done?
            if outstanding == 0 {
                if !until_idle {
                    return (collected, Ok(()));
                }
                if self.workers.iter().all(Worker::is_idle) {
                    // Workers are done; one final sweep picks up anything
                    // published between the last collect and the idle
                    // check.
                    collected += self.collect();
                    return (collected, Ok(()));
                }
            }
            if progressed {
                last_progress = Instant::now();
                backoff.reset();
                continue;
            }
            // Unproductive poll: the cheap per-burst health-word check.
            if self.supervise() {
                last_progress = Instant::now();
                continue;
            }
            if last_progress.elapsed() >= self.wedge_timeout {
                return (
                    collected,
                    Err(Error::runtime(format!(
                        "backpressure timeout: no progress for {:?} with work outstanding \
                         (a worker shard appears wedged)",
                        self.wedge_timeout
                    ))),
                );
            }
            backoff.snooze();
        }
    }

    /// Scans worker health words and handles any newly dead shard:
    /// salvage, account, recover (restart or degrade), re-steer.
    /// Returns `true` if a fault was handled.
    fn supervise(&mut self) -> bool {
        let mut handled = false;
        for i in 0..self.workers.len() {
            if !self.workers[i].dead && self.workers[i].is_dead() {
                self.handle_dead_shard(i);
                handled = true;
            }
        }
        handled
    }

    /// The supervisor's fault path for one dead shard.
    fn handle_dead_shard(&mut self, shard: usize) {
        self.faults.shard_deaths += 1;
        self.steer.mark_dead(shard);
        self.workers[shard].dead = true;

        // Salvage: everything still in the inbound ring (the dead
        // consumer is inert, so reclaiming through the producer side is
        // sound), every published TX burst in the outbound ring, and
        // every not-yet-enqueued pending burst, in FIFO order.
        let mut salvaged: Vec<ShardItem> = Vec::new();
        self.workers[shard].to_worker.reclaim(&mut salvaged);
        let ring_pkts: u64 = salvaged.iter().map(|(_, b)| b.len() as u64).sum();
        let mut published: Vec<ShardItem> = Vec::new();
        self.workers[shard]
            .from_worker
            .pop_batch(usize::MAX, &mut published);
        for (dev, mut batch) in published {
            self.tx[dev.0].extend(batch.drain());
            if self.storage.len() < 64 {
                self.storage.push(batch);
            }
        }
        salvaged.append(&mut self.pending[shard]);
        let salvaged_pkts: u64 = salvaged.iter().map(|(_, b)| b.len() as u64).sum();

        // Account the irrecoverable loss: packets handed to the worker
        // that it neither completed nor left in the ring were inside the
        // engine when it died.
        let w = &mut self.workers[shard];
        let completed_b = w.shared.completed_batches.load(Ordering::Acquire);
        let completed_p = w.shared.completed_pkts.load(Ordering::Acquire);
        let lost = w
            .enqueued_pkts
            .saturating_sub(completed_p)
            .saturating_sub(ring_pkts);
        self.faults.lost_packets += lost;
        self.faults.reclaimed_packets += salvaged_pkts;
        // Reconcile the dead worker's books so it reads as idle.
        w.enqueued_batches = completed_b;
        w.enqueued_pkts = completed_p;

        // Recover.
        let restart_budget = match self.recovery {
            Recovery::Restart { max_per_shard } => max_per_shard,
            Recovery::Degrade => 0,
        };
        let mut restarted = false;
        if self.workers[shard].restarts < restart_budget {
            match (self.make_worker)(shard) {
                Ok(mut fresh) => {
                    fresh.restarts = self.workers[shard].restarts + 1;
                    let old = std::mem::replace(&mut self.workers[shard], fresh);
                    self.graveyard.push(old);
                    self.steer.mark_live(shard);
                    self.faults.restarts += 1;
                    restarted = true;
                }
                Err(_) => {
                    // Could not spawn a replacement; degrade instead.
                }
            }
        }
        if !restarted {
            self.faults.degraded_entries += 1;
        }

        // Re-inject the salvaged packets through the updated steering:
        // back to the restarted shard, or re-homed across survivors.
        for (dev, mut batch) in salvaged {
            for p in batch.drain() {
                self.inject(dev, p);
            }
            if self.storage.len() < 64 {
                self.storage.push(batch);
            }
        }
    }

    /// Health snapshot of every worker shard: `(shard, live, heartbeat,
    /// restarts)`. A live worker's heartbeat advances on every poll, so
    /// two snapshots distinguish busy from wedged.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.workers
            .iter()
            .map(|w| ShardHealth {
                shard: w.shard,
                live: !w.dead && !w.is_dead(),
                heartbeat: w.shared.heartbeat.load(Ordering::Relaxed),
                restarts: w.restarts,
            })
            .collect()
    }

    /// Pings a worker over the control plane.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when the shard index is out of range or the
    /// worker is gone/wedged.
    pub fn ping(&self, shard: usize) -> Result<()> {
        let w = self
            .workers
            .get(shard)
            .ok_or_else(|| Error::runtime(format!("no shard {shard}")))?;
        match w.query(Ctrl::Ping)? {
            CtrlReply::Pong => Ok(()),
            _ => Err(Error::runtime(format!(
                "shard {shard}: unexpected control reply to ping"
            ))),
        }
    }

    /// Number of packets transmitted on a device and collected so far.
    pub fn tx_len(&self, dev: DeviceId) -> usize {
        self.tx[dev.0].len()
    }

    /// Takes all collected TX packets for a device.
    pub fn take_tx(&mut self, dev: DeviceId) -> Vec<Packet> {
        std::mem::take(&mut self.tx[dev.0])
    }

    /// Drains collected TX packets for a device into a batch (storage
    /// stays warm, mirroring [`crate::router::DeviceBank::drain_tx_into`]).
    ///
    /// Same contract as the serial version: packets are *appended* to
    /// `into` (which need not be empty), and the return value counts only
    /// the packets appended by this call, not `into.len()`.
    pub fn drain_tx_into(&mut self, dev: DeviceId, into: &mut PacketBatch) -> usize {
        let before = into.len();
        let q = &mut self.tx[dev.0];
        let n = q.len();
        into.extend(q.drain(..));
        debug_assert_eq!(
            into.len(),
            before + n,
            "drain_tx_into must append exactly the drained packets"
        );
        n
    }

    /// Every worker that can still answer a control query: the live
    /// shards, zombies, and the graveyard (dead predecessors of
    /// restarted shards) — so merged statistics keep counting packets
    /// the dead saw.
    fn respondents(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter().chain(self.graveyard.iter())
    }

    /// Reads a named statistic from an element, summed across shards —
    /// the merged view that makes a sharded router answer like a serial
    /// one. `None` if no shard knows the element/statistic. Shards that
    /// cannot answer (gone, wedged) are skipped; use
    /// [`ParallelRouter::try_stat`] to observe those as errors.
    pub fn stat(&self, element: &str, stat: &str) -> Option<u64> {
        let mut total = None;
        for w in self.respondents() {
            if let Ok(CtrlReply::Stat(Some(v))) =
                w.query(Ctrl::Stat(element.to_owned(), stat.to_owned()))
            {
                *total.get_or_insert(0) += v;
            }
        }
        total
    }

    /// Like [`ParallelRouter::stat`], but propagates control-plane
    /// failures instead of skipping unreachable shards.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] if any shard fails to answer within
    /// [`CTRL_TIMEOUT`].
    pub fn try_stat(&self, element: &str, stat: &str) -> Result<Option<u64>> {
        let mut total = None;
        for w in self.respondents() {
            if let CtrlReply::Stat(Some(v)) =
                w.query(Ctrl::Stat(element.to_owned(), stat.to_owned()))?
            {
                *total.get_or_insert(0) += v;
            }
        }
        Ok(total)
    }

    /// Sum of a statistic across all elements of a class, across all
    /// shards (unreachable shards skipped).
    pub fn class_stat(&self, class: &str, stat: &str) -> u64 {
        self.respondents()
            .map(
                |w| match w.query(Ctrl::ClassStat(class.to_owned(), stat.to_owned())) {
                    Ok(CtrlReply::Value(v)) => v,
                    _ => 0,
                },
            )
            .sum()
    }

    /// Like [`ParallelRouter::class_stat`], but propagates control-plane
    /// failures.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] if any shard fails to answer within
    /// [`CTRL_TIMEOUT`].
    pub fn try_class_stat(&self, class: &str, stat: &str) -> Result<u64> {
        let mut total = 0;
        for w in self.respondents() {
            if let CtrlReply::Value(v) =
                w.query(Ctrl::ClassStat(class.to_owned(), stat.to_owned()))?
            {
                total += v;
            }
        }
        Ok(total)
    }

    /// Packets dropped on unconnected ports, summed across shards.
    pub fn unconnected_drops(&self) -> u64 {
        self.engine_drops().0
    }

    /// Packets dropped breaking configuration loops, summed across
    /// shards.
    pub fn reentrant_drops(&self) -> u64 {
        self.engine_drops().1
    }

    fn engine_drops(&self) -> (u64, u64) {
        let mut u = 0;
        let mut r = 0;
        for w in self.respondents() {
            if let Ok(CtrlReply::Drops {
                unconnected,
                reentrant,
            }) = w.query(Ctrl::EngineDrops)
            {
                u += unconnected;
                r += reentrant;
            }
        }
        (u, r)
    }

    /// Merged packet-pool counters of every worker thread (each shard
    /// allocates from its own thread-local pool).
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for w in self.respondents() {
            if let Ok(CtrlReply::Pool(s)) = w.query(Ctrl::PoolStats) {
                total.hits += s.hits;
                total.misses += s.misses;
                total.recycled += s.recycled;
                total.dropped += s.dropped;
            }
        }
        total
    }

    /// Resets every worker thread's packet-pool counters (benchmark
    /// warmup).
    pub fn reset_pool_stats(&self) {
        for w in self.respondents() {
            let _ = w.query(Ctrl::ResetPoolStats);
        }
    }

    /// Per-element telemetry profiles merged across shards: each worker
    /// snapshots its own engine's counters
    /// ([`Router::telemetry_profiles`]) and the control plane sums
    /// records by element name, so the merged profile reads like a
    /// serial run of the same graph. Zeroed counters unless the crate
    /// was built with the `telemetry` feature.
    pub fn telemetry_profiles(&self) -> Vec<ElementProfile> {
        let shards: Vec<Vec<ElementProfile>> = self
            .respondents()
            .filter_map(|w| match w.query(Ctrl::Telemetry) {
                Ok(CtrlReply::Telemetry(v)) => Some(v),
                _ => None,
            })
            .collect();
        telemetry::merge_profiles(&shards)
    }

    /// Runtime gauges of every worker shard, in shard order: inbound-ring
    /// occupancy high-water, backoff snoozes, and batches/packets
    /// processed. Zeroed unless built with the `telemetry` feature.
    pub fn shard_gauges(&self) -> Vec<ShardGauges> {
        self.workers
            .iter()
            .filter_map(|w| match w.query(Ctrl::Gauges) {
                Ok(CtrlReply::Gauges(mut g)) => {
                    g.shard = w.shard;
                    Some(g)
                }
                _ => None,
            })
            .collect()
    }

    /// Stops the workers and joins their threads. Equivalent to dropping
    /// the router, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Orderly, bounded teardown: signal stop, keep draining TX so no
    /// worker deadlocks against a full outbound ring, join every thread
    /// that exits within the wedge timeout (wedged threads are
    /// abandoned, never blocked on), then reclaim and recycle every
    /// packet still sitting in the rings of joined workers so pool
    /// accounting balances even after an abortive teardown.
    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        let deadline = Instant::now() + self.wedge_timeout;
        loop {
            self.collect();
            let all_finished = self
                .workers
                .iter()
                .chain(self.graveyard.iter())
                .all(|w| w.handle.as_ref().is_none_or(JoinHandle::is_finished));
            if all_finished || Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
        let mut leftovers: Vec<ShardItem> = Vec::new();
        for w in self.workers.iter_mut().chain(self.graveyard.iter_mut()) {
            if let Some(h) = w.handle.take() {
                if h.is_finished() {
                    let _ = h.join();
                    // The consumer is gone: reclaim the inbound ring.
                    w.to_worker.reclaim(&mut leftovers);
                } else {
                    // Wedged thread: abandon it (detached). Its rings may
                    // still be touched, so leave them alone.
                    w.handle = None;
                }
            }
            w.from_worker.pop_batch(usize::MAX, &mut leftovers);
        }
        // Buffered-but-never-handed bursts also recycle.
        for groups in &mut self.pending {
            leftovers.append(groups);
        }
        for (_, mut batch) in leftovers.drain(..) {
            batch.recycle_packets();
        }
        self.collect();
    }
}

impl Drop for ParallelRouter {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One row of [`ParallelRouter::shard_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Whether the worker is alive and processing.
    pub live: bool,
    /// Poll-loop heartbeat (advances while the worker is responsive).
    pub heartbeat: u64,
    /// Restarts spent on this shard slot.
    pub restarts: u32,
}

/// Per-worker configuration handed to the worker thread.
#[derive(Clone, Copy)]
struct WorkerCfg {
    shard: usize,
    batching: bool,
    burst: usize,
    backoff_spins: u32,
    ring_capacity: usize,
}

/// Creates the rings, channels, and thread for one worker shard.
fn spawn_worker<S: Slot + 'static>(
    graph: &Arc<RouterGraph>,
    cfg: WorkerCfg,
    stop: &Arc<AtomicBool>,
) -> Result<Worker> {
    let (to_worker, worker_in) = spsc::<ShardItem>(cfg.ring_capacity);
    let (worker_out, from_worker) = spsc::<ShardItem>(cfg.ring_capacity);
    let (ctrl_tx, ctrl_rx) = mpsc::channel::<Ctrl>();
    let (reply_tx, reply_rx) = mpsc::channel::<CtrlReply>();
    let shared = Arc::new(WorkerShared::default());
    let g = Arc::clone(graph);
    let stop_w = Arc::clone(stop);
    let shared_w = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name(format!("click-shard-{}", cfg.shard))
        .spawn(move || {
            worker_main::<S>(
                &g, cfg, worker_in, worker_out, ctrl_rx, reply_tx, stop_w, shared_w,
            );
        })
        .map_err(|e| Error::runtime(format!("spawning shard {}: {e}", cfg.shard)))?;
    Ok(Worker {
        shard: cfg.shard,
        to_worker,
        from_worker,
        ctrl: ctrl_tx,
        reply: reply_rx,
        enqueued_batches: 0,
        enqueued_pkts: 0,
        shared,
        restarts: 0,
        dead: false,
        handle: Some(handle),
    })
}

/// The worker thread: builds its shard's router clone and busy-polls the
/// inbound ring, forwarding each burst to quiescence and publishing TX
/// output. The packet loop runs under `catch_unwind`; on a panic the
/// worker publishes [`HEALTH_PANICKED`] and parks as a zombie that keeps
/// answering control queries (so the dead shard's statistics survive)
/// until shutdown.
#[allow(clippy::too_many_arguments)]
fn worker_main<S: Slot>(
    graph: &RouterGraph,
    cfg: WorkerCfg,
    input: RingConsumer<ShardItem>,
    output: RingProducer<ShardItem>,
    ctrl: mpsc::Receiver<Ctrl>,
    reply: mpsc::Sender<CtrlReply>,
    stop: Arc<AtomicBool>,
    shared: Arc<WorkerShared>,
) {
    // The graph was validated on the main thread; a failure here is a
    // bug, surfaced as a health-word state rather than a panic.
    shared.health.store(HEALTH_RUNNING, Ordering::Release);
    let Ok(mut router) = Router::<S>::from_graph_in_shard(graph, &Library::standard(), cfg.shard)
    else {
        shared.health.store(HEALTH_BUILD_FAILED, Ordering::Release);
        zombie_loop::<S>(
            None,
            &ShardGaugeTracker::new(cfg.shard),
            &ctrl,
            &reply,
            &stop,
            &shared,
        );
        return;
    };
    router.set_batching(cfg.batching);
    router.set_batch_burst(cfg.burst);
    let mut n_dev = router.devices.len();

    let mut backoff = Backoff::new(cfg.backoff_spins);
    let mut inbox: Vec<ShardItem> = Vec::new();
    let mut free: Vec<PacketBatch> = Vec::new();
    let mut gauges = ShardGaugeTracker::new(cfg.shard);
    loop {
        shared.heartbeat.fetch_add(1, Ordering::Relaxed);
        // Control drain. `Ctrl::Swap` is handled only here — the one
        // point with `&mut router` — so every other answer path can stay
        // read-only and simply report the shard as busy.
        while let Ok(q) = ctrl.try_recv() {
            let r = match q {
                Ctrl::Swap(g) => {
                    let outcome = router.hot_swap(&g, &Library::standard());
                    n_dev = router.devices.len();
                    CtrlReply::Swapped(outcome)
                }
                other => answer_one(&router, &gauges, other),
            };
            if reply.send(r).is_err() {
                break; // main side gone; shutdown is imminent
            }
        }
        // The gauge reads are const-folded away when telemetry is off
        // (`ENABLED` is false at compile time), keeping the poll loop
        // untouched.
        let depth = if telemetry::ENABLED { input.len() } else { 0 };
        let popped = input.pop_batch(16, &mut inbox);
        if popped > 0 {
            backoff.reset();
            if telemetry::ENABLED {
                let packets = inbox.iter().map(|(_, b)| b.len() as u64).sum();
                gauges.polled(depth, popped as u64, packets);
            }
            // Fault isolation: a panic anywhere in the element graph is
            // confined to this shard. The router lives outside the catch
            // so its statistics remain readable afterwards.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for (dev, mut batch) in inbox.drain(..) {
                    let batch_pkts = batch.len() as u64;
                    for p in batch.drain() {
                        router.devices.inject(dev, p);
                    }
                    if free.len() < 64 {
                        free.push(batch);
                    }
                    router.run_until_idle(WORKER_ROUNDS);
                    for d in 0..n_dev {
                        let dev = DeviceId(d);
                        if router.devices.tx_len(dev) == 0 {
                            continue;
                        }
                        let mut out = free.pop().unwrap_or_default();
                        router.devices.drain_tx_into(dev, &mut out);
                        push_with_backpressure(
                            &output,
                            (dev, out),
                            &router,
                            &mut gauges,
                            &ctrl,
                            &reply,
                            &stop,
                            cfg.backoff_spins,
                        );
                    }
                    shared.completed_batches.fetch_add(1, Ordering::Release);
                    shared
                        .completed_pkts
                        .fetch_add(batch_pkts, Ordering::Release);
                }
            }));
            if outcome.is_err() {
                // Unprocessed inbox items are part of the in-flight loss
                // the supervisor accounts; drop their buffers here.
                inbox.clear();
                shared.health.store(HEALTH_PANICKED, Ordering::Release);
                zombie_loop(Some(&router), &gauges, &ctrl, &reply, &stop, &shared);
                return;
            }
        } else if stop.load(Ordering::Acquire) && input.is_empty() {
            shared.health.store(HEALTH_EXITED, Ordering::Release);
            return;
        } else {
            gauges.snoozed();
            backoff.snooze();
        }
    }
}

/// The parked state of a dead worker: never touches packets again, but
/// keeps the control plane honest — statistics queries against the dead
/// shard's router still answer (stats salvage), and a build-failure
/// zombie answers [`CtrlReply::Gone`]. Exits when the runtime shuts
/// down or the main side drops the control channel.
fn zombie_loop<S: Slot>(
    router: Option<&Router<S>>,
    gauges: &ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
    stop: &AtomicBool,
    shared: &WorkerShared,
) {
    loop {
        shared.heartbeat.fetch_add(1, Ordering::Relaxed);
        match router {
            Some(r) => answer_ctrl(r, gauges, ctrl, reply),
            None => {
                while let Ok(_q) = ctrl.try_recv() {
                    if reply.send(CtrlReply::Gone).is_err() {
                        break;
                    }
                }
            }
        }
        if stop.load(Ordering::Acquire) {
            shared.health.store(HEALTH_EXITED, Ordering::Release);
            return;
        }
        // Nothing to do but answer queries; sleep instead of spinning.
        match ctrl.recv_timeout(Duration::from_millis(1)) {
            Ok(q) => {
                let r = match router {
                    Some(rt) => answer_one(rt, gauges, q),
                    None => CtrlReply::Gone,
                };
                if reply.send(r).is_err() {
                    shared.health.store(HEALTH_EXITED, Ordering::Release);
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                shared.health.store(HEALTH_EXITED, Ordering::Release);
                return;
            }
        }
    }
}

/// Publishes one TX burst, spinning under backpressure. Keeps answering
/// control queries while blocked (so a stat query can never deadlock
/// against a full ring), and abandons the burst if the runtime is
/// shutting down.
#[allow(clippy::too_many_arguments)]
fn push_with_backpressure<S: Slot>(
    output: &RingProducer<ShardItem>,
    mut item: ShardItem,
    router: &Router<S>,
    gauges: &mut ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
    stop: &AtomicBool,
    backoff_spins: u32,
) {
    let mut backoff = Backoff::new(backoff_spins);
    loop {
        match output.try_push(item) {
            Ok(()) => return,
            Err(back) => item = back,
        }
        if stop.load(Ordering::Acquire) {
            item.1.recycle_packets();
            return;
        }
        answer_ctrl(router, gauges, ctrl, reply);
        gauges.snoozed();
        backoff.snooze();
    }
}

/// Answers one control query against this shard's router.
fn answer_one<S: Slot>(router: &Router<S>, gauges: &ShardGaugeTracker, q: Ctrl) -> CtrlReply {
    match q {
        Ctrl::Ping => CtrlReply::Pong,
        Ctrl::Stat(elem, stat) => CtrlReply::Stat(router.stat(&elem, &stat)),
        Ctrl::ClassStat(class, stat) => CtrlReply::Value(router.class_stat(&class, &stat)),
        Ctrl::EngineDrops => CtrlReply::Drops {
            unconnected: router.unconnected_drops(),
            reentrant: router.reentrant_drops(),
        },
        Ctrl::PoolStats => CtrlReply::Pool(crate::packet::pool_stats()),
        Ctrl::ResetPoolStats => {
            crate::packet::reset_pool_stats();
            CtrlReply::Value(0)
        }
        Ctrl::Telemetry => CtrlReply::Telemetry(router.telemetry_profiles()),
        Ctrl::Gauges => CtrlReply::Gauges(gauges.snapshot()),
        Ctrl::DropGauge => CtrlReply::Value(router.total_drops()),
        // A swap needs `&mut Router`; only the worker's top-of-loop has
        // it. Anywhere else (zombies, backpressure stalls) the shard is
        // by definition not quiesced, so refuse.
        Ctrl::Swap(_) => CtrlReply::Swapped(Err(Error::runtime(
            "shard busy: hot swap requires a quiesced worker",
        ))),
    }
}

/// Answers every pending control query against this shard's router.
fn answer_ctrl<S: Slot>(
    router: &Router<S>,
    gauges: &ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
) {
    while let Ok(q) = ctrl.try_recv() {
        if reply.send(answer_one(router, gauges, q)).is_err() {
            return; // main side gone; shutdown is imminent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::headers::build_udp_packet;
    use click_core::lang::read_config;

    fn counter_graph() -> RouterGraph {
        read_config("FromDevice(in0) -> c :: Counter -> Queue(4096) -> ToDevice(out0);").unwrap()
    }

    fn udp(sport: u16, seq: u8) -> Packet {
        let mut p = build_udp_packet([1; 6], [2; 6], 0x0A000002, 0x0A000102, sport, 9, 18, 64);
        let n = p.len();
        p.data_mut()[n - 1] = seq;
        p
    }

    #[test]
    fn single_shard_forwards_everything() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(1)).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for i in 0..40u8 {
            r.inject(in0, udp(1000 + u16::from(i % 8), i));
        }
        let got = r.run_until_idle();
        assert_eq!(got, 40);
        assert_eq!(r.tx_len(out0), 40);
        assert_eq!(r.stat("c", "count"), Some(40));
        assert_eq!(r.class_stat("Counter", "count"), 40);
        assert_eq!(
            r.fault_gauges(),
            FaultGauges {
                live_shards: 1,
                shards: 1,
                ..FaultGauges::default()
            }
        );
        r.shutdown();
    }

    #[test]
    fn shards_preserve_per_flow_order() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(4).batched(8))
                .unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        // 8 flows × 16 packets, interleaved.
        for seq in 0..16u8 {
            for flow in 0..8u16 {
                r.inject(in0, udp(2000 + flow, seq));
            }
        }
        assert_eq!(r.run_until_idle(), 128);
        let tx = r.take_tx(out0);
        assert_eq!(tx.len(), 128);
        // Within each flow (source port), sequence numbers stay ordered.
        for flow in 0..8u16 {
            let seqs: Vec<u8> = tx
                .iter()
                .filter(|p| crate::steer::flow_key(p.data()).unwrap().3 == 2000 + flow)
                .map(|p| p.data()[p.len() - 1])
                .collect();
            assert_eq!(seqs, (0..16u8).collect::<Vec<_>>(), "flow {flow} reordered");
        }
        assert_eq!(r.class_stat("Counter", "count"), 128);
        assert_eq!(r.unconnected_drops(), 0);
    }

    #[test]
    fn workers_use_their_own_packet_pools() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2).batched(8))
                .unwrap();
        let in0 = r.device_id("in0").unwrap();
        r.reset_pool_stats();
        for i in 0..32u8 {
            r.inject(in0, udp(3000 + u16::from(i), 0));
        }
        r.run_until_idle();
        // The workers did the forwarding, so their (merged) pools saw the
        // traffic; exact counts depend on engine internals, but the
        // counters must be alive and shard-local.
        let _ = r.pool_stats();
        r.shutdown();
    }

    #[test]
    fn backpressure_survives_tiny_rings() {
        let g = counter_graph();
        let mut opts = ParallelOpts::new(2).batched(4);
        opts.ring_capacity = 2; // force both rings to fill repeatedly
        let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for i in 0..200u16 {
            r.inject(in0, udp(4000 + (i % 16), (i / 16) as u8));
        }
        assert_eq!(r.run_until_idle(), 200, "no drops under backpressure");
        assert_eq!(r.tx_len(out0), 200);
    }

    #[test]
    fn invalid_config_errors_before_spawning() {
        let g = read_config("FromDevice(a) -> ToDevice(b);").unwrap();
        assert!(ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2)).is_err());
    }

    #[test]
    fn absurd_shard_counts_error() {
        let g = counter_graph();
        assert!(ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(0)).is_err());
        assert!(
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(129)).is_err()
        );
    }

    #[test]
    fn drop_joins_worker_threads() {
        let g = counter_graph();
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(3)).unwrap();
        drop(r); // must not hang or leak spinning threads
    }

    #[test]
    fn ping_and_health_report_live_workers() {
        let g = counter_graph();
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2)).unwrap();
        r.ping(0).unwrap();
        r.ping(1).unwrap();
        assert!(r.ping(2).is_err(), "no such shard");
        let health = r.shard_health();
        assert_eq!(health.len(), 2);
        assert!(health.iter().all(|h| h.live && h.restarts == 0));
        r.shutdown();
    }
}
