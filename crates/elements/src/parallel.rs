//! The multi-core router runtime: N independent shards of the compiled
//! element graph, RSS flow steering, bounded ring queues — and a
//! supervisor that keeps the router forwarding when a shard dies.
//!
//! The paper's runtime is a "constantly-active kernel thread" — one core
//! runs the whole element graph, and any element misbehavior takes the
//! whole router down. [`ParallelRouter`] scales that model across cores
//! the way production packet processors (and Click's own SMP successor)
//! do, and adds the fault-isolation discipline they need:
//!
//! * **Per-shard graph clones.** Every worker thread builds its *own*
//!   [`Router<S>`] from the same configuration graph. Nothing on the
//!   packet path is shared between shards — no locks, no cache-line
//!   ping-pong — and each worker thread gets its own thread-local
//!   packet pool ([`crate::packet`]) and its own element statistics.
//!   Graph-level optimizations (`fastclassifier`, `devirtualize`,
//!   `xform`) compose with sharding unchanged: each shard runs the same
//!   optimized graph, just on a subset of flows.
//! * **RSS flow steering.** The injection side hashes each frame's IP
//!   5-tuple ([`crate::steer`]) to pick a shard, so all packets of one
//!   flow traverse one shard in FIFO order — per-flow ordering is
//!   preserved without cross-core synchronization. Non-IP frames steer
//!   by receiving device.
//! * **Bounded SPSC rings.** [`PacketBatch`]es travel to workers and
//!   back on fixed-capacity single-producer/single-consumer rings
//!   ([`crate::ring`]): batched enqueue/dequeue, busy-poll with a
//!   backoff knob, and backpressure instead of drops when a shard falls
//!   behind.
//!
//! # Fault isolation and supervision
//!
//! Each worker wraps its packet-processing loop in
//! [`std::panic::catch_unwind`]: a panic inside an element (a bug, a
//! malformed frame tripping an assertion, or a deliberate
//! `FaultInject(PANIC …)` chaos element) is confined to that shard. The
//! panicked worker publishes its death through a *health word* (an
//! atomic the supervisor reads on every unproductive poll — never on the
//! per-packet fast path) and then parks as a **zombie**: its thread
//! stays alive answering control-plane queries, so the dead shard's
//! element statistics and telemetry remain readable until shutdown.
//!
//! The supervisor — the main thread, inside [`ParallelRouter::flush`] /
//! [`ParallelRouter::run_until_idle`] — reacts to a death by:
//!
//! 1. salvaging every in-flight batch from the dead shard's rings
//!    ([`crate::ring::RingProducer::reclaim`] is sound once the consumer
//!    is inert) and accounting the irrecoverable remainder (packets that
//!    were *inside* the engine when it died) in [`FaultGauges`];
//! 2. either **restarting** the shard — a fresh worker thread built from
//!    the retained [`RouterGraph`] ([`Recovery::Restart`]) — or entering
//!    **degraded mode** ([`Recovery::Degrade`]): the steering stage's
//!    live-shard mask ([`crate::steer::RssSteering::mark_dead`])
//!    deterministically re-homes the dead shard's flows across the
//!    survivors, while flows homed on live shards keep their original
//!    assignment (and therefore their per-flow order);
//! 3. re-injecting the salvaged packets in FIFO order through the
//!    (updated) steering stage.
//!
//! The control plane is typed-error clean: queries honor
//! [`CTRL_TIMEOUT`] and return [`Error::Runtime`] instead of panicking
//! when a worker is gone or wedged, injection into a wedged router
//! reports a backpressure timeout instead of spinning forever
//! ([`ParallelRouter::try_flush`]), and `Drop` performs a bounded,
//! orderly drain.
//!
//! Statistics aggregate through a control channel:
//! [`ParallelRouter::stat`] / [`ParallelRouter::class_stat`] query every
//! worker (including zombies and restarted shards' predecessors) and
//! sum, so a sharded router answers exactly like a serial [`Router`] and
//! equivalence tests run unchanged.

use crate::batch::PacketBatch;
use crate::element::DeviceId;
use crate::packet::{Packet, PoolStats};
use crate::persist::{
    Checkpoint, CheckpointEngine, DeviceRecord, ElementRecord, EngineSnapshot, PacketRecord,
    RestoreStats,
};
use crate::ring::{spsc, AdaptiveBurst, Backoff, RingConsumer, RingProducer};
use crate::router::{Router, Slot};
use crate::steer::{steerer_for, FlowHashCache, RssSteering, SharedLiveMask, MAX_SHARDS};
use crate::swap::SwapReport;
use crate::telemetry::{
    self, ElementProfile, FaultGauges, ShardGaugeTracker, ShardGauges, SteerGaugeTracker,
    SteerGauges, SwapGauges,
};
use click_core::error::{Error, Result};
use click_core::graph::RouterGraph;
use click_core::registry::Library;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

/// One unit of ring transfer: a burst of packets for (or from) one
/// simulated device.
type ShardItem = (DeviceId, PacketBatch);

/// A boxed configuration validator: builds a prototype router on the
/// calling thread so a hot swap rejects a bad config before any worker
/// sees it (captures the engine type `S`).
type Validator = Box<dyn Fn(&RouterGraph) -> Result<()>>;

/// A boxed replacement-worker spawner (captures the retained graph, the
/// worker config, and the engine type `S`): returns the fresh worker
/// plus the per-steerer inbound producers for its shard slot, in
/// steerer order.
type MakeWorker = Box<dyn Fn(usize) -> Result<(Worker, Vec<RingProducer<ShardItem>>)>>;

/// Task-scheduling budget a worker grants each ring item; generous —
/// one item carries at most a burst of packets.
const WORKER_ROUNDS: usize = 100_000;

/// How long a control query may wait on a worker before the runtime
/// declares it wedged and returns [`Error::Runtime`].
pub const CTRL_TIMEOUT: Duration = Duration::from_secs(10);

/// Upper bound on parallel steerer threads.
pub const MAX_STEERERS: usize = 16;

/// Worker/steerer dequeue burst floor (items per ring poll). The
/// adaptive controller grows from here under load.
const DEQUEUE_BURST: usize = 16;

/// Nap cap used when `pin_cores` asks for a latency-biased, the-core-
/// is-ours pacing profile (see [`ParallelOpts::pin_cores`]).
const PINNED_NAP_CAP: Duration = Duration::from_micros(64);

/// Spin-budget ceiling applied to every ring endpoint when the
/// configured threads (shards + steerers + the supervisor) oversubscribe
/// the host's cores. An idle endpoint that spins or yields on an
/// oversubscribed host steals timeslices from whichever thread actually
/// holds work, so the runtime clamps the budget and lets idle threads
/// escalate to napping almost immediately. `pin_cores` (an explicit
/// claim that each shard owns a core) disables the clamp.
const OVERSUB_SPINS: u32 = 8;

/// The endpoint spin budget after accounting for host oversubscription
/// (see [`OVERSUB_SPINS`]).
fn effective_spins(opts: &ParallelOpts) -> u32 {
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    if !opts.pin_cores && opts.shards + opts.steerers + 1 > host {
        opts.backoff_spins.min(OVERSUB_SPINS)
    } else {
        opts.backoff_spins
    }
}

/// Health-word states a worker publishes (see [`WorkerShared`]).
const HEALTH_RUNNING: u8 = 0;
/// The worker's packet loop panicked; the thread is parked as a zombie
/// that still answers control queries.
const HEALTH_PANICKED: u8 = 1;
/// The worker exited cleanly (shutdown).
const HEALTH_EXITED: u8 = 2;
/// The worker could not build its router clone (cannot normally happen:
/// the graph was validated on the main thread).
const HEALTH_BUILD_FAILED: u8 = 3;

/// What the supervisor does when a worker shard dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Enter degraded mode: mark the shard dead in the steering mask and
    /// spread its flows across the survivors. The default.
    Degrade,
    /// Restart the shard from the retained configuration graph, at most
    /// `max_per_shard` times per shard; further deaths degrade.
    Restart {
        /// Restart budget per shard before falling back to degradation.
        max_per_shard: u32,
    },
}

/// Configuration knobs of the sharded runtime.
#[derive(Debug, Clone)]
pub struct ParallelOpts {
    /// Number of worker shards (graph clones / threads).
    pub shards: usize,
    /// Run each shard's engine in batched (vector) transfer mode.
    pub batching: bool,
    /// Packets per transfer batch: the injection side groups frames into
    /// bursts of this size, and batching shards use it as their engine
    /// burst ([`Router::set_batch_burst`]).
    pub burst: usize,
    /// Capacity (in batches) of each SPSC ring.
    pub ring_capacity: usize,
    /// Busy-poll backoff knob: how many times an idle endpoint spins
    /// before it starts yielding and napping ([`Backoff`]). When the
    /// configured threads oversubscribe the host's cores the runtime
    /// clamps this to a small ceiling so idle endpoints nap instead of
    /// stealing timeslices from busy ones; `pin_cores` disables the
    /// clamp.
    pub backoff_spins: u32,
    /// Number of parallel steerer threads. `0` (the default) steers on
    /// the injection thread exactly as before; `N ≥ 1` moves
    /// classification onto N dedicated threads that partition the input
    /// per flow ([`crate::steer::steerer_for`]) and push to the shard
    /// rings concurrently, so the steering stage stops serializing the
    /// front of the pipeline.
    pub steerers: usize,
    /// Grow/shrink the enqueue and dequeue bursts per ring from observed
    /// occupancy ([`AdaptiveBurst`]) instead of using the fixed `burst`.
    /// On by default: hot rings amortize hand-off over bigger bursts,
    /// cold rings fall back to the configured floor.
    pub adaptive_burst: bool,
    /// Ask for per-shard core affinity. This zero-dependency safe-Rust
    /// build has no OS affinity call, so the hint cannot literally pin
    /// threads; instead it switches workers to a latency-biased backoff
    /// profile (short nap cap) that assumes each shard owns its core.
    /// Leave off when shards outnumber cores.
    pub pin_cores: bool,
    /// What to do when a worker shard dies.
    pub recovery: Recovery,
    /// How long injection may make zero progress (all target rings full,
    /// nothing arriving) before [`ParallelRouter::try_flush`] /
    /// [`ParallelRouter::try_run_until_idle`] report a backpressure
    /// timeout, and how long `Drop` waits for workers before abandoning
    /// a wedged thread.
    pub wedge_timeout: Duration,
}

impl ParallelOpts {
    /// Defaults for `shards` workers: scalar engine, device burst,
    /// 256-batch rings, 128-spin backoff, degrade-on-fault, 10 s wedge
    /// timeout.
    pub fn new(shards: usize) -> ParallelOpts {
        ParallelOpts {
            shards,
            batching: false,
            burst: crate::elements::device::BURST,
            ring_capacity: 256,
            backoff_spins: 128,
            steerers: 0,
            adaptive_burst: true,
            pin_cores: false,
            recovery: Recovery::Degrade,
            wedge_timeout: CTRL_TIMEOUT,
        }
    }

    /// Enables batched (vector) transfers inside each shard.
    pub fn batched(mut self, burst: usize) -> ParallelOpts {
        self.batching = true;
        self.burst = burst.max(1);
        self
    }

    /// Runs classification on `n` parallel steerer threads (0 = steer
    /// on the injection thread).
    pub fn with_steerers(mut self, n: usize) -> ParallelOpts {
        self.steerers = n;
        self
    }

    /// Pins enqueue/dequeue bursts at the configured `burst` instead of
    /// adapting them to ring occupancy.
    pub fn fixed_burst(mut self) -> ParallelOpts {
        self.adaptive_burst = false;
        self
    }

    /// Requests the core-affinity pacing profile (see the field docs —
    /// a behavioral hint, not an OS-level pin, in this build).
    pub fn pin_cores(mut self) -> ParallelOpts {
        self.pin_cores = true;
        self
    }

    /// Sets the SPSC ring capacity (in batches).
    pub fn with_ring_capacity(mut self, capacity: usize) -> ParallelOpts {
        self.ring_capacity = capacity.max(1);
        self
    }

    /// Sets the busy-poll spin budget of every ring endpoint.
    pub fn with_backoff_spins(mut self, spins: u32) -> ParallelOpts {
        self.backoff_spins = spins;
        self
    }

    /// Restart dead shards from the retained graph, at most `max` times
    /// per shard.
    pub fn restart_on_fault(mut self, max: u32) -> ParallelOpts {
        self.recovery = Recovery::Restart { max_per_shard: max };
        self
    }

    /// Never restart: re-steer a dead shard's flows across survivors.
    pub fn degrade_on_fault(mut self) -> ParallelOpts {
        self.recovery = Recovery::Degrade;
        self
    }

    /// Sets the zero-progress deadline for injection and shutdown.
    pub fn with_wedge_timeout(mut self, t: Duration) -> ParallelOpts {
        self.wedge_timeout = t;
        self
    }
}

/// Knobs of a canary rollout ([`ParallelRouter::hot_swap_with`]).
#[derive(Debug, Clone, Copy)]
pub struct SwapOpts {
    /// How many packets the canary shard should process under the new
    /// configuration before its drop gauge is judged. The window also
    /// ends early when the buffered traffic drains.
    pub canary_window: u64,
    /// Allowed excess in the canary's drops-per-packet rate over the
    /// surviving shards' aggregate rate. A canary whose rate exceeds
    /// `survivor_rate + drop_margin` is rolled back.
    pub drop_margin: f64,
}

impl Default for SwapOpts {
    fn default() -> SwapOpts {
        SwapOpts {
            canary_window: 256,
            drop_margin: 0.05,
        }
    }
}

/// Reads the retained configuration graph, tolerating lock poisoning
/// (the lock only ever guards an `Arc` pointer swap, so a poisoned
/// value is still intact).
fn read_retained(retained: &RwLock<Arc<RouterGraph>>) -> Arc<RouterGraph> {
    match retained.read() {
        Ok(g) => Arc::clone(&g),
        Err(p) => Arc::clone(&p.into_inner()),
    }
}

/// Control-plane queries the injection thread sends to workers. Rare and
/// cheap; the packet path never touches this channel.
enum Ctrl {
    /// Liveness probe (the control-plane heartbeat).
    Ping,
    /// Read one element's named statistic.
    Stat(String, String),
    /// Sum a statistic across all elements of a class.
    ClassStat(String, String),
    /// Read the engine drop counters.
    EngineDrops,
    /// Snapshot the worker thread's packet-pool counters.
    PoolStats,
    /// Reset the worker thread's packet-pool counters.
    ResetPoolStats,
    /// Snapshot the shard's per-element telemetry profiles.
    Telemetry,
    /// Snapshot the shard's runtime gauges (ring depth, backoff).
    Gauges,
    /// Read the shard's aggregate drop gauge
    /// ([`Router::total_drops`]) — the canary-regression signal.
    DropGauge,
    /// Hot-swap the shard's engine to this configuration graph. Only the
    /// worker's main loop (which owns `&mut Router`) performs the swap;
    /// read-only contexts answer with a busy error.
    Swap(Arc<RouterGraph>),
    /// Cut a non-destructive checkpoint snapshot of the shard's engine.
    /// Same discipline as `Swap`: only the quiesced worker's main loop
    /// (which owns `&mut Router`) answers; elsewhere it is refused.
    Snapshot,
    /// Apply checkpoint element records to the shard's engine (warm
    /// restart). Same quiesced-main-loop-only discipline as `Swap`.
    Restore(Arc<RestorePlan>),
}

/// The element records (and drop-ledger target) a warm restart hands a
/// worker shard over the control plane. Plain `Send` data — packets are
/// byte records, re-materialized on the worker thread.
struct RestorePlan {
    elements: Vec<ElementRecord>,
    target_drops: u64,
}

/// Replies to [`Ctrl`] queries.
enum CtrlReply {
    Pong,
    Stat(Option<u64>),
    Value(u64),
    Drops {
        unconnected: u64,
        reentrant: u64,
    },
    Pool(PoolStats),
    Telemetry(Vec<ElementProfile>),
    Gauges(ShardGauges),
    /// Outcome of a [`Ctrl::Swap`] request against this shard's engine.
    Swapped(Result<SwapReport>),
    /// Outcome of a [`Ctrl::Snapshot`] request.
    Snapshot(Box<Result<EngineSnapshot>>),
    /// Outcome of a [`Ctrl::Restore`] request.
    Restored(Box<Result<RestoreStats>>),
    /// The worker has no router to answer with (build failure zombie).
    Gone,
}

/// Control messages the supervisor sends a steerer thread. Like
/// [`Ctrl`], rare and off the packet path.
enum SteerCtrl {
    /// Snapshot the steerer's gauges.
    Gauges,
    /// Drain the steerer's producer ring for a (dead) shard and hand the
    /// in-flight items back. The steerer executes this itself — it is
    /// the ring's single producer, so the reclaim is race-free — and
    /// the dead-shard mask (updated *before* this message was sent)
    /// guarantees it will never push to that shard again afterwards.
    Reclaim(usize),
    /// Install a fresh producer ring (and doorbell thread) for a
    /// restarted shard.
    Replace(usize, RingProducer<ShardItem>, Thread),
}

/// Replies to [`SteerCtrl`].
enum SteerReply {
    Gauges(SteerGauges),
    Reclaimed(Vec<ShardItem>),
    Done,
}

/// State a steerer thread shares with the supervisor.
#[derive(Debug, Default)]
struct SteererShared {
    heartbeat: AtomicU64,
    /// Raw injection batches fully classified and delivered. The
    /// supervisor balances this against its own enqueue counter to
    /// detect steering-stage idleness.
    processed_batches: AtomicU64,
}

/// Per-shard counters of traffic delivered *by steerer threads* (summed
/// over steerers). The supervisor adds these to its own direct enqueue
/// counters when judging worker idleness and in-flight loss. A steerer
/// increments them only after a successful ring push, and always before
/// bumping `processed_batches` — so once the steering stage reads idle,
/// these counters are exact.
#[derive(Debug, Default)]
struct SteeredCounters {
    batches: AtomicU64,
    pkts: AtomicU64,
}

/// A parked thread's doorbell. [`Backoff::snooze`] naps with
/// `park_timeout`, so any producer that knows the consumer's thread can
/// `unpark` it after a push and end the nap the moment work arrives
/// instead of when the timer expires. Worker and steerer threads are
/// addressed directly through their [`JoinHandle`]s; the supervisor can
/// be any thread (whichever one called `pump`), so it registers itself
/// here at pump entry and workers/steerers ring this bell when they
/// publish output or completion counters.
#[derive(Debug, Default)]
struct Doorbell {
    thread: Mutex<Option<Thread>>,
}

impl Doorbell {
    /// Registers the calling thread as the bell's current owner.
    fn register(&self) {
        if let Ok(mut t) = self.thread.lock() {
            *t = Some(std::thread::current());
        }
    }

    /// Unparks the registered owner (no-op before registration). A
    /// stale ring only costs the owner one spurious poll.
    fn ring(&self) {
        let t = self.thread.lock().ok().and_then(|t| t.clone());
        if let Some(t) = t {
            t.unpark();
        }
    }
}

/// Main-thread handle to one steerer thread.
struct Steerer {
    index: usize,
    to_steerer: RingProducer<ShardItem>,
    ctrl: mpsc::Sender<SteerCtrl>,
    reply: mpsc::Receiver<SteerReply>,
    /// Raw batches handed to this steerer (main thread only writer).
    enqueued_batches: u64,
    shared: Arc<SteererShared>,
    handle: Option<JoinHandle<()>>,
}

impl Steerer {
    /// Every handed-over batch classified and delivered.
    fn is_idle(&self) -> bool {
        self.shared.processed_batches.load(Ordering::Acquire) == self.enqueued_batches
    }

    /// Rings the steerer's doorbell: cuts short a backoff nap after a
    /// push to its input ring or a control send.
    fn wake(&self) {
        if let Some(h) = &self.handle {
            h.thread().unpark();
        }
    }

    /// Sends a control message and waits (bounded) for the answer.
    fn query(&self, q: SteerCtrl) -> Result<SteerReply> {
        let idx = self.index;
        self.ctrl
            .send(q)
            .map_err(|_| Error::runtime(format!("steerer {idx}: control channel closed")))?;
        self.wake();
        match self.reply.recv_timeout(CTRL_TIMEOUT) {
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(Error::runtime(format!(
                "steerer {idx}: control query timed out after {CTRL_TIMEOUT:?}"
            ))),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(Error::runtime(format!(
                "steerer {idx}: thread exited without answering"
            ))),
        }
    }
}

/// State a worker shares with the supervisor: the health word, a
/// heartbeat the worker bumps every poll, and completion counters the
/// supervisor balances against its own enqueue counters to detect both
/// idleness and in-flight loss.
#[derive(Debug, Default)]
struct WorkerShared {
    health: AtomicU8,
    heartbeat: AtomicU64,
    completed_batches: AtomicU64,
    completed_pkts: AtomicU64,
}

/// Main-thread handle to one worker shard (or to a dead predecessor
/// retired to the graveyard, kept for its statistics).
struct Worker {
    shard: usize,
    to_worker: RingProducer<ShardItem>,
    from_worker: RingConsumer<ShardItem>,
    ctrl: mpsc::Sender<Ctrl>,
    reply: mpsc::Receiver<CtrlReply>,
    /// Batches handed to this worker (main thread is the only writer).
    enqueued_batches: u64,
    /// Packets handed to this worker.
    enqueued_pkts: u64,
    shared: Arc<WorkerShared>,
    /// Restarts already spent on this shard slot (carried across
    /// replacements so the budget is per shard, not per incarnation).
    restarts: u32,
    /// Set once the supervisor has processed this worker's death; a dead
    /// worker is skipped by injection and counts as idle.
    dead: bool,
    /// [`SteeredCounters`] values at this incarnation's start: the
    /// supervisor subtracts them so a restarted worker is not charged
    /// with its predecessor's steered traffic.
    steered_batches_base: u64,
    steered_pkts_base: u64,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    /// All handed-over batches processed (a reconciled dead worker
    /// counts as idle: the supervisor already settled its accounts).
    /// `steered_batches` is what the steerer threads delivered to this
    /// incarnation on top of the supervisor's direct enqueues.
    fn is_idle_with(&self, steered_batches: u64) -> bool {
        self.dead
            || self.shared.completed_batches.load(Ordering::Acquire)
                == self.enqueued_batches + steered_batches
    }

    /// True when the worker is no longer processing packets: it
    /// panicked, failed to build, or its thread is gone.
    fn is_dead(&self) -> bool {
        if self.dead {
            return true;
        }
        match self.shared.health.load(Ordering::Acquire) {
            HEALTH_PANICKED | HEALTH_BUILD_FAILED => true,
            HEALTH_EXITED => true,
            _ => self.handle.as_ref().is_none_or(JoinHandle::is_finished),
        }
    }

    /// Rings the worker's doorbell: cuts short a backoff nap after a
    /// push to one of its inbound rings or a control send.
    fn wake(&self) {
        if let Some(h) = &self.handle {
            h.thread().unpark();
        }
    }

    /// Sends a control query and waits (bounded) for the answer.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when the worker is gone, answers [`CtrlReply::Gone`],
    /// or does not answer within [`CTRL_TIMEOUT`].
    fn query(&self, q: Ctrl) -> Result<CtrlReply> {
        let shard = self.shard;
        self.ctrl
            .send(q)
            .map_err(|_| Error::runtime(format!("shard {shard}: control channel closed")))?;
        self.wake();
        match self.reply.recv_timeout(CTRL_TIMEOUT) {
            Ok(CtrlReply::Gone) => Err(Error::runtime(format!(
                "shard {shard}: worker has no router (build failed)"
            ))),
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(Error::runtime(format!(
                "shard {shard}: control query timed out after {CTRL_TIMEOUT:?} (worker wedged?)"
            ))),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(Error::runtime(format!(
                "shard {shard}: worker exited without answering"
            ))),
        }
    }
}

/// A router running as N independent shards on worker threads, fed
/// through RSS flow steering and watched by a supervisor. See the module
/// docs for the architecture.
///
/// # Examples
///
/// ```
/// use click_core::lang::read_config;
/// use click_elements::element::Element;
/// use click_elements::packet::Packet;
/// use click_elements::parallel::{ParallelOpts, ParallelRouter};
///
/// let graph = read_config(
///     "FromDevice(in0) -> Counter -> Queue(64) -> ToDevice(out0);",
/// )?;
/// let mut router =
///     ParallelRouter::from_graph::<Box<dyn Element>>(&graph, ParallelOpts::new(2))?;
/// let in0 = router.device_id("in0").unwrap();
/// let out0 = router.device_id("out0").unwrap();
/// router.inject(in0, Packet::new(60));
/// router.run_until_idle();
/// assert_eq!(router.tx_len(out0), 1);
/// assert_eq!(router.class_stat("Counter", "count"), 1);
/// # Ok::<(), click_core::Error>(())
/// ```
pub struct ParallelRouter {
    workers: Vec<Worker>,
    /// Dead predecessors of restarted shards, kept alive (as zombies)
    /// so their statistics stay queryable until shutdown.
    graveyard: Vec<Worker>,
    steer: RssSteering,
    /// Parallel steerer threads (empty in serial-steering mode).
    steerers: Vec<Steerer>,
    /// Live-shard mask shared with the steerer threads.
    live_mask: Arc<SharedLiveMask>,
    /// Per-shard counters of traffic the steerer threads delivered.
    steered: Arc<Vec<SteeredCounters>>,
    /// Packets the steerer threads dropped for want of a live shard.
    steer_drops: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    /// Device names; a device's id is its index.
    devices: Vec<String>,
    /// Per-shard injection buffers, grouped into (device, burst) items
    /// (serial-steering mode, and fault-path re-injection).
    pending: Vec<Vec<ShardItem>>,
    /// Per-steerer injection buffers of raw, unclassified bursts
    /// (parallel-steering mode).
    pending_steer: Vec<Vec<ShardItem>>,
    /// Open-batch index per `(shard, device)` into `pending`: traffic
    /// that interleaves devices still fills device-coherent bursts
    /// instead of cutting a new batch on every device switch.
    /// Invalidated whenever the shard's groups are flushed or salvaged.
    pending_open: Vec<Vec<Option<usize>>>,
    /// Open-batch index per `(steerer, device)` into `pending_steer`
    /// (same role as `pending_open` for the raw pre-partition buffers).
    pending_steer_open: Vec<Vec<Option<usize>>>,
    /// Collected TX packets per device.
    tx: Vec<Vec<Packet>>,
    /// Reusable empty batch storage for injection grouping.
    storage: Vec<PacketBatch>,
    burst: usize,
    /// Per-shard adaptive enqueue burst (pinned at `burst` when
    /// adaptive sizing is off).
    burst_ctl: Vec<AdaptiveBurst>,
    /// Serial-steering-mode ingress gauges (classification self-time on
    /// the injection thread). Steerer threads track their own.
    serial_steer: SteerGaugeTracker,
    /// Memoized flow hashes for the serial-steering inject path (each
    /// steerer thread owns its own cache).
    steer_cache: FlowHashCache,
    /// The supervisor's doorbell: workers and steerers ring it when they
    /// publish output, so pump loops wake on delivery instead of on nap
    /// expiry.
    bell: Arc<Doorbell>,
    backoff_spins: u32,
    recovery: Recovery,
    wedge_timeout: Duration,
    faults: FaultGauges,
    swap: SwapGauges,
    /// The configuration the shards are (supposed to be) running:
    /// restarts rebuild from it, and a canary rollback re-installs it.
    /// A completed hot swap replaces it with the new graph.
    retained: Arc<RwLock<Arc<RouterGraph>>>,
    /// Spawns a replacement worker for a shard slot; the supervisor
    /// distributes the returned steerer producers.
    make_worker: MakeWorker,
    /// Validates a candidate configuration by building a prototype
    /// `Router<S>` on the calling thread (captures the engine type `S`),
    /// so a hot swap rejects a bad config before any worker sees it.
    validate: Validator,
}

impl ParallelRouter {
    /// Builds and starts a sharded router over `graph`: validates the
    /// configuration, then spawns one worker thread per shard, each
    /// instantiating its own `Router<S>` from the standard element
    /// library.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Router::from_graph`] (configuration
    /// check failures, element construction errors), or
    /// [`Error::Runtime`] for an invalid shard count or a failed thread
    /// spawn; no threads are leaked in either case.
    pub fn from_graph<S: Slot + 'static>(
        graph: &RouterGraph,
        opts: ParallelOpts,
    ) -> Result<ParallelRouter> {
        if opts.shards < 1 || opts.shards > MAX_SHARDS {
            return Err(Error::runtime(format!(
                "shard count {} outside 1..={MAX_SHARDS}",
                opts.shards
            )));
        }
        if opts.ring_capacity < 1 {
            return Err(Error::runtime("ring capacity must be at least 1"));
        }
        if opts.steerers > MAX_STEERERS {
            return Err(Error::runtime(format!(
                "steerer count {} outside 0..={MAX_STEERERS}",
                opts.steerers
            )));
        }
        // Validate once on this thread so errors surface synchronously;
        // the prototype also yields the device name table.
        let prototype: Router<S> = Router::from_graph(graph, &Library::standard())?;
        let devices: Vec<String> = prototype
            .devices
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        drop(prototype);

        let stop = Arc::new(AtomicBool::new(false));
        let bell = Arc::new(Doorbell::default());
        let spins = effective_spins(&opts);
        let cfg = WorkerCfg {
            shard: 0,
            batching: opts.batching,
            burst: opts.burst,
            backoff_spins: spins,
            ring_capacity: opts.ring_capacity,
            steerers: opts.steerers,
            adaptive: opts.adaptive_burst,
            pin_cores: opts.pin_cores,
        };
        let retained = Arc::new(RwLock::new(Arc::new(graph.clone())));
        let make_worker: MakeWorker = {
            let retained = Arc::clone(&retained);
            let stop = Arc::clone(&stop);
            let bell = Arc::clone(&bell);
            Box::new(move |shard| {
                let graph = read_retained(&retained);
                spawn_worker::<S>(&graph, WorkerCfg { shard, ..cfg }, &stop, &bell)
            })
        };
        let validate: Validator =
            Box::new(|g| Router::<S>::from_graph(g, &Library::standard()).map(|_| ()));
        let mut workers = Vec::with_capacity(opts.shards);
        // Per steerer, that steerer's producer for each shard's ring.
        let mut steer_producers: Vec<Vec<RingProducer<ShardItem>>> =
            (0..opts.steerers).map(|_| Vec::new()).collect();
        for shard in 0..opts.shards {
            match make_worker(shard) {
                Ok((w, extra)) => {
                    for (j, p) in extra.into_iter().enumerate() {
                        steer_producers[j].push(p);
                    }
                    workers.push(w);
                }
                Err(e) => {
                    // Already-spawned workers exit on the stop flag
                    // instead of leaking as spinning threads.
                    stop.store(true, Ordering::Release);
                    return Err(e);
                }
            }
        }
        let live_mask = Arc::new(SharedLiveMask::new(opts.shards));
        let steered: Arc<Vec<SteeredCounters>> = Arc::new(
            (0..opts.shards)
                .map(|_| SteeredCounters::default())
                .collect(),
        );
        let steer_drops = Arc::new(AtomicU64::new(0));
        let worker_threads: Vec<Thread> = workers
            .iter()
            .map(|w| {
                w.handle
                    .as_ref()
                    .expect("freshly spawned worker has a thread handle")
                    .thread()
                    .clone()
            })
            .collect();
        let mut steerers = Vec::with_capacity(opts.steerers);
        for (index, outputs) in steer_producers.into_iter().enumerate() {
            let scfg = SteererCfg {
                index,
                shards: opts.shards,
                backoff_spins: spins,
                ring_capacity: opts.ring_capacity,
                adaptive: opts.adaptive_burst,
                pin_cores: opts.pin_cores,
            };
            match spawn_steerer(
                scfg,
                outputs,
                worker_threads.clone(),
                Arc::clone(&live_mask),
                Arc::clone(&steered),
                Arc::clone(&steer_drops),
                &stop,
                &bell,
            ) {
                Ok(s) => steerers.push(s),
                Err(e) => {
                    stop.store(true, Ordering::Release);
                    return Err(e);
                }
            }
        }
        let n_dev = devices.len();
        let burst = opts.burst.max(1);
        let burst_ctl = (0..opts.shards)
            .map(|_| {
                if opts.adaptive_burst {
                    AdaptiveBurst::new(burst, burst, burst.saturating_mul(8).min(256))
                } else {
                    AdaptiveBurst::fixed(burst)
                }
            })
            .collect();
        Ok(ParallelRouter {
            workers,
            graveyard: Vec::new(),
            steer: RssSteering::new(opts.shards),
            steerers,
            live_mask,
            steered,
            steer_drops,
            stop,
            devices,
            pending: (0..opts.shards).map(|_| Vec::new()).collect(),
            pending_open: (0..opts.shards).map(|_| vec![None; n_dev]).collect(),
            pending_steer: (0..opts.steerers).map(|_| Vec::new()).collect(),
            pending_steer_open: (0..opts.steerers).map(|_| vec![None; n_dev]).collect(),
            tx: (0..n_dev).map(|_| Vec::new()).collect(),
            storage: Vec::new(),
            burst,
            burst_ctl,
            serial_steer: SteerGaugeTracker::new(0),
            steer_cache: FlowHashCache::default(),
            bell,
            backoff_spins: spins,
            recovery: opts.recovery,
            wedge_timeout: opts.wedge_timeout,
            faults: FaultGauges {
                shards: opts.shards,
                live_shards: opts.shards,
                ..FaultGauges::default()
            },
            swap: SwapGauges::default(),
            retained,
            make_worker,
            validate,
        })
    }

    /// Number of parallel steerer threads (0 in serial-steering mode).
    pub fn steerer_count(&self) -> usize {
        self.steerers.len()
    }

    /// Whether the parallel steering stage and all its buffers are
    /// drained (vacuously true in serial-steering mode). Once this
    /// holds, the per-shard steered counters are stable.
    fn steering_idle(&self) -> bool {
        self.pending_steer.iter().all(Vec::is_empty) && self.steerers.iter().all(Steerer::is_idle)
    }

    /// Batches delivered to shard `i`'s current incarnation by the
    /// steerer threads.
    fn steered_batches(&self, i: usize) -> u64 {
        self.steered[i]
            .batches
            .load(Ordering::Acquire)
            .saturating_sub(self.workers[i].steered_batches_base)
    }

    /// Whether worker `i` has processed everything handed to it, from
    /// both the supervisor and the steerer threads. Only meaningful
    /// once [`ParallelRouter::steering_idle`] holds (the steered
    /// counters still grow while steerers run).
    fn worker_idle(&self, i: usize) -> bool {
        self.workers[i].is_idle_with(self.steered_batches(i))
    }

    /// All workers idle (steered counters included).
    fn workers_idle(&self) -> bool {
        (0..self.workers.len()).all(|i| self.worker_idle(i))
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Number of shards currently accepting traffic.
    pub fn live_shards(&self) -> usize {
        self.steer.live_count()
    }

    /// Supervisor fault gauges: shard deaths, restarts, degraded-mode
    /// entries, and in-flight packet loss. All zero on a healthy run.
    pub fn fault_gauges(&self) -> FaultGauges {
        FaultGauges {
            live_shards: self.steer.live_count(),
            shards: self.workers.len(),
            no_live_shard_drops: self.faults.no_live_shard_drops
                + self.steer_drops.load(Ordering::Acquire),
            ..self.faults
        }
    }

    /// Live-reconfiguration gauges: completed swaps, rollbacks, canary
    /// failures, packets transferred, and rejected configs. Always live
    /// (not feature-gated), like [`ParallelRouter::fault_gauges`].
    pub fn swap_gauges(&self) -> SwapGauges {
        self.swap
    }

    /// Sum of every live shard's engine drop counter (element drops plus
    /// unconnected-port and reentrancy drops — [`Router::total_drops`]
    /// per shard), plus packets dropped at injection because no live
    /// shard remained. Always live (not feature-gated); monotonic across
    /// hot swaps because each shard's counter survives its swap. Dead or
    /// unreachable shards contribute their last known nothing (0), so a
    /// reading during a fault can transiently understate.
    pub fn total_drops(&self) -> u64 {
        let engine: u64 = self
            .gauge_snapshot()
            .iter()
            .map(|s| s.map(|(d, _)| d).unwrap_or(0))
            .sum();
        engine + self.faults.no_live_shard_drops + self.steer_drops.load(Ordering::Acquire)
    }

    // ---- checkpoint/restore ---------------------------------------------

    /// Cuts a consistent snapshot across the whole sharded runtime:
    /// every live shard is quiesced through the same control-plane
    /// machinery hot swaps use (its ring drains; nothing new is handed
    /// to it), each shard's engine state is captured non-destructively
    /// ([`Router::checkpoint_snapshot`]), and the per-shard records are
    /// merged by element name — counters sum, queued packets concatenate
    /// in shard order. Supervisor-held traffic (buffered injection
    /// bursts not yet handed to a shard, collected TX not yet drained by
    /// the harness) is captured too, so the checkpoint holds every
    /// packet the runtime owns. The reported `quiesce_ns` spans the
    /// whole cut — the pause the data plane experienced.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when no live shard exists, a shard fails to
    /// quiesce within the wedge timeout, or a control query fails; the
    /// runtime keeps forwarding either way.
    pub fn checkpoint_snapshot(&mut self) -> Result<EngineSnapshot> {
        let t0 = Instant::now();
        let live: Vec<usize> = (0..self.workers.len())
            .filter(|&s| !self.workers[s].dead && !self.workers[s].is_dead())
            .collect();
        if live.is_empty() {
            return Err(Error::runtime("checkpoint: no live shard"));
        }
        for &s in &live {
            self.quiesce_shard(s)?;
        }
        let mut elements: Vec<ElementRecord> = Vec::new();
        let mut devices: Vec<DeviceRecord> = self
            .devices
            .iter()
            .map(|n| DeviceRecord {
                name: n.clone(),
                ..DeviceRecord::default()
            })
            .collect();
        for &s in &live {
            let snap = match self.workers[s].query(Ctrl::Snapshot)? {
                CtrlReply::Snapshot(r) => (*r)?,
                _ => {
                    return Err(Error::runtime(format!(
                        "shard {s}: unexpected control reply to snapshot"
                    )))
                }
            };
            for rec in snap.elements {
                match elements.iter_mut().find(|e| e.name == rec.name) {
                    Some(merged) => merged.absorb(&rec),
                    None => elements.push(rec),
                }
            }
            for dev in snap.devices {
                if let Some(d) = devices.iter_mut().find(|d| d.name == dev.name) {
                    d.rx.extend(dev.rx);
                    d.tx.extend(dev.tx);
                }
            }
        }
        // Supervisor-held packets: injection bursts still buffered for a
        // shard or steerer count as received-but-unprocessed (RX), and
        // the collected TX banks as transmitted-but-undrained.
        let buffered = self.pending.iter().chain(self.pending_steer.iter());
        for (dev, batch) in buffered.flatten() {
            if let Some(d) = devices.get_mut(dev.0) {
                d.rx.extend(batch.iter().map(PacketRecord::from_packet));
            }
        }
        for (i, q) in self.tx.iter().enumerate() {
            if let Some(d) = devices.get_mut(i) {
                d.tx.extend(q.iter().map(PacketRecord::from_packet));
            }
        }
        Ok(EngineSnapshot {
            elements,
            devices,
            total_drops: self.total_drops(),
            quiesce_ns: t0.elapsed().as_nanos() as u64,
        })
    }

    /// Applies a decoded checkpoint to this (freshly built) sharded
    /// runtime: the element records and drop-ledger target land on the
    /// lowest-index live shard (per-element and per-class statistics sum
    /// across shards, so aggregate counters resume exactly), pending RX
    /// packets re-enter through normal injection (steering re-places
    /// them), and pending TX lands in the supervisor's collected banks
    /// for the harness to drain.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when no live shard exists or the shard cannot
    /// quiesce; the caller should degrade to a cold start, not crash.
    pub fn checkpoint_restore(&mut self, ckpt: &Checkpoint) -> Result<RestoreStats> {
        let Some(shard) =
            (0..self.workers.len()).find(|&s| !self.workers[s].dead && !self.workers[s].is_dead())
        else {
            return Err(Error::runtime("restore: no live shard"));
        };
        self.quiesce_shard(shard)?;
        let plan = Arc::new(RestorePlan {
            elements: ckpt.elements.clone(),
            target_drops: ckpt.ledger.drops,
        });
        let mut stats = match self.workers[shard].query(Ctrl::Restore(plan))? {
            CtrlReply::Restored(r) => (*r)?,
            _ => {
                return Err(Error::runtime(format!(
                    "shard {shard}: unexpected control reply to restore"
                )))
            }
        };
        for dev in &ckpt.devices {
            match self.device_id(&dev.name) {
                Some(id) => {
                    stats.packets_restored += (dev.rx.len() + dev.tx.len()) as u64;
                    for pr in &dev.rx {
                        self.inject(id, pr.to_packet());
                    }
                    for pr in &dev.tx {
                        self.tx[id.0].push(pr.to_packet());
                    }
                }
                None => {
                    // No such device in this configuration: recorded
                    // both in the stats and in the drop ledger, so the
                    // cross-incarnation books still balance.
                    let n = (dev.rx.len() + dev.tx.len()) as u64;
                    stats.packets_orphaned += n;
                    self.faults.no_live_shard_drops += n;
                }
            }
        }
        Ok(stats)
    }

    /// Warm restart: builds a sharded runtime from the checkpoint's
    /// installed configuration text (the *optimized* config if the reopt
    /// loop had swapped one in) and applies its records.
    ///
    /// # Errors
    ///
    /// Configuration parse/check/construction errors, or the
    /// [`ParallelRouter::checkpoint_restore`] failures; the caller
    /// should degrade to a cold start from its source configuration.
    pub fn restore_from<S: Slot + 'static>(
        ckpt: &Checkpoint,
        opts: ParallelOpts,
    ) -> Result<(ParallelRouter, RestoreStats)> {
        let graph = click_core::lang::read_config(&ckpt.config)?;
        let mut router = ParallelRouter::from_graph::<S>(&graph, opts)?;
        let stats = router.checkpoint_restore(ckpt)?;
        Ok((router, stats))
    }

    /// Rolls `new_graph` out across the shards behind a canary with the
    /// default [`SwapOpts`]. See [`ParallelRouter::hot_swap_with`].
    ///
    /// # Errors
    ///
    /// Same as [`ParallelRouter::hot_swap_with`].
    pub fn hot_swap(&mut self, new_graph: &RouterGraph) -> Result<SwapReport> {
        self.hot_swap_with(new_graph, SwapOpts::default())
    }

    /// Live reconfiguration: installs `new_graph` with a two-phase canary
    /// rollout, preserving element state ([`Router::hot_swap`]) on every
    /// swapped shard.
    ///
    /// 1. **Validate.** The candidate graph is checked and a prototype
    ///    engine is built on this thread; a config that fails
    ///    `click_core::check::check` is rejected here — counted in
    ///    [`SwapGauges::rejected_configs`] — and no worker ever sees it.
    /// 2. **Canary.** The lowest-index live shard is quiesced (its ring
    ///    drains; other shards keep forwarding, so per-flow order on
    ///    their flows is untouched) and swapped to the new graph with
    ///    full state transfer.
    /// 3. **Window.** Buffered traffic is pumped until the canary has
    ///    processed [`SwapOpts::canary_window`] packets (or the traffic
    ///    drains), then the canary's drops-per-packet delta is compared
    ///    against the surviving shards' aggregate delta.
    /// 4. **Roll or roll back.** Within margin: every remaining live
    ///    shard is quiesced and swapped in turn and the new graph becomes
    ///    the retained configuration (future restarts build it). Past
    ///    margin: the canary is quiesced and swapped *back* to the
    ///    retained old graph — again with state transfer, so its counters
    ///    survive the round trip — and the old configuration stays
    ///    installed everywhere.
    ///
    /// Loss is bounded exactly as in the fault path: a quiesced shard
    /// swap loses nothing (queue contents and device queues transfer);
    /// packets the canary *dropped* while running a regressing config are
    /// visible in its drop gauges and reported via
    /// [`SwapReport::canary_drops`].
    ///
    /// # Errors
    ///
    /// [`Error::Check`] for an invalid config (old config untouched);
    /// [`Error::Runtime`] when no live shard exists, a shard fails to
    /// quiesce within the wedge timeout, or a worker's swap fails. If a
    /// later shard of the rollout fails, earlier shards keep the new
    /// graph while the retained configuration stays old — a retry (or a
    /// rollback swap to the old graph) converges the fleet.
    pub fn hot_swap_with(&mut self, new_graph: &RouterGraph, opts: SwapOpts) -> Result<SwapReport> {
        if let Err(e) = (self.validate)(new_graph) {
            self.swap.rejected_configs += 1;
            return Err(e);
        }
        self.supervise();
        let canary = (0..self.workers.len())
            .find(|&i| !self.workers[i].dead && !self.workers[i].is_dead())
            .ok_or_else(|| Error::runtime("hot swap: no live shard to canary"))?;
        let new_arc = Arc::new(new_graph.clone());

        // Phase 1: quiesce and swap the canary.
        self.quiesce_shard(canary)?;
        let before = self.gauge_snapshot();
        let mut report = self.swap_shard(canary, &new_arc)?;
        report.canary_shard = Some(canary);

        // Phase 2: the canary window, over whatever traffic the caller
        // has buffered. Non-canary shards process their share under the
        // old configuration and serve as the comparison baseline.
        let start_pkts = before[canary].map_or(0, |(_, p)| p);
        self.pump_window(canary, opts.canary_window, start_pkts);
        let after = self.gauge_snapshot();

        let (canary_drops, canary_pkts) = match (before[canary], after[canary]) {
            (Some((bd, bp)), Some((ad, ap))) => (ad.saturating_sub(bd), ap.saturating_sub(bp)),
            _ => (0, 0),
        };
        let mut surv_drops = 0u64;
        let mut surv_pkts = 0u64;
        for i in 0..self.workers.len() {
            if i == canary {
                continue;
            }
            if let (Some((bd, bp)), Some((ad, ap))) = (before[i], after[i]) {
                surv_drops += ad.saturating_sub(bd);
                surv_pkts += ap.saturating_sub(bp);
            }
        }
        let canary_rate = if canary_pkts > 0 {
            canary_drops as f64 / canary_pkts as f64
        } else {
            0.0
        };
        let surv_rate = if surv_pkts > 0 {
            surv_drops as f64 / surv_pkts as f64
        } else {
            0.0
        };
        let regressed = canary_pkts > 0 && canary_rate > surv_rate + opts.drop_margin;

        if regressed {
            // Auto-rollback: drain what the canary still holds under the
            // regressing config, measure the full faulty-regime drop
            // delta, then swap it back to the retained old graph.
            self.swap.canary_failures += 1;
            self.quiesce_shard(canary)?;
            let final_snap = self.gauge_snapshot();
            let old = read_retained(&self.retained);
            let rb = self.swap_shard(canary, &old)?;
            report.packets_transferred += rb.packets_transferred;
            report.packets_dropped += rb.packets_dropped;
            report.swapped_shards = 0;
            report.rolled_back = true;
            if let (Some((bd, bp)), Some((fd, fp))) = (before[canary], final_snap[canary]) {
                report.canary_drops = fd.saturating_sub(bd);
                report.canary_packets = fp.saturating_sub(bp);
            }
            self.swap.rollbacks += 1;
            self.swap.packets_transferred += report.packets_transferred;
            return Ok(report);
        }

        // Phase 3: roll the remaining live shards and retain the new
        // graph (restarts now rebuild it).
        report.canary_drops = canary_drops;
        report.canary_packets = canary_pkts;
        for i in 0..self.workers.len() {
            if i == canary || self.workers[i].dead || self.workers[i].is_dead() {
                continue;
            }
            self.quiesce_shard(i)?;
            let r = self.swap_shard(i, &new_arc)?;
            report.packets_transferred += r.packets_transferred;
            report.packets_dropped += r.packets_dropped;
            report.swapped_shards += 1;
        }
        match self.retained.write() {
            Ok(mut g) => *g = Arc::clone(&new_arc),
            Err(mut p) => **p.get_mut() = Arc::clone(&new_arc),
        }
        self.swap.swaps += 1;
        self.swap.packets_transferred += report.packets_transferred;
        Ok(report)
    }

    /// Waits (bounded) for one live shard to finish everything handed to
    /// it, without handing it anything new; other shards' pending traffic
    /// stays buffered too, but TX keeps draining.
    fn quiesce_shard(&mut self, shard: usize) -> Result<()> {
        let deadline = Instant::now() + self.wedge_timeout;
        self.bell.register();
        let mut backoff = Backoff::new(self.backoff_spins);
        loop {
            self.collect();
            self.supervise();
            if self.workers[shard].dead || self.workers[shard].is_dead() {
                return Err(Error::runtime(format!(
                    "hot swap: shard {shard} died while quiescing"
                )));
            }
            if self.steering_idle() && self.worker_idle(shard) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(Error::runtime(format!(
                    "hot swap: shard {shard} did not quiesce within {:?}",
                    self.wedge_timeout
                )));
            }
            backoff.snooze();
        }
    }

    /// Asks one worker to hot-swap its engine (it must be quiesced).
    fn swap_shard(&mut self, shard: usize, graph: &Arc<RouterGraph>) -> Result<SwapReport> {
        match self.workers[shard].query(Ctrl::Swap(Arc::clone(graph)))? {
            CtrlReply::Swapped(r) => r,
            _ => Err(Error::runtime(format!(
                "shard {shard}: unexpected control reply to swap"
            ))),
        }
    }

    /// Per-shard `(total_drops, completed_packets)` snapshot; `None` for
    /// shards that are dead or unreachable.
    fn gauge_snapshot(&self) -> Vec<Option<(u64, u64)>> {
        self.workers
            .iter()
            .map(|w| {
                if w.dead || w.is_dead() {
                    return None;
                }
                match w.query(Ctrl::DropGauge) {
                    Ok(CtrlReply::Value(d)) => {
                        Some((d, w.shared.completed_pkts.load(Ordering::Acquire)))
                    }
                    _ => None,
                }
            })
            .collect()
    }

    /// Hands buffered traffic to the shards and pumps until the canary
    /// has processed `window` packets beyond `start_pkts`, everything
    /// drains, or the wedge timeout passes.
    fn pump_window(&mut self, canary: usize, window: u64, start_pkts: u64) {
        let deadline = Instant::now() + self.wedge_timeout;
        self.bell.register();
        let mut backoff = Backoff::new(self.backoff_spins);
        loop {
            self.flush();
            self.collect();
            let canary_pkts = self.workers[canary]
                .shared
                .completed_pkts
                .load(Ordering::Acquire)
                .saturating_sub(start_pkts);
            let idle = self.steering_idle()
                && self.workers_idle()
                && self.pending.iter().all(Vec::is_empty);
            if canary_pkts >= window || idle || Instant::now() >= deadline {
                return;
            }
            backoff.snooze();
        }
    }

    /// Looks up a device id by name (same table every shard uses).
    pub fn device_id(&self, name: &str) -> Option<DeviceId> {
        self.devices.iter().position(|d| d == name).map(DeviceId)
    }

    /// Device names in id order.
    pub fn device_names(&self) -> &[String] {
        &self.devices
    }

    /// The shard a frame received on `dev` steers to when every shard is
    /// live (exposed for tests and the core-scaling benchmark, which
    /// pre-partitions traces with the very same function).
    pub fn shard_for(&self, frame: &[u8], dev: DeviceId) -> usize {
        self.steer.shard_for(frame, dev)
    }

    /// Steers a packet to its (live) shard and buffers it for injection
    /// on `dev`. Call [`ParallelRouter::flush`] (or
    /// [`ParallelRouter::run_until_idle`]) to hand buffered bursts to
    /// the workers. If no live shard remains the packet is dropped and
    /// counted in [`FaultGauges::no_live_shard_drops`].
    ///
    /// In parallel-steering mode the packet is *not* classified here:
    /// it is handed (in per-flow deterministic fashion) to one of the
    /// steerer threads, which classifies and delivers it concurrently
    /// with this thread injecting the rest of the trace.
    pub fn inject(&mut self, dev: DeviceId, p: Packet) {
        if !self.steerers.is_empty() {
            // Cheap pre-partition only: full classification happens on
            // the steerer threads.
            let st = steerer_for(p.data(), dev, self.steerers.len());
            let groups = &mut self.pending_steer[st];
            let open = &mut self.pending_steer_open[st];
            if open.len() <= dev.0 {
                open.resize(dev.0 + 1, None);
            }
            match open[dev.0] {
                Some(i) if groups[i].1.len() < self.burst => groups[i].1.push(p),
                _ => {
                    let mut batch = self.storage.pop().unwrap_or_default();
                    batch.push(p);
                    open[dev.0] = Some(groups.len());
                    groups.push((dev, batch));
                }
            }
            return;
        }
        let t0 = telemetry::ENABLED.then(Instant::now);
        let Some(shard) = self
            .steer
            .live_shard_for_cached(p.data(), dev, &mut self.steer_cache)
        else {
            self.faults.no_live_shard_drops += 1;
            p.recycle();
            return;
        };
        if let Some(t0) = t0 {
            self.serial_steer
                .steered(0, 1, t0.elapsed().as_nanos() as u64);
        }
        let burst = self.burst_ctl[shard].get();
        let groups = &mut self.pending[shard];
        let open = &mut self.pending_open[shard];
        if open.len() <= dev.0 {
            open.resize(dev.0 + 1, None);
        }
        match open[dev.0] {
            Some(i) if groups[i].1.len() < burst => groups[i].1.push(p),
            _ => {
                let mut batch = self.storage.pop().unwrap_or_default();
                batch.push(p);
                open[dev.0] = Some(groups.len());
                groups.push((dev, batch));
                self.serial_steer.steered(1, 0, 0);
            }
        }
    }

    /// Enqueues every buffered burst onto its shard's ring, spinning
    /// with backpressure (and draining TX output) while rings are full,
    /// and supervising worker health while blocked. Returns the number
    /// of packets collected into the TX banks while waiting for ring
    /// space.
    ///
    /// If a live worker wedges (zero progress for the configured
    /// `wedge_timeout`), this returns early with the packets collected
    /// so far; un-handed bursts stay buffered. Use
    /// [`ParallelRouter::try_flush`] to observe the timeout as an error.
    pub fn flush(&mut self) -> usize {
        self.pump(false).0
    }

    /// Like [`ParallelRouter::flush`], but reports a wedged router.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when injection made no progress for the
    /// configured `wedge_timeout` (a live worker stopped consuming and
    /// its ring is full — backpressure timeout).
    pub fn try_flush(&mut self) -> Result<usize> {
        let (collected, r) = self.pump(false);
        r.map(|()| collected)
    }

    /// Drains every worker's outbound ring into the merged TX banks;
    /// returns how many packets arrived.
    pub fn collect(&mut self) -> usize {
        let mut moved = 0;
        let mut items: Vec<ShardItem> = Vec::new();
        for w in &mut self.workers {
            w.from_worker.pop_batch(usize::MAX, &mut items);
            for (dev, mut batch) in items.drain(..) {
                moved += batch.len();
                self.tx[dev.0].extend(batch.drain());
                if self.storage.len() < 64 {
                    self.storage.push(batch);
                }
            }
        }
        moved
    }

    /// Flushes buffered injections and busy-polls (with backoff) until
    /// every live shard has processed everything handed to it and all TX
    /// output has been collected, supervising worker health along the
    /// way. Returns the number of packets that arrived in the TX banks
    /// during this call.
    ///
    /// This is the sharded counterpart of [`Router::run_until_idle`].
    /// If a live worker wedges, returns early with what was collected;
    /// use [`ParallelRouter::try_run_until_idle`] to observe the timeout
    /// as an error.
    pub fn run_until_idle(&mut self) -> usize {
        self.pump(true).0
    }

    /// Like [`ParallelRouter::run_until_idle`], but reports a wedged
    /// router.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when no progress was made for the configured
    /// `wedge_timeout` while work was still outstanding.
    pub fn try_run_until_idle(&mut self) -> Result<usize> {
        let (collected, r) = self.pump(true);
        r.map(|()| collected)
    }

    /// The shared injection/collection engine. Pushes pending bursts,
    /// drains TX, supervises health when unproductive, and (for
    /// `until_idle`) waits for every live worker to finish. Returns the
    /// packets collected plus `Err` if progress stalled past the wedge
    /// timeout.
    fn pump(&mut self, until_idle: bool) -> (usize, Result<()>) {
        let mut collected = 0;
        self.bell.register();
        let mut backoff = Backoff::new(self.backoff_spins);
        let mut last_progress = Instant::now();
        // One cheap health sweep per burst of work — faults that occurred
        // since the last call are handled before new packets commit to a
        // dead shard's ring.
        self.supervise();
        loop {
            let mut progressed = false;
            // Hand raw bursts to the steerer threads (parallel-steering
            // mode; no-op otherwise).
            let mut outstanding = 0usize;
            for st in 0..self.steerers.len() {
                if self.pending_steer[st].is_empty() {
                    continue;
                }
                if self.steerers[st].to_steerer.is_full() {
                    outstanding += self.pending_steer[st].len();
                    continue;
                }
                let mut groups = std::mem::take(&mut self.pending_steer[st]);
                // Flushing shifts group indices; close every open batch.
                self.pending_steer_open[st]
                    .iter_mut()
                    .for_each(|o| *o = None);
                let n = self.steerers[st].to_steerer.push_batch(&mut groups);
                self.steerers[st].enqueued_batches += n as u64;
                if n > 0 {
                    progressed = true;
                    self.steerers[st].wake();
                }
                outstanding += groups.len();
                self.pending_steer[st] = groups;
            }
            // Hand classified bursts to their shards' rings.
            for shard in 0..self.workers.len() {
                if self.pending[shard].is_empty() {
                    continue;
                }
                if self.workers[shard].dead {
                    // Death detected mid-loop; supervise() re-steers.
                    outstanding += self.pending[shard].len();
                    continue;
                }
                if self.workers[shard].to_worker.is_full() {
                    outstanding += self.pending[shard].len();
                    continue;
                }
                let mut groups = std::mem::take(&mut self.pending[shard]);
                // Flushing shifts group indices; close every open batch.
                self.pending_open[shard].iter_mut().for_each(|o| *o = None);
                let before_pkts: usize = groups.iter().map(|(_, b)| b.len()).sum();
                let n = self.workers[shard].to_worker.push_batch(&mut groups);
                let after_pkts: usize = groups.iter().map(|(_, b)| b.len()).sum();
                self.workers[shard].enqueued_batches += n as u64;
                self.workers[shard].enqueued_pkts += (before_pkts - after_pkts) as u64;
                if n > 0 {
                    progressed = true;
                    self.workers[shard].wake();
                    let ring = &self.workers[shard].to_worker;
                    self.burst_ctl[shard].observe(ring.len(), ring.capacity());
                }
                outstanding += groups.len();
                self.pending[shard] = groups;
            }
            let got = self.collect();
            collected += got;
            if got > 0 {
                progressed = true;
            }
            // Done? The steering stage must drain first: its idleness
            // freezes the steered counters that worker idleness is
            // judged against.
            if outstanding == 0 {
                if !until_idle {
                    return (collected, Ok(()));
                }
                if self.steering_idle() && self.workers_idle() {
                    // Workers are done; one final sweep picks up anything
                    // published between the last collect and the idle
                    // check.
                    collected += self.collect();
                    return (collected, Ok(()));
                }
            }
            if progressed {
                last_progress = Instant::now();
                backoff.reset();
                continue;
            }
            // Unproductive poll: the cheap per-burst health-word check.
            if self.supervise() {
                last_progress = Instant::now();
                continue;
            }
            if last_progress.elapsed() >= self.wedge_timeout {
                return (
                    collected,
                    Err(Error::runtime(format!(
                        "backpressure timeout: no progress for {:?} with work outstanding \
                         (a worker shard appears wedged)",
                        self.wedge_timeout
                    ))),
                );
            }
            backoff.snooze();
        }
    }

    /// Scans worker health words and handles any newly dead shard:
    /// salvage, account, recover (restart or degrade), re-steer.
    /// Returns `true` if a fault was handled.
    fn supervise(&mut self) -> bool {
        let mut handled = false;
        for i in 0..self.workers.len() {
            if !self.workers[i].dead && self.workers[i].is_dead() {
                self.handle_dead_shard(i);
                handled = true;
            }
        }
        handled
    }

    /// The supervisor's fault path for one dead shard.
    fn handle_dead_shard(&mut self, shard: usize) {
        self.faults.shard_deaths += 1;
        self.steer.mark_dead(shard);
        // Steerer threads must stop targeting the shard *before* they
        // are asked to reclaim their rings: receiving Reclaim proves a
        // steerer has observed the dead bit (the mask write
        // happens-before the channel send), so after its reply it can
        // never push to this shard again.
        self.live_mask.mark_dead(shard);
        self.workers[shard].dead = true;

        // Salvage: everything still in the inbound rings (the dead
        // consumer is inert; the supervisor reclaims its own direct
        // ring, each steerer reclaims its own — every ring through its
        // single producer), every published TX burst in the outbound
        // ring, and every not-yet-enqueued pending burst, in FIFO order.
        let mut salvaged: Vec<ShardItem> = Vec::new();
        self.workers[shard].to_worker.reclaim(&mut salvaged);
        for st in &self.steerers {
            if let Ok(SteerReply::Reclaimed(items)) = st.query(SteerCtrl::Reclaim(shard)) {
                // Per-flow order survives concatenation: a flow lives in
                // exactly one steerer's ring.
                salvaged.extend(items);
            }
        }
        let ring_pkts: u64 = salvaged.iter().map(|(_, b)| b.len() as u64).sum();
        let mut published: Vec<ShardItem> = Vec::new();
        self.workers[shard]
            .from_worker
            .pop_batch(usize::MAX, &mut published);
        for (dev, mut batch) in published {
            self.tx[dev.0].extend(batch.drain());
            if self.storage.len() < 64 {
                self.storage.push(batch);
            }
        }
        salvaged.append(&mut self.pending[shard]);
        self.pending_open[shard].iter_mut().for_each(|o| *o = None);
        let salvaged_pkts: u64 = salvaged.iter().map(|(_, b)| b.len() as u64).sum();

        // Account the irrecoverable loss: packets handed to the worker
        // that it neither completed nor left in the rings were inside
        // the engine when it died. The steered counters are stable here:
        // every steerer answered Reclaim, so none will deliver more.
        let steered_p = self.steered[shard]
            .pkts
            .load(Ordering::Acquire)
            .saturating_sub(self.workers[shard].steered_pkts_base);
        let w = &mut self.workers[shard];
        let completed_b = w.shared.completed_batches.load(Ordering::Acquire);
        let completed_p = w.shared.completed_pkts.load(Ordering::Acquire);
        let lost = (w.enqueued_pkts + steered_p)
            .saturating_sub(completed_p)
            .saturating_sub(ring_pkts);
        self.faults.lost_packets += lost;
        self.faults.reclaimed_packets += salvaged_pkts;
        // Reconcile the dead worker's books so it reads as idle.
        w.enqueued_batches = completed_b;
        w.enqueued_pkts = completed_p;
        w.steered_batches_base = self.steered[shard].batches.load(Ordering::Acquire);
        w.steered_pkts_base = self.steered[shard].pkts.load(Ordering::Acquire);

        // Recover.
        let restart_budget = match self.recovery {
            Recovery::Restart { max_per_shard } => max_per_shard,
            Recovery::Degrade => 0,
        };
        let mut restarted = false;
        if self.workers[shard].restarts < restart_budget {
            match (self.make_worker)(shard) {
                Ok((mut fresh, producers)) => {
                    fresh.restarts = self.workers[shard].restarts + 1;
                    // The fresh incarnation is charged only for steered
                    // traffic delivered from now on.
                    fresh.steered_batches_base =
                        self.steered[shard].batches.load(Ordering::Acquire);
                    fresh.steered_pkts_base = self.steered[shard].pkts.load(Ordering::Acquire);
                    let old = std::mem::replace(&mut self.workers[shard], fresh);
                    self.graveyard.push(old);
                    let fresh_thread = self.workers[shard]
                        .handle
                        .as_ref()
                        .expect("freshly spawned worker has a thread handle")
                        .thread()
                        .clone();
                    // Hand every steerer its fresh producer *before*
                    // reviving the shard in the shared mask, so no
                    // steerer can steer to the shard while still holding
                    // the dead incarnation's ring.
                    for (st, p) in self.steerers.iter().zip(producers) {
                        let _ = st.query(SteerCtrl::Replace(shard, p, fresh_thread.clone()));
                    }
                    self.steer.mark_live(shard);
                    self.live_mask.mark_live(shard);
                    self.faults.restarts += 1;
                    restarted = true;
                }
                Err(_) => {
                    // Could not spawn a replacement; degrade instead.
                }
            }
        }
        if !restarted {
            self.faults.degraded_entries += 1;
        }

        // Re-inject the salvaged packets through the updated steering:
        // back to the restarted shard, or re-homed across survivors.
        for (dev, mut batch) in salvaged {
            for p in batch.drain() {
                self.inject(dev, p);
            }
            if self.storage.len() < 64 {
                self.storage.push(batch);
            }
        }
    }

    /// Health snapshot of every worker shard: `(shard, live, heartbeat,
    /// restarts)`. A live worker's heartbeat advances on every poll, so
    /// two snapshots distinguish busy from wedged.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.workers
            .iter()
            .map(|w| ShardHealth {
                shard: w.shard,
                live: !w.dead && !w.is_dead(),
                heartbeat: w.shared.heartbeat.load(Ordering::Relaxed),
                restarts: w.restarts,
            })
            .collect()
    }

    /// Pings a worker over the control plane.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when the shard index is out of range or the
    /// worker is gone/wedged.
    pub fn ping(&self, shard: usize) -> Result<()> {
        let w = self
            .workers
            .get(shard)
            .ok_or_else(|| Error::runtime(format!("no shard {shard}")))?;
        match w.query(Ctrl::Ping)? {
            CtrlReply::Pong => Ok(()),
            _ => Err(Error::runtime(format!(
                "shard {shard}: unexpected control reply to ping"
            ))),
        }
    }

    /// Number of packets transmitted on a device and collected so far.
    pub fn tx_len(&self, dev: DeviceId) -> usize {
        self.tx[dev.0].len()
    }

    /// Takes all collected TX packets for a device.
    pub fn take_tx(&mut self, dev: DeviceId) -> Vec<Packet> {
        std::mem::take(&mut self.tx[dev.0])
    }

    /// Drains collected TX packets for a device into a batch (storage
    /// stays warm, mirroring [`crate::router::DeviceBank::drain_tx_into`]).
    ///
    /// Same contract as the serial version: packets are *appended* to
    /// `into` (which need not be empty), and the return value counts only
    /// the packets appended by this call, not `into.len()`.
    pub fn drain_tx_into(&mut self, dev: DeviceId, into: &mut PacketBatch) -> usize {
        let before = into.len();
        let q = &mut self.tx[dev.0];
        let n = q.len();
        into.extend(q.drain(..));
        debug_assert_eq!(
            into.len(),
            before + n,
            "drain_tx_into must append exactly the drained packets"
        );
        n
    }

    /// Every worker that can still answer a control query: the live
    /// shards, zombies, and the graveyard (dead predecessors of
    /// restarted shards) — so merged statistics keep counting packets
    /// the dead saw.
    fn respondents(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter().chain(self.graveyard.iter())
    }

    /// Reads a named statistic from an element, summed across shards —
    /// the merged view that makes a sharded router answer like a serial
    /// one. `None` if no shard knows the element/statistic. Shards that
    /// cannot answer (gone, wedged) are skipped; use
    /// [`ParallelRouter::try_stat`] to observe those as errors.
    pub fn stat(&self, element: &str, stat: &str) -> Option<u64> {
        let mut total = None;
        for w in self.respondents() {
            if let Ok(CtrlReply::Stat(Some(v))) =
                w.query(Ctrl::Stat(element.to_owned(), stat.to_owned()))
            {
                *total.get_or_insert(0) += v;
            }
        }
        total
    }

    /// Like [`ParallelRouter::stat`], but propagates control-plane
    /// failures instead of skipping unreachable shards.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] if any shard fails to answer within
    /// [`CTRL_TIMEOUT`].
    pub fn try_stat(&self, element: &str, stat: &str) -> Result<Option<u64>> {
        let mut total = None;
        for w in self.respondents() {
            if let CtrlReply::Stat(Some(v)) =
                w.query(Ctrl::Stat(element.to_owned(), stat.to_owned()))?
            {
                *total.get_or_insert(0) += v;
            }
        }
        Ok(total)
    }

    /// Sum of a statistic across all elements of a class, across all
    /// shards (unreachable shards skipped).
    pub fn class_stat(&self, class: &str, stat: &str) -> u64 {
        self.respondents()
            .map(
                |w| match w.query(Ctrl::ClassStat(class.to_owned(), stat.to_owned())) {
                    Ok(CtrlReply::Value(v)) => v,
                    _ => 0,
                },
            )
            .sum()
    }

    /// Like [`ParallelRouter::class_stat`], but propagates control-plane
    /// failures.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] if any shard fails to answer within
    /// [`CTRL_TIMEOUT`].
    pub fn try_class_stat(&self, class: &str, stat: &str) -> Result<u64> {
        let mut total = 0;
        for w in self.respondents() {
            if let CtrlReply::Value(v) =
                w.query(Ctrl::ClassStat(class.to_owned(), stat.to_owned()))?
            {
                total += v;
            }
        }
        Ok(total)
    }

    /// Packets dropped on unconnected ports, summed across shards.
    pub fn unconnected_drops(&self) -> u64 {
        self.engine_drops().0
    }

    /// Packets dropped breaking configuration loops, summed across
    /// shards.
    pub fn reentrant_drops(&self) -> u64 {
        self.engine_drops().1
    }

    fn engine_drops(&self) -> (u64, u64) {
        let mut u = 0;
        let mut r = 0;
        for w in self.respondents() {
            if let Ok(CtrlReply::Drops {
                unconnected,
                reentrant,
            }) = w.query(Ctrl::EngineDrops)
            {
                u += unconnected;
                r += reentrant;
            }
        }
        (u, r)
    }

    /// Merged packet-pool counters of every worker thread (each shard
    /// allocates from its own thread-local pool).
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for w in self.respondents() {
            if let Ok(CtrlReply::Pool(s)) = w.query(Ctrl::PoolStats) {
                total.hits += s.hits;
                total.misses += s.misses;
                total.recycled += s.recycled;
                total.dropped += s.dropped;
            }
        }
        total
    }

    /// Resets every worker thread's packet-pool counters (benchmark
    /// warmup).
    pub fn reset_pool_stats(&self) {
        for w in self.respondents() {
            let _ = w.query(Ctrl::ResetPoolStats);
        }
    }

    /// Per-element telemetry profiles merged across shards: each worker
    /// snapshots its own engine's counters
    /// ([`Router::telemetry_profiles`]) and the control plane sums
    /// records by element name, so the merged profile reads like a
    /// serial run of the same graph. Zeroed counters unless the crate
    /// was built with the `telemetry` feature.
    pub fn telemetry_profiles(&self) -> Vec<ElementProfile> {
        let shards: Vec<Vec<ElementProfile>> = self
            .respondents()
            .filter_map(|w| match w.query(Ctrl::Telemetry) {
                Ok(CtrlReply::Telemetry(v)) => Some(v),
                _ => None,
            })
            .collect();
        telemetry::merge_profiles(&shards)
    }

    /// Runtime gauges of every worker shard, in shard order: inbound-ring
    /// occupancy high-water, backoff snoozes, and batches/packets
    /// processed. Zeroed unless built with the `telemetry` feature.
    pub fn shard_gauges(&self) -> Vec<ShardGauges> {
        self.workers
            .iter()
            .filter_map(|w| match w.query(Ctrl::Gauges) {
                Ok(CtrlReply::Gauges(mut g)) => {
                    g.shard = w.shard;
                    Some(g)
                }
                _ => None,
            })
            .collect()
    }

    /// Ingress-steering gauges: classification self-time, batches and
    /// packets steered, and snoozes, per steering context. In
    /// parallel-steering mode one row per steerer thread; in serial
    /// mode a single row for the injection thread's inline steering.
    /// Zeroed unless built with the `telemetry` feature.
    pub fn steer_gauges(&self) -> Vec<SteerGauges> {
        if self.steerers.is_empty() {
            return vec![self.serial_steer.snapshot()];
        }
        self.steerers
            .iter()
            .filter_map(|s| match s.query(SteerCtrl::Gauges) {
                Ok(SteerReply::Gauges(mut g)) => {
                    g.steerer = s.index;
                    Some(g)
                }
                _ => None,
            })
            .collect()
    }

    /// Stops the workers and joins their threads. Equivalent to dropping
    /// the router, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Orderly, bounded teardown: signal stop, keep draining TX so no
    /// worker deadlocks against a full outbound ring, join every thread
    /// that exits within the wedge timeout (wedged threads are
    /// abandoned, never blocked on), then reclaim and recycle every
    /// packet still sitting in the rings of joined workers so pool
    /// accounting balances even after an abortive teardown.
    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        let deadline = Instant::now() + self.wedge_timeout;
        loop {
            self.collect();
            let all_finished = self
                .workers
                .iter()
                .chain(self.graveyard.iter())
                .all(|w| w.handle.as_ref().is_none_or(JoinHandle::is_finished))
                && self
                    .steerers
                    .iter()
                    .all(|s| s.handle.as_ref().is_none_or(JoinHandle::is_finished));
            if all_finished || Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
        let mut leftovers: Vec<ShardItem> = Vec::new();
        // Steerer threads first: once joined, their input rings can be
        // reclaimed through the producer side the supervisor holds.
        for s in &mut self.steerers {
            if let Some(h) = s.handle.take() {
                if h.is_finished() {
                    let _ = h.join();
                    s.to_steerer.reclaim(&mut leftovers);
                } else {
                    s.handle = None; // wedged: abandon, leave its rings alone
                }
            }
        }
        for groups in &mut self.pending_steer {
            leftovers.append(groups);
        }
        for w in self.workers.iter_mut().chain(self.graveyard.iter_mut()) {
            if let Some(h) = w.handle.take() {
                if h.is_finished() {
                    let _ = h.join();
                    // The consumer is gone: reclaim the inbound ring.
                    w.to_worker.reclaim(&mut leftovers);
                } else {
                    // Wedged thread: abandon it (detached). Its rings may
                    // still be touched, so leave them alone.
                    w.handle = None;
                }
            }
            w.from_worker.pop_batch(usize::MAX, &mut leftovers);
        }
        // Buffered-but-never-handed bursts also recycle.
        for groups in &mut self.pending {
            leftovers.append(groups);
        }
        for (_, mut batch) in leftovers.drain(..) {
            batch.recycle_packets();
        }
        self.collect();
    }
}

impl Drop for ParallelRouter {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl CheckpointEngine for ParallelRouter {
    fn checkpoint_snapshot(&mut self) -> Result<EngineSnapshot> {
        ParallelRouter::checkpoint_snapshot(self)
    }

    fn checkpoint_restore(&mut self, ckpt: &Checkpoint) -> Result<RestoreStats> {
        ParallelRouter::checkpoint_restore(self, ckpt)
    }
}

/// One row of [`ParallelRouter::shard_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Whether the worker is alive and processing.
    pub live: bool,
    /// Poll-loop heartbeat (advances while the worker is responsive).
    pub heartbeat: u64,
    /// Restarts spent on this shard slot.
    pub restarts: u32,
}

/// Per-worker configuration handed to the worker thread.
#[derive(Clone, Copy)]
struct WorkerCfg {
    shard: usize,
    batching: bool,
    burst: usize,
    backoff_spins: u32,
    ring_capacity: usize,
    /// Number of steerer threads (each gets its own inbound ring into
    /// this worker, on top of the supervisor's direct ring).
    steerers: usize,
    /// Adapt the dequeue burst to ring occupancy.
    adaptive: bool,
    /// Latency-biased backoff profile (see [`ParallelOpts::pin_cores`]).
    pin_cores: bool,
}

/// A [`Backoff`] honoring the `pin_cores` pacing profile.
fn make_backoff(spins: u32, pin_cores: bool) -> Backoff {
    if pin_cores {
        Backoff::with_max_nap(spins, PINNED_NAP_CAP)
    } else {
        Backoff::new(spins)
    }
}

/// Creates the rings, channels, and thread for one worker shard. Also
/// returns the producer endpoints of the steerer inbound rings (in
/// steerer order) for the caller to distribute to the steerer threads.
fn spawn_worker<S: Slot + 'static>(
    graph: &Arc<RouterGraph>,
    cfg: WorkerCfg,
    stop: &Arc<AtomicBool>,
    bell: &Arc<Doorbell>,
) -> Result<(Worker, Vec<RingProducer<ShardItem>>)> {
    let (to_worker, worker_in) = spsc::<ShardItem>(cfg.ring_capacity);
    let mut inputs = vec![worker_in];
    let mut steer_producers = Vec::with_capacity(cfg.steerers);
    for _ in 0..cfg.steerers {
        let (p, c) = spsc::<ShardItem>(cfg.ring_capacity);
        steer_producers.push(p);
        inputs.push(c);
    }
    let (worker_out, from_worker) = spsc::<ShardItem>(cfg.ring_capacity);
    let (ctrl_tx, ctrl_rx) = mpsc::channel::<Ctrl>();
    let (reply_tx, reply_rx) = mpsc::channel::<CtrlReply>();
    let shared = Arc::new(WorkerShared::default());
    let g = Arc::clone(graph);
    let stop_w = Arc::clone(stop);
    let shared_w = Arc::clone(&shared);
    let bell_w = Arc::clone(bell);
    let handle = std::thread::Builder::new()
        .name(format!("click-shard-{}", cfg.shard))
        .spawn(move || {
            worker_main::<S>(
                &g, cfg, inputs, worker_out, ctrl_rx, reply_tx, stop_w, shared_w, bell_w,
            );
        })
        .map_err(|e| Error::runtime(format!("spawning shard {}: {e}", cfg.shard)))?;
    Ok((
        Worker {
            shard: cfg.shard,
            to_worker,
            from_worker,
            ctrl: ctrl_tx,
            reply: reply_rx,
            enqueued_batches: 0,
            enqueued_pkts: 0,
            shared,
            restarts: 0,
            dead: false,
            steered_batches_base: 0,
            steered_pkts_base: 0,
            handle: Some(handle),
        },
        steer_producers,
    ))
}

/// Per-steerer configuration handed to the steerer thread.
#[derive(Clone, Copy)]
struct SteererCfg {
    index: usize,
    shards: usize,
    backoff_spins: u32,
    ring_capacity: usize,
    adaptive: bool,
    pin_cores: bool,
}

/// Creates the input ring, control channels, and thread for one steerer.
/// `wakers[s]` is shard `s`'s worker thread: the steerer unparks it
/// after pushing into that worker's ring.
#[allow(clippy::too_many_arguments)]
fn spawn_steerer(
    cfg: SteererCfg,
    outputs: Vec<RingProducer<ShardItem>>,
    wakers: Vec<Thread>,
    mask: Arc<SharedLiveMask>,
    steered: Arc<Vec<SteeredCounters>>,
    drops: Arc<AtomicU64>,
    stop: &Arc<AtomicBool>,
    bell: &Arc<Doorbell>,
) -> Result<Steerer> {
    let (to_steerer, input) = spsc::<ShardItem>(cfg.ring_capacity);
    let (ctrl_tx, ctrl_rx) = mpsc::channel::<SteerCtrl>();
    let (reply_tx, reply_rx) = mpsc::channel::<SteerReply>();
    let shared = Arc::new(SteererShared::default());
    let stop_s = Arc::clone(stop);
    let shared_s = Arc::clone(&shared);
    let bell_s = Arc::clone(bell);
    let handle = std::thread::Builder::new()
        .name(format!("click-steer-{}", cfg.index))
        .spawn(move || {
            steerer_main(
                cfg, input, outputs, wakers, &mask, &steered, &drops, &ctrl_rx, &reply_tx, &stop_s,
                &shared_s, &bell_s,
            );
        })
        .map_err(|e| Error::runtime(format!("spawning steerer {}: {e}", cfg.index)))?;
    Ok(Steerer {
        index: cfg.index,
        to_steerer,
        ctrl: ctrl_tx,
        reply: reply_rx,
        enqueued_batches: 0,
        shared,
        handle: Some(handle),
    })
}

/// The steerer thread: pops raw injection bursts from its input ring,
/// classifies each packet against a fresh snapshot of the shared
/// live-shard mask, and pushes per-shard batches straight into the
/// worker rings it owns producers for. Per-flow order holds because the
/// injection thread partitions flows deterministically across steerers
/// ([`steerer_for`]) and one steerer processes its input FIFO.
#[allow(clippy::too_many_arguments)]
fn steerer_main(
    cfg: SteererCfg,
    input: RingConsumer<ShardItem>,
    mut outputs: Vec<RingProducer<ShardItem>>,
    mut wakers: Vec<Thread>,
    mask: &SharedLiveMask,
    steered: &[SteeredCounters],
    drops: &AtomicU64,
    ctrl: &mpsc::Receiver<SteerCtrl>,
    reply: &mpsc::Sender<SteerReply>,
    stop: &AtomicBool,
    shared: &SteererShared,
    bell: &Doorbell,
) {
    let mut backoff = make_backoff(cfg.backoff_spins, cfg.pin_cores);
    let mut inbox: Vec<ShardItem> = Vec::new();
    let mut scratch: Vec<PacketBatch> = (0..cfg.shards).map(|_| PacketBatch::default()).collect();
    let mut free: Vec<PacketBatch> = Vec::new();
    let mut hash_cache = FlowHashCache::default();
    let capacity = input.capacity();
    let mut deq = if cfg.adaptive {
        AdaptiveBurst::new(DEQUEUE_BURST, DEQUEUE_BURST, capacity.max(DEQUEUE_BURST))
    } else {
        AdaptiveBurst::fixed(DEQUEUE_BURST)
    };
    let gauges = SteerGaugeTracker::new(cfg.index);
    loop {
        shared.heartbeat.fetch_add(1, Ordering::Relaxed);
        answer_steer_ctrl(&mut outputs, &mut wakers, &gauges, ctrl, reply);
        let popped = input.pop_batch(deq.get(), &mut inbox);
        deq.observe(input.len(), capacity);
        if popped > 0 {
            backoff.reset();
            let t0 = telemetry::ENABLED.then(Instant::now);
            let mut pkts = 0u64;
            // Shards delivered to during this burst; each gets one
            // doorbell unpark at the end (per-batch unparks are futex
            // traffic that swamps small batches).
            let mut touched = 0u128;
            for (dev, mut batch) in inbox.drain(..) {
                pkts += batch.len() as u64;
                // One mask snapshot per burst: cheap, and any staleness
                // is recovered by the dead-target recheck in `deliver`
                // plus the supervisor's ring reclaim.
                let steering = RssSteering::with_live_mask(cfg.shards, mask.snapshot());
                for p in batch.drain() {
                    match steering.live_shard_for_cached(p.data(), dev, &mut hash_cache) {
                        Some(s) => scratch[s].push(p),
                        None => {
                            drops.fetch_add(1, Ordering::Relaxed);
                            p.recycle();
                        }
                    }
                }
                if free.len() < 64 {
                    free.push(batch);
                }
                for (s, slot) in scratch.iter_mut().enumerate() {
                    if slot.is_empty() {
                        continue;
                    }
                    let out = std::mem::replace(slot, free.pop().unwrap_or_default());
                    deliver(
                        dev,
                        s,
                        out,
                        &mut outputs,
                        &mut wakers,
                        mask,
                        steered,
                        drops,
                        &mut free,
                        &gauges,
                        ctrl,
                        reply,
                        stop,
                        &cfg,
                        &mut touched,
                    );
                }
            }
            for (s, w) in wakers.iter().enumerate() {
                if touched & (1u128 << s) != 0 {
                    w.unpark();
                }
            }
            gauges.steered(
                popped as u64,
                pkts,
                t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
            // Release-publish completion *after* the steered counters,
            // so a supervisor that reads this steerer as idle also sees
            // every per-shard delivery it made.
            shared
                .processed_batches
                .fetch_add(popped as u64, Ordering::Release);
            bell.ring();
        } else if stop.load(Ordering::Acquire) && input.is_empty() {
            return;
        } else {
            gauges.snoozed();
            backoff.snooze();
        }
    }
}

/// Pushes one classified batch into a shard ring, spinning under
/// backpressure. Re-checks the shared live mask on every attempt: a
/// target that died mid-push is re-steered across the survivors (which
/// may fan the batch out to several shards), exactly like the
/// supervisor's salvage path — so a steerer can never wedge against a
/// dead consumer. Keeps answering steerer control messages while
/// blocked, so a supervisor Reclaim can never deadlock against a full
/// ring.
#[allow(clippy::too_many_arguments)]
fn deliver(
    dev: DeviceId,
    shard: usize,
    batch: PacketBatch,
    outputs: &mut [RingProducer<ShardItem>],
    wakers: &mut [Thread],
    mask: &SharedLiveMask,
    steered: &[SteeredCounters],
    drops: &AtomicU64,
    free: &mut Vec<PacketBatch>,
    gauges: &SteerGaugeTracker,
    ctrl: &mpsc::Receiver<SteerCtrl>,
    reply: &mpsc::Sender<SteerReply>,
    stop: &AtomicBool,
    cfg: &SteererCfg,
    touched: &mut u128,
) {
    let mut worklist: Vec<(usize, PacketBatch)> = vec![(shard, batch)];
    let mut backoff = make_backoff(cfg.backoff_spins, cfg.pin_cores);
    while let Some((s, mut batch)) = worklist.pop() {
        backoff.reset();
        loop {
            let m = mask.snapshot();
            if m & (1u128 << s) == 0 {
                // The target died since classification: re-steer the
                // whole batch under the fresh mask.
                let steering = RssSteering::with_live_mask(cfg.shards, m);
                let mut rerouted: Vec<(usize, PacketBatch)> = Vec::new();
                for p in batch.drain() {
                    match steering.live_shard_for(p.data(), dev) {
                        Some(t) => match rerouted.iter_mut().find(|(k, _)| *k == t) {
                            Some((_, b)) => b.push(p),
                            None => {
                                let mut b = free.pop().unwrap_or_default();
                                b.push(p);
                                rerouted.push((t, b));
                            }
                        },
                        None => {
                            drops.fetch_add(1, Ordering::Relaxed);
                            p.recycle();
                        }
                    }
                }
                if free.len() < 64 {
                    free.push(batch);
                }
                worklist.extend(rerouted);
                break;
            }
            let n = batch.len() as u64;
            match outputs[s].try_push((dev, batch)) {
                Ok(()) => {
                    steered[s].pkts.fetch_add(n, Ordering::Release);
                    steered[s].batches.fetch_add(1, Ordering::Release);
                    // Defer the worker's doorbell to the caller: one
                    // unpark per popped burst per shard, not per batch.
                    *touched |= 1u128 << s;
                    break;
                }
                Err((_, back)) => batch = back,
            }
            if stop.load(Ordering::Acquire) {
                batch.recycle_packets();
                break;
            }
            // The target may be napping on a full ring's far side only
            // if the *worker* stalled; wake it so it drains.
            wakers[s].unpark();
            answer_steer_ctrl(outputs, wakers, gauges, ctrl, reply);
            gauges.snoozed();
            backoff.snooze();
        }
    }
}

/// Answers every pending steerer control message. `Reclaim` drains this
/// steerer's producer ring for a dead shard (race-free: the steerer is
/// that ring's single producer, and the dead worker no longer pops);
/// `Replace` installs the restarted shard's fresh ring.
fn answer_steer_ctrl(
    outputs: &mut [RingProducer<ShardItem>],
    wakers: &mut [Thread],
    gauges: &SteerGaugeTracker,
    ctrl: &mpsc::Receiver<SteerCtrl>,
    reply: &mpsc::Sender<SteerReply>,
) {
    while let Ok(q) = ctrl.try_recv() {
        let r = match q {
            SteerCtrl::Gauges => SteerReply::Gauges(gauges.snapshot()),
            SteerCtrl::Reclaim(shard) => {
                let mut items = Vec::new();
                outputs[shard].reclaim(&mut items);
                SteerReply::Reclaimed(items)
            }
            SteerCtrl::Replace(shard, p, waker) => {
                outputs[shard] = p;
                wakers[shard] = waker;
                SteerReply::Done
            }
        };
        if reply.send(r).is_err() {
            return; // main side gone; shutdown is imminent
        }
    }
}

/// The worker thread: builds its shard's router clone and busy-polls the
/// inbound ring, forwarding each burst to quiescence and publishing TX
/// output. The packet loop runs under `catch_unwind`; on a panic the
/// worker publishes [`HEALTH_PANICKED`] and parks as a zombie that keeps
/// answering control queries (so the dead shard's statistics survive)
/// until shutdown.
#[allow(clippy::too_many_arguments)]
fn worker_main<S: Slot>(
    graph: &RouterGraph,
    cfg: WorkerCfg,
    inputs: Vec<RingConsumer<ShardItem>>,
    output: RingProducer<ShardItem>,
    ctrl: mpsc::Receiver<Ctrl>,
    reply: mpsc::Sender<CtrlReply>,
    stop: Arc<AtomicBool>,
    shared: Arc<WorkerShared>,
    bell: Arc<Doorbell>,
) {
    // The graph was validated on the main thread; a failure here is a
    // bug, surfaced as a health-word state rather than a panic.
    shared.health.store(HEALTH_RUNNING, Ordering::Release);
    let Ok(mut router) = Router::<S>::from_graph_in_shard(graph, &Library::standard(), cfg.shard)
    else {
        shared.health.store(HEALTH_BUILD_FAILED, Ordering::Release);
        bell.ring();
        zombie_loop::<S>(
            None,
            &ShardGaugeTracker::new(cfg.shard),
            &ctrl,
            &reply,
            &stop,
            &shared,
        );
        return;
    };
    router.set_batching(cfg.batching);
    router.set_batch_burst(cfg.burst);
    let mut n_dev = router.devices.len();

    let mut backoff = make_backoff(cfg.backoff_spins, cfg.pin_cores);
    let mut inbox: Vec<ShardItem> = Vec::new();
    let mut free: Vec<PacketBatch> = Vec::new();
    let mut gauges = ShardGaugeTracker::new(cfg.shard);
    // Dequeue burst: fixed floor, or occupancy-adapted per poll.
    let total_capacity: usize = inputs.iter().map(RingConsumer::capacity).sum();
    let mut deq = if cfg.adaptive {
        AdaptiveBurst::new(
            DEQUEUE_BURST,
            DEQUEUE_BURST,
            total_capacity.max(DEQUEUE_BURST),
        )
    } else {
        AdaptiveBurst::fixed(DEQUEUE_BURST)
    };
    loop {
        shared.heartbeat.fetch_add(1, Ordering::Relaxed);
        // Control drain. `Ctrl::Swap` is handled only here — the one
        // point with `&mut router` — so every other answer path can stay
        // read-only and simply report the shard as busy.
        while let Ok(q) = ctrl.try_recv() {
            let r = match q {
                Ctrl::Swap(g) => {
                    let outcome = router.hot_swap(&g, &Library::standard());
                    n_dev = router.devices.len();
                    CtrlReply::Swapped(outcome)
                }
                // Like `Swap`, the checkpoint paths need `&mut Router`
                // and a quiesced shard; only this loop has both.
                Ctrl::Snapshot => CtrlReply::Snapshot(Box::new(Ok(router.checkpoint_snapshot()))),
                Ctrl::Restore(plan) => CtrlReply::Restored(Box::new(Ok(router.restore_records(
                    &plan.elements,
                    &[],
                    plan.target_drops,
                )))),
                other => answer_one(&router, &gauges, other),
            };
            if reply.send(r).is_err() {
                break; // main side gone; shutdown is imminent
            }
        }
        // The gauge reads are const-folded away when telemetry is off
        // (`ENABLED` is false at compile time), keeping the poll loop
        // untouched.
        let depth = if telemetry::ENABLED {
            inputs.iter().map(RingConsumer::len).sum()
        } else {
            0
        };
        // Round-robin over the inbound rings (the supervisor's direct
        // ring plus one per steerer): up to the adaptive burst from
        // each, so no single producer starves the others.
        let burst = deq.get();
        let mut popped = 0;
        let mut occupancy = 0;
        for input in &inputs {
            popped += input.pop_batch(burst, &mut inbox);
            occupancy += input.len();
        }
        deq.observe(occupancy, total_capacity);
        if popped > 0 {
            backoff.reset();
            if telemetry::ENABLED {
                let packets = inbox.iter().map(|(_, b)| b.len() as u64).sum();
                gauges.polled(depth, popped as u64, packets);
            }
            // Fault isolation: a panic anywhere in the element graph is
            // confined to this shard. The router lives outside the catch
            // so its statistics remain readable afterwards.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for (dev, mut batch) in inbox.drain(..) {
                    let batch_pkts = batch.len() as u64;
                    for p in batch.drain() {
                        router.devices.inject(dev, p);
                    }
                    if free.len() < 64 {
                        free.push(batch);
                    }
                    router.run_until_idle(WORKER_ROUNDS);
                    for d in 0..n_dev {
                        let dev = DeviceId(d);
                        if router.devices.tx_len(dev) == 0 {
                            continue;
                        }
                        let mut out = free.pop().unwrap_or_default();
                        router.devices.drain_tx_into(dev, &mut out);
                        push_with_backpressure(
                            &output,
                            (dev, out),
                            &router,
                            &mut gauges,
                            &ctrl,
                            &reply,
                            &stop,
                            cfg.backoff_spins,
                            &bell,
                        );
                    }
                    shared.completed_batches.fetch_add(1, Ordering::Release);
                    shared
                        .completed_pkts
                        .fetch_add(batch_pkts, Ordering::Release);
                }
            }));
            // One doorbell ring per productive poll: the supervisor sees
            // the output batches and completion counters published above
            // without waiting out its own nap.
            bell.ring();
            if outcome.is_err() {
                // Unprocessed inbox items are part of the in-flight loss
                // the supervisor accounts; drop their buffers here.
                inbox.clear();
                shared.health.store(HEALTH_PANICKED, Ordering::Release);
                bell.ring();
                zombie_loop(Some(&router), &gauges, &ctrl, &reply, &stop, &shared);
                return;
            }
        } else if stop.load(Ordering::Acquire) && inputs.iter().all(RingConsumer::is_empty) {
            shared.health.store(HEALTH_EXITED, Ordering::Release);
            bell.ring();
            return;
        } else {
            gauges.snoozed();
            backoff.snooze();
        }
    }
}

/// The parked state of a dead worker: never touches packets again, but
/// keeps the control plane honest — statistics queries against the dead
/// shard's router still answer (stats salvage), and a build-failure
/// zombie answers [`CtrlReply::Gone`]. Exits when the runtime shuts
/// down or the main side drops the control channel.
fn zombie_loop<S: Slot>(
    router: Option<&Router<S>>,
    gauges: &ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
    stop: &AtomicBool,
    shared: &WorkerShared,
) {
    loop {
        shared.heartbeat.fetch_add(1, Ordering::Relaxed);
        match router {
            Some(r) => answer_ctrl(r, gauges, ctrl, reply),
            None => {
                while let Ok(_q) = ctrl.try_recv() {
                    if reply.send(CtrlReply::Gone).is_err() {
                        break;
                    }
                }
            }
        }
        if stop.load(Ordering::Acquire) {
            shared.health.store(HEALTH_EXITED, Ordering::Release);
            return;
        }
        // Nothing to do but answer queries; sleep instead of spinning.
        match ctrl.recv_timeout(Duration::from_millis(1)) {
            Ok(q) => {
                let r = match router {
                    Some(rt) => answer_one(rt, gauges, q),
                    None => CtrlReply::Gone,
                };
                if reply.send(r).is_err() {
                    shared.health.store(HEALTH_EXITED, Ordering::Release);
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                shared.health.store(HEALTH_EXITED, Ordering::Release);
                return;
            }
        }
    }
}

/// Publishes one TX burst, spinning under backpressure. Keeps answering
/// control queries while blocked (so a stat query can never deadlock
/// against a full ring), and abandons the burst if the runtime is
/// shutting down.
#[allow(clippy::too_many_arguments)]
fn push_with_backpressure<S: Slot>(
    output: &RingProducer<ShardItem>,
    mut item: ShardItem,
    router: &Router<S>,
    gauges: &mut ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
    stop: &AtomicBool,
    backoff_spins: u32,
    bell: &Doorbell,
) {
    let mut backoff = Backoff::new(backoff_spins);
    loop {
        match output.try_push(item) {
            Ok(()) => return,
            Err(back) => item = back,
        }
        if stop.load(Ordering::Acquire) {
            item.1.recycle_packets();
            return;
        }
        answer_ctrl(router, gauges, ctrl, reply);
        gauges.snoozed();
        // A full output ring means the supervisor fell behind on
        // collection; wake it before napping.
        bell.ring();
        backoff.snooze();
    }
}

/// Answers one control query against this shard's router.
fn answer_one<S: Slot>(router: &Router<S>, gauges: &ShardGaugeTracker, q: Ctrl) -> CtrlReply {
    match q {
        Ctrl::Ping => CtrlReply::Pong,
        Ctrl::Stat(elem, stat) => CtrlReply::Stat(router.stat(&elem, &stat)),
        Ctrl::ClassStat(class, stat) => CtrlReply::Value(router.class_stat(&class, &stat)),
        Ctrl::EngineDrops => CtrlReply::Drops {
            unconnected: router.unconnected_drops(),
            reentrant: router.reentrant_drops(),
        },
        Ctrl::PoolStats => CtrlReply::Pool(crate::packet::pool_stats()),
        Ctrl::ResetPoolStats => {
            crate::packet::reset_pool_stats();
            CtrlReply::Value(0)
        }
        Ctrl::Telemetry => CtrlReply::Telemetry(router.telemetry_profiles()),
        Ctrl::Gauges => CtrlReply::Gauges(gauges.snapshot()),
        Ctrl::DropGauge => CtrlReply::Value(router.total_drops()),
        // A swap needs `&mut Router`; only the worker's top-of-loop has
        // it. Anywhere else (zombies, backpressure stalls) the shard is
        // by definition not quiesced, so refuse.
        Ctrl::Swap(_) => CtrlReply::Swapped(Err(Error::runtime(
            "shard busy: hot swap requires a quiesced worker",
        ))),
        // The checkpoint paths share the swap discipline.
        Ctrl::Snapshot => CtrlReply::Snapshot(Box::new(Err(Error::runtime(
            "shard busy: checkpoint requires a quiesced worker",
        )))),
        Ctrl::Restore(_) => CtrlReply::Restored(Box::new(Err(Error::runtime(
            "shard busy: restore requires a quiesced worker",
        )))),
    }
}

/// Answers every pending control query against this shard's router.
fn answer_ctrl<S: Slot>(
    router: &Router<S>,
    gauges: &ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
) {
    while let Ok(q) = ctrl.try_recv() {
        if reply.send(answer_one(router, gauges, q)).is_err() {
            return; // main side gone; shutdown is imminent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::headers::build_udp_packet;
    use click_core::lang::read_config;

    fn counter_graph() -> RouterGraph {
        read_config("FromDevice(in0) -> c :: Counter -> Queue(4096) -> ToDevice(out0);").unwrap()
    }

    fn udp(sport: u16, seq: u8) -> Packet {
        let mut p = build_udp_packet([1; 6], [2; 6], 0x0A000002, 0x0A000102, sport, 9, 18, 64);
        let n = p.len();
        p.data_mut()[n - 1] = seq;
        p
    }

    #[test]
    fn single_shard_forwards_everything() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(1)).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for i in 0..40u8 {
            r.inject(in0, udp(1000 + u16::from(i % 8), i));
        }
        let got = r.run_until_idle();
        assert_eq!(got, 40);
        assert_eq!(r.tx_len(out0), 40);
        assert_eq!(r.stat("c", "count"), Some(40));
        assert_eq!(r.class_stat("Counter", "count"), 40);
        assert_eq!(
            r.fault_gauges(),
            FaultGauges {
                live_shards: 1,
                shards: 1,
                ..FaultGauges::default()
            }
        );
        r.shutdown();
    }

    #[test]
    fn shards_preserve_per_flow_order() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(4).batched(8))
                .unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        // 8 flows × 16 packets, interleaved.
        for seq in 0..16u8 {
            for flow in 0..8u16 {
                r.inject(in0, udp(2000 + flow, seq));
            }
        }
        assert_eq!(r.run_until_idle(), 128);
        let tx = r.take_tx(out0);
        assert_eq!(tx.len(), 128);
        // Within each flow (source port), sequence numbers stay ordered.
        for flow in 0..8u16 {
            let seqs: Vec<u8> = tx
                .iter()
                .filter(|p| crate::steer::flow_key(p.data()).unwrap().3 == 2000 + flow)
                .map(|p| p.data()[p.len() - 1])
                .collect();
            assert_eq!(seqs, (0..16u8).collect::<Vec<_>>(), "flow {flow} reordered");
        }
        assert_eq!(r.class_stat("Counter", "count"), 128);
        assert_eq!(r.unconnected_drops(), 0);
    }

    #[test]
    fn workers_use_their_own_packet_pools() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2).batched(8))
                .unwrap();
        let in0 = r.device_id("in0").unwrap();
        r.reset_pool_stats();
        for i in 0..32u8 {
            r.inject(in0, udp(3000 + u16::from(i), 0));
        }
        r.run_until_idle();
        // The workers did the forwarding, so their (merged) pools saw the
        // traffic; exact counts depend on engine internals, but the
        // counters must be alive and shard-local.
        let _ = r.pool_stats();
        r.shutdown();
    }

    #[test]
    fn backpressure_survives_tiny_rings() {
        let g = counter_graph();
        let mut opts = ParallelOpts::new(2).batched(4);
        opts.ring_capacity = 2; // force both rings to fill repeatedly
        let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for i in 0..200u16 {
            r.inject(in0, udp(4000 + (i % 16), (i / 16) as u8));
        }
        assert_eq!(r.run_until_idle(), 200, "no drops under backpressure");
        assert_eq!(r.tx_len(out0), 200);
    }

    #[test]
    fn invalid_config_errors_before_spawning() {
        let g = read_config("FromDevice(a) -> ToDevice(b);").unwrap();
        assert!(ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2)).is_err());
    }

    #[test]
    fn absurd_shard_counts_error() {
        let g = counter_graph();
        assert!(ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(0)).is_err());
        assert!(
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(129)).is_err()
        );
    }

    #[test]
    fn drop_joins_worker_threads() {
        let g = counter_graph();
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(3)).unwrap();
        drop(r); // must not hang or leak spinning threads
    }

    #[test]
    fn steerer_mode_preserves_per_flow_order() {
        let g = counter_graph();
        let opts = ParallelOpts::new(4).batched(8).with_steerers(2);
        let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for seq in 0..16u8 {
            for flow in 0..8u16 {
                r.inject(in0, udp(2000 + flow, seq));
            }
        }
        assert_eq!(r.run_until_idle(), 128);
        let tx = r.take_tx(out0);
        assert_eq!(tx.len(), 128);
        for flow in 0..8u16 {
            let seqs: Vec<u8> = tx
                .iter()
                .filter(|p| crate::steer::flow_key(p.data()).unwrap().3 == 2000 + flow)
                .map(|p| p.data()[p.len() - 1])
                .collect();
            assert_eq!(seqs, (0..16u8).collect::<Vec<_>>(), "flow {flow} reordered");
        }
        assert_eq!(r.class_stat("Counter", "count"), 128);
        r.shutdown();
    }

    #[test]
    fn steerer_mode_survives_tiny_rings() {
        let g = counter_graph();
        let mut opts = ParallelOpts::new(2).batched(4).with_steerers(3);
        opts.ring_capacity = 2; // steerer input + every shard ring tiny
        let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for i in 0..200u16 {
            r.inject(in0, udp(4000 + (i % 16), (i / 16) as u8));
        }
        assert_eq!(r.run_until_idle(), 200, "no drops under backpressure");
        assert_eq!(r.tx_len(out0), 200);
    }

    #[test]
    fn steerer_mode_with_fixed_burst_and_pinning_forwards_everything() {
        let g = counter_graph();
        let opts = ParallelOpts::new(2)
            .batched(8)
            .with_steerers(2)
            .fixed_burst()
            .pin_cores();
        let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        let in0 = r.device_id("in0").unwrap();
        for i in 0..64u8 {
            r.inject(in0, udp(5000 + u16::from(i % 8), i / 8));
        }
        assert_eq!(r.run_until_idle(), 64);
        r.shutdown();
    }

    #[test]
    fn steer_gauges_cover_every_steering_stage() {
        let g = counter_graph();
        // Serial steering: one record for the inject path.
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2)).unwrap();
        let gauges = r.steer_gauges();
        assert_eq!(gauges.len(), 1);
        assert_eq!(gauges[0].steerer, 0);
        drop(r);
        // Parallel steering: one record per steerer, indexed.
        let opts = ParallelOpts::new(2).with_steerers(3);
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        let gauges = r.steer_gauges();
        assert_eq!(gauges.len(), 3);
        for (i, g) in gauges.iter().enumerate() {
            assert_eq!(g.steerer, i);
        }
        r.shutdown();
    }

    #[test]
    fn absurd_steerer_counts_error() {
        let g = counter_graph();
        let opts = ParallelOpts::new(2).with_steerers(MAX_STEERERS + 1);
        assert!(ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).is_err());
    }

    #[test]
    fn drop_joins_steerer_threads() {
        let g = counter_graph();
        let opts = ParallelOpts::new(2).with_steerers(4);
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        drop(r); // must not hang or leak spinning steerers
    }

    #[test]
    fn ping_and_health_report_live_workers() {
        let g = counter_graph();
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2)).unwrap();
        r.ping(0).unwrap();
        r.ping(1).unwrap();
        assert!(r.ping(2).is_err(), "no such shard");
        let health = r.shard_health();
        assert_eq!(health.len(), 2);
        assert!(health.iter().all(|h| h.live && h.restarts == 0));
        r.shutdown();
    }
}
