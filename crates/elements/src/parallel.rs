//! The multi-core router runtime: N independent shards of the compiled
//! element graph, RSS flow steering, and bounded ring queues.
//!
//! The paper's runtime is a "constantly-active kernel thread" — one core
//! runs the whole element graph. [`ParallelRouter`] scales that model
//! across cores the way production packet processors (and Click's own
//! SMP successor) do:
//!
//! * **Per-shard graph clones.** Every worker thread builds its *own*
//!   [`Router<S>`] from the same configuration graph. Nothing on the
//!   packet path is shared between shards — no locks, no cache-line
//!   ping-pong — and each worker thread gets its own thread-local
//!   packet pool ([`crate::packet`]) and its own element statistics.
//!   Graph-level optimizations (`fastclassifier`, `devirtualize`,
//!   `xform`) compose with sharding unchanged: each shard runs the same
//!   optimized graph, just on a subset of flows.
//! * **RSS flow steering.** The injection side hashes each frame's IP
//!   5-tuple ([`crate::steer`]) to pick a shard, so all packets of one
//!   flow traverse one shard in FIFO order — per-flow ordering is
//!   preserved without cross-core synchronization. Non-IP frames steer
//!   by receiving device.
//! * **Bounded SPSC rings.** [`PacketBatch`]es travel to workers and
//!   back on fixed-capacity single-producer/single-consumer rings
//!   ([`crate::ring`]): batched enqueue/dequeue, busy-poll with a
//!   backoff knob, and backpressure instead of drops when a shard falls
//!   behind.
//!
//! Statistics aggregate through a control channel:
//! [`ParallelRouter::stat`] / [`ParallelRouter::class_stat`] query every
//! worker and sum, so a sharded router answers exactly like a serial
//! [`Router`] and equivalence tests run unchanged.

use crate::batch::PacketBatch;
use crate::element::DeviceId;
use crate::packet::{Packet, PoolStats};
use crate::ring::{spsc, Backoff, RingConsumer, RingProducer};
use crate::router::{Router, Slot};
use crate::steer::RssSteering;
use crate::telemetry::{self, ElementProfile, ShardGaugeTracker, ShardGauges};
use click_core::error::Result;
use click_core::graph::RouterGraph;
use click_core::registry::Library;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// One unit of ring transfer: a burst of packets for (or from) one
/// simulated device.
type ShardItem = (DeviceId, PacketBatch);

/// Task-scheduling budget a worker grants each ring item; generous —
/// one item carries at most a burst of packets.
const WORKER_ROUNDS: usize = 100_000;

/// How long a control query may wait on a worker before the runtime
/// declares it wedged.
const CTRL_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration knobs of the sharded runtime.
#[derive(Debug, Clone)]
pub struct ParallelOpts {
    /// Number of worker shards (graph clones / threads).
    pub shards: usize,
    /// Run each shard's engine in batched (vector) transfer mode.
    pub batching: bool,
    /// Packets per transfer batch: the injection side groups frames into
    /// bursts of this size, and batching shards use it as their engine
    /// burst ([`Router::set_batch_burst`]).
    pub burst: usize,
    /// Capacity (in batches) of each SPSC ring.
    pub ring_capacity: usize,
    /// Busy-poll backoff knob: how many times an idle endpoint spins
    /// before it starts yielding and napping ([`Backoff`]).
    pub backoff_spins: u32,
}

impl ParallelOpts {
    /// Defaults for `shards` workers: scalar engine, device burst,
    /// 256-batch rings, 128-spin backoff.
    pub fn new(shards: usize) -> ParallelOpts {
        ParallelOpts {
            shards,
            batching: false,
            burst: crate::elements::device::BURST,
            ring_capacity: 256,
            backoff_spins: 128,
        }
    }

    /// Enables batched (vector) transfers inside each shard.
    pub fn batched(mut self, burst: usize) -> ParallelOpts {
        self.batching = true;
        self.burst = burst.max(1);
        self
    }
}

/// Control-plane queries the injection thread sends to workers. Rare and
/// cheap; the packet path never touches this channel.
enum Ctrl {
    /// Read one element's named statistic.
    Stat(String, String),
    /// Sum a statistic across all elements of a class.
    ClassStat(String, String),
    /// Read the engine drop counters.
    EngineDrops,
    /// Snapshot the worker thread's packet-pool counters.
    PoolStats,
    /// Reset the worker thread's packet-pool counters.
    ResetPoolStats,
    /// Snapshot the shard's per-element telemetry profiles.
    Telemetry,
    /// Snapshot the shard's runtime gauges (ring depth, backoff).
    Gauges,
}

/// Replies to [`Ctrl`] queries.
enum CtrlReply {
    Stat(Option<u64>),
    Value(u64),
    Drops { unconnected: u64, reentrant: u64 },
    Pool(PoolStats),
    Telemetry(Vec<ElementProfile>),
    Gauges(ShardGauges),
}

/// Main-thread handle to one worker shard.
struct Worker {
    to_worker: RingProducer<ShardItem>,
    from_worker: RingConsumer<ShardItem>,
    ctrl: mpsc::Sender<Ctrl>,
    reply: mpsc::Receiver<CtrlReply>,
    /// Batches handed to this worker (main thread is the only writer).
    enqueued: u64,
    /// Batches the worker has fully processed (incremented by the
    /// worker after the batch's TX output reached the out ring).
    completed: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn is_idle(&self) -> bool {
        self.completed.load(Ordering::Acquire) == self.enqueued
    }

    fn check_alive(&self) {
        if let Some(h) = &self.handle {
            if h.is_finished() && !self.is_idle() {
                panic!("parallel router: a worker shard died with work outstanding");
            }
        }
    }

    fn query(&self, q: Ctrl) -> CtrlReply {
        self.ctrl.send(q).expect("worker control channel closed");
        self.reply
            .recv_timeout(CTRL_TIMEOUT)
            .expect("worker did not answer a control query")
    }
}

/// A router running as N independent shards on worker threads, fed
/// through RSS flow steering. See the module docs for the architecture.
///
/// # Examples
///
/// ```
/// use click_core::lang::read_config;
/// use click_elements::element::Element;
/// use click_elements::packet::Packet;
/// use click_elements::parallel::{ParallelOpts, ParallelRouter};
///
/// let graph = read_config(
///     "FromDevice(in0) -> Counter -> Queue(64) -> ToDevice(out0);",
/// )?;
/// let mut router =
///     ParallelRouter::from_graph::<Box<dyn Element>>(&graph, ParallelOpts::new(2))?;
/// let in0 = router.device_id("in0").unwrap();
/// let out0 = router.device_id("out0").unwrap();
/// router.inject(in0, Packet::new(60));
/// router.run_until_idle();
/// assert_eq!(router.tx_len(out0), 1);
/// assert_eq!(router.class_stat("Counter", "count"), 1);
/// # Ok::<(), click_core::Error>(())
/// ```
pub struct ParallelRouter {
    workers: Vec<Worker>,
    steer: RssSteering,
    stop: Arc<AtomicBool>,
    /// Device names; a device's id is its index.
    devices: Vec<String>,
    /// Per-shard injection buffers, grouped into (device, burst) items.
    pending: Vec<Vec<ShardItem>>,
    /// Collected TX packets per device.
    tx: Vec<Vec<Packet>>,
    /// Reusable empty batch storage for injection grouping.
    storage: Vec<PacketBatch>,
    burst: usize,
    backoff_spins: u32,
}

impl ParallelRouter {
    /// Builds and starts a sharded router over `graph`: validates the
    /// configuration, then spawns one worker thread per shard, each
    /// instantiating its own `Router<S>` from the standard element
    /// library.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Router::from_graph`] (configuration
    /// check failures, element construction errors); no threads are
    /// spawned in that case.
    pub fn from_graph<S: Slot + 'static>(
        graph: &RouterGraph,
        opts: ParallelOpts,
    ) -> Result<ParallelRouter> {
        assert!(opts.shards >= 1, "need at least one shard");
        // Validate once on this thread so errors surface synchronously;
        // the prototype also yields the device name table.
        let prototype: Router<S> = Router::from_graph(graph, &Library::standard())?;
        let devices: Vec<String> = prototype
            .devices
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        drop(prototype);

        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(opts.shards);
        for shard in 0..opts.shards {
            let (to_worker, worker_in) = spsc::<ShardItem>(opts.ring_capacity);
            let (worker_out, from_worker) = spsc::<ShardItem>(opts.ring_capacity);
            let (ctrl_tx, ctrl_rx) = mpsc::channel::<Ctrl>();
            let (reply_tx, reply_rx) = mpsc::channel::<CtrlReply>();
            let completed = Arc::new(AtomicU64::new(0));
            let cfg = WorkerCfg {
                shard,
                batching: opts.batching,
                burst: opts.burst,
                backoff_spins: opts.backoff_spins,
            };
            let g = graph.clone();
            let stop_w = Arc::clone(&stop);
            let completed_w = Arc::clone(&completed);
            let handle = std::thread::Builder::new()
                .name(format!("click-shard-{shard}"))
                .spawn(move || {
                    worker_main::<S>(
                        &g,
                        cfg,
                        worker_in,
                        worker_out,
                        ctrl_rx,
                        reply_tx,
                        stop_w,
                        completed_w,
                    );
                })
                .expect("spawn worker thread");
            workers.push(Worker {
                to_worker,
                from_worker,
                ctrl: ctrl_tx,
                reply: reply_rx,
                enqueued: 0,
                completed,
                handle: Some(handle),
            });
        }
        let n_dev = devices.len();
        Ok(ParallelRouter {
            workers,
            steer: RssSteering::new(opts.shards),
            stop,
            devices,
            pending: (0..opts.shards).map(|_| Vec::new()).collect(),
            tx: (0..n_dev).map(|_| Vec::new()).collect(),
            storage: Vec::new(),
            burst: opts.burst.max(1),
            backoff_spins: opts.backoff_spins,
        })
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Looks up a device id by name (same table every shard uses).
    pub fn device_id(&self, name: &str) -> Option<DeviceId> {
        self.devices.iter().position(|d| d == name).map(DeviceId)
    }

    /// Device names in id order.
    pub fn device_names(&self) -> &[String] {
        &self.devices
    }

    /// The shard a frame received on `dev` steers to (exposed for tests
    /// and the core-scaling benchmark, which pre-partitions traces with
    /// the very same function).
    pub fn shard_for(&self, frame: &[u8], dev: DeviceId) -> usize {
        self.steer.shard_for(frame, dev)
    }

    /// Steers a packet to its shard and buffers it for injection on
    /// `dev`. Call [`ParallelRouter::flush`] (or
    /// [`ParallelRouter::run_until_idle`]) to hand buffered bursts to
    /// the workers.
    pub fn inject(&mut self, dev: DeviceId, p: Packet) {
        let shard = self.steer.shard_for(p.data(), dev);
        let groups = &mut self.pending[shard];
        match groups.last_mut() {
            Some((d, batch)) if *d == dev && batch.len() < self.burst => batch.push(p),
            _ => {
                let mut batch = self.storage.pop().unwrap_or_default();
                batch.push(p);
                groups.push((dev, batch));
            }
        }
    }

    /// Enqueues every buffered burst onto its shard's ring, spinning
    /// with backpressure (and draining TX output) while rings are full.
    /// Returns the number of packets collected into the TX banks while
    /// waiting for ring space.
    pub fn flush(&mut self) -> usize {
        let mut collected = 0;
        let mut backoff = Backoff::new(self.backoff_spins);
        loop {
            let mut remaining = 0;
            for shard in 0..self.workers.len() {
                let mut groups = std::mem::take(&mut self.pending[shard]);
                let n = self.workers[shard].to_worker.push_batch(&mut groups);
                self.workers[shard].enqueued += n as u64;
                remaining += groups.len();
                self.pending[shard] = groups;
            }
            if remaining == 0 {
                return collected;
            }
            // A full ring means a busy shard: keep its TX side moving so
            // the pipeline cannot deadlock, then retry.
            let got = self.collect();
            collected += got;
            if got == 0 {
                for w in &self.workers {
                    w.check_alive();
                }
                backoff.snooze();
            } else {
                backoff.reset();
            }
        }
    }

    /// Drains every worker's outbound ring into the merged TX banks;
    /// returns how many packets arrived.
    pub fn collect(&mut self) -> usize {
        let mut moved = 0;
        let mut items: Vec<ShardItem> = Vec::new();
        for w in &mut self.workers {
            w.from_worker.pop_batch(usize::MAX, &mut items);
            for (dev, mut batch) in items.drain(..) {
                moved += batch.len();
                self.tx[dev.0].extend(batch.drain());
                if self.storage.len() < 64 {
                    self.storage.push(batch);
                }
            }
        }
        moved
    }

    /// Flushes buffered injections and busy-polls (with backoff) until
    /// every shard has processed everything handed to it and all TX
    /// output has been collected. Returns the number of packets that
    /// arrived in the TX banks during this call.
    ///
    /// This is the sharded counterpart of [`Router::run_until_idle`].
    pub fn run_until_idle(&mut self) -> usize {
        let mut collected = self.flush();
        let mut backoff = Backoff::new(self.backoff_spins);
        loop {
            let got = self.collect();
            collected += got;
            if self.workers.iter().all(Worker::is_idle) {
                // Workers are done; one final sweep picks up anything
                // published between the last collect and the idle check.
                collected += self.collect();
                return collected;
            }
            if got == 0 {
                for w in &self.workers {
                    w.check_alive();
                }
                backoff.snooze();
            } else {
                backoff.reset();
            }
        }
    }

    /// Number of packets transmitted on a device and collected so far.
    pub fn tx_len(&self, dev: DeviceId) -> usize {
        self.tx[dev.0].len()
    }

    /// Takes all collected TX packets for a device.
    pub fn take_tx(&mut self, dev: DeviceId) -> Vec<Packet> {
        std::mem::take(&mut self.tx[dev.0])
    }

    /// Drains collected TX packets for a device into a batch (storage
    /// stays warm, mirroring [`crate::router::DeviceBank::drain_tx_into`]).
    ///
    /// Same contract as the serial version: packets are *appended* to
    /// `into` (which need not be empty), and the return value counts only
    /// the packets appended by this call, not `into.len()`.
    pub fn drain_tx_into(&mut self, dev: DeviceId, into: &mut PacketBatch) -> usize {
        let before = into.len();
        let q = &mut self.tx[dev.0];
        let n = q.len();
        into.extend(q.drain(..));
        debug_assert_eq!(
            into.len(),
            before + n,
            "drain_tx_into must append exactly the drained packets"
        );
        n
    }

    /// Reads a named statistic from an element, summed across shards —
    /// the merged view that makes a sharded router answer like a serial
    /// one. `None` if no shard knows the element/statistic.
    pub fn stat(&self, element: &str, stat: &str) -> Option<u64> {
        let mut total = None;
        for w in &self.workers {
            if let CtrlReply::Stat(Some(v)) =
                w.query(Ctrl::Stat(element.to_owned(), stat.to_owned()))
            {
                *total.get_or_insert(0) += v;
            }
        }
        total
    }

    /// Sum of a statistic across all elements of a class, across all
    /// shards.
    pub fn class_stat(&self, class: &str, stat: &str) -> u64 {
        self.workers
            .iter()
            .map(
                |w| match w.query(Ctrl::ClassStat(class.to_owned(), stat.to_owned())) {
                    CtrlReply::Value(v) => v,
                    _ => 0,
                },
            )
            .sum()
    }

    /// Packets dropped on unconnected ports, summed across shards.
    pub fn unconnected_drops(&self) -> u64 {
        self.engine_drops().0
    }

    /// Packets dropped breaking configuration loops, summed across
    /// shards.
    pub fn reentrant_drops(&self) -> u64 {
        self.engine_drops().1
    }

    fn engine_drops(&self) -> (u64, u64) {
        let mut u = 0;
        let mut r = 0;
        for w in &self.workers {
            if let CtrlReply::Drops {
                unconnected,
                reentrant,
            } = w.query(Ctrl::EngineDrops)
            {
                u += unconnected;
                r += reentrant;
            }
        }
        (u, r)
    }

    /// Merged packet-pool counters of every worker thread (each shard
    /// allocates from its own thread-local pool).
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for w in &self.workers {
            if let CtrlReply::Pool(s) = w.query(Ctrl::PoolStats) {
                total.hits += s.hits;
                total.misses += s.misses;
                total.recycled += s.recycled;
                total.dropped += s.dropped;
            }
        }
        total
    }

    /// Resets every worker thread's packet-pool counters (benchmark
    /// warmup).
    pub fn reset_pool_stats(&self) {
        for w in &self.workers {
            let _ = w.query(Ctrl::ResetPoolStats);
        }
    }

    /// Per-element telemetry profiles merged across shards: each worker
    /// snapshots its own engine's counters
    /// ([`Router::telemetry_profiles`]) and the control plane sums
    /// records by element name, so the merged profile reads like a
    /// serial run of the same graph. Zeroed counters unless the crate
    /// was built with the `telemetry` feature.
    pub fn telemetry_profiles(&self) -> Vec<ElementProfile> {
        let shards: Vec<Vec<ElementProfile>> = self
            .workers
            .iter()
            .filter_map(|w| match w.query(Ctrl::Telemetry) {
                CtrlReply::Telemetry(v) => Some(v),
                _ => None,
            })
            .collect();
        telemetry::merge_profiles(&shards)
    }

    /// Runtime gauges of every worker shard, in shard order: inbound-ring
    /// occupancy high-water, backoff snoozes, and batches/packets
    /// processed. Zeroed unless built with the `telemetry` feature.
    pub fn shard_gauges(&self) -> Vec<ShardGauges> {
        self.workers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| match w.query(Ctrl::Gauges) {
                CtrlReply::Gauges(mut g) => {
                    g.shard = i;
                    Some(g)
                }
                _ => None,
            })
            .collect()
    }

    /// Stops the workers and joins their threads. Equivalent to dropping
    /// the router, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Keep the TX side draining while workers wind down: a worker
        // blocked on a full outbound ring frees itself either way (it
        // re-checks `stop`), but collecting lets it finish cleanly.
        loop {
            self.collect();
            if self
                .workers
                .iter()
                .all(|w| w.handle.as_ref().is_none_or(JoinHandle::is_finished))
            {
                break;
            }
            std::thread::yield_now();
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        self.collect();
    }
}

impl Drop for ParallelRouter {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Per-worker configuration handed to the worker thread.
#[derive(Clone, Copy)]
struct WorkerCfg {
    shard: usize,
    batching: bool,
    burst: usize,
    backoff_spins: u32,
}

/// The worker thread: builds its shard's router clone and busy-polls the
/// inbound ring, forwarding each burst to quiescence and publishing TX
/// output.
#[allow(clippy::too_many_arguments)]
fn worker_main<S: Slot>(
    graph: &RouterGraph,
    cfg: WorkerCfg,
    input: RingConsumer<ShardItem>,
    output: RingProducer<ShardItem>,
    ctrl: mpsc::Receiver<Ctrl>,
    reply: mpsc::Sender<CtrlReply>,
    stop: Arc<AtomicBool>,
    completed: Arc<AtomicU64>,
) {
    // The graph was validated on the main thread; a failure here is a
    // bug, and the panic surfaces through `check_alive`.
    let mut router: Router<S> =
        Router::from_graph(graph, &Library::standard()).expect("validated graph builds");
    router.set_batching(cfg.batching);
    router.set_batch_burst(cfg.burst);
    let n_dev = router.devices.len();

    let mut backoff = Backoff::new(cfg.backoff_spins);
    let mut inbox: Vec<ShardItem> = Vec::new();
    let mut free: Vec<PacketBatch> = Vec::new();
    let mut gauges = ShardGaugeTracker::new(cfg.shard);
    loop {
        answer_ctrl(&router, &gauges, &ctrl, &reply);
        // The gauge reads are const-folded away when telemetry is off
        // (`ENABLED` is false at compile time), keeping the poll loop
        // untouched.
        let depth = if telemetry::ENABLED { input.len() } else { 0 };
        let popped = input.pop_batch(16, &mut inbox);
        if popped > 0 {
            backoff.reset();
            if telemetry::ENABLED {
                let packets = inbox.iter().map(|(_, b)| b.len() as u64).sum();
                gauges.polled(depth, popped as u64, packets);
            }
            for (dev, mut batch) in inbox.drain(..) {
                for p in batch.drain() {
                    router.devices.inject(dev, p);
                }
                if free.len() < 64 {
                    free.push(batch);
                }
                router.run_until_idle(WORKER_ROUNDS);
                for d in 0..n_dev {
                    let dev = DeviceId(d);
                    if router.devices.tx_len(dev) == 0 {
                        continue;
                    }
                    let mut out = free.pop().unwrap_or_default();
                    router.devices.drain_tx_into(dev, &mut out);
                    push_with_backpressure(
                        &output,
                        (dev, out),
                        &router,
                        &mut gauges,
                        &ctrl,
                        &reply,
                        &stop,
                        cfg.backoff_spins,
                    );
                }
                completed.fetch_add(1, Ordering::Release);
            }
        } else if stop.load(Ordering::Acquire) && input.is_empty() {
            return;
        } else {
            gauges.snoozed();
            backoff.snooze();
        }
    }
}

/// Publishes one TX burst, spinning under backpressure. Keeps answering
/// control queries while blocked (so a stat query can never deadlock
/// against a full ring), and abandons the burst if the runtime is
/// shutting down.
#[allow(clippy::too_many_arguments)]
fn push_with_backpressure<S: Slot>(
    output: &RingProducer<ShardItem>,
    mut item: ShardItem,
    router: &Router<S>,
    gauges: &mut ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
    stop: &AtomicBool,
    backoff_spins: u32,
) {
    let mut backoff = Backoff::new(backoff_spins);
    loop {
        match output.try_push(item) {
            Ok(()) => return,
            Err(back) => item = back,
        }
        if stop.load(Ordering::Acquire) {
            item.1.recycle_packets();
            return;
        }
        answer_ctrl(router, gauges, ctrl, reply);
        gauges.snoozed();
        backoff.snooze();
    }
}

/// Answers every pending control query against this shard's router.
fn answer_ctrl<S: Slot>(
    router: &Router<S>,
    gauges: &ShardGaugeTracker,
    ctrl: &mpsc::Receiver<Ctrl>,
    reply: &mpsc::Sender<CtrlReply>,
) {
    while let Ok(q) = ctrl.try_recv() {
        let r = match q {
            Ctrl::Stat(elem, stat) => CtrlReply::Stat(router.stat(&elem, &stat)),
            Ctrl::ClassStat(class, stat) => CtrlReply::Value(router.class_stat(&class, &stat)),
            Ctrl::EngineDrops => CtrlReply::Drops {
                unconnected: router.unconnected_drops(),
                reentrant: router.reentrant_drops(),
            },
            Ctrl::PoolStats => CtrlReply::Pool(crate::packet::pool_stats()),
            Ctrl::ResetPoolStats => {
                crate::packet::reset_pool_stats();
                CtrlReply::Value(0)
            }
            Ctrl::Telemetry => CtrlReply::Telemetry(router.telemetry_profiles()),
            Ctrl::Gauges => CtrlReply::Gauges(gauges.snapshot()),
        };
        if reply.send(r).is_err() {
            return; // main side gone; shutdown is imminent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::headers::build_udp_packet;
    use click_core::lang::read_config;

    fn counter_graph() -> RouterGraph {
        read_config("FromDevice(in0) -> c :: Counter -> Queue(4096) -> ToDevice(out0);").unwrap()
    }

    fn udp(sport: u16, seq: u8) -> Packet {
        let mut p = build_udp_packet([1; 6], [2; 6], 0x0A000002, 0x0A000102, sport, 9, 18, 64);
        let n = p.len();
        p.data_mut()[n - 1] = seq;
        p
    }

    #[test]
    fn single_shard_forwards_everything() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(1)).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for i in 0..40u8 {
            r.inject(in0, udp(1000 + u16::from(i % 8), i));
        }
        let got = r.run_until_idle();
        assert_eq!(got, 40);
        assert_eq!(r.tx_len(out0), 40);
        assert_eq!(r.stat("c", "count"), Some(40));
        assert_eq!(r.class_stat("Counter", "count"), 40);
        r.shutdown();
    }

    #[test]
    fn shards_preserve_per_flow_order() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(4).batched(8))
                .unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        // 8 flows × 16 packets, interleaved.
        for seq in 0..16u8 {
            for flow in 0..8u16 {
                r.inject(in0, udp(2000 + flow, seq));
            }
        }
        assert_eq!(r.run_until_idle(), 128);
        let tx = r.take_tx(out0);
        assert_eq!(tx.len(), 128);
        // Within each flow (source port), sequence numbers stay ordered.
        for flow in 0..8u16 {
            let seqs: Vec<u8> = tx
                .iter()
                .filter(|p| crate::steer::flow_key(p.data()).unwrap().3 == 2000 + flow)
                .map(|p| p.data()[p.len() - 1])
                .collect();
            assert_eq!(seqs, (0..16u8).collect::<Vec<_>>(), "flow {flow} reordered");
        }
        assert_eq!(r.class_stat("Counter", "count"), 128);
        assert_eq!(r.unconnected_drops(), 0);
    }

    #[test]
    fn workers_use_their_own_packet_pools() {
        let g = counter_graph();
        let mut r =
            ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2).batched(8))
                .unwrap();
        let in0 = r.device_id("in0").unwrap();
        r.reset_pool_stats();
        for i in 0..32u8 {
            r.inject(in0, udp(3000 + u16::from(i), 0));
        }
        r.run_until_idle();
        // The workers did the forwarding, so their (merged) pools saw the
        // traffic; exact counts depend on engine internals, but the
        // counters must be alive and shard-local.
        let _ = r.pool_stats();
        r.shutdown();
    }

    #[test]
    fn backpressure_survives_tiny_rings() {
        let g = counter_graph();
        let mut opts = ParallelOpts::new(2).batched(4);
        opts.ring_capacity = 2; // force both rings to fill repeatedly
        let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).unwrap();
        let in0 = r.device_id("in0").unwrap();
        let out0 = r.device_id("out0").unwrap();
        for i in 0..200u16 {
            r.inject(in0, udp(4000 + (i % 16), (i / 16) as u8));
        }
        assert_eq!(r.run_until_idle(), 200, "no drops under backpressure");
        assert_eq!(r.tx_len(out0), 200);
    }

    #[test]
    fn invalid_config_errors_before_spawning() {
        let g = read_config("FromDevice(a) -> ToDevice(b);").unwrap();
        assert!(ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2)).is_err());
    }

    #[test]
    fn drop_joins_worker_threads() {
        let g = counter_graph();
        let r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(3)).unwrap();
        drop(r); // must not hang or leak spinning threads
    }
}
