//! Protocol header helpers: Ethernet, IPv4, UDP, ARP, ICMP.
//!
//! These are deliberately simple free functions over byte slices — the
//! elements that use them do "only rudimentary input checking" (paper §3),
//! with protocol dispatch made explicit in router configurations.

use crate::packet::Packet;

/// Ethernet constants and accessors.
pub mod ether {
    /// Header length.
    pub const HLEN: usize = 14;
    /// Ethertype for IPv4.
    pub const TYPE_IP: u16 = 0x0800;
    /// Ethertype for ARP.
    pub const TYPE_ARP: u16 = 0x0806;
    /// The broadcast address.
    pub const BROADCAST: [u8; 6] = [0xFF; 6];

    /// Destination MAC (first 6 bytes).
    pub fn dst(data: &[u8]) -> [u8; 6] {
        data[0..6].try_into().expect("6 bytes")
    }

    /// Source MAC.
    pub fn src(data: &[u8]) -> [u8; 6] {
        data[6..12].try_into().expect("6 bytes")
    }

    /// Ethertype field.
    pub fn ethertype(data: &[u8]) -> u16 {
        u16::from_be_bytes([data[12], data[13]])
    }

    /// Writes an Ethernet header into the first 14 bytes of `data`.
    pub fn write(data: &mut [u8], dst: [u8; 6], src: [u8; 6], ethertype: u16) {
        data[0..6].copy_from_slice(&dst);
        data[6..12].copy_from_slice(&src);
        data[12..14].copy_from_slice(&ethertype.to_be_bytes());
    }
}

/// IPv4 header accessors. All offsets are relative to the start of the IP
/// header.
pub mod ipv4 {
    /// Minimum header length.
    pub const HLEN: usize = 20;
    /// Protocol number for ICMP.
    pub const PROTO_ICMP: u8 = 1;
    /// Protocol number for TCP.
    pub const PROTO_TCP: u8 = 6;
    /// Protocol number for UDP.
    pub const PROTO_UDP: u8 = 17;
    /// Don't-fragment flag (in the flags/fragment-offset field).
    pub const FLAG_DF: u16 = 0x4000;
    /// More-fragments flag.
    pub const FLAG_MF: u16 = 0x2000;

    /// Version field (should be 4).
    pub fn version(h: &[u8]) -> u8 {
        h[0] >> 4
    }

    /// Header length in bytes.
    pub fn header_len(h: &[u8]) -> usize {
        ((h[0] & 0x0F) as usize) * 4
    }

    /// Total length field.
    pub fn total_len(h: &[u8]) -> u16 {
        u16::from_be_bytes([h[2], h[3]])
    }

    /// TTL field.
    pub fn ttl(h: &[u8]) -> u8 {
        h[8]
    }

    /// Protocol field.
    pub fn protocol(h: &[u8]) -> u8 {
        h[9]
    }

    /// Header checksum field.
    pub fn checksum(h: &[u8]) -> u16 {
        u16::from_be_bytes([h[10], h[11]])
    }

    /// Source address as a `u32` (network order interpreted big-endian).
    pub fn src(h: &[u8]) -> u32 {
        u32::from_be_bytes([h[12], h[13], h[14], h[15]])
    }

    /// Destination address.
    pub fn dst(h: &[u8]) -> u32 {
        u32::from_be_bytes([h[16], h[17], h[18], h[19]])
    }

    /// Flags/fragment-offset field.
    pub fn frag_field(h: &[u8]) -> u16 {
        u16::from_be_bytes([h[6], h[7]])
    }

    /// Computes the ones-complement header checksum over `header_len`
    /// bytes, treating the checksum field itself as zero.
    pub fn compute_checksum(h: &[u8]) -> u16 {
        let hlen = header_len(h).min(h.len());
        let mut sum = 0u32;
        let mut i = 0;
        while i + 1 < hlen {
            if i != 10 {
                sum += u32::from(u16::from_be_bytes([h[i], h[i + 1]]));
            }
            i += 2;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// Recomputes and stores the header checksum.
    pub fn set_checksum(h: &mut [u8]) {
        let c = compute_checksum(h);
        h[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Verifies the stored checksum.
    pub fn checksum_ok(h: &[u8]) -> bool {
        checksum(h) == compute_checksum(h)
    }

    /// Decrements the TTL and incrementally updates the checksum (RFC
    /// 1624), the same trick `DecIPTTL` uses to avoid a full recompute.
    pub fn dec_ttl(h: &mut [u8]) {
        h[8] -= 1;
        // The TTL lives in the high byte of the 16-bit word at offset 8;
        // decrementing it subtracts 0x0100 from that word, so add 0x0100
        // to the checksum (ones-complement arithmetic).
        let mut sum = u32::from(u16::from_be_bytes([h[10], h[11]])) + 0x0100;
        sum = (sum & 0xFFFF) + (sum >> 16);
        h[10..12].copy_from_slice(&(sum as u16).to_be_bytes());
    }

    /// Sets the source address and recomputes the checksum.
    pub fn set_src(h: &mut [u8], addr: u32) {
        h[12..16].copy_from_slice(&addr.to_be_bytes());
        set_checksum(h);
    }
}

/// UDP header accessors (offsets relative to UDP header start).
pub mod udp {
    /// Header length.
    pub const HLEN: usize = 8;

    /// Source port.
    pub fn src_port(h: &[u8]) -> u16 {
        u16::from_be_bytes([h[0], h[1]])
    }

    /// Destination port.
    pub fn dst_port(h: &[u8]) -> u16 {
        u16::from_be_bytes([h[2], h[3]])
    }
}

/// ARP packet helpers (Ethernet/IPv4 ARP only).
pub mod arp {
    /// ARP payload length for Ethernet/IPv4.
    pub const LEN: usize = 28;
    /// Request opcode.
    pub const OP_REQUEST: u16 = 1;
    /// Reply opcode.
    pub const OP_REPLY: u16 = 2;

    /// Opcode of an ARP payload.
    pub fn opcode(a: &[u8]) -> u16 {
        u16::from_be_bytes([a[6], a[7]])
    }

    /// Sender hardware address.
    pub fn sender_eth(a: &[u8]) -> [u8; 6] {
        a[8..14].try_into().expect("6 bytes")
    }

    /// Sender protocol (IP) address.
    pub fn sender_ip(a: &[u8]) -> u32 {
        u32::from_be_bytes([a[14], a[15], a[16], a[17]])
    }

    /// Target protocol (IP) address.
    pub fn target_ip(a: &[u8]) -> u32 {
        u32::from_be_bytes([a[24], a[25], a[26], a[27]])
    }

    /// Writes an ARP payload into `a` (28 bytes).
    pub fn write(
        a: &mut [u8],
        opcode: u16,
        sender_eth: [u8; 6],
        sender_ip: u32,
        target_eth: [u8; 6],
        target_ip: u32,
    ) {
        a[0..2].copy_from_slice(&1u16.to_be_bytes()); // hardware: Ethernet
        a[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // protocol: IP
        a[4] = 6; // hardware size
        a[5] = 4; // protocol size
        a[6..8].copy_from_slice(&opcode.to_be_bytes());
        a[8..14].copy_from_slice(&sender_eth);
        a[14..18].copy_from_slice(&sender_ip.to_be_bytes());
        a[18..24].copy_from_slice(&target_eth);
        a[24..28].copy_from_slice(&target_ip.to_be_bytes());
    }
}

/// ICMP helpers.
pub mod icmp {
    /// Destination unreachable.
    pub const TYPE_UNREACH: u8 = 3;
    /// Redirect.
    pub const TYPE_REDIRECT: u8 = 5;
    /// Time exceeded.
    pub const TYPE_TIME_EXCEEDED: u8 = 11;
    /// Parameter problem.
    pub const TYPE_PARAM_PROBLEM: u8 = 12;
    /// Code for "fragmentation needed and DF set" under TYPE_UNREACH.
    pub const CODE_NEEDS_FRAG: u8 = 4;
}

/// Parses a dotted-quad IPv4 address.
pub fn parse_ip(s: &str) -> Option<u32> {
    let mut v: u32 = 0;
    let mut count = 0;
    for part in s.split('.') {
        let b: u8 = part.parse().ok()?;
        v = (v << 8) | u32::from(b);
        count += 1;
    }
    if count == 4 {
        Some(v)
    } else {
        None
    }
}

/// Formats an IPv4 address as dotted quad.
pub fn ip_to_string(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        ip >> 24,
        (ip >> 16) & 0xFF,
        (ip >> 8) & 0xFF,
        ip & 0xFF
    )
}

/// Parses a colon-separated MAC address (`00:11:22:33:44:55`).
pub fn parse_mac(s: &str) -> Option<[u8; 6]> {
    let mut mac = [0u8; 6];
    let mut n = 0;
    for part in s.split(':') {
        if n >= 6 {
            return None;
        }
        mac[n] = u8::from_str_radix(part, 16).ok()?;
        n += 1;
    }
    if n == 6 {
        Some(mac)
    } else {
        None
    }
}

/// Formats a MAC address.
pub fn mac_to_string(mac: [u8; 6]) -> String {
    mac.iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(":")
}

/// Builds a complete Ethernet+IPv4+UDP packet, the 64-byte shape the
/// paper's evaluation traffic uses (14 Ethernet + 20 IP + 8 UDP + payload).
///
/// The Ethernet CRC is not modeled; a `payload_len` of 18 yields the
/// 60-byte on-wire frame that, with CRC, is the evaluation's 64-byte
/// packet.
#[allow(clippy::too_many_arguments)]
pub fn build_udp_packet(
    src_mac: [u8; 6],
    dst_mac: [u8; 6],
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    payload_len: usize,
    ttl: u8,
) -> Packet {
    let ip_len = ipv4::HLEN + udp::HLEN + payload_len;
    let mut p = Packet::new(ether::HLEN + ip_len);
    let data = p.data_mut();
    ether::write(data, dst_mac, src_mac, ether::TYPE_IP);
    let ip = &mut data[ether::HLEN..];
    ip[0] = 0x45;
    ip[2..4].copy_from_slice(&(ip_len as u16).to_be_bytes());
    ip[8] = ttl;
    ip[9] = ipv4::PROTO_UDP;
    ip[12..16].copy_from_slice(&src_ip.to_be_bytes());
    ip[16..20].copy_from_slice(&dst_ip.to_be_bytes());
    ipv4::set_checksum(ip);
    let u = &mut ip[ipv4::HLEN..];
    u[0..2].copy_from_slice(&src_port.to_be_bytes());
    u[2..4].copy_from_slice(&dst_port.to_be_bytes());
    u[4..6].copy_from_slice(&((udp::HLEN + payload_len) as u16).to_be_bytes());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_parse_and_format() {
        assert_eq!(parse_ip("10.0.0.1"), Some(0x0A000001));
        assert_eq!(ip_to_string(0x0A000001), "10.0.0.1");
        assert_eq!(parse_ip("1.2.3"), None);
        assert_eq!(parse_ip("256.0.0.1"), None);
        assert_eq!(parse_ip("1.2.3.4.5"), None);
    }

    #[test]
    fn mac_parse_and_format() {
        assert_eq!(
            parse_mac("00:11:22:aa:bb:cc"),
            Some([0, 0x11, 0x22, 0xAA, 0xBB, 0xCC])
        );
        assert_eq!(
            mac_to_string([0, 0x11, 0x22, 0xAA, 0xBB, 0xCC]),
            "00:11:22:aa:bb:cc"
        );
        assert_eq!(parse_mac("00:11"), None);
        assert_eq!(parse_mac("zz:11:22:33:44:55"), None);
    }

    #[test]
    fn udp_packet_shape() {
        let p = build_udp_packet(
            [1; 6],
            [2; 6],
            parse_ip("10.0.0.1").unwrap(),
            parse_ip("10.0.1.1").unwrap(),
            1234,
            5678,
            18,
            64,
        );
        assert_eq!(p.len(), 60); // 64 on the wire including CRC
        let d = p.data();
        assert_eq!(ether::ethertype(d), ether::TYPE_IP);
        assert_eq!(ether::dst(d), [2; 6]);
        let ip = &d[14..];
        assert_eq!(ipv4::version(ip), 4);
        assert_eq!(ipv4::header_len(ip), 20);
        assert_eq!(ipv4::protocol(ip), ipv4::PROTO_UDP);
        assert_eq!(ipv4::ttl(ip), 64);
        assert_eq!(ipv4::total_len(ip), 46);
        assert!(ipv4::checksum_ok(ip));
        let u = &ip[20..];
        assert_eq!(udp::src_port(u), 1234);
        assert_eq!(udp::dst_port(u), 5678);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut p = build_udp_packet([1; 6], [2; 6], 1, 2, 3, 4, 18, 64);
        let ip = &mut p.data_mut()[14..];
        assert!(ipv4::checksum_ok(ip));
        ip[16] ^= 0xFF;
        assert!(!ipv4::checksum_ok(ip));
    }

    #[test]
    fn dec_ttl_matches_full_recompute() {
        for ttl in [2u8, 3, 64, 255] {
            let mut p = build_udp_packet([1; 6], [2; 6], 0x01020304, 0x05060708, 1, 2, 18, ttl);
            let ip = &mut p.data_mut()[14..];
            ipv4::dec_ttl(ip);
            assert_eq!(ipv4::ttl(ip), ttl - 1);
            assert!(
                ipv4::checksum_ok(ip),
                "incremental checksum wrong for ttl {ttl}"
            );
        }
    }

    #[test]
    fn set_src_updates_checksum() {
        let mut p = build_udp_packet([1; 6], [2; 6], 0x01020304, 0x05060708, 1, 2, 18, 9);
        let ip = &mut p.data_mut()[14..];
        ipv4::set_src(ip, 0x0A0B0C0D);
        assert_eq!(ipv4::src(ip), 0x0A0B0C0D);
        assert!(ipv4::checksum_ok(ip));
    }

    #[test]
    fn arp_round_trip() {
        let mut buf = [0u8; arp::LEN];
        arp::write(
            &mut buf,
            arp::OP_REQUEST,
            [1; 6],
            0xC0A80001,
            [0; 6],
            0xC0A80002,
        );
        assert_eq!(arp::opcode(&buf), arp::OP_REQUEST);
        assert_eq!(arp::sender_eth(&buf), [1; 6]);
        assert_eq!(arp::sender_ip(&buf), 0xC0A80001);
        assert_eq!(arp::target_ip(&buf), 0xC0A80002);
    }
}
