//! Per-element runtime telemetry, compiled in or out by the `telemetry`
//! cargo feature.
//!
//! The paper evaluates optimizations by *per-element cycle attribution*
//! (Figure 9/10 style tables); this module makes the running engines
//! produce that attribution themselves. Each element slot gets:
//!
//! * packet and byte counters,
//! * per-output-port emission counts (the input `click-profile` uses to
//!   hoist hot `Classifier` branches),
//! * a log2-bucket latency histogram of *self time* per element call,
//!   plus a small ring buffer of the most recent raw samples.
//!
//! Self time is exclusive: the engine keeps a frame stack, and a nested
//! call (a pull chain recursing upstream, or a device task emitting into
//! the push engine) subtracts its children's wall time from the parent.
//! On the stack-based push engine, frames nest only under task elements,
//! so attribution stays exact without sampling.
//!
//! **Zero cost when off.** Without the `telemetry` feature every probe
//! ([`RouterTelemetry::enter`], [`RouterTelemetry::exit`], ...) is an
//! inlined empty method on a zero-sized type and the byte-volume helpers
//! return constants, so the optimizer removes the instrumentation
//! entirely — the fast path stays branch-free. The snapshot types
//! ([`ElementProfile`], [`ShardGauges`]) are always compiled so tools and
//! benches build in both modes; with the feature off they report zeros.
//!
//! Per-shard gauges ([`ShardGauges`]) live in the parallel runtime: each
//! worker tracks its inbound-ring occupancy high-water mark, backoff
//! snoozes, and batches processed; the control plane collects them next
//! to the merged per-element profiles.

use crate::batch::PacketBatch;
use crate::packet::Packet;

/// True when the crate was compiled with the `telemetry` feature; all
/// counters read zero when this is `false`.
pub const ENABLED: bool = cfg!(feature = "telemetry");

/// Number of log2 latency buckets. Bucket `i` counts element calls whose
/// self time needed `i` significant bits of nanoseconds, i.e. fell in
/// `[2^(i-1), 2^i)` ns (bucket 0 is 0 ns); the last bucket absorbs
/// everything slower (`>= 2^22` ns ≈ 4 ms, far beyond any element call).
pub const LATENCY_BUCKETS: usize = 24;

/// Capacity of the per-element ring buffer of recent raw self-time
/// samples (nanoseconds), kept alongside the cumulative histogram.
pub const RECENT_WINDOW: usize = 32;

/// One element instance's telemetry snapshot — the unit record of the
/// profile export format (`click-report` emits one JSON object per
/// [`ElementProfile`], merged across shards).
///
/// Always available; zeroed when [`ENABLED`] is `false`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElementProfile {
    /// Element instance name (configuration name, e.g. `c0`).
    pub name: String,
    /// Element class (e.g. `Classifier`).
    pub class: String,
    /// Element calls observed (push/pull/batch/task invocations,
    /// including empty pull polls).
    pub calls: u64,
    /// Packets handled (pushed in, pulled out, or moved by a task).
    pub packets: u64,
    /// Bytes handled on push/pull boundaries (tasks count packets only).
    pub bytes: u64,
    /// Cumulative exclusive (self) wall time, nanoseconds.
    pub self_ns: u64,
    /// Packets emitted per output port, indexed by port.
    pub out_ports: Vec<u64>,
    /// Log2 self-time histogram, [`LATENCY_BUCKETS`] buckets.
    pub lat_buckets: Vec<u64>,
    /// Most recent raw self-time samples (ns), oldest first, at most
    /// [`RECENT_WINDOW`] entries.
    pub recent_ns: Vec<u64>,
}

impl ElementProfile {
    /// Creates a zeroed profile for a named element instance.
    pub fn new(name: &str, class: &str) -> ElementProfile {
        ElementProfile {
            name: name.to_owned(),
            class: class.to_owned(),
            lat_buckets: vec![0; LATENCY_BUCKETS],
            ..ElementProfile::default()
        }
    }

    /// Merges another shard's record for the same element instance:
    /// counters and histogram buckets sum; the recent-sample rings
    /// concatenate (truncated to [`RECENT_WINDOW`]).
    pub fn merge(&mut self, other: &ElementProfile) {
        self.calls += other.calls;
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.self_ns += other.self_ns;
        if self.out_ports.len() < other.out_ports.len() {
            self.out_ports.resize(other.out_ports.len(), 0);
        }
        for (i, &n) in other.out_ports.iter().enumerate() {
            self.out_ports[i] += n;
        }
        if self.lat_buckets.len() < other.lat_buckets.len() {
            self.lat_buckets.resize(other.lat_buckets.len(), 0);
        }
        for (i, &n) in other.lat_buckets.iter().enumerate() {
            self.lat_buckets[i] += n;
        }
        self.recent_ns.extend_from_slice(&other.recent_ns);
        if self.recent_ns.len() > RECENT_WINDOW {
            let drop = self.recent_ns.len() - RECENT_WINDOW;
            self.recent_ns.drain(..drop);
        }
    }

    /// Mean exclusive nanoseconds per packet (0.0 if no packets).
    pub fn ns_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.self_ns as f64 / self.packets as f64
        }
    }

    /// Output ports that never emitted a packet, given the element's
    /// total port count (ports past the end of `out_ports` are cold too).
    pub fn cold_ports(&self, noutputs: usize) -> Vec<usize> {
        (0..noutputs)
            .filter(|&p| self.out_ports.get(p).copied().unwrap_or(0) == 0)
            .collect()
    }
}

/// Merges per-shard profile lists by element name: records with the same
/// `name` sum (the shards run clones of one graph, so names align);
/// order follows the first list. This is what the parallel control plane
/// applies to worker replies.
pub fn merge_profiles(shards: &[Vec<ElementProfile>]) -> Vec<ElementProfile> {
    let mut out: Vec<ElementProfile> = Vec::new();
    for shard in shards {
        for p in shard {
            match out.iter_mut().find(|q| q.name == p.name) {
                Some(q) => q.merge(p),
                None => out.push(p.clone()),
            }
        }
    }
    out
}

/// One worker shard's runtime gauges: how loaded its inbound ring ran
/// and how often it had to back off. Zeroed when [`ENABLED`] is `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardGauges {
    /// Shard index.
    pub shard: usize,
    /// Batches popped from the inbound ring.
    pub batches: u64,
    /// Packets processed (popped from the inbound ring).
    pub packets: u64,
    /// High-water mark of inbound-ring occupancy (batches queued, read
    /// just before each pop).
    pub ring_high_water: usize,
    /// Backoff snoozes while the shard waited for input or for
    /// backpressured output-ring space.
    pub backoff_snoozes: u64,
}

/// One steering stage's runtime gauges: how much ingress classification
/// work it did and what it cost. In serial-steering mode a single record
/// (steerer 0) covers the inject path on the control-plane thread; in
/// parallel-steering mode each steerer thread reports one record. Zeroed
/// when [`ENABLED`] is `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SteerGauges {
    /// Steerer index (0 for the serial inject path).
    pub steerer: usize,
    /// Ingress batches classified and handed off.
    pub batches: u64,
    /// Packets classified (hashed and routed to a shard ring).
    pub packets: u64,
    /// Cumulative steering self time, nanoseconds — hash + classify +
    /// hand-off, excluding worker processing.
    pub steer_ns: u64,
    /// Backoff snoozes while waiting for ring space or input.
    pub snoozes: u64,
}

/// Supervisor fault gauges of a sharded runtime: how many worker shards
/// died, what recovery did about it, and how many packets were lost in
/// flight. Unlike the per-element counters these are **always live** —
/// they are maintained on the rare fault path by the supervisor in
/// [`crate::parallel`], not on the per-packet fast path, so they are not
/// gated behind the `telemetry` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultGauges {
    /// Worker shards that died (panicked, or exited unexpectedly).
    pub shard_deaths: u64,
    /// Shards restarted from the retained configuration graph.
    pub restarts: u64,
    /// Times the runtime entered degraded mode (a dead shard's flows
    /// re-steered across the survivors instead of restarting it).
    pub degraded_entries: u64,
    /// Packets that were inside a shard's engine when it died —
    /// irrecoverably lost. Bounded by the dead shard's in-flight ring
    /// occupancy at the time of death.
    pub lost_packets: u64,
    /// Packets salvaged from a dead shard's rings and re-steered.
    pub reclaimed_packets: u64,
    /// Packets dropped at injection because no live shard remained.
    pub no_live_shard_drops: u64,
    /// Currently live shards (snapshot at read time).
    pub live_shards: usize,
    /// Configured shard count.
    pub shards: usize,
}

/// Live-reconfiguration gauges of a hot-swapping router: how many swaps
/// completed, how canaries fared, and how much state moved. Like
/// [`FaultGauges`] these are **always live** — hot swaps are rare
/// control-plane events maintained off the per-packet fast path, so the
/// bookkeeping is not gated behind the `telemetry` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapGauges {
    /// Completed rollouts: every live shard now runs the new graph.
    pub swaps: u64,
    /// Canary shards rolled back to the retained old graph.
    pub rollbacks: u64,
    /// Canary windows whose drop gauge regressed past the margin.
    pub canary_failures: u64,
    /// Packets carried across swaps (element state plus device queues),
    /// including state moved back by rollbacks.
    pub packets_transferred: u64,
    /// Configurations rejected by `click_core::check::check` before any
    /// shard saw them.
    pub rejected_configs: u64,
}

/// Continuous-reoptimization gauges of a `click-morph` control loop: how
/// many telemetry windows it judged, how often it recompiled, and what
/// became of each installed candidate. Like [`FaultGauges`] and
/// [`SwapGauges`] these are **always live** — the reopt controller runs
/// on the control plane between traffic windows, never on the per-packet
/// fast path, so the bookkeeping is not gated behind the `telemetry`
/// feature (with the feature off the windows simply observe zero
/// divergence and the loop stays quiet).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReoptGauges {
    /// Telemetry windows observed (decision and judgment windows both
    /// count — every window the controller looked at).
    pub windows_observed: u64,
    /// Background recompiles: profile-hoist plus optimizer pipeline runs
    /// that produced an install candidate.
    pub recompiles: u64,
    /// Candidates installed and kept after their canary / probation
    /// window.
    pub swaps_kept: u64,
    /// Candidates rolled back (canary regression, probation drop-rate
    /// regression, or install rejection).
    pub rollbacks: u64,
    /// Windows where divergence justified a recompile but hysteresis
    /// (dwell, cooldown, or the swap budget) suppressed it.
    pub thrash_suppressed: u64,
    /// Parasol-style knob-autotune searches run after kept swaps.
    pub autotune_runs: u64,
}

/// Checkpoint/restore gauges of the persistence layer
/// ([`crate::persist`]): snapshots cut, torn files skipped, warm
/// restarts performed, and the data-plane pause each cut cost. Like
/// [`FaultGauges`] and [`ReoptGauges`] these are **always live** — the
/// checkpoint daemon runs on the control plane between traffic windows
/// (the per-packet fast path never touches it), and a restart after a
/// crash is exactly the moment an operator needs the books — so the
/// bookkeeping is not gated behind the `telemetry` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointGauges {
    /// Checkpoints cut and durably renamed into place.
    pub checkpoints_written: u64,
    /// Snapshot or write attempts that failed (engine unreachable, I/O
    /// error); the engine keeps running.
    pub checkpoint_failures: u64,
    /// Torn/corrupt/wrong-version checkpoint files skipped while
    /// scanning for the newest valid generation.
    pub torn_discarded: u64,
    /// Warm restarts completed from a valid checkpoint.
    pub restores: u64,
    /// Starts (or restore attempts) that found no usable checkpoint and
    /// booted cold.
    pub cold_starts: u64,
    /// Generation number of the newest checkpoint written or restored.
    pub last_generation: u64,
    /// Data-plane pause of the most recent cut, in nanoseconds
    /// (quiesce wait plus state walk).
    pub quiesce_ns_last: u64,
    /// Cumulative data-plane pause across all cuts, in nanoseconds.
    pub quiesce_ns_total: u64,
    /// Packets captured into checkpoints (element queues plus device
    /// queues), cumulative.
    pub packets_persisted: u64,
}

/// Per-device I/O gauges of a supervised device backend: traffic volume,
/// every fault the supervision layer absorbed, and the health transitions
/// it drove. Like [`FaultGauges`] these are **always live** — device
/// faults are exactly the events an operator must see, and the counters
/// are bumped on the (already syscall-bound) I/O path, never on the
/// in-memory per-packet fast path, so they are not gated behind the
/// `telemetry` feature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceGauges {
    /// Device name (as written in the configuration).
    pub device: String,
    /// Backend kind (`mem`, `pcap`, `udp`, `tap`, `raw`, `fault`).
    pub backend: String,
    /// Health snapshot at read time (`up`, `flapping`, `down`,
    /// `recovering`).
    pub health: String,
    /// Frames received from the backend and enqueued for the router.
    pub rx_packets: u64,
    /// Bytes received from the backend.
    pub rx_bytes: u64,
    /// Frames handed to the backend for transmission.
    pub tx_packets: u64,
    /// Bytes handed to the backend for transmission.
    pub tx_bytes: u64,
    /// Frames cut short on the wire or in a capture file (`Truncated`).
    pub short_reads: u64,
    /// Operations that returned `WouldBlock` (empty RX poll or full TX
    /// ring; only a storm of these is a health signal).
    pub would_blocks: u64,
    /// Operations retried after a transient fault.
    pub retries: u64,
    /// Exponential-backoff sleeps taken between retries.
    pub backoffs: u64,
    /// Health departures from `Up` (into `Flapping` or `Down`).
    pub flaps: u64,
    /// Hard `Down`/`Wedged` faults observed (each one forces the state
    /// machine to `Down`).
    pub down_events: u64,
    /// Successful re-opens (`Down` -> `Recovering`).
    pub reopens: u64,
    /// Pending TX frames declared lost: the device stayed sick past the
    /// drain deadline, or was abandoned with frames still queued.
    pub drain_lost: u64,
    /// RX frames dropped for failing the backend's integrity check
    /// (`Corrupt`: bad capture record, impossible length).
    pub corrupt_drops: u64,
}

/// Log2 bucket index for a self-time sample: the number of significant
/// bits, clamped to the histogram width.
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{bucket_of, ElementProfile, ShardGauges, SteerGauges, RECENT_WINDOW};
    use std::cell::Cell;
    use std::time::Instant;

    #[derive(Debug, Default, Clone)]
    struct Record {
        calls: u64,
        packets: u64,
        bytes: u64,
        self_ns: u64,
        out_ports: Vec<u64>,
        lat_buckets: Vec<u64>,
        recent: Vec<u64>,
        recent_pos: usize,
    }

    #[derive(Debug)]
    struct Frame {
        start: Instant,
        child_ns: u64,
    }

    /// Live per-element counters for one engine (feature-on build).
    #[derive(Debug)]
    pub struct RouterTelemetry {
        records: Vec<Record>,
        frames: Vec<Frame>,
    }

    impl RouterTelemetry {
        /// Zeroed counters for `n` element slots.
        pub fn new(n: usize) -> RouterTelemetry {
            RouterTelemetry {
                records: vec![Record::default(); n],
                frames: Vec::with_capacity(8),
            }
        }

        /// Opens a timing frame; pair with [`RouterTelemetry::exit`].
        #[inline]
        pub fn enter(&mut self) {
            self.frames.push(Frame {
                start: Instant::now(),
                child_ns: 0,
            });
        }

        /// Closes the innermost frame, attributing its exclusive time
        /// (total minus nested frames) plus `packets`/`bytes` to `elem`.
        #[inline]
        pub fn exit(&mut self, elem: usize, packets: u64, bytes: u64) {
            let f = self.frames.pop().expect("telemetry enter/exit balanced");
            let total = f.start.elapsed().as_nanos() as u64;
            let self_ns = total.saturating_sub(f.child_ns);
            if let Some(parent) = self.frames.last_mut() {
                parent.child_ns += total;
            }
            let r = &mut self.records[elem];
            r.calls += 1;
            r.packets += packets;
            r.bytes += bytes;
            r.self_ns += self_ns;
            if r.lat_buckets.is_empty() {
                r.lat_buckets = vec![0; super::LATENCY_BUCKETS];
            }
            r.lat_buckets[bucket_of(self_ns)] += 1;
            if r.recent.len() < RECENT_WINDOW {
                r.recent.push(self_ns);
            } else {
                r.recent[r.recent_pos % RECENT_WINDOW] = self_ns;
            }
            r.recent_pos = (r.recent_pos + 1) % RECENT_WINDOW;
        }

        /// Counts `n` packets emitted by `elem` on output port `oport`.
        #[inline]
        pub fn record_out(&mut self, elem: usize, oport: usize, n: u64) {
            let r = &mut self.records[elem];
            if r.out_ports.len() <= oport {
                r.out_ports.resize(oport + 1, 0);
            }
            r.out_ports[oport] += n;
        }

        /// Copies counters into pre-named profiles (index-aligned with
        /// the engine's element slots).
        pub fn fill(&self, profiles: &mut [ElementProfile]) {
            for (r, p) in self.records.iter().zip(profiles.iter_mut()) {
                p.calls = r.calls;
                p.packets = r.packets;
                p.bytes = r.bytes;
                p.self_ns = r.self_ns;
                p.out_ports = r.out_ports.clone();
                if !r.lat_buckets.is_empty() {
                    p.lat_buckets = r.lat_buckets.clone();
                }
                // Unroll the ring so samples come out oldest first.
                p.recent_ns.clear();
                if r.recent.len() < RECENT_WINDOW {
                    p.recent_ns.extend_from_slice(&r.recent);
                } else {
                    let split = r.recent_pos % RECENT_WINDOW;
                    p.recent_ns.extend_from_slice(&r.recent[split..]);
                    p.recent_ns.extend_from_slice(&r.recent[..split]);
                }
            }
        }

        /// Zeroes every counter (frames in flight are kept).
        pub fn reset(&mut self) {
            for r in &mut self.records {
                *r = Record::default();
            }
        }

        /// Folds a predecessor engine's counters into this one across a
        /// hot swap: `map` pairs `(old_index, new_index)` of elements
        /// matched by the transfer plan, and each matched record's
        /// counters and histogram sum into the successor (recent-sample
        /// rings restart — they describe the retired engine).
        pub fn transfer_from(&mut self, old: &RouterTelemetry, map: &[(usize, usize)]) {
            for &(oi, ni) in map {
                if oi >= old.records.len() || ni >= self.records.len() {
                    continue;
                }
                let o = &old.records[oi];
                let n = &mut self.records[ni];
                n.calls += o.calls;
                n.packets += o.packets;
                n.bytes += o.bytes;
                n.self_ns += o.self_ns;
                if n.out_ports.len() < o.out_ports.len() {
                    n.out_ports.resize(o.out_ports.len(), 0);
                }
                for (d, s) in n.out_ports.iter_mut().zip(&o.out_ports) {
                    *d += s;
                }
                if n.lat_buckets.len() < o.lat_buckets.len() {
                    n.lat_buckets.resize(o.lat_buckets.len(), 0);
                }
                for (d, s) in n.lat_buckets.iter_mut().zip(&o.lat_buckets) {
                    *d += s;
                }
            }
        }
    }

    /// Live shard gauges for one parallel worker (feature-on build).
    #[derive(Debug)]
    pub struct ShardGaugeTracker {
        g: ShardGauges,
    }

    impl ShardGaugeTracker {
        /// Zeroed gauges for shard `shard`.
        pub fn new(shard: usize) -> ShardGaugeTracker {
            ShardGaugeTracker {
                g: ShardGauges {
                    shard,
                    ..ShardGauges::default()
                },
            }
        }

        /// Records one inbound-ring poll: occupancy `depth` observed
        /// before popping, `batches` batches / `packets` packets popped.
        #[inline]
        pub fn polled(&mut self, depth: usize, batches: u64, packets: u64) {
            self.g.batches += batches;
            self.g.packets += packets;
            if depth > self.g.ring_high_water {
                self.g.ring_high_water = depth;
            }
        }

        /// Records one backoff snooze.
        #[inline]
        pub fn snoozed(&mut self) {
            self.g.backoff_snoozes += 1;
        }

        /// Current gauge values.
        pub fn snapshot(&self) -> ShardGauges {
            self.g
        }
    }

    /// Live steering gauges for one ingress stage (feature-on build).
    /// Counters are `Cell`s so the steerer hot loop can update them
    /// through a shared reference; each tracker stays on one thread.
    #[derive(Debug)]
    pub struct SteerGaugeTracker {
        steerer: usize,
        batches: Cell<u64>,
        packets: Cell<u64>,
        steer_ns: Cell<u64>,
        snoozes: Cell<u64>,
    }

    impl SteerGaugeTracker {
        /// Zeroed gauges for steering stage `steerer`.
        pub fn new(steerer: usize) -> SteerGaugeTracker {
            SteerGaugeTracker {
                steerer,
                batches: Cell::new(0),
                packets: Cell::new(0),
                steer_ns: Cell::new(0),
                snoozes: Cell::new(0),
            }
        }

        /// Records classification work: `batches` ingress batches /
        /// `packets` packets steered, costing `ns` of self time.
        #[inline]
        pub fn steered(&self, batches: u64, packets: u64, ns: u64) {
            self.batches.set(self.batches.get() + batches);
            self.packets.set(self.packets.get() + packets);
            self.steer_ns.set(self.steer_ns.get() + ns);
        }

        /// Records one backoff snooze.
        #[inline]
        pub fn snoozed(&self) {
            self.snoozes.set(self.snoozes.get() + 1);
        }

        /// Current gauge values.
        pub fn snapshot(&self) -> SteerGauges {
            SteerGauges {
                steerer: self.steerer,
                batches: self.batches.get(),
                packets: self.packets.get(),
                steer_ns: self.steer_ns.get(),
                snoozes: self.snoozes.get(),
            }
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::{ElementProfile, ShardGauges, SteerGauges};

    /// No-op telemetry (feature off): every probe is an inlined empty
    /// method on this zero-sized type, so instrumented engines compile
    /// to exactly the uninstrumented code.
    #[derive(Debug)]
    pub struct RouterTelemetry;

    impl RouterTelemetry {
        /// No-op.
        #[inline(always)]
        pub fn new(_n: usize) -> RouterTelemetry {
            RouterTelemetry
        }
        /// No-op.
        #[inline(always)]
        pub fn enter(&mut self) {}
        /// No-op.
        #[inline(always)]
        pub fn exit(&mut self, _elem: usize, _packets: u64, _bytes: u64) {}
        /// No-op.
        #[inline(always)]
        pub fn record_out(&mut self, _elem: usize, _oport: usize, _n: u64) {}
        /// No-op: profiles keep their zeroed counters.
        #[inline(always)]
        pub fn fill(&self, _profiles: &mut [ElementProfile]) {}
        /// No-op.
        #[inline(always)]
        pub fn reset(&mut self) {}
        /// No-op.
        #[inline(always)]
        pub fn transfer_from(&mut self, _old: &RouterTelemetry, _map: &[(usize, usize)]) {}
    }

    /// No-op gauge tracker (feature off).
    #[derive(Debug)]
    pub struct ShardGaugeTracker;

    impl ShardGaugeTracker {
        /// No-op.
        #[inline(always)]
        pub fn new(_shard: usize) -> ShardGaugeTracker {
            ShardGaugeTracker
        }
        /// No-op.
        #[inline(always)]
        pub fn polled(&mut self, _depth: usize, _batches: u64, _packets: u64) {}
        /// No-op.
        #[inline(always)]
        pub fn snoozed(&mut self) {}
        /// Zeroed gauges.
        #[inline(always)]
        pub fn snapshot(&self) -> ShardGauges {
            ShardGauges::default()
        }
    }

    /// No-op steering gauge tracker (feature off).
    #[derive(Debug)]
    pub struct SteerGaugeTracker;

    impl SteerGaugeTracker {
        /// No-op.
        #[inline(always)]
        pub fn new(_steerer: usize) -> SteerGaugeTracker {
            SteerGaugeTracker
        }
        /// No-op.
        #[inline(always)]
        pub fn steered(&self, _batches: u64, _packets: u64, _ns: u64) {}
        /// No-op.
        #[inline(always)]
        pub fn snoozed(&self) {}
        /// Zeroed gauges.
        #[inline(always)]
        pub fn snapshot(&self) -> SteerGauges {
            SteerGauges::default()
        }
    }
}

pub use imp::{RouterTelemetry, ShardGaugeTracker, SteerGaugeTracker};

/// Bytes in a packet about to be pushed (0 when telemetry is off, so the
/// length read folds away with the rest of the probe).
#[cfg(feature = "telemetry")]
#[inline]
pub fn packet_bytes(p: &Packet) -> u64 {
    p.len() as u64
}

/// Bytes in a packet about to be pushed (0 when telemetry is off, so the
/// length read folds away with the rest of the probe).
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub fn packet_bytes(_p: &Packet) -> u64 {
    0
}

/// `(packets, bytes)` volume of the batch's tail starting at `from` —
/// used to attribute only the newly produced packets of a batched pull.
/// `(0, 0)` when telemetry is off (the batch is not walked).
#[cfg(feature = "telemetry")]
#[inline]
pub fn batch_volume_from(b: &PacketBatch, from: usize) -> (u64, u64) {
    let mut packets = 0u64;
    let mut bytes = 0u64;
    for p in b.iter().skip(from) {
        packets += 1;
        bytes += p.len() as u64;
    }
    (packets, bytes)
}

/// `(packets, bytes)` volume of the batch's tail starting at `from` —
/// used to attribute only the newly produced packets of a batched pull.
/// `(0, 0)` when telemetry is off (the batch is not walked).
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub fn batch_volume_from(_b: &PacketBatch, _from: usize) -> (u64, u64) {
    (0, 0)
}

/// `(packets, bytes)` volume of a whole batch; `(0, 0)` when telemetry
/// is off.
#[inline]
pub fn batch_volume(b: &PacketBatch) -> (u64, u64) {
    batch_volume_from(b, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn profile_merge_sums_counters() {
        let mut a = ElementProfile::new("c0", "Classifier");
        a.packets = 3;
        a.bytes = 192;
        a.out_ports = vec![1, 0, 2];
        a.lat_buckets[2] = 3;
        let mut b = ElementProfile::new("c0", "Classifier");
        b.packets = 5;
        b.bytes = 320;
        b.out_ports = vec![0, 0, 4, 1];
        b.lat_buckets[3] = 5;
        a.merge(&b);
        assert_eq!(a.packets, 8);
        assert_eq!(a.bytes, 512);
        assert_eq!(a.out_ports, vec![1, 0, 6, 1]);
        assert_eq!(a.lat_buckets[2], 3);
        assert_eq!(a.lat_buckets[3], 5);
    }

    #[test]
    fn merge_profiles_aligns_by_name() {
        let mut s0 = ElementProfile::new("c0", "Classifier");
        s0.packets = 2;
        let mut s1a = ElementProfile::new("c0", "Classifier");
        s1a.packets = 3;
        let s1b = ElementProfile::new("q0", "Queue");
        let merged = merge_profiles(&[vec![s0], vec![s1a, s1b]]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].name, "c0");
        assert_eq!(merged[0].packets, 5);
        assert_eq!(merged[1].name, "q0");
    }

    #[test]
    fn cold_ports_include_unindexed_tail() {
        let mut p = ElementProfile::new("c0", "Classifier");
        p.out_ports = vec![4, 0];
        assert_eq!(p.cold_ports(4), vec![1, 2, 3]);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn frames_attribute_exclusive_time() {
        let mut t = RouterTelemetry::new(2);
        t.enter(); // elem 0 (parent)
        t.enter(); // elem 1 (child)
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.exit(1, 1, 64);
        t.exit(0, 1, 64);
        let mut profiles = vec![
            ElementProfile::new("parent", "X"),
            ElementProfile::new("child", "Y"),
        ];
        t.fill(&mut profiles);
        // The child's sleep is excluded from the parent's self time.
        assert!(profiles[1].self_ns >= 1_000_000);
        assert!(profiles[0].self_ns < profiles[1].self_ns);
        assert_eq!(profiles[0].packets, 1);
        assert_eq!(profiles[1].calls, 1);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_probes_report_zero() {
        let mut t = RouterTelemetry::new(2);
        t.enter();
        t.exit(0, 1, 64);
        t.record_out(0, 0, 1);
        let mut profiles = vec![ElementProfile::new("a", "X")];
        t.fill(&mut profiles);
        assert_eq!(profiles[0].packets, 0);
        // `ENABLED` mirroring the cfg is itself part of the contract.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(!ENABLED);
        }
    }
}
