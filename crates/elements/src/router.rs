//! The router runtime: instantiates a configuration graph and executes
//! packet transfers.
//!
//! The runtime is generic over how elements are stored and dispatched (the
//! [`Slot`] trait), because dispatch is exactly what `click-devirtualize`
//! optimizes: [`DynRouter`] stores `Box<dyn Element>` and every transfer
//! goes through a vtable (the paper's "packets are transferred between
//! elements via dynamic dispatches"); the compiled router in
//! [`crate::fast`] stores a concrete enum and dispatches statically.

use crate::batch::{BatchEmitter, PacketBatch};
use crate::element::{CreateCtx, DeviceId, DeviceMap, Element, Emitter, PullContext, TaskContext};
use crate::iodev::{
    backend_scheme, open_backend, DeviceBackend, DeviceHealth, PumpStats, SendOutcome,
    SupervisedDevice,
};
use crate::packet::Packet;
use crate::persist::{
    Checkpoint, CheckpointEngine, DeviceRecord, ElementRecord, EngineSnapshot, PacketRecord,
    RestoreStats,
};
use crate::swap::{ElementState, SwapReport, TransferPlan};
use crate::telemetry::DeviceGauges;
use crate::telemetry::{self, ElementProfile, RouterTelemetry};
use click_core::check::check;
use click_core::error::{Error, Result};
use click_core::graph::RouterGraph;
use click_core::registry::{devirt_base, Library};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Storage and dispatch for one element in a running router.
///
/// `pull` and `pull_batch` are generic over the pull context rather than
/// taking `&mut dyn PullContext`: a `Slot` is never used as a trait
/// object, and the router always supplies the one concrete context type
/// (`RouterPullCtx<S>`), so for the compiled engine the whole pull chain
/// monomorphizes to static calls. A dynamic slot (`Box<dyn Element>`)
/// re-erases the context at the element boundary, which is exactly the
/// vtable cost the baseline is supposed to pay.
pub trait Slot: Sized {
    /// Instantiates an element of `class` with `config`.
    fn create(class: &str, config: &str, ctx: &mut CreateCtx) -> Result<Self>;
    /// See [`Element::push`].
    fn push(&mut self, port: usize, p: Packet, out: &mut Emitter);
    /// See [`Element::pull`].
    fn pull<C: PullContext>(&mut self, port: usize, ctx: &mut C) -> Option<Packet>;
    /// See [`Element::push_batch`].
    fn push_batch(&mut self, port: usize, batch: PacketBatch, out: &mut BatchEmitter);
    /// See [`Element::pull_batch`].
    fn pull_batch<C: PullContext>(
        &mut self,
        port: usize,
        max: usize,
        ctx: &mut C,
        into: &mut PacketBatch,
    ) -> usize;
    /// See [`Element::is_task`].
    fn is_task(&self) -> bool;
    /// See [`Element::run_task`].
    fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize;
    /// See [`Element::stat`].
    fn stat(&self, name: &str) -> Option<u64>;
    /// See [`Element::queue_depth_handle`].
    fn queue_depth_handle(&self) -> Option<Rc<Cell<usize>>>;
    /// See [`Element::attach_downstream_queue`].
    fn attach_downstream_queue(&mut self, handle: Rc<Cell<usize>>);
    /// See [`Element::take_state`].
    fn take_state(&mut self) -> Option<ElementState>;
    /// See [`Element::restore_state`].
    fn restore_state(&mut self, state: ElementState);
}

impl Slot for Box<dyn Element> {
    fn create(class: &str, config: &str, ctx: &mut CreateCtx) -> Result<Self> {
        crate::elements::create_element(class, config, ctx)
    }
    fn push(&mut self, port: usize, p: Packet, out: &mut Emitter) {
        (**self).push(port, p, out)
    }
    fn pull<C: PullContext>(&mut self, port: usize, ctx: &mut C) -> Option<Packet> {
        (**self).pull(port, ctx)
    }
    fn push_batch(&mut self, port: usize, batch: PacketBatch, out: &mut BatchEmitter) {
        (**self).push_batch(port, batch, out)
    }
    fn pull_batch<C: PullContext>(
        &mut self,
        port: usize,
        max: usize,
        ctx: &mut C,
        into: &mut PacketBatch,
    ) -> usize {
        (**self).pull_batch(port, max, ctx, into)
    }
    fn is_task(&self) -> bool {
        (**self).is_task()
    }
    fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize {
        (**self).run_task(ctx)
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (**self).stat(name)
    }
    fn queue_depth_handle(&self) -> Option<Rc<Cell<usize>>> {
        (**self).queue_depth_handle()
    }
    fn attach_downstream_queue(&mut self, handle: Rc<Cell<usize>>) {
        (**self).attach_downstream_queue(handle)
    }
    fn take_state(&mut self) -> Option<ElementState> {
        (**self).take_state()
    }
    fn restore_state(&mut self, state: ElementState) {
        (**self).restore_state(state)
    }
}

/// Network devices: per-device RX and TX packet queues that tests,
/// benchmarks, and the hardware simulator feed and drain — and that a
/// real I/O backend ([`crate::iodev::DeviceBackend`]) can sit beneath.
/// The elements only ever see the queues, so hot swap, fault gauges, and
/// the reopt daemon work identically over simulated and real traffic.
#[derive(Debug, Default)]
pub struct DeviceBank {
    map: DeviceMap,
    rx: Vec<VecDeque<Packet>>,
    tx: Vec<Vec<Packet>>,
    /// Supervised real-I/O backends, indexed like `rx`/`tx`. `None`
    /// keeps the device purely simulated.
    backends: Vec<Option<SupervisedDevice>>,
    /// Packets addressed to a device id the bank does not have (a stale
    /// id after a mismatched swap): recycled and accounted, not a panic.
    bad_id_drops: u64,
    /// Device losses inherited from banks retired by hot swaps, so
    /// [`DeviceBank::lost_packets`] stays monotonic.
    lost_retired: u64,
}

impl DeviceBank {
    fn from_map(map: DeviceMap) -> DeviceBank {
        let n = map.len();
        DeviceBank {
            map,
            rx: (0..n).map(|_| VecDeque::new()).collect(),
            tx: (0..n).map(|_| Vec::new()).collect(),
            backends: (0..n).map(|_| None).collect(),
            bad_id_drops: 0,
            lost_retired: 0,
        }
    }

    /// Looks up a device id by name.
    pub fn id(&self, name: &str) -> Option<DeviceId> {
        self.map.get(name)
    }

    /// Device names in id order.
    pub fn names(&self) -> Vec<&str> {
        (0..self.map.len())
            .map(|i| self.map.name(DeviceId(i)))
            .collect()
    }

    /// Queues a packet for reception on a device. A stale device id is
    /// an accounted drop, never a panic (PR 5 audit discipline).
    pub fn inject(&mut self, dev: DeviceId, p: Packet) {
        match self.rx.get_mut(dev.0) {
            Some(q) => q.push_back(p),
            None => {
                self.bad_id_drops += 1;
                p.recycle();
            }
        }
    }

    /// Pops a received packet (used by `FromDevice`).
    pub fn rx_pop(&mut self, dev: DeviceId) -> Option<Packet> {
        self.rx.get_mut(dev.0)?.pop_front()
    }

    /// Drains up to `max` received packets into `into` in one pass (used
    /// by `FromDevice` in batch mode); returns how many were moved.
    pub fn rx_pop_batch(&mut self, dev: DeviceId, max: usize, into: &mut PacketBatch) -> usize {
        let Some(q) = self.rx.get_mut(dev.0) else {
            return 0;
        };
        let n = max.min(q.len());
        into.extend(q.drain(..n));
        n
    }

    /// Number of packets waiting for reception.
    pub fn rx_len(&self, dev: DeviceId) -> usize {
        self.rx.get(dev.0).map_or(0, VecDeque::len)
    }

    /// Appends a transmitted packet (used by `ToDevice`). A stale device
    /// id is an accounted drop, never a panic.
    pub fn tx_push(&mut self, dev: DeviceId, p: Packet) {
        match self.tx.get_mut(dev.0) {
            Some(q) => q.push(p),
            None => {
                self.bad_id_drops += 1;
                p.recycle();
            }
        }
    }

    /// Appends a whole batch to a device's TX queue (used by `ToDevice`
    /// in batch mode). The batch is drained but keeps its storage.
    pub fn tx_push_batch(&mut self, dev: DeviceId, batch: &mut PacketBatch) {
        match self.tx.get_mut(dev.0) {
            Some(q) => q.extend(batch.drain()),
            None => {
                for p in batch.drain() {
                    self.bad_id_drops += 1;
                    p.recycle();
                }
            }
        }
    }

    /// Takes all packets transmitted on a device so far.
    ///
    /// The caller owns the packets; a caller that only counts or
    /// inspects them should prefer [`DeviceBank::drain_tx_into`] (keeps
    /// batch storage warm) or [`DeviceBank::recycle_tx`] (returns the
    /// buffers to the packet pool), so long-running benchmarks do not
    /// leak pool capacity one drained packet at a time.
    pub fn take_tx(&mut self, dev: DeviceId) -> Vec<Packet> {
        self.tx
            .get_mut(dev.0)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Drains every packet transmitted on a device into `into` in one
    /// batched transfer, reusing the batch's storage; returns how many
    /// packets moved. The TX queue keeps its capacity for the next burst.
    ///
    /// `into` need not be empty: drained packets are *appended* after any
    /// it already holds, and the return value counts only the packets
    /// appended by this call — it is **not** `into.len()`. Callers that
    /// accumulate several devices (or several drains) into one batch must
    /// sum the return values rather than read the batch length, or the
    /// earlier drains' packets are silently double-counted or lost from
    /// the stats.
    pub fn drain_tx_into(&mut self, dev: DeviceId, into: &mut PacketBatch) -> usize {
        let before = into.len();
        let Some(q) = self.tx.get_mut(dev.0) else {
            return 0;
        };
        let n = q.len();
        into.extend(q.drain(..));
        debug_assert_eq!(
            into.len(),
            before + n,
            "drain_tx_into must append exactly the drained packets"
        );
        n
    }

    /// Drops every packet transmitted on a device, recycling their
    /// buffers into the thread-local packet pool; returns how many were
    /// recycled. This is the steady-state path for harnesses that drain
    /// TX queues without looking at the bytes — unlike dropping the
    /// result of [`DeviceBank::take_tx`], the buffer capacity survives
    /// for the next allocation.
    pub fn recycle_tx(&mut self, dev: DeviceId) -> usize {
        let Some(q) = self.tx.get_mut(dev.0) else {
            return 0;
        };
        let n = q.len();
        for p in q.drain(..) {
            p.recycle();
        }
        n
    }

    /// Number of packets transmitted on a device (since last take).
    pub fn tx_len(&self, dev: DeviceId) -> usize {
        self.tx.get(dev.0).map_or(0, Vec::len)
    }

    /// Moves every queued packet out of `old` into this bank, matching
    /// devices by name: the hot-swap path for in-flight device traffic.
    /// Returns `(moved, orphaned)` packet counts; packets on devices the
    /// new configuration lacks are recycled and counted as orphaned.
    fn adopt(&mut self, old: &mut DeviceBank) -> (u64, u64) {
        let mut moved = 0u64;
        let mut orphaned = 0u64;
        // Loss accounting survives the swap so `lost_packets` (and
        // through it `Router::total_drops`) stays monotonic.
        self.lost_retired += old.bad_id_drops + old.lost_retired;
        for old_id in 0..old.rx.len() {
            let target = self.map.get(old.map.name(DeviceId(old_id)));
            let rx = std::mem::take(&mut old.rx[old_id]);
            let tx = std::mem::take(&mut old.tx[old_id]);
            let backend = old.backends[old_id].take();
            match target {
                Some(new_id) => {
                    moved += (rx.len() + tx.len()) as u64;
                    self.rx[new_id.0].extend(rx);
                    self.tx[new_id.0].extend(tx);
                    // The live backend (descriptor, gauges, health state)
                    // follows the device name across the swap, unless the
                    // new configuration already opened its own.
                    if self.backends[new_id.0].is_none() {
                        self.backends[new_id.0] = backend;
                    } else if let Some(b) = backend {
                        self.lost_retired += b.lost();
                    }
                }
                None => {
                    orphaned += (rx.len() + tx.len()) as u64;
                    for p in rx {
                        p.recycle();
                    }
                    for p in tx {
                        p.recycle();
                    }
                    if let Some(b) = backend {
                        self.lost_retired += b.lost();
                    }
                }
            }
        }
        (moved, orphaned)
    }

    /// Non-destructive copy of every device's pending RX/TX traffic,
    /// for the checkpoint path. Devices with nothing pending still get a
    /// record, so a restore can match them by name cheaply.
    pub fn pending_records(&self) -> Vec<DeviceRecord> {
        (0..self.map.len())
            .map(|i| DeviceRecord {
                name: self.map.name(DeviceId(i)).to_owned(),
                rx: self.rx[i].iter().map(PacketRecord::from_packet).collect(),
                tx: self.tx[i].iter().map(PacketRecord::from_packet).collect(),
            })
            .collect()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no devices exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    // -- real I/O backends ------------------------------------------------

    /// Attaches a backend beneath a device, wrapped in default
    /// supervision. Replaces any previous backend (its losses are
    /// retired into the accounting).
    pub fn attach_backend(&mut self, dev: DeviceId, backend: Box<dyn DeviceBackend>) {
        self.attach_supervised(dev, SupervisedDevice::new(backend));
    }

    /// Attaches an already-supervised backend (custom policies).
    pub fn attach_supervised(&mut self, dev: DeviceId, sup: SupervisedDevice) {
        if let Some(slot) = self.backends.get_mut(dev.0) {
            if let Some(old) = slot.replace(sup) {
                self.lost_retired += old.lost();
            }
        }
    }

    /// Opens a backend for every device whose *name* carries a backend
    /// scheme (`pcap:...`, `udp:...`, `tap:...`, `raw:...`, `mem:...`,
    /// `fault:...@...`); scheme-less devices stay simulated. Returns how
    /// many backends were opened.
    ///
    /// Nothing is opened at router construction — real I/O is an
    /// explicit opt-in by whoever drives the router.
    ///
    /// # Errors
    ///
    /// Fails on the first device whose backend cannot be opened;
    /// already-opened backends stay attached.
    pub fn open_backends(&mut self) -> Result<usize> {
        let mut opened = 0;
        for i in 0..self.map.len() {
            if self.backends[i].is_some() {
                continue;
            }
            let name = self.map.name(DeviceId(i)).to_string();
            if backend_scheme(&name).is_none() {
                continue;
            }
            let backend = open_backend(&name)?;
            self.backends[i] = Some(SupervisedDevice::new(backend));
            opened += 1;
        }
        Ok(opened)
    }

    /// True if the device has a backend attached.
    pub fn has_backend(&self, dev: DeviceId) -> bool {
        self.backends.get(dev.0).is_some_and(Option::is_some)
    }

    /// True if any device has a backend attached.
    pub fn has_backends(&self) -> bool {
        self.backends.iter().any(Option::is_some)
    }

    /// Health of a device's backend, if one is attached.
    pub fn backend_health(&self, dev: DeviceId) -> Option<DeviceHealth> {
        self.backends
            .get(dev.0)?
            .as_ref()
            .map(SupervisedDevice::health)
    }

    /// The supervised backend of a device (tests, chaos drivers).
    pub fn backend_mut(&mut self, dev: DeviceId) -> Option<&mut SupervisedDevice> {
        self.backends.get_mut(dev.0)?.as_mut()
    }

    /// True once every attached RX source is exhausted (finite traces
    /// fully replayed). Devices without backends don't count.
    pub fn backends_exhausted(&self) -> bool {
        self.backends
            .iter()
            .flatten()
            .all(SupervisedDevice::exhausted)
    }

    /// One pump round: moves up to `burst` frames per device from each
    /// backend into its RX queue, and drains each TX queue into its
    /// backend under the supervision rules (retry, backoff, drain
    /// deadline). Devices without backends are untouched.
    pub fn pump(&mut self, burst: usize) -> PumpStats {
        let mut stats = PumpStats::default();
        for i in 0..self.backends.len() {
            let Some(sup) = self.backends[i].as_mut() else {
                continue;
            };
            sup.tick();
            // RX: backend -> rx queue.
            for _ in 0..burst.max(1) {
                let Some(p) = sup.recv() else { break };
                self.rx[i].push_back(p);
                stats.rx += 1;
            }
            // TX: tx queue -> backend, in order; a blocked device keeps
            // its queue (deadline running), a dead-past-deadline device
            // converts it to accounted loss.
            if self.tx[i].is_empty() {
                continue;
            }
            if sup.should_drop_pending() {
                let q = std::mem::take(&mut self.tx[i]);
                let n = q.len() as u64;
                for p in q {
                    p.recycle();
                }
                sup.count_drain_lost(n);
                stats.lost += n;
                continue;
            }
            let q = std::mem::take(&mut self.tx[i]);
            let mut it = q.into_iter();
            while let Some(p) = it.next() {
                match sup.send_pkt(p) {
                    SendOutcome::Sent => stats.tx += 1,
                    SendOutcome::Lost => stats.lost += 1,
                    SendOutcome::Pending(p) => {
                        // Put the head back, keep order, stop this device.
                        let mut rest: Vec<Packet> = Vec::with_capacity(it.len() + 1);
                        rest.push(p);
                        rest.extend(it);
                        rest.append(&mut self.tx[i]);
                        self.tx[i] = rest;
                        break;
                    }
                }
            }
        }
        stats
    }

    /// Always-live per-device gauges for every attached backend, in
    /// device-id order.
    pub fn device_gauges(&self) -> Vec<DeviceGauges> {
        let mut out = Vec::new();
        for (i, slot) in self.backends.iter().enumerate() {
            if let Some(sup) = slot {
                let mut g = sup.gauges();
                g.device = self.map.name(DeviceId(i)).to_string();
                out.push(g);
            }
        }
        out
    }

    /// Packets this bank has irrecoverably lost: bad-device-id drops,
    /// drain-deadline TX losses, and losses inherited from swapped-out
    /// banks. Folded into [`Router::total_drops`] so
    /// `injected == tx + drops` stays exact over real devices too.
    pub fn lost_packets(&self) -> u64 {
        self.bad_id_drops
            + self.lost_retired
            + self
                .backends
                .iter()
                .flatten()
                .map(SupervisedDevice::lost)
                .sum::<u64>()
    }
}

/// A running router.
///
/// Elements live in `Rc<RefCell<_>>` slots: packet transfers borrow the
/// target element in place (no moves — a devirtualized enum element can
/// be large), and a failed re-borrow detects configuration loops.
pub struct Router<S: Slot> {
    slots: Vec<Rc<RefCell<S>>>,
    names: HashMap<String, usize>,
    classes: Vec<String>,
    out_conns: Vec<Vec<Vec<(usize, usize)>>>,
    in_conns: Vec<Vec<Vec<(usize, usize)>>>,
    tasks: Vec<usize>,
    /// Simulated devices.
    pub devices: DeviceBank,
    drops_unconnected: u64,
    drops_reentrant: u64,
    /// Drop counters of elements retired by past hot swaps, folded in so
    /// [`Router::total_drops`] stays monotonic when a dropping element
    /// (e.g. a rolled-back `FaultInject`) leaves the configuration.
    drops_retired: u64,
    batching: bool,
    batch_burst: usize,
    batch_out: Option<BatchEmitter>,
    telem: RouterTelemetry,
    /// Which worker shard this engine is (0 for a serial router); a hot
    /// swap rebuilds the replacement engine in the same shard.
    shard: usize,
}

/// A router whose elements dispatch dynamically (`Box<dyn Element>`) —
/// the unoptimized baseline.
pub type DynRouter = Router<Box<dyn Element>>;

impl<S: Slot> Router<S> {
    /// Instantiates a router from a configuration graph.
    ///
    /// # Errors
    ///
    /// Returns the first check error if the configuration is invalid, or a
    /// configuration error from an element constructor.
    pub fn from_graph(graph: &RouterGraph, library: &Library) -> Result<Router<S>> {
        Router::from_graph_in_shard(graph, library, 0)
    }

    /// Instantiates a router that knows it is worker shard `shard` of a
    /// sharded runtime: element constructors see the shard index through
    /// [`CreateCtx::shard`], so shard-scoped elements (`FaultInject` with
    /// a `SHARD` clause) can tell which clone they are. A serial router
    /// is shard 0.
    ///
    /// # Errors
    ///
    /// Same as [`Router::from_graph`].
    pub fn from_graph_in_shard(
        graph: &RouterGraph,
        library: &Library,
        shard: usize,
    ) -> Result<Router<S>> {
        let report = check(graph, library);
        if !report.is_ok() {
            // Join every error diagnostic: a rejected config (especially on
            // the hot-swap path) should surface all of its problems at
            // once, and this avoids assuming the report is non-empty.
            let msgs: Vec<String> = report.errors().map(ToString::to_string).collect();
            return Err(Error::check(msgs.join("; ")));
        }

        let ids: Vec<_> = graph.element_ids().collect();
        let index: HashMap<_, _> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let n = ids.len();

        let mut ctx = CreateCtx::for_shard(shard);
        let mut slots = Vec::with_capacity(n);
        let mut names = HashMap::new();
        let mut classes = Vec::with_capacity(n);
        for (i, &id) in ids.iter().enumerate() {
            let decl = graph.element(id);
            let slot = S::create(decl.class(), decl.config(), &mut ctx)?;
            slots.push(Rc::new(RefCell::new(slot)));
            names.insert(decl.name().to_owned(), i);
            classes.push(decl.class().to_owned());
        }

        let mut out_conns: Vec<Vec<Vec<(usize, usize)>>> = vec![Vec::new(); n];
        let mut in_conns: Vec<Vec<Vec<(usize, usize)>>> = vec![Vec::new(); n];
        for c in graph.connections() {
            let fe = index[&c.from.element];
            let te = index[&c.to.element];
            if out_conns[fe].len() <= c.from.port {
                out_conns[fe].resize(c.from.port + 1, Vec::new());
            }
            out_conns[fe][c.from.port].push((te, c.to.port));
            if in_conns[te].len() <= c.to.port {
                in_conns[te].resize(c.to.port + 1, Vec::new());
            }
            in_conns[te][c.to.port].push((fe, c.from.port));
        }

        let tasks: Vec<usize> = (0..n).filter(|&i| slots[i].borrow().is_task()).collect();

        let mut router = Router {
            slots,
            names,
            classes,
            out_conns,
            in_conns,
            tasks,
            devices: DeviceBank::from_map(ctx.devices),
            drops_unconnected: 0,
            drops_reentrant: 0,
            drops_retired: 0,
            batching: false,
            batch_burst: crate::elements::device::BURST,
            batch_out: Some(BatchEmitter::new()),
            telem: RouterTelemetry::new(n),
            shard,
        };
        router.wire_red_elements();
        Ok(router)
    }

    /// RED elements need the depth handle of the nearest downstream
    /// storage element (Click finds its `Storage` the same way).
    fn wire_red_elements(&mut self) {
        for i in 0..self.slots.len() {
            if devirt_base(&self.classes[i]).unwrap_or(&self.classes[i]) != "RED" {
                continue;
            }
            // BFS downstream for a queue-depth handle.
            let mut seen = vec![false; self.slots.len()];
            let mut queue = VecDeque::from([i]);
            let mut handle = None;
            while let Some(e) = queue.pop_front() {
                if seen[e] {
                    continue;
                }
                seen[e] = true;
                if e != i {
                    if let Some(h) = self.slots[e].borrow().queue_depth_handle() {
                        handle = Some(h);
                        break;
                    }
                }
                for port in &self.out_conns[e] {
                    for &(te, _) in port {
                        queue.push_back(te);
                    }
                }
            }
            if let Some(h) = handle {
                self.slots[i].borrow_mut().attach_downstream_queue(h);
            }
        }
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.slots.len()
    }

    /// Finds an element index by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.names.get(name).copied()
    }

    /// The class name of an element.
    pub fn class_of(&self, elem: usize) -> &str {
        &self.classes[elem]
    }

    /// Reads a named statistic from an element.
    pub fn stat(&self, element: &str, stat: &str) -> Option<u64> {
        let idx = self.find(element)?;
        let v = self.slots[idx].borrow().stat(stat);
        v
    }

    /// Sum of a statistic across all elements of a class.
    pub fn class_stat(&self, class: &str, stat: &str) -> u64 {
        (0..self.slots.len())
            .filter(|&i| devirt_base(&self.classes[i]).unwrap_or(&self.classes[i]) == class)
            .filter_map(|i| self.slots[i].borrow().stat(stat))
            .sum()
    }

    /// Packets dropped because they were emitted on unconnected ports.
    pub fn unconnected_drops(&self) -> u64 {
        self.drops_unconnected
    }

    /// Packets dropped because a transfer re-entered an element already on
    /// the call stack (a configuration loop).
    pub fn reentrant_drops(&self) -> u64 {
        self.drops_reentrant
    }

    /// The router's aggregate drop gauge: every element's `drops`
    /// statistic plus the engine's unconnected/reentrant drops. Monotonic
    /// across a hot swap (matched elements carry their counters over, the
    /// engine drops transfer, and retired elements' drop counters fold
    /// into a carryover gauge), which is what makes it usable as the
    /// canary-regression signal in
    /// [`crate::parallel::ParallelRouter::hot_swap`] and as the
    /// probation signal of the `click-morph` reoptimization loop.
    pub fn total_drops(&self) -> u64 {
        let elem: u64 = self
            .slots
            .iter()
            .filter_map(|s| s.borrow().stat("drops"))
            .sum();
        elem + self.drops_unconnected
            + self.drops_reentrant
            + self.drops_retired
            + self.devices.lost_packets()
    }

    /// `(name, class)` of every element, in slot order — the table
    /// [`TransferPlan::compute`] matches on.
    fn name_class_table(&self) -> Vec<(String, String)> {
        let mut t = vec![(String::new(), String::new()); self.slots.len()];
        for (name, &i) in &self.names {
            t[i] = (name.clone(), self.classes[i].clone());
        }
        t
    }

    /// Atomically replaces the running configuration with `new_graph`,
    /// carrying state across: element counters and buffered packets move
    /// to same-name, same-class successors ([`TransferPlan`]), device
    /// RX/TX queues move by device name, engine drop gauges stay
    /// monotonic, and (with the `telemetry` feature) per-element profiles
    /// of matched elements merge into the new engine.
    ///
    /// The caller must have drained in-flight work first — for a serial
    /// router that simply means calling this between transfers, since
    /// nothing is in flight outside [`Router::run_until_idle`]. `Queue`
    /// contents intentionally survive (they are the state being
    /// preserved, not in-flight work).
    ///
    /// The swap is all-or-nothing: `new_graph` is validated by
    /// [`click_core::check::check`] and its elements are constructed
    /// *before* any state moves, so on error the old configuration keeps
    /// running untouched.
    ///
    /// # Errors
    ///
    /// [`Error::Check`] with every check diagnostic when `new_graph` is
    /// invalid; element-construction errors otherwise. The old
    /// configuration is unchanged in both cases.
    pub fn hot_swap(&mut self, new_graph: &RouterGraph, library: &Library) -> Result<SwapReport> {
        let mut next: Router<S> = Router::from_graph_in_shard(new_graph, library, self.shard)?;
        next.set_batching(self.batching);
        next.set_batch_burst(self.batch_burst);

        let plan = TransferPlan::compute(&self.name_class_table(), &next.name_class_table());
        let mut transferred = 0u64;
        let mut dropped = 0u64;
        for &(oi, ni) in &plan.matched {
            if let Some(state) = self.slots[oi].borrow_mut().take_state() {
                transferred += state.packets.len() as u64;
                next.slots[ni].borrow_mut().restore_state(state);
            }
        }
        let mut retired_drops = 0u64;
        for &oi in &plan.retired {
            // A retired element's lifetime drops would silently leave
            // the aggregate gauge; remember them so `total_drops` stays
            // monotonic (the swap's own losses are counted separately).
            retired_drops += self.slots[oi].borrow().stat("drops").unwrap_or(0);
            if let Some(state) = self.slots[oi].borrow_mut().take_state() {
                dropped += state.packets.len() as u64;
                state.recycle_packets();
            }
        }

        let (moved, orphaned) = next.devices.adopt(&mut self.devices);
        transferred += moved;
        dropped += orphaned;

        // Engine gauges stay monotonic across the swap.
        next.drops_unconnected += self.drops_unconnected;
        next.drops_reentrant += self.drops_reentrant;
        next.drops_retired += self.drops_retired + retired_drops;
        next.telem.transfer_from(&self.telem, &plan.matched);

        let report = SwapReport {
            matched: plan.matched.len(),
            fresh: plan.fresh.len(),
            retired: plan.retired.len(),
            packets_transferred: transferred,
            packets_dropped: dropped,
            swapped_shards: 1,
            ..SwapReport::default()
        };
        *self = next;
        Ok(report)
    }

    // ---- checkpoint/restore ---------------------------------------------

    /// Cuts a consistent snapshot of every element's state and the
    /// device bank's pending traffic **without disturbing the running
    /// router**: each element's state is taken over the hot-swap surface
    /// ([`Element::take_state`]), copied into plain-data records, and
    /// handed straight back with its counters cleared — so `+=`-style
    /// restores are no-ops, queued packets and opaque payloads (routing
    /// tries) return home, and RNG state is untouched.
    ///
    /// The caller must be between transfers (a serial router always is,
    /// outside [`Router::run_until_idle`]); the reported `quiesce_ns` is
    /// the wall-clock cost of the state walk — the pause the data plane
    /// experiences.
    pub fn checkpoint_snapshot(&mut self) -> EngineSnapshot {
        let t0 = std::time::Instant::now();
        let table = self.name_class_table();
        let mut elements = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let mut el = slot.borrow_mut();
            if let Some(mut state) = el.take_state() {
                elements.push(ElementRecord::from_state(&table[i].0, &table[i].1, &state));
                // Hand everything back: cleared counters make the
                // element's `+=` restore a no-op, while packets and
                // opaque payloads (e.g. a routing trie) return home.
                state.counters.clear();
                el.restore_state(state);
            }
        }
        let devices = self.devices.pending_records();
        EngineSnapshot {
            elements,
            devices,
            total_drops: self.total_drops(),
            quiesce_ns: t0.elapsed().as_nanos() as u64,
        }
    }

    /// Applies checkpoint records to this (freshly built) router:
    /// element records land on same-name, same-base-class elements
    /// (devirtualized names normalize, exactly as in a hot-swap transfer
    /// plan), device records refill the pending RX/TX queues by name,
    /// and the engine's drop ledger is topped up to `target_drops` — so
    /// the aggregate drop gauge resumes exactly where the checkpointed
    /// incarnation left it, with orphaned records counted as retired
    /// drops rather than silently vanishing.
    pub fn restore_records(
        &mut self,
        elements: &[ElementRecord],
        devices: &[DeviceRecord],
        target_drops: u64,
    ) -> RestoreStats {
        let mut stats = RestoreStats::default();
        let base = |class: &str| devirt_base(class).unwrap_or(class).to_owned();
        for rec in elements {
            match self.names.get(&rec.name).copied() {
                Some(i) if base(&self.classes[i]) == base(&rec.class) => {
                    let state = rec.to_state();
                    stats.packets_restored += state.packets.len() as u64;
                    self.slots[i].borrow_mut().restore_state(state);
                    stats.matched += 1;
                }
                _ => {
                    stats.unmatched += 1;
                    stats.packets_orphaned += rec.packets.len() as u64;
                }
            }
        }
        for dev in devices {
            match self.devices.id(&dev.name) {
                Some(id) => {
                    stats.packets_restored += (dev.rx.len() + dev.tx.len()) as u64;
                    for pr in &dev.rx {
                        self.devices.inject(id, pr.to_packet());
                    }
                    for pr in &dev.tx {
                        self.devices.tx_push(id, pr.to_packet());
                    }
                }
                None => stats.packets_orphaned += (dev.rx.len() + dev.tx.len()) as u64,
            }
        }
        // Resume the monotonic drop ledger exactly at the checkpoint's
        // value; whatever this incarnation cannot re-home is a retired
        // drop of its own.
        let have = self.total_drops();
        stats.drops_topped_up = target_drops.saturating_sub(have);
        self.drops_retired += stats.drops_topped_up + stats.packets_orphaned;
        stats
    }

    /// Warm restart: builds a router from the checkpoint's installed
    /// configuration text (the *optimized* config if the reopt loop had
    /// swapped one in) and applies its records.
    ///
    /// # Errors
    ///
    /// Configuration parse/check/construction errors; the caller should
    /// degrade to a cold start from its source configuration, not crash.
    pub fn restore_from(ckpt: &Checkpoint, library: &Library) -> Result<(Router<S>, RestoreStats)> {
        let graph = click_core::lang::read_config(&ckpt.config)?;
        let mut router = Router::from_graph(&graph, library)?;
        let stats = router.restore_records(&ckpt.elements, &ckpt.devices, ckpt.ledger.drops);
        Ok((router, stats))
    }

    // ---- telemetry -------------------------------------------------------

    /// Per-element telemetry snapshots, one per element instance, in slot
    /// order. Counters are live only when the crate is built with the
    /// `telemetry` feature ([`telemetry::ENABLED`]); otherwise the
    /// profiles carry names and classes but read zero.
    pub fn telemetry_profiles(&self) -> Vec<ElementProfile> {
        let mut by_index: Vec<&str> = vec![""; self.slots.len()];
        for (name, &i) in &self.names {
            by_index[i] = name;
        }
        let mut out: Vec<ElementProfile> = by_index
            .iter()
            .zip(&self.classes)
            .map(|(n, c)| ElementProfile::new(n, c))
            .collect();
        self.telem.fill(&mut out);
        out
    }

    /// Zeroes the telemetry counters (a no-op without the `telemetry`
    /// feature).
    pub fn telemetry_reset(&mut self) {
        self.telem.reset();
    }

    // ---- batch mode ------------------------------------------------------

    /// Switches the execution engine between per-packet transfers (the
    /// paper's model) and batched transfers (VPP-style vector processing).
    /// Task elements observe the flag through
    /// [`TaskContext::batching`] and move [`PacketBatch`]es instead of
    /// single packets when it is on.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// True if the batched engine is active.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Sets how many packets device tasks move per scheduling quantum in
    /// batch mode (defaults to the device `BURST`).
    pub fn set_batch_burst(&mut self, burst: usize) {
        self.batch_burst = burst.max(1);
    }

    /// Packets device tasks move per scheduling quantum in batch mode.
    pub fn batch_burst(&self) -> usize {
        self.batch_burst
    }

    /// Hands out empty batch storage from the engine's free list so task
    /// elements can refill their scratch batch without allocating.
    pub fn take_batch_storage(&mut self) -> PacketBatch {
        match &mut self.batch_out {
            Some(out) => out.take_storage(),
            None => PacketBatch::new(),
        }
    }

    // ---- push path -----------------------------------------------------

    /// Delivers a packet to an element's input port and runs the push
    /// chain to completion.
    pub fn push_to(&mut self, elem: usize, port: usize, p: Packet) {
        let mut stack = vec![(elem, port, p)];
        self.run_push_stack(&mut stack);
    }

    /// Pushes a packet out of an element's output port (runs whatever is
    /// connected downstream).
    pub fn push_from(&mut self, elem: usize, out_port: usize, p: Packet) {
        let mut stack = Vec::new();
        self.enqueue_targets(elem, out_port, p, &mut stack);
        self.run_push_stack(&mut stack);
    }

    fn run_push_stack(&mut self, stack: &mut Vec<(usize, usize, Packet)>) {
        // A generous hop budget breaks configuration cycles (a -> b -> a):
        // the stack-based engine releases each element's borrow between
        // hops, so a pure re-entrancy check cannot see loops.
        let mut budget = 64 + self.slots.len() * 64;
        let mut out = Emitter::new();
        while let Some((e, port, p)) = stack.pop() {
            if budget == 0 {
                self.drops_reentrant += 1;
                continue;
            }
            budget -= 1;
            {
                let cell = &self.slots[e];
                let Ok(mut el) = cell.try_borrow_mut() else {
                    self.drops_reentrant += 1;
                    continue;
                };
                let bytes = telemetry::packet_bytes(&p);
                self.telem.enter();
                el.push(port, p, &mut out);
                self.telem.exit(e, 1, bytes);
            }
            let emitted: Vec<_> = out.drain().collect();
            // Reverse so the first-emitted packet is processed first
            // (depth-first, like Click's call chain).
            for (oport, pkt) in emitted.into_iter().rev() {
                self.enqueue_targets(e, oport, pkt, stack);
            }
        }
    }

    fn enqueue_targets(
        &mut self,
        e: usize,
        oport: usize,
        pkt: Packet,
        stack: &mut Vec<(usize, usize, Packet)>,
    ) {
        self.telem.record_out(e, oport, 1);
        let targets = match self.out_conns[e].get(oport) {
            Some(t) if !t.is_empty() => t.clone(),
            _ => {
                self.drops_unconnected += 1;
                return;
            }
        };
        if targets.len() == 1 {
            stack.push((targets[0].0, targets[0].1, pkt));
        } else {
            for &(te, tp) in &targets {
                stack.push((te, tp, pkt.clone()));
            }
        }
    }

    // ---- batched push path ----------------------------------------------

    /// Delivers a whole batch to an element's input port and runs the
    /// batched push chain to completion.
    pub fn push_batch_to(&mut self, elem: usize, port: usize, batch: PacketBatch) {
        if batch.is_empty() {
            return;
        }
        let mut stack = vec![(elem, port, batch)];
        self.run_batch_stack(&mut stack);
    }

    /// Pushes a whole batch out of an element's output port.
    pub fn push_batch_from(&mut self, elem: usize, out_port: usize, batch: PacketBatch) {
        if batch.is_empty() {
            return;
        }
        let mut stack = Vec::new();
        let mut out = self.batch_out.take().unwrap_or_default();
        self.enqueue_targets_batch(elem, out_port, batch, &mut stack, &mut out);
        self.batch_out = Some(out);
        self.run_batch_stack(&mut stack);
    }

    fn run_batch_stack(&mut self, stack: &mut Vec<(usize, usize, PacketBatch)>) {
        // Same hop budget as the scalar engine, but per batch hop: a loop
        // is broken after the same number of transfers, dropping whole
        // batches. The emitter (with its storage free list) persists on
        // the router so steady-state forwarding reuses batch allocations.
        let mut budget = 64 + self.slots.len() * 64;
        let mut out = self.batch_out.take().unwrap_or_default();
        while let Some((e, port, mut batch)) = stack.pop() {
            if budget == 0 {
                self.drops_reentrant += batch.len() as u64;
                batch.recycle_packets();
                out.recycle_storage(batch);
                continue;
            }
            budget -= 1;
            {
                let cell = &self.slots[e];
                let Ok(mut el) = cell.try_borrow_mut() else {
                    self.drops_reentrant += batch.len() as u64;
                    batch.recycle_packets();
                    out.recycle_storage(batch);
                    continue;
                };
                let (packets, bytes) = telemetry::batch_volume(&batch);
                self.telem.enter();
                el.push_batch(port, batch, &mut out);
                self.telem.exit(e, packets, bytes);
            }
            // Groups pop in reverse emission order; pushing them onto the
            // stack leaves the first-emitted group on top, so processing
            // stays depth-first like the scalar engine.
            while let Some((oport, b)) = out.pop_group() {
                self.enqueue_targets_batch(e, oport, b, stack, &mut out);
            }
        }
        self.batch_out = Some(out);
    }

    fn enqueue_targets_batch(
        &mut self,
        e: usize,
        oport: usize,
        mut batch: PacketBatch,
        stack: &mut Vec<(usize, usize, PacketBatch)>,
        out: &mut BatchEmitter,
    ) {
        self.telem.record_out(e, oport, batch.len() as u64);
        let targets = match self.out_conns[e].get(oport) {
            Some(t) if !t.is_empty() => t.clone(),
            _ => {
                self.drops_unconnected += batch.len() as u64;
                batch.recycle_packets();
                out.recycle_storage(batch);
                return;
            }
        };
        // The match above guarantees non-emptiness; degrade to the
        // unconnected-drop path rather than panicking if that ever breaks.
        let Some((first, rest)) = targets.split_first() else {
            self.drops_unconnected += batch.len() as u64;
            batch.recycle_packets();
            out.recycle_storage(batch);
            return;
        };
        if rest.is_empty() {
            stack.push((first.0, first.1, batch));
            return;
        }
        // Fan-out (Tee-style unconnected duplication): the original batch
        // goes to the first target, pooled clones to the rest; pushed in
        // connection order so the last connection is processed first, as
        // in the scalar engine.
        let clones: Vec<PacketBatch> = rest
            .iter()
            .map(|_| {
                let mut nb = out.take_storage();
                nb.extend(batch.iter().cloned());
                nb
            })
            .collect();
        stack.push((first.0, first.1, batch));
        for (&(te, tp), nb) in rest.iter().zip(clones) {
            stack.push((te, tp, nb));
        }
    }

    // ---- pull path -----------------------------------------------------

    /// Pulls a packet into an element's input port from whatever is
    /// connected upstream.
    pub fn pull_input_of(&mut self, elem: usize, in_port: usize) -> Option<Packet> {
        let &(se, sp) = self.in_conns[elem].get(in_port)?.first()?;
        self.pull_output_of(se, sp)
    }

    /// Asks an element to produce a packet on one of its output ports.
    pub fn pull_output_of(&mut self, elem: usize, out_port: usize) -> Option<Packet> {
        let cell = Rc::clone(&self.slots[elem]);
        let mut el = cell.try_borrow_mut().ok()?; // Err: re-entered a puller
        self.telem.enter();
        let p = {
            let mut ctx = RouterPullCtx { router: self, elem };
            el.pull(out_port, &mut ctx)
        };
        match &p {
            Some(pkt) => {
                let bytes = telemetry::packet_bytes(pkt);
                self.telem.exit(elem, 1, bytes);
                self.telem.record_out(elem, out_port, 1);
            }
            None => self.telem.exit(elem, 0, 0),
        }
        p
    }

    /// Pulls up to `max` packets into an element's input port in one
    /// batched transfer; returns how many arrived.
    pub fn pull_batch_input_of(
        &mut self,
        elem: usize,
        in_port: usize,
        max: usize,
        into: &mut PacketBatch,
    ) -> usize {
        let Some(&(se, sp)) = self.in_conns[elem].get(in_port).and_then(|c| c.first()) else {
            return 0;
        };
        self.pull_batch_output_of(se, sp, max, into)
    }

    /// Asks an element to produce up to `max` packets on an output port.
    pub fn pull_batch_output_of(
        &mut self,
        elem: usize,
        out_port: usize,
        max: usize,
        into: &mut PacketBatch,
    ) -> usize {
        let cell = Rc::clone(&self.slots[elem]);
        let Ok(mut el) = cell.try_borrow_mut() else {
            return 0;
        };
        let before = into.len();
        self.telem.enter();
        let n = {
            let mut ctx = RouterPullCtx { router: self, elem };
            el.pull_batch(out_port, max, &mut ctx, into)
        };
        let (packets, bytes) = telemetry::batch_volume_from(into, before);
        self.telem.exit(elem, packets, bytes);
        if n > 0 {
            self.telem.record_out(elem, out_port, n as u64);
        }
        n
    }

    // ---- task scheduling -------------------------------------------------

    /// Runs every task element once; returns packets moved.
    pub fn run_tasks_once(&mut self) -> usize {
        let tasks = self.tasks.clone();
        let mut moved = 0;
        for t in tasks {
            let cell = Rc::clone(&self.slots[t]);
            let Ok(mut el) = cell.try_borrow_mut() else {
                continue;
            };
            self.telem.enter();
            let n = {
                let mut ctx = RouterTaskCtx {
                    router: self,
                    elem: t,
                };
                el.run_task(&mut ctx)
            };
            // Task self time excludes the downstream chain: pushes the
            // task emits re-enter the engine and open their own frames.
            self.telem.exit(t, n as u64, 0);
            moved += n;
        }
        moved
    }

    /// Runs tasks until quiescent (or `max_rounds`); returns total packets
    /// moved. This is the "constantly-active kernel thread" loop.
    pub fn run_until_idle(&mut self, max_rounds: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let moved = self.run_tasks_once();
            if moved == 0 {
                break;
            }
            total += moved;
        }
        total
    }

    /// Runs the router over its real device backends: each round pumps
    /// frames backend -> RX, schedules tasks until idle, and drains TX ->
    /// backend, until a full round moves nothing (trace exhausted, TX
    /// flushed or accounted lost) or `max_rounds` passes. Returns the
    /// cumulative pump totals.
    ///
    /// With no backends attached this returns immediately — the
    /// simulated harness loops stay in charge.
    pub fn run_with_devices(&mut self, max_rounds: usize) -> PumpStats {
        let mut totals = PumpStats::default();
        if !self.devices.has_backends() {
            return totals;
        }
        let burst = self.batch_burst.max(crate::elements::device::BURST);
        for _ in 0..max_rounds {
            let round = self.devices.pump(burst);
            let moved = self.run_until_idle(max_rounds);
            // A final drain so TX produced this round reaches the wire
            // without waiting for the next pump.
            let drain = self.devices.pump(burst);
            totals.absorb(round);
            totals.absorb(drain);
            if round.idle() && drain.idle() && moved == 0 {
                break;
            }
        }
        totals
    }
}

impl<S: Slot> CheckpointEngine for Router<S> {
    fn checkpoint_snapshot(&mut self) -> Result<EngineSnapshot> {
        Ok(Router::checkpoint_snapshot(self))
    }

    fn checkpoint_restore(&mut self, ckpt: &Checkpoint) -> Result<RestoreStats> {
        Ok(self.restore_records(&ckpt.elements, &ckpt.devices, ckpt.ledger.drops))
    }
}

struct RouterPullCtx<'a, S: Slot> {
    router: &'a mut Router<S>,
    elem: usize,
}

impl<S: Slot> PullContext for RouterPullCtx<'_, S> {
    fn pull(&mut self, port: usize) -> Option<Packet> {
        self.router.pull_input_of(self.elem, port)
    }
    fn push_out(&mut self, port: usize, p: Packet) {
        self.router.push_from(self.elem, port, p)
    }
    fn ninputs(&self) -> usize {
        self.router.in_conns[self.elem].len()
    }
}

struct RouterTaskCtx<'a, S: Slot> {
    router: &'a mut Router<S>,
    elem: usize,
}

impl<S: Slot> TaskContext for RouterTaskCtx<'_, S> {
    fn pull(&mut self, port: usize) -> Option<Packet> {
        self.router.pull_input_of(self.elem, port)
    }
    fn emit(&mut self, port: usize, p: Packet) {
        self.router.push_from(self.elem, port, p)
    }
    fn rx_pop(&mut self, dev: DeviceId) -> Option<Packet> {
        self.router.devices.rx_pop(dev)
    }
    fn tx_push(&mut self, dev: DeviceId, p: Packet) {
        self.router.devices.tx_push(dev, p)
    }
    fn batching(&self) -> bool {
        self.router.batching
    }
    fn burst(&self) -> usize {
        self.router.batch_burst
    }
    fn rx_pop_batch(&mut self, dev: DeviceId, max: usize, into: &mut PacketBatch) -> usize {
        self.router.devices.rx_pop_batch(dev, max, into)
    }
    fn emit_batch(&mut self, port: usize, batch: &mut PacketBatch) {
        let owned = std::mem::take(batch);
        self.router.push_batch_from(self.elem, port, owned);
        // Hand the task fresh storage from the engine free list so its
        // scratch batch keeps a warmed-up capacity.
        *batch = self.router.take_batch_storage();
    }
    fn pull_batch(&mut self, port: usize, max: usize, into: &mut PacketBatch) -> usize {
        self.router.pull_batch_input_of(self.elem, port, max, into)
    }
    fn tx_push_batch(&mut self, dev: DeviceId, batch: &mut PacketBatch) {
        self.router.devices.tx_push_batch(dev, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_core::lang::read_config;

    fn dyn_router(src: &str) -> DynRouter {
        let graph = read_config(src).unwrap();
        Router::from_graph(&graph, &Library::standard()).unwrap()
    }

    #[test]
    fn simple_push_chain() {
        let mut r = dyn_router("src :: Idle; c :: Counter; d :: Discard; src -> c -> d;");
        let c = r.find("c").unwrap();
        r.push_to(c, 0, Packet::new(60));
        r.push_to(c, 0, Packet::new(60));
        assert_eq!(r.stat("c", "count"), Some(2));
        assert_eq!(r.stat("d", "count"), Some(2));
    }

    #[test]
    fn invalid_config_rejected() {
        let graph = read_config("FromDevice(0) -> ToDevice(0);").unwrap();
        assert!(DynRouter::from_graph(&graph, &Library::standard()).is_err());
    }

    #[test]
    fn classifier_fans_out() {
        let mut r = dyn_router(
            "src :: Idle; c :: Classifier(12/0800, -); a :: Counter; b :: Counter; \
             d1 :: Discard; d2 :: Discard; \
             src -> c; c [0] -> a -> d1; c [1] -> b -> d2;",
        );
        let c = r.find("c").unwrap();
        let mut ip = Packet::new(60);
        ip.data_mut()[12] = 0x08;
        r.push_to(c, 0, ip);
        r.push_to(c, 0, Packet::new(60));
        assert_eq!(r.stat("a", "count"), Some(1));
        assert_eq!(r.stat("b", "count"), Some(1));
    }

    #[test]
    fn unconnected_emission_counts_as_drop() {
        // CheckIPHeader's bad output is unconnected: the bad packet is
        // dropped by the engine.
        let mut r = dyn_router("i :: Idle; chk :: CheckIPHeader; d :: Discard; i -> chk -> d;");
        let chk = r.find("chk").unwrap();
        r.push_to(chk, 0, Packet::from_data(&[0u8; 10])); // invalid IP
        assert_eq!(r.unconnected_drops(), 1);
        assert_eq!(r.stat("d", "count"), Some(0));
    }

    #[test]
    fn queue_to_device_pull_path() {
        let mut r = dyn_router("FromDevice(in0) -> q :: Queue(8) -> ToDevice(out0);");
        let in0 = r.devices.id("in0").unwrap();
        let out0 = r.devices.id("out0").unwrap();
        for _ in 0..5 {
            r.devices.inject(in0, Packet::new(60));
        }
        r.run_until_idle(100);
        assert_eq!(r.devices.tx_len(out0), 5);
        assert_eq!(r.stat("q", "drops"), Some(0));
    }

    #[test]
    fn tee_duplicates_through_engine() {
        let mut r = dyn_router(
            "i :: Idle; t :: Tee(2); a :: Counter; b :: Counter; da :: Discard; db :: Discard; \
             i -> t; t [0] -> a -> da; t [1] -> b -> db;",
        );
        let t = r.find("t").unwrap();
        r.push_to(t, 0, Packet::new(60));
        assert_eq!(r.stat("a", "count"), Some(1));
        assert_eq!(r.stat("b", "count"), Some(1));
    }

    #[test]
    fn pull_through_agnostic_element() {
        let mut r =
            dyn_router("FromDevice(in0) -> q :: Queue(8) -> n :: Counter -> ToDevice(out0);");
        let in0 = r.devices.id("in0").unwrap();
        let out0 = r.devices.id("out0").unwrap();
        for _ in 0..3 {
            r.devices.inject(in0, Packet::new(60));
        }
        r.run_until_idle(100);
        assert_eq!(r.devices.tx_len(out0), 3);
        assert_eq!(r.stat("n", "count"), Some(3));
    }

    #[test]
    fn round_robin_scheduler_alternates() {
        let mut r = dyn_router(
            "FromDevice(a) -> q1 :: Queue(8); FromDevice(b) -> q2 :: Queue(8); \
             q1 -> [0] s :: RoundRobinSched; q2 -> [1] s; s -> ToDevice(out);",
        );
        let a = r.devices.id("a").unwrap();
        let b = r.devices.id("b").unwrap();
        let out = r.devices.id("out").unwrap();
        for i in 0..4u8 {
            r.devices.inject(a, Packet::from_data(&[0xA0 + i]));
            r.devices.inject(b, Packet::from_data(&[0xB0 + i]));
        }
        r.run_until_idle(100);
        let tx = r.devices.take_tx(out);
        assert_eq!(tx.len(), 8);
        // Strict alternation between the two queues.
        let sides: Vec<u8> = tx.iter().map(|p| p.data()[0] & 0xF0).collect();
        for w in sides.windows(2) {
            assert_ne!(w[0], w[1], "round robin should alternate: {sides:?}");
        }
    }

    #[test]
    fn red_attaches_to_downstream_queue() {
        let mut r = dyn_router(
            "FromDevice(in0) -> red :: RED(1, 2, 1.0) -> q :: Queue(1000) -> ToDevice(out0);",
        );
        let in0 = r.devices.id("in0").unwrap();
        // Fill the queue without draining: inject many, run only the
        // FromDevice side by never letting ToDevice catch up is hard here,
        // so instead verify RED saw a live queue handle by pushing
        // packets through while the queue stays nonempty.
        for _ in 0..2000 {
            r.devices.inject(in0, Packet::new(60));
        }
        r.run_until_idle(10_000);
        // With thresholds (1, 2) and a drained queue RED may drop little;
        // the point is wiring happened (stat exists and engine ran).
        assert!(r.stat("red", "drops").is_some());
    }

    #[test]
    fn reentrant_loop_is_broken_not_hung() {
        // a -> b -> a is a push loop; the engine must drop rather than
        // recurse forever.
        let mut r = dyn_router("a :: Null; b :: Null; a -> b; b -> a;");
        let a = r.find("a").unwrap();
        r.push_to(a, 0, Packet::new(10));
        assert!(r.reentrant_drops() >= 1);
    }

    #[test]
    fn tx_drain_and_recycle_feed_the_pool() {
        use crate::packet::{drain_pool, pool_stats, reset_pool_stats};
        let mut r = dyn_router("FromDevice(in0) -> q :: Queue(8) -> ToDevice(out0);");
        let in0 = r.devices.id("in0").unwrap();
        let out0 = r.devices.id("out0").unwrap();
        drain_pool();
        reset_pool_stats();
        for _ in 0..4 {
            r.devices.inject(in0, Packet::new(60));
        }
        r.run_until_idle(100);
        // Batched drain keeps order and empties the queue.
        let mut batch = PacketBatch::new();
        assert_eq!(r.devices.drain_tx_into(out0, &mut batch), 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(r.devices.tx_len(out0), 0);
        batch.recycle_packets();
        // recycle_tx sends buffers straight back to the pool.
        for _ in 0..3 {
            r.devices.inject(in0, Packet::new(60));
        }
        r.run_until_idle(100);
        let before = pool_stats().recycled;
        assert_eq!(r.devices.recycle_tx(out0), 3);
        assert_eq!(pool_stats().recycled, before + 3);
        // The next allocations are pool hits, not heap misses.
        reset_pool_stats();
        let p = Packet::new(60);
        assert_eq!(pool_stats().hits, 1);
        p.recycle();
    }

    #[test]
    fn stats_by_class() {
        let mut r = dyn_router(
            "i :: Idle; c1 :: Counter; c2 :: Counter; d :: Discard; i -> c1 -> c2 -> d;",
        );
        let c1 = r.find("c1").unwrap();
        r.push_to(c1, 0, Packet::new(10));
        assert_eq!(r.class_stat("Counter", "count"), 2);
    }

    #[test]
    fn stale_device_id_is_accounted_drop_not_panic() {
        let mut r = dyn_router("FromDevice(in0) -> Discard;");
        let bogus = DeviceId(99);
        r.devices.inject(bogus, Packet::new(60));
        r.devices.tx_push(bogus, Packet::new(60));
        assert_eq!(r.devices.rx_pop(bogus).map(|p| p.recycle()), None);
        assert_eq!(r.devices.rx_len(bogus), 0);
        assert_eq!(r.devices.tx_len(bogus), 0);
        assert_eq!(r.devices.take_tx(bogus).len(), 0);
        let mut batch = PacketBatch::new();
        assert_eq!(r.devices.drain_tx_into(bogus, &mut batch), 0);
        assert_eq!(r.devices.recycle_tx(bogus), 0);
        assert_eq!(r.devices.lost_packets(), 2);
        assert_eq!(r.total_drops(), 2);
    }

    #[test]
    fn backend_pump_feeds_router_and_drains_tx() {
        use crate::iodev::MemBackend;
        let mut r =
            dyn_router("FromDevice(in0) -> c :: Counter -> q :: Queue(32) -> ToDevice(out0);");
        let in0 = r.devices.id("in0").unwrap();
        let out0 = r.devices.id("out0").unwrap();
        let (rx_be, rx_q) = MemBackend::with_handles();
        let (tx_be, tx_q) = MemBackend::with_handles();
        r.devices.attach_backend(in0, Box::new(rx_be));
        r.devices.attach_backend(out0, Box::new(tx_be));
        for i in 0..5u8 {
            rx_q.push_rx(&[i; 60]);
        }
        let totals = r.run_with_devices(100);
        assert_eq!(totals.rx, 5);
        assert_eq!(totals.tx, 5);
        assert_eq!(totals.lost, 0);
        assert_eq!(r.stat("c", "count"), Some(5));
        let sent = tx_q.take_tx();
        assert_eq!(sent.len(), 5);
        assert_eq!(sent[2][0], 2, "frame order preserved end to end");
        let gauges = r.devices.device_gauges();
        assert_eq!(gauges.len(), 2);
        assert_eq!(gauges[0].device, "in0");
        assert_eq!(gauges[0].rx_packets, 5);
        assert_eq!(gauges[1].device, "out0");
        assert_eq!(gauges[1].tx_packets, 5);
        assert_eq!(gauges[1].tx_bytes, 5 * 60);
    }

    #[test]
    fn open_backends_is_scheme_driven() {
        let mut r = dyn_router("FromDevice(mem:loop) -> Discard; Idle -> ToDevice(eth1);");
        assert_eq!(r.devices.open_backends().unwrap(), 1);
        let dev = r.devices.id("mem:loop").unwrap();
        assert!(r.devices.has_backend(dev));
        let eth1 = r.devices.id("eth1").unwrap();
        assert!(!r.devices.has_backend(eth1), "scheme-less stays simulated");
        // Idempotent: a second call opens nothing new.
        assert_eq!(r.devices.open_backends().unwrap(), 0);
    }

    #[test]
    fn hot_swap_carries_backend_and_losses() {
        use crate::iodev::MemBackend;
        let src = "FromDevice(in0) -> Counter -> q :: Queue(32) -> ToDevice(out0);";
        let mut r = dyn_router(src);
        let in0 = r.devices.id("in0").unwrap();
        let (rx_be, rx_q) = MemBackend::with_handles();
        r.devices.attach_backend(in0, Box::new(rx_be));
        // Provoke an accounted bad-id drop so loss carryover is nonzero.
        r.devices.inject(DeviceId(42), Packet::new(60));
        assert_eq!(r.devices.lost_packets(), 1);
        rx_q.push_rx(&[7; 60]);
        r.run_with_devices(50);

        let graph = read_config(src).unwrap();
        r.hot_swap(&graph, &Library::standard()).unwrap();
        let in0 = r.devices.id("in0").unwrap();
        assert!(
            r.devices.has_backend(in0),
            "backend follows the device name across a swap"
        );
        assert_eq!(r.devices.lost_packets(), 1, "loss accounting survives");
        let g = &r.devices.device_gauges()[0];
        assert_eq!(g.rx_packets, 1, "gauges travel with the backend");
        // The carried backend still works.
        rx_q.push_rx(&[8; 60]);
        let totals = r.run_with_devices(50);
        assert_eq!(totals.rx, 1);
    }
}
