//! RSS-style flow steering: hash the IP 5-tuple of an incoming frame to
//! pick a worker shard.
//!
//! Hardware NICs spread receive traffic across cores with Receive Side
//! Scaling: a hash of the connection 5-tuple selects an RX queue, so
//! every packet of one flow lands on the same core and per-flow ordering
//! is preserved without cross-core locking. [`crate::parallel`] steers
//! injected frames the same way. The simulator's cost model
//! (`click-sim`) calls [`RssSteering`] on its traffic specs too, so the
//! predicted shard loads come from the *same* hash the runtime uses.
//!
//! Frames that are not IPv4 (ARP requests/replies, junk) have no
//! 5-tuple; they steer by receiving device instead, which keeps ARP
//! handling for one interface on one deterministic shard.

use crate::element::DeviceId;
use crate::headers::{ether, ipv4, udp};
use std::sync::atomic::{AtomicU64, Ordering};

/// The parsed steering key of an IPv4 frame: `(src, dst, proto, sport,
/// dport)`. Ports are zero for protocols without them (or truncated
/// transport headers).
pub type FlowKey = (u32, u32, u8, u16, u16);

/// Extracts the 5-tuple from an Ethernet frame, or `None` when the frame
/// is not IPv4 (or too short to carry a full IP header).
#[inline]
pub fn flow_key(frame: &[u8]) -> Option<FlowKey> {
    // Fast path for the overwhelmingly common shape — untagged IPv4,
    // no options, full transport header present. One length check
    // covers every fixed-offset read below (ports end at byte 38);
    // everything else falls through to the general parser.
    if let Some(f) = frame.get(..ether::HLEN + ipv4::HLEN + udp::HLEN) {
        if f[12] == 0x08
            && f[13] == 0x00
            && f[14] == 0x45
            && matches!(f[23], ipv4::PROTO_TCP | ipv4::PROTO_UDP)
        {
            return Some((
                u32::from_be_bytes([f[26], f[27], f[28], f[29]]),
                u32::from_be_bytes([f[30], f[31], f[32], f[33]]),
                f[23],
                u16::from_be_bytes([f[34], f[35]]),
                u16::from_be_bytes([f[36], f[37]]),
            ));
        }
    }
    flow_key_slow(frame)
}

/// The general parser behind [`flow_key`]: VLAN-less but tolerant of IP
/// options, truncated transport headers, and runt frames.
fn flow_key_slow(frame: &[u8]) -> Option<FlowKey> {
    if frame.len() < ether::HLEN + ipv4::HLEN || ether::ethertype(frame) != ether::TYPE_IP {
        return None;
    }
    let ip = &frame[ether::HLEN..];
    if ipv4::version(ip) != 4 {
        return None;
    }
    let ihl = ipv4::header_len(ip);
    if ihl < ipv4::HLEN || ip.len() < ihl {
        // Runt or lying header: the IHL field claims more header than the
        // frame carries (or less than the minimum 20 bytes). Treat it like
        // non-IP rather than reading past the options area.
        return None;
    }
    let proto = ipv4::protocol(ip);
    let (sport, dport) =
        if matches!(proto, ipv4::PROTO_TCP | ipv4::PROTO_UDP) && ip.len() >= ihl + udp::HLEN {
            // TCP and UDP both start with source/destination ports.
            (udp::src_port(&ip[ihl..]), udp::dst_port(&ip[ihl..]))
        } else {
            (0, 0)
        };
    Some((ipv4::src(ip), ipv4::dst(ip), proto, sport, dport))
}

/// FNV-1a over the 5-tuple bytes. Not Toeplitz (no per-NIC key to
/// reproduce), but the properties RSS needs hold: deterministic, spreads
/// nearby tuples, and cheap enough to charge per packet.
///
/// The 13-multiply byte chain looks slow (~29 ns standalone on the bench
/// host), but in the inject path the per-packet hashes are independent,
/// so out-of-order execution overlaps them with the batch bookkeeping —
/// a word-at-a-time multiply-mix variant measured no faster end to end,
/// and spread the bench's sequential-port flows measurably worse
/// (19/18/16/11 over 4 shards vs FNV's near-even split). Byte-wise FNV's
/// strong dispersion of small sequential inputs is a feature here, not
/// an accident.
pub fn flow_hash(key: FlowKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let (src, dst, proto, sport, dport) = key;
    let mut h = OFFSET;
    for b in src
        .to_be_bytes()
        .into_iter()
        .chain(dst.to_be_bytes())
        .chain([proto])
        .chain(sport.to_be_bytes())
        .chain(dport.to_be_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Slots in a [`FlowHashCache`]: 256 entries x 24 bytes sits comfortably
/// in L1 while holding far more concurrent flows than the bench traces
/// carry.
const FLOW_CACHE_SLOTS: usize = 256;

/// A direct-mapped, caller-owned cache of [`flow_hash`] results.
///
/// The FNV chain over the 5-tuple costs ~30 ns standalone — cheap once
/// per flow, but the serial inject path used to pay it once per
/// *packet*, which on a time-sliced host erased most of the multi-shard
/// runtime's superlinear engine gains (single-shard steering
/// short-circuits the hash entirely, so only multi-shard configurations
/// carried the cost). Real routers amortize exactly this way: RSS NICs
/// hash into flow tables, and Click's own IP route cache memoizes the
/// per-packet lookup. The cache is keyed by a trivial XOR of the tuple
/// words and stores the full key, so a collision merely recomputes —
/// the returned hash is always exactly [`flow_hash`], keeping shard
/// assignment, per-flow order, and fault remapping identical to the
/// uncached path.
///
/// Each thread that classifies packets owns its own cache (supervisor,
/// each steerer): no sharing, no synchronization, no coherence misses.
#[derive(Debug, Clone)]
pub struct FlowHashCache {
    slots: Vec<(FlowKey, u64)>,
}

impl Default for FlowHashCache {
    fn default() -> FlowHashCache {
        let zero: FlowKey = (0, 0, 0, 0, 0);
        FlowHashCache {
            // Seed every slot with the genuine hash of the all-zero key,
            // so even a pathological all-zero flow reads a correct value.
            slots: vec![(zero, flow_hash(zero)); FLOW_CACHE_SLOTS],
        }
    }
}

impl FlowHashCache {
    /// Returns [`flow_hash`]`(key)`, from cache when the flow was seen
    /// recently.
    #[inline]
    pub fn hash(&mut self, key: FlowKey) -> u64 {
        let (src, dst, proto, sport, dport) = key;
        let idx = (src ^ dst ^ u32::from(proto) ^ u32::from(sport) ^ u32::from(dport)) as usize
            % FLOW_CACHE_SLOTS;
        let slot = &mut self.slots[idx];
        if slot.0 != key {
            *slot = (key, flow_hash(key));
        }
        slot.1
    }
}

/// Picks which of `steerers` parallel steering threads classifies a
/// frame. Deterministic *per flow* — every packet of a flow goes through
/// the same steerer, so per-flow order survives the parallel ingress
/// stage (one steerer pushes a flow's packets into its shard ring in
/// arrival order; no other steerer ever touches that flow).
///
/// The pick must be *decorrelated* from the shard hash: if it were
/// `flow_hash % steerers`, then with `steerers == shards` each steerer
/// would feed exactly one shard and the hottest shard's steering work
/// would serialize on one thread. A Fibonacci remix of the same FNV
/// hash, taking high bits, spreads flows across steerers independently
/// of their shard assignment.
pub fn steerer_for(frame: &[u8], dev: DeviceId, steerers: usize) -> usize {
    if steerers <= 1 {
        return 0;
    }
    let h = match flow_key(frame) {
        Some(key) => flow_hash(key),
        None => dev.0 as u64,
    };
    let mixed = (h ^ (h >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 32) % steerers as u64) as usize
}

/// A cross-thread live-shard mask: the supervisor flips bits, parallel
/// steerer threads snapshot it before classifying each burst.
///
/// The 128-bit mask is split over two `AtomicU64`s, so a snapshot is not
/// a single atomic read — that is fine here because only the supervisor
/// writes (single writer), and a steerer acting on a stale snapshot just
/// pushes to a ring whose consumer died, which the supervisor reclaims
/// during fault handling anyway.
#[derive(Debug)]
pub struct SharedLiveMask {
    lo: AtomicU64,
    hi: AtomicU64,
}

impl SharedLiveMask {
    /// A mask with the low `shards` bits live.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn new(shards: usize) -> SharedLiveMask {
        let all = RssSteering::new(shards).live;
        SharedLiveMask {
            lo: AtomicU64::new(all as u64),
            hi: AtomicU64::new((all >> 64) as u64),
        }
    }

    /// The current mask (bit `k` set ⇔ shard `k` live).
    pub fn snapshot(&self) -> u128 {
        u128::from(self.lo.load(Ordering::Acquire))
            | (u128::from(self.hi.load(Ordering::Acquire)) << 64)
    }

    /// Clears shard `shard`'s live bit.
    pub fn mark_dead(&self, shard: usize) {
        if shard < 64 {
            self.lo.fetch_and(!(1u64 << shard), Ordering::AcqRel);
        } else if shard < MAX_SHARDS {
            self.hi.fetch_and(!(1u64 << (shard - 64)), Ordering::AcqRel);
        }
    }

    /// Sets shard `shard`'s live bit (after a restart).
    pub fn mark_live(&self, shard: usize) {
        if shard < 64 {
            self.lo.fetch_or(1u64 << shard, Ordering::AcqRel);
        } else if shard < MAX_SHARDS {
            self.hi.fetch_or(1u64 << (shard - 64), Ordering::AcqRel);
        }
    }
}

/// A shard picker: `shards` workers, 5-tuple hash for IPv4, receiving
/// device otherwise.
///
/// Carries a live-shard bitmask for degraded-mode operation: when the
/// supervisor marks a shard dead ([`RssSteering::mark_dead`]), flows
/// homed on it are deterministically re-steered across the survivors,
/// while flows homed on live shards keep their original assignment (and
/// therefore their per-flow order).
#[derive(Debug, Clone, Copy)]
pub struct RssSteering {
    shards: usize,
    /// Bit `k` set ⇔ shard `k` accepts traffic. Sized for up to 128
    /// shards, which keeps the struct `Copy` for the simulator's cost
    /// model.
    live: u128,
}

/// Upper bound on shard count imposed by the `u128` liveness mask.
pub const MAX_SHARDS: usize = 128;

impl RssSteering {
    /// A steering stage over `shards` workers, all initially live.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn new(shards: usize) -> RssSteering {
        assert!(shards >= 1, "steering needs at least one shard");
        assert!(
            shards <= MAX_SHARDS,
            "steering supports at most {MAX_SHARDS} shards"
        );
        let live = if shards == MAX_SHARDS {
            u128::MAX
        } else {
            (1u128 << shards) - 1
        };
        RssSteering { shards, live }
    }

    /// A steering stage seeded from a [`SharedLiveMask`] snapshot —
    /// what a parallel steerer thread builds before classifying a burst.
    /// Bits beyond `shards` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn with_live_mask(shards: usize, mask: u128) -> RssSteering {
        let mut s = RssSteering::new(shards);
        s.live &= mask;
        s
    }

    /// Number of shards steered across (live or not).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Marks `shard` as dead: its flows re-steer across the survivors.
    pub fn mark_dead(&mut self, shard: usize) {
        if shard < self.shards {
            self.live &= !(1u128 << shard);
        }
    }

    /// Marks `shard` as accepting traffic again (after a restart).
    pub fn mark_live(&mut self, shard: usize) {
        if shard < self.shards {
            self.live |= 1u128 << shard;
        }
    }

    /// Whether `shard` currently accepts traffic.
    pub fn is_live(&self, shard: usize) -> bool {
        shard < self.shards && self.live & (1u128 << shard) != 0
    }

    /// Number of live shards.
    pub fn live_count(&self) -> usize {
        self.live.count_ones() as usize
    }

    /// Maps a home shard onto a live one: the home itself when alive,
    /// otherwise the `hash % live_count`-th live shard. Returns `None`
    /// when every shard is dead.
    fn remap(&self, home: usize, hash: u64) -> Option<usize> {
        if self.live & (1u128 << home) != 0 {
            return Some(home);
        }
        let alive = self.live.count_ones() as u64;
        if alive == 0 {
            return None;
        }
        let mut k = hash % alive;
        for shard in 0..self.shards {
            if self.live & (1u128 << shard) != 0 {
                if k == 0 {
                    return Some(shard);
                }
                k -= 1;
            }
        }
        None
    }

    /// Picks a live shard for a frame received on `dev`, or `None` when
    /// no shard is live.
    pub fn live_shard_for(&self, frame: &[u8], dev: DeviceId) -> Option<usize> {
        if self.shards == 1 {
            return if self.live & 1 != 0 { Some(0) } else { None };
        }
        let (home, hash) = match flow_key(frame) {
            Some(key) => {
                let h = flow_hash(key);
                ((h % self.shards as u64) as usize, h)
            }
            None => (dev.0 % self.shards, dev.0 as u64),
        };
        self.remap(home, hash)
    }

    /// [`RssSteering::live_shard_for`] with the hash served from a
    /// caller-owned [`FlowHashCache`] — identical result, amortized
    /// cost. The hot steering paths (supervisor inject, steerer burst
    /// loop) use this; one-off paths keep the uncached call.
    pub fn live_shard_for_cached(
        &self,
        frame: &[u8],
        dev: DeviceId,
        cache: &mut FlowHashCache,
    ) -> Option<usize> {
        if self.shards == 1 {
            return if self.live & 1 != 0 { Some(0) } else { None };
        }
        let (home, hash) = match flow_key(frame) {
            Some(key) => {
                let h = cache.hash(key);
                ((h % self.shards as u64) as usize, h)
            }
            None => (dev.0 % self.shards, dev.0 as u64),
        };
        self.remap(home, hash)
    }

    /// Picks the shard for a frame received on `dev`, ignoring liveness
    /// (the historical single-owner mapping; still what the simulator's
    /// cost model charges).
    pub fn shard_for(&self, frame: &[u8], dev: DeviceId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        match flow_key(frame) {
            Some(key) => (flow_hash(key) % self.shards as u64) as usize,
            None => dev.0 % self.shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::build_udp_packet;
    use crate::packet::Packet;

    fn udp_frame(sip: u32, dip: u32, sport: u16, dport: u16) -> Packet {
        build_udp_packet([1; 6], [2; 6], sip, dip, sport, dport, 18, 64)
    }

    #[test]
    fn flow_key_parses_udp() {
        let p = udp_frame(0x0A000001, 0x0A000102, 1234, 5678);
        assert_eq!(
            flow_key(p.data()),
            Some((0x0A000001, 0x0A000102, ipv4::PROTO_UDP, 1234, 5678))
        );
    }

    #[test]
    fn non_ip_has_no_flow_key() {
        let mut p = Packet::new(60);
        p.data_mut()[12] = 0x08;
        p.data_mut()[13] = 0x06; // ARP
        assert_eq!(flow_key(p.data()), None);
        assert_eq!(flow_key(&[0u8; 10]), None);
    }

    #[test]
    fn same_flow_same_shard_for_every_shard_count() {
        let p = udp_frame(0x0A000002, 0x0A000302, 1000, 53);
        let q = p.clone();
        for shards in [1usize, 2, 3, 4, 8] {
            let s = RssSteering::new(shards);
            assert_eq!(
                s.shard_for(p.data(), DeviceId(0)),
                s.shard_for(q.data(), DeviceId(3)),
                "steering must ignore the device for IP frames"
            );
        }
    }

    #[test]
    fn non_ip_steers_by_device() {
        let mut arp = Packet::new(60);
        arp.data_mut()[12] = 0x08;
        arp.data_mut()[13] = 0x06;
        let s = RssSteering::new(4);
        for d in 0..8usize {
            assert_eq!(s.shard_for(arp.data(), DeviceId(d)), d % 4);
        }
    }

    #[test]
    #[ignore = "diagnostic: prints flow distribution per shard count (--ignored --nocapture)"]
    fn dist_probe() {
        use crate::ip_router::{test_packet_flow, IpRouterSpec};
        for ifaces in [4usize, 8] {
            let spec = IpRouterSpec::standard(ifaces);
            let frames: Vec<_> = (0..64)
                .map(|f| {
                    let src = f % (ifaces / 2);
                    let dst = src + ifaces / 2;
                    test_packet_flow(&spec, src, dst, 1024 + f as u16, 5678)
                })
                .collect();
            for shards in [2usize, 4, 8, 1024] {
                let mut bins = vec![0usize; shards];
                for p in &frames {
                    let h = flow_hash(flow_key(p.data()).unwrap());
                    bins[(h % shards as u64) as usize] += 1;
                }
                bins.sort_unstable_by(|a, b| b.cmp(a));
                println!(
                    "ifaces={ifaces} shards={shards}: top8={:?}",
                    &bins[..8.min(bins.len())]
                );
            }
        }
    }

    #[test]
    fn distinct_flows_spread_across_shards() {
        // 64 flows over 4 shards: no shard may be empty or hog more than
        // half the flows — the balance the parallel bench relies on.
        let s = RssSteering::new(4);
        let mut bins = [0usize; 4];
        for f in 0..64u16 {
            let p = udp_frame(0x0A000002, 0x0A000302, 1000 + f, 5678);
            bins[s.shard_for(p.data(), DeviceId(0))] += 1;
        }
        assert!(bins.iter().all(|&b| b > 0), "empty shard: {bins:?}");
        assert!(bins.iter().all(|&b| b <= 32), "hot shard: {bins:?}");
    }

    #[test]
    fn single_shard_short_circuits() {
        let s = RssSteering::new(1);
        assert_eq!(s.shard_for(&[0u8; 1], DeviceId(9)), 0);
    }

    #[test]
    fn truncated_headers_have_no_flow_key() {
        // Frame long enough for Ethernet + minimal IP, but the IHL field
        // claims a 60-byte header the frame doesn't carry.
        let p = udp_frame(0x0A000001, 0x0A000102, 1, 2);
        let mut lying = p.clone();
        lying.data_mut()[ether::HLEN] = 0x4F; // version 4, IHL 15 (60 bytes)
        let truncated = &lying.data()[..ether::HLEN + ipv4::HLEN + 4];
        assert_eq!(flow_key(truncated), None);
        // IHL below the legal minimum of 5 words.
        let mut runt = p.clone();
        runt.data_mut()[ether::HLEN] = 0x43; // version 4, IHL 3 (12 bytes)
        assert_eq!(flow_key(runt.data()), None);
    }

    #[test]
    fn dead_shard_flows_remap_to_survivors() {
        let mut s = RssSteering::new(4);
        assert_eq!(s.live_count(), 4);
        // Record every flow's home, then kill shard 2.
        let frames: Vec<_> = (0..64u16)
            .map(|f| udp_frame(0x0A000002, 0x0A000302, 1000 + f, 5678))
            .collect();
        let homes: Vec<_> = frames
            .iter()
            .map(|p| s.shard_for(p.data(), DeviceId(0)))
            .collect();
        s.mark_dead(2);
        assert_eq!(s.live_count(), 3);
        assert!(!s.is_live(2));
        for (p, &home) in frames.iter().zip(&homes) {
            let now = s.live_shard_for(p.data(), DeviceId(0)).unwrap();
            assert_ne!(now, 2, "dead shard must receive nothing");
            if home != 2 {
                assert_eq!(now, home, "live-homed flows must not move");
            }
        }
        // Revival restores the original mapping exactly.
        s.mark_live(2);
        for (p, &home) in frames.iter().zip(&homes) {
            assert_eq!(s.live_shard_for(p.data(), DeviceId(0)), Some(home));
        }
    }

    #[test]
    fn all_dead_steers_nowhere() {
        let mut s = RssSteering::new(2);
        s.mark_dead(0);
        s.mark_dead(1);
        let p = udp_frame(1, 2, 3, 4);
        assert_eq!(s.live_shard_for(p.data(), DeviceId(0)), None);
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn steerer_pick_is_per_flow_deterministic() {
        for steerers in [1usize, 2, 3, 4] {
            for f in 0..32u16 {
                let p = udp_frame(0x0A000002, 0x0A000302, 1000 + f, 5678);
                let a = steerer_for(p.data(), DeviceId(0), steerers);
                let b = steerer_for(p.data(), DeviceId(7), steerers);
                assert_eq!(a, b, "steerer pick must ignore the device for IP");
                assert!(a < steerers);
            }
        }
    }

    #[test]
    fn steerer_pick_spreads_flows() {
        let mut bins = [0usize; 2];
        for f in 0..64u16 {
            let p = udp_frame(0x0A000002, 0x0A000302, 1000 + f, 5678);
            bins[steerer_for(p.data(), DeviceId(0), 2)] += 1;
        }
        assert!(bins.iter().all(|&b| b >= 16), "lopsided steerers: {bins:?}");
    }

    #[test]
    fn steerer_pick_decorrelates_from_shard_pick() {
        // With steerers == shards, a correlated pick would pin each
        // shard's flows to one steerer and re-serialize the hot shard's
        // classification. Check that at least one shard's flows split
        // across steerers.
        let s = RssSteering::new(4);
        let mut seen = [[false; 4]; 4];
        for f in 0..64u16 {
            let p = udp_frame(0x0A000002, 0x0A000302, 1000 + f, 5678);
            let shard = s.shard_for(p.data(), DeviceId(0));
            let steerer = steerer_for(p.data(), DeviceId(0), 4);
            seen[shard][steerer] = true;
        }
        let split_shards = seen
            .iter()
            .filter(|row| row.iter().filter(|&&x| x).count() > 1)
            .count();
        assert!(
            split_shards >= 3,
            "shard→steerer mapping looks correlated: {seen:?}"
        );
    }

    #[test]
    fn non_ip_frames_steer_by_device_across_steerers() {
        let mut arp = Packet::new(60);
        arp.data_mut()[12] = 0x08;
        arp.data_mut()[13] = 0x06;
        for d in 0..8usize {
            let a = steerer_for(arp.data(), DeviceId(d), 3);
            let b = steerer_for(arp.data(), DeviceId(d), 3);
            assert_eq!(a, b, "same device must pick the same steerer");
        }
    }

    #[test]
    fn shared_live_mask_tracks_deaths_and_revivals() {
        let m = SharedLiveMask::new(4);
        assert_eq!(m.snapshot(), 0b1111);
        m.mark_dead(2);
        assert_eq!(m.snapshot(), 0b1011);
        m.mark_dead(0);
        assert_eq!(m.snapshot(), 0b1010);
        m.mark_live(2);
        assert_eq!(m.snapshot(), 0b1110);
        // Out-of-range shard indices are ignored, not UB.
        m.mark_dead(200);
        m.mark_live(200);
        assert_eq!(m.snapshot(), 0b1110);
    }

    #[test]
    fn with_live_mask_matches_incremental_marking() {
        let mut incremental = RssSteering::new(4);
        incremental.mark_dead(1);
        let mask = SharedLiveMask::new(4);
        mask.mark_dead(1);
        let snap = RssSteering::with_live_mask(4, mask.snapshot());
        let p = udp_frame(0x0A000002, 0x0A000302, 1003, 5678);
        for d in 0..4usize {
            assert_eq!(
                snap.live_shard_for(p.data(), DeviceId(d)),
                incremental.live_shard_for(p.data(), DeviceId(d))
            );
        }
        assert_eq!(snap.live_count(), 3);
    }

    #[test]
    fn non_ip_also_avoids_dead_shards() {
        let mut arp = Packet::new(60);
        arp.data_mut()[12] = 0x08;
        arp.data_mut()[13] = 0x06;
        let mut s = RssSteering::new(4);
        s.mark_dead(1);
        for d in 0..8usize {
            let shard = s.live_shard_for(arp.data(), DeviceId(d)).unwrap();
            assert_ne!(shard, 1);
            if d % 4 != 1 {
                assert_eq!(shard, d % 4);
            }
        }
    }
}
