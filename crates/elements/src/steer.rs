//! RSS-style flow steering: hash the IP 5-tuple of an incoming frame to
//! pick a worker shard.
//!
//! Hardware NICs spread receive traffic across cores with Receive Side
//! Scaling: a hash of the connection 5-tuple selects an RX queue, so
//! every packet of one flow lands on the same core and per-flow ordering
//! is preserved without cross-core locking. [`crate::parallel`] steers
//! injected frames the same way. The simulator's cost model
//! (`click-sim`) calls [`RssSteering`] on its traffic specs too, so the
//! predicted shard loads come from the *same* hash the runtime uses.
//!
//! Frames that are not IPv4 (ARP requests/replies, junk) have no
//! 5-tuple; they steer by receiving device instead, which keeps ARP
//! handling for one interface on one deterministic shard.

use crate::element::DeviceId;
use crate::headers::{ether, ipv4, udp};

/// The parsed steering key of an IPv4 frame: `(src, dst, proto, sport,
/// dport)`. Ports are zero for protocols without them (or truncated
/// transport headers).
pub type FlowKey = (u32, u32, u8, u16, u16);

/// Extracts the 5-tuple from an Ethernet frame, or `None` when the frame
/// is not IPv4 (or too short to carry a full IP header).
pub fn flow_key(frame: &[u8]) -> Option<FlowKey> {
    if frame.len() < ether::HLEN + ipv4::HLEN || ether::ethertype(frame) != ether::TYPE_IP {
        return None;
    }
    let ip = &frame[ether::HLEN..];
    if ipv4::version(ip) != 4 {
        return None;
    }
    let ihl = ipv4::header_len(ip);
    if ihl < ipv4::HLEN || ip.len() < ihl {
        // Runt or lying header: the IHL field claims more header than the
        // frame carries (or less than the minimum 20 bytes). Treat it like
        // non-IP rather than reading past the options area.
        return None;
    }
    let proto = ipv4::protocol(ip);
    let (sport, dport) =
        if matches!(proto, ipv4::PROTO_TCP | ipv4::PROTO_UDP) && ip.len() >= ihl + udp::HLEN {
            // TCP and UDP both start with source/destination ports.
            (udp::src_port(&ip[ihl..]), udp::dst_port(&ip[ihl..]))
        } else {
            (0, 0)
        };
    Some((ipv4::src(ip), ipv4::dst(ip), proto, sport, dport))
}

/// FNV-1a over the 5-tuple bytes. Not Toeplitz (no per-NIC key to
/// reproduce), but the properties RSS needs hold: deterministic, spreads
/// nearby tuples, and cheap enough to charge per packet.
pub fn flow_hash(key: FlowKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let (src, dst, proto, sport, dport) = key;
    let mut h = OFFSET;
    for b in src
        .to_be_bytes()
        .into_iter()
        .chain(dst.to_be_bytes())
        .chain([proto])
        .chain(sport.to_be_bytes())
        .chain(dport.to_be_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A shard picker: `shards` workers, 5-tuple hash for IPv4, receiving
/// device otherwise.
///
/// Carries a live-shard bitmask for degraded-mode operation: when the
/// supervisor marks a shard dead ([`RssSteering::mark_dead`]), flows
/// homed on it are deterministically re-steered across the survivors,
/// while flows homed on live shards keep their original assignment (and
/// therefore their per-flow order).
#[derive(Debug, Clone, Copy)]
pub struct RssSteering {
    shards: usize,
    /// Bit `k` set ⇔ shard `k` accepts traffic. Sized for up to 128
    /// shards, which keeps the struct `Copy` for the simulator's cost
    /// model.
    live: u128,
}

/// Upper bound on shard count imposed by the `u128` liveness mask.
pub const MAX_SHARDS: usize = 128;

impl RssSteering {
    /// A steering stage over `shards` workers, all initially live.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn new(shards: usize) -> RssSteering {
        assert!(shards >= 1, "steering needs at least one shard");
        assert!(
            shards <= MAX_SHARDS,
            "steering supports at most {MAX_SHARDS} shards"
        );
        let live = if shards == MAX_SHARDS {
            u128::MAX
        } else {
            (1u128 << shards) - 1
        };
        RssSteering { shards, live }
    }

    /// Number of shards steered across (live or not).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Marks `shard` as dead: its flows re-steer across the survivors.
    pub fn mark_dead(&mut self, shard: usize) {
        if shard < self.shards {
            self.live &= !(1u128 << shard);
        }
    }

    /// Marks `shard` as accepting traffic again (after a restart).
    pub fn mark_live(&mut self, shard: usize) {
        if shard < self.shards {
            self.live |= 1u128 << shard;
        }
    }

    /// Whether `shard` currently accepts traffic.
    pub fn is_live(&self, shard: usize) -> bool {
        shard < self.shards && self.live & (1u128 << shard) != 0
    }

    /// Number of live shards.
    pub fn live_count(&self) -> usize {
        self.live.count_ones() as usize
    }

    /// Maps a home shard onto a live one: the home itself when alive,
    /// otherwise the `hash % live_count`-th live shard. Returns `None`
    /// when every shard is dead.
    fn remap(&self, home: usize, hash: u64) -> Option<usize> {
        if self.live & (1u128 << home) != 0 {
            return Some(home);
        }
        let alive = self.live.count_ones() as u64;
        if alive == 0 {
            return None;
        }
        let mut k = hash % alive;
        for shard in 0..self.shards {
            if self.live & (1u128 << shard) != 0 {
                if k == 0 {
                    return Some(shard);
                }
                k -= 1;
            }
        }
        None
    }

    /// Picks a live shard for a frame received on `dev`, or `None` when
    /// no shard is live.
    pub fn live_shard_for(&self, frame: &[u8], dev: DeviceId) -> Option<usize> {
        if self.shards == 1 {
            return if self.live & 1 != 0 { Some(0) } else { None };
        }
        let (home, hash) = match flow_key(frame) {
            Some(key) => {
                let h = flow_hash(key);
                ((h % self.shards as u64) as usize, h)
            }
            None => (dev.0 % self.shards, dev.0 as u64),
        };
        self.remap(home, hash)
    }

    /// Picks the shard for a frame received on `dev`, ignoring liveness
    /// (the historical single-owner mapping; still what the simulator's
    /// cost model charges).
    pub fn shard_for(&self, frame: &[u8], dev: DeviceId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        match flow_key(frame) {
            Some(key) => (flow_hash(key) % self.shards as u64) as usize,
            None => dev.0 % self.shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::build_udp_packet;
    use crate::packet::Packet;

    fn udp_frame(sip: u32, dip: u32, sport: u16, dport: u16) -> Packet {
        build_udp_packet([1; 6], [2; 6], sip, dip, sport, dport, 18, 64)
    }

    #[test]
    fn flow_key_parses_udp() {
        let p = udp_frame(0x0A000001, 0x0A000102, 1234, 5678);
        assert_eq!(
            flow_key(p.data()),
            Some((0x0A000001, 0x0A000102, ipv4::PROTO_UDP, 1234, 5678))
        );
    }

    #[test]
    fn non_ip_has_no_flow_key() {
        let mut p = Packet::new(60);
        p.data_mut()[12] = 0x08;
        p.data_mut()[13] = 0x06; // ARP
        assert_eq!(flow_key(p.data()), None);
        assert_eq!(flow_key(&[0u8; 10]), None);
    }

    #[test]
    fn same_flow_same_shard_for_every_shard_count() {
        let p = udp_frame(0x0A000002, 0x0A000302, 1000, 53);
        let q = p.clone();
        for shards in [1usize, 2, 3, 4, 8] {
            let s = RssSteering::new(shards);
            assert_eq!(
                s.shard_for(p.data(), DeviceId(0)),
                s.shard_for(q.data(), DeviceId(3)),
                "steering must ignore the device for IP frames"
            );
        }
    }

    #[test]
    fn non_ip_steers_by_device() {
        let mut arp = Packet::new(60);
        arp.data_mut()[12] = 0x08;
        arp.data_mut()[13] = 0x06;
        let s = RssSteering::new(4);
        for d in 0..8usize {
            assert_eq!(s.shard_for(arp.data(), DeviceId(d)), d % 4);
        }
    }

    #[test]
    fn distinct_flows_spread_across_shards() {
        // 64 flows over 4 shards: no shard may be empty or hog more than
        // half the flows — the balance the parallel bench relies on.
        let s = RssSteering::new(4);
        let mut bins = [0usize; 4];
        for f in 0..64u16 {
            let p = udp_frame(0x0A000002, 0x0A000302, 1000 + f, 5678);
            bins[s.shard_for(p.data(), DeviceId(0))] += 1;
        }
        assert!(bins.iter().all(|&b| b > 0), "empty shard: {bins:?}");
        assert!(bins.iter().all(|&b| b <= 32), "hot shard: {bins:?}");
    }

    #[test]
    fn single_shard_short_circuits() {
        let s = RssSteering::new(1);
        assert_eq!(s.shard_for(&[0u8; 1], DeviceId(9)), 0);
    }

    #[test]
    fn truncated_headers_have_no_flow_key() {
        // Frame long enough for Ethernet + minimal IP, but the IHL field
        // claims a 60-byte header the frame doesn't carry.
        let p = udp_frame(0x0A000001, 0x0A000102, 1, 2);
        let mut lying = p.clone();
        lying.data_mut()[ether::HLEN] = 0x4F; // version 4, IHL 15 (60 bytes)
        let truncated = &lying.data()[..ether::HLEN + ipv4::HLEN + 4];
        assert_eq!(flow_key(truncated), None);
        // IHL below the legal minimum of 5 words.
        let mut runt = p.clone();
        runt.data_mut()[ether::HLEN] = 0x43; // version 4, IHL 3 (12 bytes)
        assert_eq!(flow_key(runt.data()), None);
    }

    #[test]
    fn dead_shard_flows_remap_to_survivors() {
        let mut s = RssSteering::new(4);
        assert_eq!(s.live_count(), 4);
        // Record every flow's home, then kill shard 2.
        let frames: Vec<_> = (0..64u16)
            .map(|f| udp_frame(0x0A000002, 0x0A000302, 1000 + f, 5678))
            .collect();
        let homes: Vec<_> = frames
            .iter()
            .map(|p| s.shard_for(p.data(), DeviceId(0)))
            .collect();
        s.mark_dead(2);
        assert_eq!(s.live_count(), 3);
        assert!(!s.is_live(2));
        for (p, &home) in frames.iter().zip(&homes) {
            let now = s.live_shard_for(p.data(), DeviceId(0)).unwrap();
            assert_ne!(now, 2, "dead shard must receive nothing");
            if home != 2 {
                assert_eq!(now, home, "live-homed flows must not move");
            }
        }
        // Revival restores the original mapping exactly.
        s.mark_live(2);
        for (p, &home) in frames.iter().zip(&homes) {
            assert_eq!(s.live_shard_for(p.data(), DeviceId(0)), Some(home));
        }
    }

    #[test]
    fn all_dead_steers_nowhere() {
        let mut s = RssSteering::new(2);
        s.mark_dead(0);
        s.mark_dead(1);
        let p = udp_frame(1, 2, 3, 4);
        assert_eq!(s.live_shard_for(p.data(), DeviceId(0)), None);
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn non_ip_also_avoids_dead_shards() {
        let mut arp = Packet::new(60);
        arp.data_mut()[12] = 0x08;
        arp.data_mut()[13] = 0x06;
        let mut s = RssSteering::new(4);
        s.mark_dead(1);
        for d in 0..8usize {
            let shard = s.live_shard_for(arp.data(), DeviceId(d)).unwrap();
            assert_ne!(shard, 1);
            if d % 4 != 1 {
                assert_eq!(shard, d % 4);
            }
        }
    }
}
