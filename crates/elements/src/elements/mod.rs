//! The element library and the dynamic-dispatch element factory.

pub mod basic;
pub mod classify;
pub mod combo;
pub mod device;
pub mod ether;
pub mod fault;
pub mod ip;
pub mod queueing;

use crate::element::{CreateCtx, Element};
use click_core::error::{Error, Result};
use click_core::registry::{devirt_base, FASTCLASSIFIER_PREFIX, FASTIPFILTER_PREFIX};

/// Creates a boxed element of the given class.
///
/// Understands tool-generated class names: `Class__DVn` (devirtualized)
/// behaves like `Class`; `FastClassifier@@x` / `FastIPFilter@@x` build
/// specialized classifiers from their serialized configuration.
///
/// # Errors
///
/// Returns an error for unknown classes or malformed configurations.
///
/// # Examples
///
/// ```
/// use click_elements::element::CreateCtx;
/// use click_elements::elements::create_element;
///
/// let mut ctx = CreateCtx::new();
/// let q = create_element("Queue", "128", &mut ctx)?;
/// assert_eq!(q.class_name(), "Queue");
/// # Ok::<(), click_core::Error>(())
/// ```
pub fn create_element(class: &str, config: &str, ctx: &mut CreateCtx) -> Result<Box<dyn Element>> {
    // Generated classifier classes.
    if class.starts_with(FASTCLASSIFIER_PREFIX) || class.starts_with(FASTIPFILTER_PREFIX) {
        return Ok(Box::new(classify::FastClassifierElement::from_config(
            class, config, ctx,
        )?));
    }
    // Devirtualized classes behave like their base class.
    let base = devirt_base(class).unwrap_or(class);
    let element: Box<dyn Element> = match base {
        "Discard" => Box::new(basic::Discard::from_config(config, ctx)?),
        "Counter" => Box::new(basic::Counter::from_config(config, ctx)?),
        "Tee" => Box::new(basic::Tee::from_config(config, ctx)?),
        "Paint" => Box::new(basic::Paint::from_config(config, ctx)?),
        "PaintTee" => Box::new(basic::PaintTee::from_config(config, ctx)?),
        "CheckPaint" => Box::new(basic::CheckPaint::from_config(config, ctx)?),
        "Strip" => Box::new(basic::Strip::from_config(config, ctx)?),
        "Unstrip" => Box::new(basic::Unstrip::from_config(config, ctx)?),
        "Align" => Box::new(basic::Align::from_config(config, ctx)?),
        "AlignmentInfo" => Box::new(basic::AlignmentInfo::from_config(config, ctx)?),
        "Switch" | "StaticSwitch" => Box::new(basic::Switch::from_config(config, ctx)?),
        "StaticPullSwitch" => Box::new(basic::StaticPullSwitch::from_config(config, ctx)?),
        "RoundRobinSched" => Box::new(basic::RoundRobinSched::from_config(config, ctx)?),
        "PrioSched" => Box::new(basic::PrioSched::from_config(config, ctx)?),
        "Idle" => Box::new(basic::Idle::from_config(config, ctx)?),
        "Null" => Box::new(basic::Null::from_config(config, ctx)?),
        "FaultInject" => Box::new(fault::FaultInject::from_config(config, ctx)?),
        "InfiniteSource" | "RatedSource" | "TimedSource" => {
            Box::new(basic::InfiniteSource::from_config(config, ctx)?)
        }
        "Queue" => Box::new(queueing::Queue::from_config(config, ctx)?),
        "RED" => Box::new(queueing::Red::from_config(config, ctx)?),
        "EtherEncap" => Box::new(ether::EtherEncap::from_config(config, ctx)?),
        "ARPQuerier" => Box::new(ether::ArpQuerier::from_config(config, ctx)?),
        "ARPResponder" => Box::new(ether::ArpResponder::from_config(config, ctx)?),
        "HostEtherFilter" => Box::new(ether::HostEtherFilter::from_config(config, ctx)?),
        "CheckIPHeader" => Box::new(ip::CheckIPHeader::from_config(config, ctx)?),
        "MarkIPHeader" => Box::new(ip::MarkIPHeader::from_config(config, ctx)?),
        "GetIPAddress" => Box::new(ip::GetIPAddress::from_config(config, ctx)?),
        "SetIPAddress" => Box::new(ip::SetIPAddress::from_config(config, ctx)?),
        "DropBroadcasts" => Box::new(ip::DropBroadcasts::from_config(config, ctx)?),
        "IPGWOptions" => Box::new(ip::IPGWOptions::from_config(config, ctx)?),
        "FixIPSrc" => Box::new(ip::FixIPSrc::from_config(config, ctx)?),
        "DecIPTTL" => Box::new(ip::DecIPTTL::from_config(config, ctx)?),
        "IPFragmenter" => Box::new(ip::IPFragmenter::from_config(config, ctx)?),
        "ICMPError" => Box::new(ip::ICMPError::from_config(config, ctx)?),
        "ICMPPingResponder" => Box::new(ip::ICMPPingResponder::from_config(config, ctx)?),
        "StaticIPLookup" => Box::new(ip::StaticIPLookup::from_config(config, ctx)?),
        "LookupIPRoute" => Box::new(ip::StaticIPLookup::lookup_ip_route(config, ctx)?),
        "Classifier" => Box::new(classify::ClassifierElement::classifier(config, ctx)?),
        "IPClassifier" => Box::new(classify::ClassifierElement::ip_classifier(config, ctx)?),
        "IPFilter" => Box::new(classify::ClassifierElement::ip_filter(config, ctx)?),
        "IPInputCombo" => Box::new(combo::IPInputCombo::from_config(config, ctx)?),
        "IPOutputCombo" => Box::new(combo::IPOutputCombo::from_config(config, ctx)?),
        "EtherEncapCombo" => Box::new(ether::EtherEncap::from_config(config, ctx)?),
        "FromDevice" => Box::new(device::FromDevice::from_config(config, ctx)?),
        "PollDevice" => Box::new(device::FromDevice::poll_device(config, ctx)?),
        "ToDevice" => Box::new(device::ToDevice::from_config(config, ctx)?),
        "RouterLink" | "Unqueue" => Box::new(device::RouterLink::from_config(config, ctx)?),
        "ScheduleInfo" | "AddressInfo" => Box::new(basic::AlignmentInfo::from_config(config, ctx)?),
        other => {
            return Err(Error::config(
                other,
                "unknown element class (not in the runtime factory)".to_string(),
            ))
        }
    };
    Ok(element)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_covers_every_standard_runtime_class() {
        // Every non-information class in the core registry must be
        // constructible (the paper's "common understanding between tools
        // and Click" applies to us too).
        let lib = click_core::registry::Library::standard();
        let sample_config = |class: &str| -> &'static str {
            match class {
                "Classifier" => "12/0800, -",
                "IPClassifier" => "tcp, -",
                "IPFilter" => "allow all",
                "Paint" | "PaintTee" | "CheckPaint" => "1",
                "Strip" | "Unstrip" => "14",
                "Align" => "4, 0",
                "Switch" | "StaticSwitch" | "StaticPullSwitch" => "0",
                "Queue" => "",
                "RED" => "5, 50, 0.02",
                "EtherEncap" | "EtherEncapCombo" => "0x0800, 00:00:00:00:00:01, 00:00:00:00:00:02",
                "ARPQuerier" => "10.0.0.1, 00:00:00:00:00:01",
                "ARPResponder" => "10.0.0.1 00:00:00:00:00:01",
                "HostEtherFilter" => "00:00:00:00:00:01",
                "GetIPAddress" => "16",
                "SetIPAddress" | "FixIPSrc" => "10.0.0.1",
                "IPFragmenter" => "1500",
                "ICMPError" => "10.0.0.1, 11, 0",
                "ICMPPingResponder" => "10.0.0.1",
                "StaticIPLookup" | "LookupIPRoute" => "10.0.0.0/8 0",
                "IPInputCombo" => "1",
                "IPOutputCombo" => "1, 10.0.0.1, 1500",
                "FromDevice" | "PollDevice" | "ToDevice" => "eth0",
                _ => "",
            }
        };
        for spec in lib.iter() {
            let mut ctx = CreateCtx::new();
            let result = create_element(&spec.name, sample_config(&spec.name), &mut ctx);
            assert!(
                result.is_ok(),
                "class {:?} failed: {:?}",
                spec.name,
                result.err()
            );
        }
    }

    #[test]
    fn factory_rejects_unknown_class() {
        let mut ctx = CreateCtx::new();
        assert!(create_element("Zorp", "", &mut ctx).is_err());
    }

    #[test]
    fn factory_resolves_devirtualized_names() {
        let mut ctx = CreateCtx::new();
        let e = create_element("Counter__DV7", "", &mut ctx).unwrap();
        assert_eq!(e.class_name(), "Counter");
    }

    #[test]
    fn factory_builds_fast_classifiers() {
        let mut ctx = CreateCtx::new();
        let e = create_element("FastClassifier@@c", "fast constant 1 out0", &mut ctx).unwrap();
        assert!(e.class_name().starts_with("FastClassifier@@"));
    }
}
