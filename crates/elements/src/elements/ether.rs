//! Ethernet-layer elements: `EtherEncap`, `ARPQuerier`, `ARPResponder`,
//! `HostEtherFilter`.

use crate::element::{args, config_err, CreateCtx, Element, Emitter};
use crate::headers::{arp, ether, ipv4, parse_ip, parse_mac};
use crate::packet::Packet;
use click_core::error::Result;
use std::collections::HashMap;

fn parse_ethertype(s: &str) -> Option<u16> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u16::from_str_radix(hex, 16).ok()
    } else {
        u16::from_str_radix(s, 16).ok()
    }
}

/// `EtherEncap(ethertype, src, dst)`: prepends a fixed Ethernet header.
///
/// This is what ARP elimination (paper §7.2) substitutes for an
/// `ARPQuerier` on a point-to-point link.
#[derive(Debug)]
pub struct EtherEncap {
    ethertype: u16,
    src: [u8; 6],
    dst: [u8; 6],
}

impl EtherEncap {
    /// Creates from a configuration string: `ethertype, src_mac, dst_mac`.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<EtherEncap> {
        let a = args(config);
        if a.len() != 3 {
            return Err(config_err("EtherEncap", "expects `ethertype, src, dst`"));
        }
        let ethertype = parse_ethertype(&a[0])
            .ok_or_else(|| config_err("EtherEncap", format!("bad ethertype {:?}", a[0])))?;
        let src = parse_mac(&a[1])
            .ok_or_else(|| config_err("EtherEncap", format!("bad source MAC {:?}", a[1])))?;
        let dst = parse_mac(&a[2])
            .ok_or_else(|| config_err("EtherEncap", format!("bad destination MAC {:?}", a[2])))?;
        Ok(EtherEncap {
            ethertype,
            src,
            dst,
        })
    }
}

impl Element for EtherEncap {
    fn class_name(&self) -> &str {
        "EtherEncap"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        p.push(ether::HLEN);
        ether::write(p.data_mut(), self.dst, self.src, self.ethertype);
        Some(p)
    }
}

/// `ARPQuerier(ip, eth [, neighbor_ip neighbor_eth ...])`.
///
/// Input 0 takes IP packets (destination annotation set by the routing
/// lookup); packets whose next hop is known get an Ethernet header and go
/// out output 0. Unknown next hops trigger a broadcast ARP query on output
/// 0, with one packet held awaiting the reply. Input 1 takes ARP replies
/// (still Ethernet-encapsulated), which populate the table.
///
/// Extra `ip eth` config pairs pre-seed the table — the closed-testbed
/// equivalent of a warmed ARP cache.
#[derive(Debug)]
pub struct ArpQuerier {
    ip: u32,
    eth: [u8; 6],
    table: HashMap<u32, [u8; 6]>,
    pending: Option<(u32, Packet)>,
    queries: u64,
    drops: u64,
}

impl ArpQuerier {
    /// Creates from a configuration string.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<ArpQuerier> {
        let a = args(config);
        if a.len() < 2 {
            return Err(config_err("ARPQuerier", "expects at least `ip, eth`"));
        }
        let ip = parse_ip(&a[0])
            .ok_or_else(|| config_err("ARPQuerier", format!("bad IP address {:?}", a[0])))?;
        let eth = parse_mac(&a[1])
            .ok_or_else(|| config_err("ARPQuerier", format!("bad MAC address {:?}", a[1])))?;
        let mut table = HashMap::new();
        for pair in &a[2..] {
            let mut it = pair.split_whitespace();
            let (Some(ip_s), Some(mac_s), None) = (it.next(), it.next(), it.next()) else {
                return Err(config_err(
                    "ARPQuerier",
                    format!("bad table entry {pair:?}"),
                ));
            };
            let nip = parse_ip(ip_s)
                .ok_or_else(|| config_err("ARPQuerier", format!("bad IP in entry {pair:?}")))?;
            let neth = parse_mac(mac_s)
                .ok_or_else(|| config_err("ARPQuerier", format!("bad MAC in entry {pair:?}")))?;
            table.insert(nip, neth);
        }
        Ok(ArpQuerier {
            ip,
            eth,
            table,
            pending: None,
            queries: 0,
            drops: 0,
        })
    }

    fn encap(&self, mut p: Packet, dst: [u8; 6]) -> Packet {
        p.push(ether::HLEN);
        ether::write(p.data_mut(), dst, self.eth, ether::TYPE_IP);
        p
    }

    fn make_query(&self, target_ip: u32) -> Packet {
        let mut q = Packet::new(ether::HLEN + arp::LEN);
        let data = q.data_mut();
        ether::write(data, ether::BROADCAST, self.eth, ether::TYPE_ARP);
        arp::write(
            &mut data[ether::HLEN..],
            arp::OP_REQUEST,
            self.eth,
            self.ip,
            [0; 6],
            target_ip,
        );
        q
    }
}

impl Element for ArpQuerier {
    fn class_name(&self) -> &str {
        "ARPQuerier"
    }
    fn push(&mut self, port: usize, p: Packet, out: &mut Emitter) {
        match port {
            0 => {
                // Next hop: destination annotation, falling back to the IP
                // header's destination.
                let dst_ip = p.anno.dst_ip.unwrap_or_else(|| {
                    if p.len() >= ipv4::HLEN {
                        ipv4::dst(p.data())
                    } else {
                        0
                    }
                });
                if let Some(&mac) = self.table.get(&dst_ip) {
                    let framed = self.encap(p, mac);
                    out.emit(0, framed);
                } else {
                    self.queries += 1;
                    out.emit(0, self.make_query(dst_ip));
                    if self.pending.replace((dst_ip, p)).is_some() {
                        self.drops += 1; // displaced an older waiter
                    }
                }
            }
            _ => {
                // An ARP reply, Ethernet header still present.
                let data = p.data();
                if data.len() >= ether::HLEN + arp::LEN {
                    let a = &data[ether::HLEN..];
                    if arp::opcode(a) == arp::OP_REPLY {
                        let sip = arp::sender_ip(a);
                        let seth = arp::sender_eth(a);
                        self.table.insert(sip, seth);
                        if let Some((wip, held)) = self.pending.take() {
                            if wip == sip {
                                let framed = self.encap(held, seth);
                                out.emit(0, framed);
                            } else {
                                self.pending = Some((wip, held));
                            }
                        }
                    }
                }
                // The reply itself is consumed.
            }
        }
    }
    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "queries" => Some(self.queries),
            "drops" => Some(self.drops),
            "table_size" => Some(self.table.len() as u64),
            _ => None,
        }
    }
}

/// `ARPResponder(ip eth [, ip eth ...])`: answers ARP requests for the
/// configured addresses.
#[derive(Debug)]
pub struct ArpResponder {
    entries: Vec<(u32, [u8; 6])>,
    replies: u64,
}

impl ArpResponder {
    /// Creates from a configuration string of `ip eth` pairs.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<ArpResponder> {
        let a = args(config);
        if a.is_empty() {
            return Err(config_err(
                "ARPResponder",
                "expects at least one `ip eth` entry",
            ));
        }
        let mut entries = Vec::new();
        for pair in &a {
            let mut it = pair.split_whitespace();
            let (Some(ip_s), Some(mac_s), None) = (it.next(), it.next(), it.next()) else {
                return Err(config_err("ARPResponder", format!("bad entry {pair:?}")));
            };
            let ip = parse_ip(ip_s)
                .ok_or_else(|| config_err("ARPResponder", format!("bad IP in {pair:?}")))?;
            let mac = parse_mac(mac_s)
                .ok_or_else(|| config_err("ARPResponder", format!("bad MAC in {pair:?}")))?;
            entries.push((ip, mac));
        }
        Ok(ArpResponder {
            entries,
            replies: 0,
        })
    }
}

impl Element for ArpResponder {
    fn class_name(&self) -> &str {
        "ARPResponder"
    }
    fn simple_action(&mut self, p: Packet) -> Option<Packet> {
        let data = p.data();
        if data.len() < ether::HLEN + arp::LEN {
            return None;
        }
        let a = &data[ether::HLEN..];
        if arp::opcode(a) != arp::OP_REQUEST {
            return None;
        }
        let target = arp::target_ip(a);
        let &(_, our_mac) = self.entries.iter().find(|(ip, _)| *ip == target)?;
        let requester_eth = arp::sender_eth(a);
        let requester_ip = arp::sender_ip(a);
        self.replies += 1;
        let mut r = Packet::new(ether::HLEN + arp::LEN);
        let rd = r.data_mut();
        ether::write(rd, requester_eth, our_mac, ether::TYPE_ARP);
        arp::write(
            &mut rd[ether::HLEN..],
            arp::OP_REPLY,
            our_mac,
            target,
            requester_eth,
            requester_ip,
        );
        Some(r)
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "replies").then_some(self.replies)
    }
}

/// `HostEtherFilter(eth)`: output 0 for frames addressed to us (or
/// broadcast), output 1 (or drop) otherwise.
#[derive(Debug)]
pub struct HostEtherFilter {
    mac: [u8; 6],
}

impl HostEtherFilter {
    /// Creates from a configuration string: our MAC address.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<HostEtherFilter> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "HostEtherFilter",
                "expects exactly one MAC argument",
            ));
        }
        let mac = parse_mac(&a[0])
            .ok_or_else(|| config_err("HostEtherFilter", format!("bad MAC {:?}", a[0])))?;
        Ok(HostEtherFilter { mac })
    }
}

impl Element for HostEtherFilter {
    fn class_name(&self) -> &str {
        "HostEtherFilter"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        let data = p.data();
        let ours = data.len() >= ether::HLEN
            && (ether::dst(data) == self.mac || ether::dst(data) == ether::BROADCAST);
        out.emit(usize::from(!ours), p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::build_udp_packet;

    fn ctx() -> CreateCtx {
        CreateCtx::new()
    }

    fn push_on(e: &mut dyn Element, port: usize, p: Packet) -> Vec<(usize, Packet)> {
        let mut out = Emitter::new();
        e.push(port, p, &mut out);
        out.drain().collect()
    }

    fn ip_only_packet(dst_ip: u32) -> Packet {
        let mut p = build_udp_packet([1; 6], [2; 6], 0x0A000001, dst_ip, 1, 2, 18, 64);
        p.pull(ether::HLEN);
        p.anno.dst_ip = Some(dst_ip);
        p
    }

    #[test]
    fn ether_encap_prepends_header() {
        let mut e =
            EtherEncap::from_config("0x0800, 00:00:00:00:00:01, 00:00:00:00:00:02", &mut ctx())
                .unwrap();
        let p = ip_only_packet(0x0A000002);
        let framed = e.simple_action(p).unwrap();
        let d = framed.data();
        assert_eq!(ether::ethertype(d), 0x0800);
        assert_eq!(ether::src(d), [0, 0, 0, 0, 0, 1]);
        assert_eq!(ether::dst(d), [0, 0, 0, 0, 0, 2]);
        assert_eq!(ipv4::dst(&d[14..]), 0x0A000002);
    }

    #[test]
    fn arp_querier_uses_preseeded_table() {
        let mut q = ArpQuerier::from_config(
            "10.0.0.1, 00:00:00:00:00:01, 10.0.0.2 00:00:00:00:00:22",
            &mut ctx(),
        )
        .unwrap();
        let outs = push_on(&mut q, 0, ip_only_packet(0x0A000002));
        assert_eq!(outs.len(), 1);
        let d = outs[0].1.data();
        assert_eq!(ether::ethertype(d), ether::TYPE_IP);
        assert_eq!(ether::dst(d), [0, 0, 0, 0, 0, 0x22]);
        assert_eq!(q.stat("queries"), Some(0));
    }

    #[test]
    fn arp_querier_queries_then_releases_on_reply() {
        let mut q = ArpQuerier::from_config("10.0.0.1, 00:00:00:00:00:01", &mut ctx()).unwrap();
        let outs = push_on(&mut q, 0, ip_only_packet(0x0A000002));
        // The query goes out; the IP packet is held.
        assert_eq!(outs.len(), 1);
        let d = outs[0].1.data();
        assert_eq!(ether::ethertype(d), ether::TYPE_ARP);
        assert_eq!(ether::dst(d), ether::BROADCAST);
        assert_eq!(arp::opcode(&d[14..]), arp::OP_REQUEST);
        assert_eq!(arp::target_ip(&d[14..]), 0x0A000002);
        assert_eq!(q.stat("queries"), Some(1));

        // Craft the reply.
        let mut reply = Packet::new(ether::HLEN + arp::LEN);
        let rd = reply.data_mut();
        ether::write(rd, [0, 0, 0, 0, 0, 1], [9; 6], ether::TYPE_ARP);
        arp::write(
            &mut rd[14..],
            arp::OP_REPLY,
            [9; 6],
            0x0A000002,
            [0, 0, 0, 0, 0, 1],
            0x0A000001,
        );
        let outs = push_on(&mut q, 1, reply);
        assert_eq!(outs.len(), 1, "held packet released");
        let d = outs[0].1.data();
        assert_eq!(ether::ethertype(d), ether::TYPE_IP);
        assert_eq!(ether::dst(d), [9; 6]);
        assert_eq!(q.stat("table_size"), Some(1));
    }

    #[test]
    fn arp_querier_displacement_counts_drop() {
        let mut q = ArpQuerier::from_config("10.0.0.1, 00:00:00:00:00:01", &mut ctx()).unwrap();
        push_on(&mut q, 0, ip_only_packet(0x0A000002));
        push_on(&mut q, 0, ip_only_packet(0x0A000003));
        assert_eq!(q.stat("drops"), Some(1));
    }

    #[test]
    fn arp_responder_answers_matching_requests() {
        let mut r = ArpResponder::from_config("10.0.0.1 00:00:00:00:00:01", &mut ctx()).unwrap();
        let mut req = Packet::new(ether::HLEN + arp::LEN);
        let rd = req.data_mut();
        ether::write(rd, ether::BROADCAST, [7; 6], ether::TYPE_ARP);
        arp::write(
            &mut rd[14..],
            arp::OP_REQUEST,
            [7; 6],
            0x0A000002,
            [0; 6],
            0x0A000001,
        );
        let reply = r.simple_action(req).expect("should reply");
        let d = reply.data();
        assert_eq!(ether::dst(d), [7; 6]);
        let a = &d[14..];
        assert_eq!(arp::opcode(a), arp::OP_REPLY);
        assert_eq!(arp::sender_eth(a), [0, 0, 0, 0, 0, 1]);
        assert_eq!(arp::sender_ip(a), 0x0A000001);
        assert_eq!(r.stat("replies"), Some(1));
    }

    #[test]
    fn arp_responder_ignores_other_targets() {
        let mut r = ArpResponder::from_config("10.0.0.1 00:00:00:00:00:01", &mut ctx()).unwrap();
        let mut req = Packet::new(ether::HLEN + arp::LEN);
        let rd = req.data_mut();
        ether::write(rd, ether::BROADCAST, [7; 6], ether::TYPE_ARP);
        arp::write(
            &mut rd[14..],
            arp::OP_REQUEST,
            [7; 6],
            0x0A000002,
            [0; 6],
            0x0A000009,
        );
        assert!(r.simple_action(req).is_none());
    }

    #[test]
    fn host_ether_filter() {
        let mut f = HostEtherFilter::from_config("00:00:00:00:00:05", &mut ctx()).unwrap();
        let mut ours = Packet::new(20);
        ether::write(ours.data_mut(), [0, 0, 0, 0, 0, 5], [1; 6], 0x0800);
        assert_eq!(push_on(&mut f, 0, ours)[0].0, 0);
        let mut bcast = Packet::new(20);
        ether::write(bcast.data_mut(), ether::BROADCAST, [1; 6], 0x0800);
        assert_eq!(push_on(&mut f, 0, bcast)[0].0, 0);
        let mut other = Packet::new(20);
        ether::write(other.data_mut(), [3; 6], [1; 6], 0x0800);
        assert_eq!(push_on(&mut f, 0, other)[0].0, 1);
    }

    #[test]
    fn config_validation() {
        assert!(EtherEncap::from_config("0x0800, junk, 00:00:00:00:00:02", &mut ctx()).is_err());
        assert!(ArpQuerier::from_config("10.0.0.1", &mut ctx()).is_err());
        assert!(
            ArpQuerier::from_config("10.0.0.1, 00:00:00:00:00:01, badentry", &mut ctx()).is_err()
        );
        assert!(ArpResponder::from_config("", &mut ctx()).is_err());
        assert!(HostEtherFilter::from_config("nope", &mut ctx()).is_err());
    }
}
