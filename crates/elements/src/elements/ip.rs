//! IP-layer elements of the Figure-1 router: header validation, TTL,
//! options, source fixing, routing lookup, fragmentation, and ICMP errors.
//!
//! All of these operate on packets whose data begins at the IP header
//! (i.e. downstream of `Strip(14)`).

use crate::batch::{BatchEmitter, PacketBatch};
use crate::element::{args, config_err, int_arg, CreateCtx, Element, Emitter};
use crate::headers::{ipv4, parse_ip};
use crate::packet::Packet;
use crate::routing::MultibitTrie;
use crate::swap::ElementState;
use click_core::error::Result;
use std::cell::OnceCell;

/// `CheckIPHeader`: validates the IP header; bad packets go to output 1
/// (or are dropped if output 1 is unconnected).
#[derive(Debug, Default)]
pub struct CheckIPHeader {
    bad: u64,
}

impl CheckIPHeader {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<CheckIPHeader> {
        if !config.trim().is_empty() {
            return Err(config_err("CheckIPHeader", "takes no configuration"));
        }
        Ok(CheckIPHeader::default())
    }

    /// The validation itself, shared with `IPInputCombo`.
    pub fn header_ok(data: &[u8]) -> bool {
        if data.len() < ipv4::HLEN {
            return false;
        }
        if ipv4::version(data) != 4 {
            return false;
        }
        let hlen = ipv4::header_len(data);
        if !(ipv4::HLEN..=data.len()).contains(&hlen) {
            return false;
        }
        let tlen = ipv4::total_len(data) as usize;
        if tlen < hlen || tlen > data.len() {
            return false;
        }
        ipv4::checksum_ok(data)
    }
}

impl Element for CheckIPHeader {
    fn class_name(&self) -> &str {
        "CheckIPHeader"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        if Self::header_ok(p.data()) {
            out.emit(0, p);
        } else {
            self.bad += 1;
            out.emit(1, p);
        }
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        for p in batch.drain() {
            if Self::header_ok(p.data()) {
                out.emit(0, p);
            } else {
                self.bad += 1;
                out.emit(1, p);
            }
        }
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "bad").then_some(self.bad)
    }
}

/// `MarkIPHeader`: annotation-only in real Click; a no-op here.
#[derive(Debug, Default)]
pub struct MarkIPHeader;

impl MarkIPHeader {
    /// Creates from a configuration string (offset argument accepted and
    /// ignored).
    pub fn from_config(_config: &str, _ctx: &mut CreateCtx) -> Result<MarkIPHeader> {
        Ok(MarkIPHeader)
    }
}

impl Element for MarkIPHeader {
    fn class_name(&self) -> &str {
        "MarkIPHeader"
    }
}

/// `GetIPAddress(offset)`: copies 4 bytes at `offset` into the
/// destination-IP annotation (offset 16 = the IP destination field).
#[derive(Debug)]
pub struct GetIPAddress {
    offset: usize,
}

impl GetIPAddress {
    /// Creates from a configuration string: the byte offset.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<GetIPAddress> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "GetIPAddress",
                "expects exactly one offset argument",
            ));
        }
        Ok(GetIPAddress {
            offset: int_arg("GetIPAddress", "offset", &a[0])?,
        })
    }
}

impl Element for GetIPAddress {
    fn class_name(&self) -> &str {
        "GetIPAddress"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        let d = p.data();
        if d.len() >= self.offset + 4 {
            p.anno.dst_ip = Some(u32::from_be_bytes([
                d[self.offset],
                d[self.offset + 1],
                d[self.offset + 2],
                d[self.offset + 3],
            ]));
        }
        Some(p)
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        for p in batch.iter_mut() {
            let off = self.offset;
            let d = p.data();
            if d.len() >= off + 4 {
                let dst = u32::from_be_bytes([d[off], d[off + 1], d[off + 2], d[off + 3]]);
                p.anno.dst_ip = Some(dst);
            }
        }
        out.emit_batch(0, batch);
    }
}

/// `SetIPAddress(ip)`: sets the destination-IP annotation to a constant.
#[derive(Debug)]
pub struct SetIPAddress {
    ip: u32,
}

impl SetIPAddress {
    /// Creates from a configuration string: the address.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<SetIPAddress> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "SetIPAddress",
                "expects exactly one address argument",
            ));
        }
        let ip = parse_ip(&a[0])
            .ok_or_else(|| config_err("SetIPAddress", format!("bad address {:?}", a[0])))?;
        Ok(SetIPAddress { ip })
    }
}

impl Element for SetIPAddress {
    fn class_name(&self) -> &str {
        "SetIPAddress"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        p.anno.dst_ip = Some(self.ip);
        Some(p)
    }
}

/// `DropBroadcasts`: drops packets that arrived as link-level broadcasts.
#[derive(Debug, Default)]
pub struct DropBroadcasts {
    drops: u64,
}

impl DropBroadcasts {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<DropBroadcasts> {
        if !config.trim().is_empty() {
            return Err(config_err("DropBroadcasts", "takes no configuration"));
        }
        Ok(DropBroadcasts::default())
    }
}

impl Element for DropBroadcasts {
    fn class_name(&self) -> &str {
        "DropBroadcasts"
    }
    fn simple_action(&mut self, p: Packet) -> Option<Packet> {
        if p.anno.link_broadcast {
            self.drops += 1;
            None
        } else {
            Some(p)
        }
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "drops").then_some(self.drops)
    }
}

/// `IPGWOptions`: processes IP options a gateway must handle. Packets with
/// malformed options go to output 1; option-less packets pass untouched.
#[derive(Debug, Default)]
pub struct IPGWOptions {
    bad: u64,
}

impl IPGWOptions {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<IPGWOptions> {
        if !config.trim().is_empty() {
            return Err(config_err("IPGWOptions", "takes no configuration"));
        }
        Ok(IPGWOptions::default())
    }

    /// Returns false if the options area is malformed.
    pub fn options_ok(data: &[u8]) -> bool {
        let hlen = ipv4::header_len(data);
        if hlen <= ipv4::HLEN {
            return true; // no options
        }
        let mut i = ipv4::HLEN;
        while i < hlen {
            match data[i] {
                0 => return true, // end of options
                1 => i += 1,      // no-op
                _ => {
                    if i + 1 >= hlen {
                        return false;
                    }
                    let olen = data[i + 1] as usize;
                    if olen < 2 || i + olen > hlen {
                        return false;
                    }
                    i += olen;
                }
            }
        }
        true
    }
}

impl Element for IPGWOptions {
    fn class_name(&self) -> &str {
        "IPGWOptions"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        if Self::options_ok(p.data()) {
            out.emit(0, p);
        } else {
            self.bad += 1;
            out.emit(1, p);
        }
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "bad").then_some(self.bad)
    }
}

/// `FixIPSrc(ip)`: rewrites the source address of packets flagged by
/// `ICMPError` (so locally generated errors carry the router's address).
#[derive(Debug)]
pub struct FixIPSrc {
    ip: u32,
}

impl FixIPSrc {
    /// Creates from a configuration string: the router's address on this
    /// interface.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<FixIPSrc> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "FixIPSrc",
                "expects exactly one address argument",
            ));
        }
        let ip = parse_ip(&a[0])
            .ok_or_else(|| config_err("FixIPSrc", format!("bad address {:?}", a[0])))?;
        Ok(FixIPSrc { ip })
    }
}

impl Element for FixIPSrc {
    fn class_name(&self) -> &str {
        "FixIPSrc"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        if p.anno.fix_ip_src && p.len() >= ipv4::HLEN {
            ipv4::set_src(p.data_mut(), self.ip);
            p.anno.fix_ip_src = false;
        }
        Some(p)
    }
}

/// `DecIPTTL`: decrements the TTL with an incremental checksum update;
/// expired packets go to output 1.
#[derive(Debug, Default)]
pub struct DecIPTTL {
    expired: u64,
}

impl DecIPTTL {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<DecIPTTL> {
        if !config.trim().is_empty() {
            return Err(config_err("DecIPTTL", "takes no configuration"));
        }
        Ok(DecIPTTL::default())
    }
}

impl Element for DecIPTTL {
    fn class_name(&self) -> &str {
        "DecIPTTL"
    }
    fn push(&mut self, _port: usize, mut p: Packet, out: &mut Emitter) {
        if p.len() < ipv4::HLEN || ipv4::ttl(p.data()) <= 1 {
            self.expired += 1;
            out.emit(1, p);
        } else {
            ipv4::dec_ttl(p.data_mut());
            out.emit(0, p);
        }
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        for mut p in batch.drain() {
            if p.len() < ipv4::HLEN || ipv4::ttl(p.data()) <= 1 {
                self.expired += 1;
                out.emit(1, p);
            } else {
                ipv4::dec_ttl(p.data_mut());
                out.emit(0, p);
            }
        }
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "expired").then_some(self.expired)
    }
}

/// `IPFragmenter(mtu)`: fragments packets larger than the MTU; packets
/// with DF set that would need fragmentation go to output 1.
#[derive(Debug)]
pub struct IPFragmenter {
    mtu: usize,
    fragments: u64,
    must_frag: u64,
}

impl IPFragmenter {
    /// Creates from a configuration string: the MTU in bytes.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<IPFragmenter> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "IPFragmenter",
                "expects exactly one MTU argument",
            ));
        }
        let mtu: usize = int_arg("IPFragmenter", "MTU", &a[0])?;
        if mtu < ipv4::HLEN + 8 {
            return Err(config_err("IPFragmenter", "MTU too small"));
        }
        Ok(IPFragmenter {
            mtu,
            fragments: 0,
            must_frag: 0,
        })
    }

    fn fragment(&mut self, p: &Packet, out: &mut Emitter) {
        let data = p.data();
        let hlen = ipv4::header_len(data);
        let total = (ipv4::total_len(data) as usize).min(data.len());
        // A crafted header length beyond the total length must not panic.
        let payload = &data[hlen.min(total)..total];
        // Fragment payload size: multiple of 8 bytes.
        let step = (self.mtu - hlen) / 8 * 8;
        let orig_frag_field = ipv4::frag_field(data);
        let orig_offset_units = (orig_frag_field & 0x1FFF) as usize;
        let orig_mf = orig_frag_field & ipv4::FLAG_MF != 0;
        let mut pos = 0usize;
        while pos < payload.len() {
            let this_len = step.min(payload.len() - pos);
            let last = pos + this_len >= payload.len();
            let mut frag = Packet::new(hlen + this_len);
            frag.anno = p.anno.clone();
            let fd = frag.data_mut();
            fd[..hlen].copy_from_slice(&data[..hlen]);
            fd[hlen..].copy_from_slice(&payload[pos..pos + this_len]);
            fd[2..4].copy_from_slice(&((hlen + this_len) as u16).to_be_bytes());
            let mf = !last || orig_mf;
            let offset_units = orig_offset_units + pos / 8;
            let field = (offset_units as u16 & 0x1FFF) | if mf { ipv4::FLAG_MF } else { 0 };
            fd[6..8].copy_from_slice(&field.to_be_bytes());
            ipv4::set_checksum(fd);
            self.fragments += 1;
            out.emit(0, frag);
            pos += this_len;
        }
    }
}

impl Element for IPFragmenter {
    fn class_name(&self) -> &str {
        "IPFragmenter"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        if p.len() <= self.mtu {
            out.emit(0, p);
        } else if ipv4::frag_field(p.data()) & ipv4::FLAG_DF != 0 {
            self.must_frag += 1;
            out.emit(1, p);
        } else {
            self.fragment(&p, out);
        }
    }
    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "fragments" => Some(self.fragments),
            "must_frag" => Some(self.must_frag),
            _ => None,
        }
    }
}

/// `ICMPError(src_ip, type, code)`: turns a problem packet into an ICMP
/// error addressed to its sender, which re-enters the routing lookup.
#[derive(Debug)]
pub struct ICMPError {
    src_ip: u32,
    icmp_type: u8,
    code: u8,
    generated: u64,
}

impl ICMPError {
    /// Creates from a configuration string: `src_ip, type, code`.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<ICMPError> {
        let a = args(config);
        if a.len() != 3 {
            return Err(config_err("ICMPError", "expects `src_ip, type, code`"));
        }
        let src_ip = parse_ip(&a[0])
            .ok_or_else(|| config_err("ICMPError", format!("bad address {:?}", a[0])))?;
        Ok(ICMPError {
            src_ip,
            icmp_type: int_arg("ICMPError", "type", &a[1])?,
            code: int_arg("ICMPError", "code", &a[2])?,
            generated: 0,
        })
    }
}

impl Element for ICMPError {
    fn class_name(&self) -> &str {
        "ICMPError"
    }
    fn simple_action(&mut self, p: Packet) -> Option<Packet> {
        let data = p.data();
        if data.len() < ipv4::HLEN {
            return None;
        }
        let orig_src = ipv4::src(data);
        // ICMP payload: type, code, checksum, unused + original header + 8.
        let quoted = (ipv4::header_len(data) + 8).min(data.len());
        let icmp_len = 8 + quoted;
        let total = ipv4::HLEN + icmp_len;
        let mut e = Packet::new(total);
        e.anno.dst_ip = Some(orig_src);
        e.anno.fix_ip_src = true;
        let ed = e.data_mut();
        ed[0] = 0x45;
        ed[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        ed[8] = 255;
        ed[9] = ipv4::PROTO_ICMP;
        ed[12..16].copy_from_slice(&self.src_ip.to_be_bytes());
        ed[16..20].copy_from_slice(&orig_src.to_be_bytes());
        ipv4::set_checksum(ed);
        let icmp = &mut ed[ipv4::HLEN..];
        icmp[0] = self.icmp_type;
        icmp[1] = self.code;
        icmp[8..8 + quoted].copy_from_slice(&data[..quoted]);
        self.generated += 1;
        Some(e)
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "count").then_some(self.generated)
    }
}

/// `ICMPPingResponder(ip)`: answers ICMP echo requests addressed to `ip`
/// with echo replies.
///
/// Unlike the rest of this module, it takes *full Ethernet frames* (its
/// home is directly behind a `FromDevice` on a live `tap:`/`raw:`
/// backend, where the kernel's `ping` is the traffic source): the reply
/// reuses the request's buffer with MAC and IP addresses swapped, TTL
/// refreshed, and both checksums recomputed. Non-echo-request frames go
/// to output 1, or are dropped (and counted) if output 1 is unconnected.
#[derive(Debug)]
pub struct ICMPPingResponder {
    ip: u32,
    replies: u64,
    ignored: u64,
}

impl ICMPPingResponder {
    /// Creates from a configuration string: the address to answer for.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<ICMPPingResponder> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "ICMPPingResponder",
                "expects exactly one address argument",
            ));
        }
        let ip = parse_ip(&a[0])
            .ok_or_else(|| config_err("ICMPPingResponder", format!("bad address {:?}", a[0])))?;
        Ok(ICMPPingResponder {
            ip,
            replies: 0,
            ignored: 0,
        })
    }

    /// Ones-complement sum over `data` (the ICMP message checksum).
    fn icmp_checksum(data: &[u8]) -> u16 {
        let mut sum = 0u32;
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// True if the frame is an IPv4 ICMP echo request for our address.
    fn is_echo_request(&self, f: &[u8]) -> bool {
        if f.len() < crate::headers::ether::HLEN + ipv4::HLEN + 8 {
            return false;
        }
        let ip = &f[crate::headers::ether::HLEN..];
        crate::headers::ether::ethertype(f) == 0x0800
            && ipv4::version(ip) == 4
            && ipv4::protocol(ip) == ipv4::PROTO_ICMP
            && ipv4::dst(ip) == self.ip
            && ip.len() > ipv4::header_len(ip)
            && ip[ipv4::header_len(ip)] == 8 // echo request
    }
}

impl Element for ICMPPingResponder {
    fn class_name(&self) -> &str {
        "ICMPPingResponder"
    }
    fn push(&mut self, _port: usize, mut p: Packet, out: &mut Emitter) {
        if !self.is_echo_request(p.data()) {
            self.ignored += 1;
            out.emit(1, p);
            return;
        }
        let f = p.data_mut();
        let (req_dst, req_src) = (crate::headers::ether::dst(f), crate::headers::ether::src(f));
        let ethertype = crate::headers::ether::ethertype(f);
        crate::headers::ether::write(f, req_src, req_dst, ethertype);
        let ip = &mut f[crate::headers::ether::HLEN..];
        let hlen = ipv4::header_len(ip);
        let (src, dst) = (ipv4::src(ip), ipv4::dst(ip));
        ip[12..16].copy_from_slice(&dst.to_be_bytes());
        ip[16..20].copy_from_slice(&src.to_be_bytes());
        ip[8] = 64; // fresh TTL for the reply
        ipv4::set_checksum(ip);
        let total = (ipv4::total_len(ip) as usize).min(ip.len());
        let icmp = &mut ip[hlen..total];
        icmp[0] = 0; // echo reply
        icmp[2] = 0;
        icmp[3] = 0;
        let c = Self::icmp_checksum(icmp);
        icmp[2..4].copy_from_slice(&c.to_be_bytes());
        self.replies += 1;
        out.emit(0, p);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "count" => Some(self.replies),
            "ignored" => Some(self.ignored),
            _ => None,
        }
    }
}

/// The bulk payload `StaticIPLookup` moves across a hot swap: the live
/// multibit trie, tagged with a hash of the configuration it was built
/// from so a successor with different routes rejects it.
struct CarriedTable {
    config_fnv: u64,
    table: MultibitTrie<(Option<u32>, usize)>,
}

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `StaticIPLookup` / `LookupIPRoute`: longest-prefix-match routing. Route
/// entries are `addr/prefix [gateway] output`.
///
/// Backed by a Poptrie-style [`MultibitTrie`], built lazily on first
/// lookup so a hot swap can hand the predecessor's live table over
/// ([`Element::take_state`]/[`Element::restore_state`]) without ever
/// rebuilding it — at a million routes, the rebuild is the expensive
/// part of a swap.
#[derive(Debug)]
pub struct StaticIPLookup {
    /// Parsed route entries, in configuration order (later duplicates
    /// override earlier ones when the table is built).
    routes: Vec<(u32, u8, Option<u32>, usize)>,
    table: OnceCell<MultibitTrie<(Option<u32>, usize)>>,
    config_fnv: u64,
    class: &'static str,
    no_route: u64,
    table_adoptions: u64,
}

impl StaticIPLookup {
    /// Creates from a configuration string of route entries.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<StaticIPLookup> {
        Self::with_class(config, "StaticIPLookup")
    }

    /// Creates under the `LookupIPRoute` alias.
    pub fn lookup_ip_route(config: &str, _ctx: &mut CreateCtx) -> Result<StaticIPLookup> {
        Self::with_class(config, "LookupIPRoute")
    }

    fn with_class(config: &str, class: &'static str) -> Result<StaticIPLookup> {
        let a = args(config);
        if a.is_empty() {
            return Err(config_err(class, "expects at least one route"));
        }
        let mut routes = Vec::with_capacity(a.len());
        for route in &a {
            let words: Vec<&str> = route.split_whitespace().collect();
            if !(2..=3).contains(&words.len()) {
                return Err(config_err(class, format!("bad route {route:?}")));
            }
            let (addr_s, plen): (&str, u8) = match words[0].split_once('/') {
                Some((a, l)) => (
                    a,
                    l.parse()
                        .ok()
                        .filter(|&l| l <= 32)
                        .ok_or_else(|| config_err(class, format!("bad prefix in {route:?}")))?,
                ),
                None => (words[0], 32),
            };
            let addr = parse_ip(addr_s)
                .ok_or_else(|| config_err(class, format!("bad address in {route:?}")))?;
            let (gw, port_s) = if words.len() == 3 {
                let gw = parse_ip(words[1])
                    .ok_or_else(|| config_err(class, format!("bad gateway in {route:?}")))?;
                (Some(gw), words[2])
            } else {
                (None, words[1])
            };
            let port: usize = port_s
                .parse()
                .map_err(|_| config_err(class, format!("bad output port in {route:?}")))?;
            let masked = if plen == 0 {
                0
            } else {
                addr & (u32::MAX << (32 - plen))
            };
            routes.push((masked, plen, gw, port));
        }
        Ok(StaticIPLookup {
            routes,
            table: OnceCell::new(),
            config_fnv: fnv64(config),
            class,
            no_route: 0,
            table_adoptions: 0,
        })
    }

    /// The live table, built from the parsed routes on first use (unless
    /// a hot swap already installed a carried one).
    fn table(&self) -> &MultibitTrie<(Option<u32>, usize)> {
        self.table.get_or_init(|| {
            let mut t = MultibitTrie::new();
            for &(addr, plen, gw, port) in &self.routes {
                t.insert(addr, plen, (gw, port));
            }
            t
        })
    }

    /// Looks up an address, returning `(next_hop_annotation, output port)`.
    pub fn route(&self, dst: u32) -> Option<(u32, usize)> {
        self.table()
            .lookup(dst)
            .map(|&(gw, port)| (gw.unwrap_or(dst), port))
    }

    /// Like [`StaticIPLookup::route`], also reporting the number of
    /// interior stride nodes the lookup visited (for the cost model).
    pub fn route_steps(&self, dst: u32) -> (Option<(u32, usize)>, usize) {
        let (v, steps) = self.table().lookup_steps(dst);
        (v.map(|&(gw, port)| (gw.unwrap_or(dst), port)), steps)
    }

    /// Incrementally adds (or updates) one route in the live table.
    pub fn insert_route(&mut self, addr: u32, plen: u8, gw: Option<u32>, port: usize) {
        self.table();
        self.table
            .get_mut()
            .expect("table just initialized")
            .insert(addr, plen, (gw, port));
    }

    /// Incrementally removes one exact prefix from the live table,
    /// returning true if it was present.
    pub fn remove_route(&mut self, addr: u32, plen: u8) -> bool {
        self.table();
        self.table
            .get_mut()
            .expect("table just initialized")
            .remove(addr, plen)
            .is_some()
    }

    /// Number of distinct prefixes in the live table.
    pub fn route_count(&self) -> usize {
        self.table().len()
    }

    /// How many times this element (across its hot-swap lineage) adopted
    /// a predecessor's table instead of rebuilding.
    pub fn table_adoptions(&self) -> u64 {
        self.table_adoptions
    }
}

impl Element for StaticIPLookup {
    fn class_name(&self) -> &str {
        self.class
    }
    fn push(&mut self, _port: usize, mut p: Packet, out: &mut Emitter) {
        let dst = p.anno.dst_ip.unwrap_or_else(|| {
            if p.len() >= ipv4::HLEN {
                ipv4::dst(p.data())
            } else {
                0
            }
        });
        match self.route(dst) {
            Some((next_hop, port)) => {
                p.anno.dst_ip = Some(next_hop);
                out.emit(port, p);
            }
            None => {
                self.no_route += 1;
            }
        }
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        // One trie lookup per packet, branch-sorted per next hop: flows
        // toward the same interface stay a single batch downstream.
        for mut p in batch.drain() {
            let dst = p.anno.dst_ip.unwrap_or_else(|| {
                if p.len() >= ipv4::HLEN {
                    ipv4::dst(p.data())
                } else {
                    0
                }
            });
            match self.route(dst) {
                Some((next_hop, port)) => {
                    p.anno.dst_ip = Some(next_hop);
                    out.emit(port, p);
                }
                None => {
                    self.no_route += 1;
                    p.recycle();
                }
            }
        }
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "no_route" => Some(self.no_route),
            "table_adoptions" => Some(self.table_adoptions),
            _ => None,
        }
    }
    fn take_state(&mut self) -> Option<ElementState> {
        let mut state = ElementState::new(self.class)
            .counter("no_route", self.no_route)
            .counter("table_adoptions", self.table_adoptions);
        // Move the live table out whole; never rebuilt on the far side
        // if the successor's routes are identical.
        if let Some(table) = self.table.take() {
            state = state.with_payload(CarriedTable {
                config_fnv: self.config_fnv,
                table,
            });
        }
        Some(state)
    }
    fn restore_state(&mut self, mut state: ElementState) {
        self.no_route += state.get("no_route");
        let mut adoptions = state.get("table_adoptions");
        if let Some(carried) = state.take_payload::<CarriedTable>() {
            // Adopt only when built from the same configuration and our
            // own lazy build has not run yet — otherwise the new
            // configuration wins and the carried table is dropped.
            if carried.config_fnv == self.config_fnv && self.table.get().is_none() {
                let _ = self.table.set(carried.table);
                adoptions += 1;
            }
        }
        self.table_adoptions = adoptions;
        state.recycle_packets();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::build_udp_packet;
    use crate::headers::ether;

    fn ctx() -> CreateCtx {
        CreateCtx::new()
    }

    fn ip_packet(dst: u32, ttl: u8) -> Packet {
        let mut p = build_udp_packet([1; 6], [2; 6], 0x0A000001, dst, 1, 2, 18, ttl);
        p.pull(ether::HLEN);
        p
    }

    fn push_one(e: &mut dyn Element, p: Packet) -> Vec<(usize, Packet)> {
        let mut out = Emitter::new();
        e.push(0, p, &mut out);
        out.drain().collect()
    }

    #[test]
    fn checkipheader_accepts_valid() {
        let mut c = CheckIPHeader::from_config("", &mut ctx()).unwrap();
        let outs = push_one(&mut c, ip_packet(0x0A000002, 64));
        assert_eq!(outs[0].0, 0);
        assert_eq!(c.stat("bad"), Some(0));
    }

    #[test]
    fn checkipheader_rejects_corruption() {
        let mut c = CheckIPHeader::from_config("", &mut ctx()).unwrap();
        // Bad checksum.
        let mut p = ip_packet(0x0A000002, 64);
        p.data_mut()[16] ^= 0xFF;
        assert_eq!(push_one(&mut c, p)[0].0, 1);
        // Bad version.
        let mut p = ip_packet(0x0A000002, 64);
        p.data_mut()[0] = 0x65;
        assert_eq!(push_one(&mut c, p)[0].0, 1);
        // Truncated.
        let p = Packet::from_data(&[0x45, 0, 0, 5]);
        assert_eq!(push_one(&mut c, p)[0].0, 1);
        // Total length beyond packet.
        let mut p = ip_packet(0x0A000002, 64);
        p.data_mut()[2] = 0xFF;
        assert_eq!(push_one(&mut c, p)[0].0, 1);
        assert_eq!(c.stat("bad"), Some(4));
    }

    #[test]
    fn getipaddress_sets_annotation() {
        let mut g = GetIPAddress::from_config("16", &mut ctx()).unwrap();
        let p = g.simple_action(ip_packet(0x0A020304, 64)).unwrap();
        assert_eq!(p.anno.dst_ip, Some(0x0A020304));
    }

    #[test]
    fn dropbroadcasts() {
        let mut d = DropBroadcasts::from_config("", &mut ctx()).unwrap();
        let mut p = ip_packet(1, 64);
        p.anno.link_broadcast = true;
        assert!(d.simple_action(p).is_none());
        assert!(d.simple_action(ip_packet(1, 64)).is_some());
        assert_eq!(d.stat("drops"), Some(1));
    }

    #[test]
    fn decipttl_decrements_and_expires() {
        let mut d = DecIPTTL::from_config("", &mut ctx()).unwrap();
        let outs = push_one(&mut d, ip_packet(1, 64));
        assert_eq!(outs[0].0, 0);
        assert_eq!(ipv4::ttl(outs[0].1.data()), 63);
        assert!(ipv4::checksum_ok(outs[0].1.data()));
        let outs = push_one(&mut d, ip_packet(1, 1));
        assert_eq!(outs[0].0, 1);
        assert_eq!(d.stat("expired"), Some(1));
    }

    #[test]
    fn fixipsrc_honors_annotation() {
        let mut f = FixIPSrc::from_config("10.0.0.254", &mut ctx()).unwrap();
        let mut p = ip_packet(1, 64);
        p.anno.fix_ip_src = true;
        let q = f.simple_action(p).unwrap();
        assert_eq!(ipv4::src(q.data()), 0x0A0000FE);
        assert!(ipv4::checksum_ok(q.data()));
        assert!(!q.anno.fix_ip_src);
        // Without the flag: untouched.
        let q2 = f.simple_action(ip_packet(1, 64)).unwrap();
        assert_eq!(ipv4::src(q2.data()), 0x0A000001);
    }

    #[test]
    fn ipgwoptions_passes_optionless_and_flags_bad() {
        let mut g = IPGWOptions::from_config("", &mut ctx()).unwrap();
        assert_eq!(push_one(&mut g, ip_packet(1, 64))[0].0, 0);
        // Craft hl=6 with a malformed option (length 0).
        let mut p = Packet::new(24);
        {
            let d = p.data_mut();
            d[0] = 0x46;
            d[2..4].copy_from_slice(&24u16.to_be_bytes());
            d[20] = 7; // some option type
            d[21] = 0; // invalid length
            ipv4::set_checksum(d);
        }
        assert_eq!(push_one(&mut g, p)[0].0, 1);
        assert_eq!(g.stat("bad"), Some(1));
    }

    #[test]
    fn fragmenter_passes_small_and_splits_large() {
        let mut f = IPFragmenter::from_config("576", &mut ctx()).unwrap();
        assert_eq!(push_one(&mut f, ip_packet(1, 64)).len(), 1);

        // A 1200-byte packet with MTU 576 → 3 fragments.
        let mut big = Packet::new(1200);
        {
            let d = big.data_mut();
            d[0] = 0x45;
            d[2..4].copy_from_slice(&1200u16.to_be_bytes());
            d[8] = 64;
            d[9] = 17;
            for (i, b) in d.iter_mut().enumerate().take(1200).skip(20) {
                *b = (i % 251) as u8;
            }
            ipv4::set_checksum(d);
        }
        let frags = push_one(&mut f, big.clone());
        assert_eq!(frags.len(), 3);
        // Each fragment valid and ≤ MTU; offsets contiguous; payload
        // reassembles to the original.
        let mut reassembled = vec![0u8; 1180];
        let mut mf_count = 0;
        for (port, frag) in &frags {
            assert_eq!(*port, 0);
            let fd = frag.data();
            assert!(fd.len() <= 576);
            assert!(ipv4::checksum_ok(fd));
            let field = ipv4::frag_field(fd);
            if field & ipv4::FLAG_MF != 0 {
                mf_count += 1;
            }
            let off = ((field & 0x1FFF) as usize) * 8;
            let payload = &fd[20..];
            reassembled[off..off + payload.len()].copy_from_slice(payload);
        }
        assert_eq!(mf_count, 2, "all but the last fragment set MF");
        assert_eq!(&reassembled[..], &big.data()[20..1200]);
    }

    #[test]
    fn fragmenter_df_goes_to_error_output() {
        let mut f = IPFragmenter::from_config("576", &mut ctx()).unwrap();
        let mut big = Packet::new(1200);
        {
            let d = big.data_mut();
            d[0] = 0x45;
            d[2..4].copy_from_slice(&1200u16.to_be_bytes());
            d[6..8].copy_from_slice(&ipv4::FLAG_DF.to_be_bytes());
            ipv4::set_checksum(d);
        }
        let outs = push_one(&mut f, big);
        assert_eq!(outs[0].0, 1);
        assert_eq!(f.stat("must_frag"), Some(1));
    }

    #[test]
    fn icmperror_builds_addressed_error() {
        let mut e = ICMPError::from_config("10.0.0.254, 11, 0", &mut ctx()).unwrap();
        let bad = ip_packet(0x0A020304, 1);
        let err = e.simple_action(bad.clone()).unwrap();
        let d = err.data();
        assert_eq!(ipv4::protocol(d), ipv4::PROTO_ICMP);
        assert_eq!(ipv4::dst(d), 0x0A000001); // original source
        assert!(ipv4::checksum_ok(d));
        assert_eq!(d[20], 11); // type
        assert_eq!(d[21], 0); // code
                              // Quoted original header.
        assert_eq!(&d[28..48], &bad.data()[..20]);
        assert_eq!(err.anno.dst_ip, Some(0x0A000001));
        assert!(err.anno.fix_ip_src);
    }

    #[test]
    fn static_ip_lookup_routes_and_sets_annotation() {
        let mut r = StaticIPLookup::from_config(
            "10.0.1.0/24 0, 10.0.2.0/24 1, 0.0.0.0/0 10.0.2.9 2",
            &mut ctx(),
        )
        .unwrap();
        let mut p = ip_packet(0x0A000102, 64);
        p.anno.dst_ip = Some(0x0A000102);
        let outs = push_one(&mut r, p);
        assert_eq!(outs[0].0, 0);
        assert_eq!(outs[0].1.anno.dst_ip, Some(0x0A000102)); // direct: unchanged

        let mut p = ip_packet(0x01020304, 64);
        p.anno.dst_ip = Some(0x01020304);
        let outs = push_one(&mut r, p);
        assert_eq!(outs[0].0, 2);
        assert_eq!(outs[0].1.anno.dst_ip, Some(0x0A000209)); // via gateway
    }

    #[test]
    fn static_ip_lookup_carries_table_across_swap() {
        let config = "10.0.1.0/24 0, 10.0.2.0/24 1, 0.0.0.0/0 2";
        let mut old = StaticIPLookup::from_config(config, &mut ctx()).unwrap();
        assert_eq!(old.route(0x0A000105), Some((0x0A000105, 0)));
        old.no_route += 3;
        let state = old.take_state().unwrap();

        // Same configuration: the live table is adopted, not rebuilt.
        let mut new = StaticIPLookup::from_config(config, &mut ctx()).unwrap();
        new.restore_state(state);
        assert_eq!(new.stat("table_adoptions"), Some(1));
        assert_eq!(new.stat("no_route"), Some(3));
        assert_eq!(new.route(0x0A000205), Some((0x0A000205, 1)));

        // Different configuration: carried table rejected, own routes win.
        let state = new.take_state().unwrap();
        let mut other = StaticIPLookup::from_config("10.9.0.0/16 1", &mut ctx()).unwrap();
        other.restore_state(state);
        assert_eq!(other.stat("table_adoptions"), Some(1)); // lineage count, no new adoption
        assert_eq!(other.route(0x0A000105), None);
        assert_eq!(other.route(0x0A090001), Some((0x0A090001, 1)));
    }

    #[test]
    fn static_ip_lookup_incremental_updates() {
        let mut r = StaticIPLookup::from_config("10.0.0.0/8 0", &mut ctx()).unwrap();
        assert_eq!(r.route_count(), 1);
        r.insert_route(0x0A010000, 16, None, 1);
        assert_eq!(r.route(0x0A010203), Some((0x0A010203, 1)));
        assert_eq!(r.route_count(), 2);
        assert!(r.remove_route(0x0A010000, 16));
        assert!(!r.remove_route(0x0A010000, 16));
        assert_eq!(r.route(0x0A010203), Some((0x0A010203, 0)));
    }

    #[test]
    fn static_ip_lookup_without_route_drops() {
        let mut r = StaticIPLookup::from_config("10.0.1.0/24 0", &mut ctx()).unwrap();
        let mut p = ip_packet(0x01020304, 64);
        p.anno.dst_ip = Some(0x01020304);
        assert!(push_one(&mut r, p).is_empty());
        assert_eq!(r.stat("no_route"), Some(1));
    }

    #[test]
    fn config_validation() {
        assert!(GetIPAddress::from_config("", &mut ctx()).is_err());
        assert!(SetIPAddress::from_config("1.2.3", &mut ctx()).is_err());
        assert!(IPFragmenter::from_config("10", &mut ctx()).is_err());
        assert!(ICMPError::from_config("10.0.0.1, 11", &mut ctx()).is_err());
        assert!(StaticIPLookup::from_config("", &mut ctx()).is_err());
        assert!(StaticIPLookup::from_config("10.0.0.0/40 1", &mut ctx()).is_err());
        assert!(StaticIPLookup::from_config("10.0.0.0/8 1 2 3", &mut ctx()).is_err());
    }
}
