//! Basic plumbing elements: `Discard`, `Counter`, `Tee`, `Paint`,
//! `PaintTee`, `CheckPaint`, `Strip`, `Unstrip`, `Align`, `Switch`,
//! schedulers, `Idle`, `Null`, and `InfiniteSource`.

use crate::batch::{BatchEmitter, PacketBatch};
use crate::element::{
    args, config_err, int_arg, CreateCtx, Element, Emitter, PullContext, TaskContext,
};
use crate::packet::Packet;
use crate::swap::ElementState;
use click_core::error::Result;

/// `Discard`: consumes every packet.
#[derive(Debug, Default)]
pub struct Discard {
    count: u64,
}

impl Discard {
    /// Creates from a configuration string (which must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Discard> {
        if !config.trim().is_empty() {
            return Err(config_err("Discard", "takes no configuration"));
        }
        Ok(Discard::default())
    }
}

impl Element for Discard {
    fn class_name(&self) -> &str {
        "Discard"
    }
    fn simple_action(&mut self, _p: Packet) -> Option<Packet> {
        self.count += 1;
        None
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        // Terminal drop site: return every buffer to the packet pool.
        self.count += batch.len() as u64;
        batch.recycle_packets();
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "count").then_some(self.count)
    }
    fn take_state(&mut self) -> Option<ElementState> {
        Some(ElementState::new("Discard").counter("count", self.count))
    }
    fn restore_state(&mut self, state: ElementState) {
        self.count += state.get("count");
        state.recycle_packets();
    }
}

/// `Counter`: counts passing packets and bytes.
#[derive(Debug, Default)]
pub struct Counter {
    count: u64,
    byte_count: u64,
}

impl Counter {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Counter> {
        if !config.trim().is_empty() {
            return Err(config_err("Counter", "takes no configuration"));
        }
        Ok(Counter::default())
    }
}

impl Element for Counter {
    fn class_name(&self) -> &str {
        "Counter"
    }
    fn simple_action(&mut self, p: Packet) -> Option<Packet> {
        self.count += 1;
        self.byte_count += p.len() as u64;
        Some(p)
    }
    fn push_batch(&mut self, _port: usize, batch: PacketBatch, out: &mut BatchEmitter) {
        self.count += batch.len() as u64;
        self.byte_count += batch.iter().map(|p| p.len() as u64).sum::<u64>();
        out.emit_batch(0, batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "count" => Some(self.count),
            "byte_count" => Some(self.byte_count),
            _ => None,
        }
    }
    fn take_state(&mut self) -> Option<ElementState> {
        Some(
            ElementState::new("Counter")
                .counter("count", self.count)
                .counter("byte_count", self.byte_count),
        )
    }
    fn restore_state(&mut self, state: ElementState) {
        self.count += state.get("count");
        self.byte_count += state.get("byte_count");
        state.recycle_packets();
    }
}

/// `Tee(n)`: duplicates each input packet to `n` outputs.
#[derive(Debug)]
pub struct Tee {
    n: usize,
}

impl Tee {
    /// Creates from a configuration string: the output count (default 2).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Tee> {
        let a = args(config);
        let n = match a.len() {
            0 => 2,
            1 => int_arg("Tee", "output count", &a[0])?,
            _ => return Err(config_err("Tee", "takes at most one argument")),
        };
        if n == 0 {
            return Err(config_err("Tee", "output count must be positive"));
        }
        Ok(Tee { n })
    }
}

impl Element for Tee {
    fn class_name(&self) -> &str {
        "Tee"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        for port in 1..self.n {
            out.emit(port, p.clone());
        }
        out.emit(0, p);
    }
}

/// `Paint(color)`: sets the paint annotation.
#[derive(Debug)]
pub struct Paint {
    color: u8,
}

impl Paint {
    /// Creates from a configuration string: the color.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Paint> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err("Paint", "expects exactly one color argument"));
        }
        Ok(Paint {
            color: int_arg("Paint", "color", &a[0])?,
        })
    }
    /// The configured color.
    pub fn color(&self) -> u8 {
        self.color
    }
}

impl Element for Paint {
    fn class_name(&self) -> &str {
        "Paint"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        p.anno.paint = self.color;
        Some(p)
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        for p in batch.iter_mut() {
            p.anno.paint = self.color;
        }
        out.emit_batch(0, batch);
    }
}

/// `PaintTee(color)`: forwards every packet on output 0; packets whose
/// paint matches also send a copy to output 1 (the ICMP-redirect trigger
/// in the IP router).
#[derive(Debug)]
pub struct PaintTee {
    color: u8,
    matched: u64,
}

impl PaintTee {
    /// Creates from a configuration string: the color to test.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<PaintTee> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err("PaintTee", "expects exactly one color argument"));
        }
        Ok(PaintTee {
            color: int_arg("PaintTee", "color", &a[0])?,
            matched: 0,
        })
    }
}

impl Element for PaintTee {
    fn class_name(&self) -> &str {
        "PaintTee"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        if p.anno.paint == self.color {
            self.matched += 1;
            out.emit(1, p.clone());
        }
        out.emit(0, p);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "matched").then_some(self.matched)
    }
}

/// `CheckPaint(color)`: routes matching-paint packets to output 1,
/// everything else to output 0.
#[derive(Debug)]
pub struct CheckPaint {
    color: u8,
}

impl CheckPaint {
    /// Creates from a configuration string: the color to test.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<CheckPaint> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "CheckPaint",
                "expects exactly one color argument",
            ));
        }
        Ok(CheckPaint {
            color: int_arg("CheckPaint", "color", &a[0])?,
        })
    }
}

impl Element for CheckPaint {
    fn class_name(&self) -> &str {
        "CheckPaint"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        let port = usize::from(p.anno.paint == self.color);
        out.emit(port, p);
    }
}

/// `Strip(n)`: removes `n` bytes from the front of each packet.
#[derive(Debug)]
pub struct Strip {
    n: usize,
}

impl Strip {
    /// Creates from a configuration string: the byte count.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Strip> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err("Strip", "expects exactly one length argument"));
        }
        Ok(Strip {
            n: int_arg("Strip", "length", &a[0])?,
        })
    }
    /// The configured strip length.
    pub fn amount(&self) -> usize {
        self.n
    }
}

impl Element for Strip {
    fn class_name(&self) -> &str {
        "Strip"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        p.pull(self.n);
        Some(p)
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        for p in batch.iter_mut() {
            p.pull(self.n);
        }
        out.emit_batch(0, batch);
    }
}

/// `Unstrip(n)`: restores `n` bytes at the front.
#[derive(Debug)]
pub struct Unstrip {
    n: usize,
}

impl Unstrip {
    /// Creates from a configuration string: the byte count.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Unstrip> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err("Unstrip", "expects exactly one length argument"));
        }
        Ok(Unstrip {
            n: int_arg("Unstrip", "length", &a[0])?,
        })
    }
}

impl Element for Unstrip {
    fn class_name(&self) -> &str {
        "Unstrip"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        p.push(self.n);
        Some(p)
    }
}

/// `Align(modulus, offset)`: copies packet data to the requested
/// alignment (inserted by `click-align`).
#[derive(Debug)]
pub struct Align {
    modulus: usize,
    offset: usize,
    realigned: u64,
}

impl Align {
    /// Creates from a configuration string: `modulus, offset`.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Align> {
        let a = args(config);
        if a.len() != 2 {
            return Err(config_err("Align", "expects `modulus, offset`"));
        }
        let modulus: usize = int_arg("Align", "modulus", &a[0])?;
        let offset: usize = int_arg("Align", "offset", &a[1])?;
        if !modulus.is_power_of_two() || offset >= modulus {
            return Err(config_err(
                "Align",
                "modulus must be a power of two greater than offset",
            ));
        }
        Ok(Align {
            modulus,
            offset,
            realigned: 0,
        })
    }
}

impl Element for Align {
    fn class_name(&self) -> &str {
        "Align"
    }
    fn simple_action(&mut self, mut p: Packet) -> Option<Packet> {
        if p.alignment_offset() != self.offset % self.modulus.max(1)
            || p.headroom() % self.modulus != self.offset
        {
            self.realigned += 1;
        }
        p.align_to(self.modulus, self.offset);
        Some(p)
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "realigned").then_some(self.realigned)
    }
}

/// `AlignmentInfo(...)`: information element, never sees packets.
#[derive(Debug)]
pub struct AlignmentInfo;

impl AlignmentInfo {
    /// Creates from any configuration string (contents are advisory).
    pub fn from_config(_config: &str, _ctx: &mut CreateCtx) -> Result<AlignmentInfo> {
        Ok(AlignmentInfo)
    }
}

impl Element for AlignmentInfo {
    fn class_name(&self) -> &str {
        "AlignmentInfo"
    }
}

/// `Switch(k)` / `StaticSwitch(k)`: sends every packet to output `k`, or
/// drops all packets if `k` is negative.
#[derive(Debug)]
pub struct Switch {
    k: i64,
}

impl Switch {
    /// Creates from a configuration string: the output index (or -1).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Switch> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err("Switch", "expects exactly one output argument"));
        }
        Ok(Switch {
            k: int_arg("Switch", "output", &a[0])?,
        })
    }
    /// The configured output, or `None` for "drop everything".
    pub fn target(&self) -> Option<usize> {
        usize::try_from(self.k).ok()
    }
}

impl Element for Switch {
    fn class_name(&self) -> &str {
        "Switch"
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        if let Some(k) = self.target() {
            out.emit(k, p);
        }
    }
}

/// `StaticPullSwitch(k)`: pulls from input `k` only.
#[derive(Debug)]
pub struct StaticPullSwitch {
    k: usize,
}

impl StaticPullSwitch {
    /// Creates from a configuration string: the input index.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<StaticPullSwitch> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "StaticPullSwitch",
                "expects exactly one input argument",
            ));
        }
        Ok(StaticPullSwitch {
            k: int_arg("StaticPullSwitch", "input", &a[0])?,
        })
    }
}

impl Element for StaticPullSwitch {
    fn class_name(&self) -> &str {
        "StaticPullSwitch"
    }
    fn pull(&mut self, _port: usize, ctx: &mut dyn PullContext) -> Option<Packet> {
        ctx.pull(self.k)
    }
}

/// `RoundRobinSched`: pulls from its inputs in round-robin order.
#[derive(Debug, Default)]
pub struct RoundRobinSched {
    next: usize,
}

impl RoundRobinSched {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<RoundRobinSched> {
        if !config.trim().is_empty() {
            return Err(config_err("RoundRobinSched", "takes no configuration"));
        }
        Ok(RoundRobinSched::default())
    }
}

impl Element for RoundRobinSched {
    fn class_name(&self) -> &str {
        "RoundRobinSched"
    }
    fn pull(&mut self, _port: usize, ctx: &mut dyn PullContext) -> Option<Packet> {
        let n = ctx.ninputs();
        for i in 0..n {
            let port = (self.next + i) % n;
            if let Some(p) = ctx.pull(port) {
                self.next = (port + 1) % n;
                return Some(p);
            }
        }
        None
    }
}

/// `PrioSched`: pulls from the lowest-numbered ready input.
#[derive(Debug, Default)]
pub struct PrioSched;

impl PrioSched {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<PrioSched> {
        if !config.trim().is_empty() {
            return Err(config_err("PrioSched", "takes no configuration"));
        }
        Ok(PrioSched)
    }
}

impl Element for PrioSched {
    fn class_name(&self) -> &str {
        "PrioSched"
    }
    fn pull(&mut self, _port: usize, ctx: &mut dyn PullContext) -> Option<Packet> {
        for port in 0..ctx.ninputs() {
            if let Some(p) = ctx.pull(port) {
                return Some(p);
            }
        }
        None
    }
}

/// `Idle`: never produces packets; consumes and drops anything pushed in.
#[derive(Debug, Default)]
pub struct Idle;

impl Idle {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Idle> {
        if !config.trim().is_empty() {
            return Err(config_err("Idle", "takes no configuration"));
        }
        Ok(Idle)
    }
}

impl Element for Idle {
    fn class_name(&self) -> &str {
        "Idle"
    }
    fn simple_action(&mut self, _p: Packet) -> Option<Packet> {
        None
    }
    fn pull(&mut self, _port: usize, _ctx: &mut dyn PullContext) -> Option<Packet> {
        None
    }
}

/// `Null`: forwards packets unchanged.
#[derive(Debug, Default)]
pub struct Null;

impl Null {
    /// Creates from a configuration string (must be empty).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Null> {
        if !config.trim().is_empty() {
            return Err(config_err("Null", "takes no configuration"));
        }
        Ok(Null)
    }
}

impl Element for Null {
    fn class_name(&self) -> &str {
        "Null"
    }
}

/// `InfiniteSource(limit [, length])`: a task that pushes up to `limit`
/// synthetic packets (per-`run_task` burst of 8).
#[derive(Debug)]
pub struct InfiniteSource {
    limit: u64,
    emitted: u64,
    length: usize,
}

impl InfiniteSource {
    /// Creates from a configuration string: `limit [, packet length]`.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<InfiniteSource> {
        let a = args(config);
        let limit = match a.first() {
            Some(s) => int_arg("InfiniteSource", "limit", s)?,
            None => u64::MAX,
        };
        let length = match a.get(1) {
            Some(s) => int_arg("InfiniteSource", "length", s)?,
            None => 60,
        };
        if a.len() > 2 {
            return Err(config_err("InfiniteSource", "takes at most two arguments"));
        }
        Ok(InfiniteSource {
            limit,
            emitted: 0,
            length,
        })
    }
}

impl Element for InfiniteSource {
    fn class_name(&self) -> &str {
        "InfiniteSource"
    }
    fn is_task(&self) -> bool {
        true
    }
    fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize {
        let mut moved = 0;
        while moved < 8 && self.emitted < self.limit {
            self.emitted += 1;
            moved += 1;
            ctx.emit(0, Packet::new(self.length));
        }
        moved
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "count").then_some(self.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CreateCtx {
        CreateCtx::new()
    }

    fn push_one(e: &mut dyn Element, p: Packet) -> Vec<(usize, Packet)> {
        let mut out = Emitter::new();
        e.push(0, p, &mut out);
        out.drain().collect()
    }

    #[test]
    fn discard_counts() {
        let mut d = Discard::from_config("", &mut ctx()).unwrap();
        assert!(push_one(&mut d, Packet::new(10)).is_empty());
        assert_eq!(d.stat("count"), Some(1));
        assert!(Discard::from_config("x", &mut ctx()).is_err());
    }

    #[test]
    fn counter_counts_packets_and_bytes() {
        let mut c = Counter::from_config("", &mut ctx()).unwrap();
        push_one(&mut c, Packet::new(10));
        push_one(&mut c, Packet::new(20));
        assert_eq!(c.stat("count"), Some(2));
        assert_eq!(c.stat("byte_count"), Some(30));
        assert_eq!(c.stat("bogus"), None);
    }

    #[test]
    fn tee_duplicates() {
        let mut t = Tee::from_config("3", &mut ctx()).unwrap();
        let outs = push_one(&mut t, Packet::from_data(&[7]));
        let mut ports: Vec<usize> = outs.iter().map(|(p, _)| *p).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![0, 1, 2]);
        assert!(outs.iter().all(|(_, p)| p.data() == [7]));
        assert!(Tee::from_config("0", &mut ctx()).is_err());
    }

    #[test]
    fn paint_and_checkpaint() {
        let mut paint = Paint::from_config("3", &mut ctx()).unwrap();
        let p = push_one(&mut paint, Packet::new(4)).remove(0).1;
        assert_eq!(p.anno.paint, 3);

        let mut cp = CheckPaint::from_config("3", &mut ctx()).unwrap();
        let hit = push_one(&mut cp, p.clone());
        assert_eq!(hit[0].0, 1);
        let mut other = p;
        other.anno.paint = 1;
        let miss = push_one(&mut cp, other);
        assert_eq!(miss[0].0, 0);
    }

    #[test]
    fn painttee_copies_on_match() {
        let mut pt = PaintTee::from_config("2", &mut ctx()).unwrap();
        let mut p = Packet::new(4);
        p.anno.paint = 2;
        let outs = push_one(&mut pt, p);
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().any(|(port, _)| *port == 0));
        assert!(outs.iter().any(|(port, _)| *port == 1));
        assert_eq!(pt.stat("matched"), Some(1));

        let mut q = Packet::new(4);
        q.anno.paint = 9;
        assert_eq!(push_one(&mut pt, q).len(), 1);
    }

    #[test]
    fn strip_and_unstrip() {
        let mut s = Strip::from_config("14", &mut ctx()).unwrap();
        let mut u = Unstrip::from_config("14", &mut ctx()).unwrap();
        let p = Packet::from_data(&(0..20).collect::<Vec<u8>>());
        let stripped = push_one(&mut s, p).remove(0).1;
        assert_eq!(stripped.len(), 6);
        assert_eq!(stripped.data()[0], 14);
        let restored = push_one(&mut u, stripped).remove(0).1;
        assert_eq!(restored.len(), 20);
        assert_eq!(restored.data()[0], 0);
    }

    #[test]
    fn align_element() {
        let mut a = Align::from_config("4, 0", &mut ctx()).unwrap();
        let p = Packet::new(20); // default offset 2
        let aligned = push_one(&mut a, p).remove(0).1;
        assert_eq!(aligned.alignment_offset(), 0);
        assert_eq!(a.stat("realigned"), Some(1));
        assert!(Align::from_config("3, 0", &mut ctx()).is_err());
        assert!(Align::from_config("4, 4", &mut ctx()).is_err());
    }

    #[test]
    fn switch_routes_or_drops() {
        let mut s = Switch::from_config("1", &mut ctx()).unwrap();
        assert_eq!(push_one(&mut s, Packet::new(1))[0].0, 1);
        let mut drop = Switch::from_config("-1", &mut ctx()).unwrap();
        assert!(push_one(&mut drop, Packet::new(1)).is_empty());
    }

    #[test]
    fn infinite_source_respects_limit() {
        struct Sink(Vec<Packet>);
        impl TaskContext for Sink {
            fn pull(&mut self, _p: usize) -> Option<Packet> {
                None
            }
            fn emit(&mut self, _port: usize, p: Packet) {
                self.0.push(p);
            }
            fn rx_pop(&mut self, _d: crate::element::DeviceId) -> Option<Packet> {
                None
            }
            fn tx_push(&mut self, _d: crate::element::DeviceId, _p: Packet) {}
        }
        let mut src = InfiniteSource::from_config("10, 60", &mut ctx()).unwrap();
        assert!(src.is_task());
        let mut sink = Sink(Vec::new());
        let mut total = 0;
        loop {
            let n = src.run_task(&mut sink);
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, 10);
        assert_eq!(sink.0.len(), 10);
        assert_eq!(sink.0[0].len(), 60);
    }

    #[test]
    fn idle_and_null() {
        let mut i = Idle::from_config("", &mut ctx()).unwrap();
        assert!(push_one(&mut i, Packet::new(1)).is_empty());
        let mut n = Null::from_config("", &mut ctx()).unwrap();
        assert_eq!(push_one(&mut n, Packet::new(1)).len(), 1);
    }
}
