//! `FaultInject`: deterministic chaos injection for robustness testing.
//!
//! Production packet processors are exercised with fault injection long
//! before a real fault finds them. `FaultInject` sits on a push path and
//! misbehaves on purpose — dropping, corrupting, duplicating, delaying,
//! or `panic!`ing — under a seeded LCG so every run is reproducible:
//!
//! ```text
//! FromDevice(in0) -> FaultInject(DROP 0.01, CORRUPT 0.001, SEED 7) -> ...
//! ```
//!
//! Keyword clauses (all optional, any order, comma-separated):
//!
//! * `DROP p` — drop a packet with probability `p` (buffer recycled).
//! * `CORRUPT p` — flip one LCG-chosen byte with probability `p`.
//! * `DUP p` — emit a duplicate ahead of the packet with probability `p`.
//! * `DELAY k` — hold packets in a `k`-deep FIFO delay line
//!   (order-preserving; the line drains only as later packets arrive).
//! * `PANIC p` — `panic!` with probability `p`. In the sharded runtime
//!   the panic is confined to the worker shard and exercises the
//!   supervisor ([`crate::parallel`]); in a serial router it unwinds to
//!   the caller.
//! * `WEDGE p` — park the calling thread forever with probability `p`
//!   (the element sleeps in a loop and never returns). This simulates a
//!   livelocked element: the shard stops consuming, its ring fills, and
//!   the runtime's backpressure timeout
//!   ([`crate::parallel::ParallelRouter::try_flush`]) is the only way
//!   out. Only for chaos tests — never configure it in a serial router.
//! * `SEED s` — LCG seed (default 1); identical seeds give identical
//!   fault sequences.
//! * `SHARD k` — only act inside worker shard `k`
//!   ([`crate::element::CreateCtx::shard`]); other shards' clones pass
//!   packets through untouched. Default: act in every shard.
//! * `AFTER n` — pass the first `n` packets through unharmed before
//!   arming the faults (lets a chaos test kill a shard mid-stream at a
//!   deterministic point).

use crate::element::{args, config_err, int_arg, CreateCtx, Element, Emitter};
use crate::packet::Packet;
use crate::swap::ElementState;
use click_core::error::Result;
use std::collections::VecDeque;

/// Probability scale: thresholds live in a 32-bit fixed-point space so a
/// fault fires when a fresh 32-bit LCG draw falls below the threshold.
const PROB_ONE: u64 = 1 << 32;

/// The chaos-injection element. See the module docs for the clause
/// language.
#[derive(Debug)]
pub struct FaultInject {
    drop_t: u64,
    corrupt_t: u64,
    dup_t: u64,
    panic_t: u64,
    wedge_t: u64,
    delay: usize,
    state: u64,
    /// False when a `SHARD` clause names a different shard than the one
    /// this clone was built in: the element becomes a transparent wire.
    active: bool,
    after: u64,
    seen: u64,
    line: VecDeque<Packet>,
    dropped: u64,
    corrupted: u64,
    duplicated: u64,
}

/// Parses a probability clause value into the fixed-point threshold.
fn prob_arg(what: &str, s: &str) -> Result<u64> {
    let p: f64 = s
        .trim()
        .parse()
        .map_err(|_| config_err("FaultInject", format!("bad {what} probability {s:?}")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(config_err(
            "FaultInject",
            format!("{what} probability {p} outside [0, 1]"),
        ));
    }
    Ok((p * PROB_ONE as f64) as u64)
}

impl FaultInject {
    /// Creates from a configuration string of keyword clauses.
    pub fn from_config(config: &str, ctx: &mut CreateCtx) -> Result<FaultInject> {
        let mut e = FaultInject {
            drop_t: 0,
            corrupt_t: 0,
            dup_t: 0,
            panic_t: 0,
            wedge_t: 0,
            delay: 0,
            state: 1,
            active: true,
            after: 0,
            seen: 0,
            line: VecDeque::new(),
            dropped: 0,
            corrupted: 0,
            duplicated: 0,
        };
        for clause in args(config) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once(char::is_whitespace)
                .ok_or_else(|| config_err("FaultInject", format!("bare clause {clause:?}")))?;
            match key.to_ascii_uppercase().as_str() {
                "DROP" => e.drop_t = prob_arg("DROP", value)?,
                "CORRUPT" => e.corrupt_t = prob_arg("CORRUPT", value)?,
                "DUP" => e.dup_t = prob_arg("DUP", value)?,
                "PANIC" => e.panic_t = prob_arg("PANIC", value)?,
                "WEDGE" => e.wedge_t = prob_arg("WEDGE", value)?,
                "DELAY" => e.delay = int_arg("FaultInject", "DELAY depth", value)?,
                "SEED" => e.state = int_arg("FaultInject", "SEED", value)?,
                "AFTER" => e.after = int_arg("FaultInject", "AFTER count", value)?,
                "SHARD" => {
                    let shard: usize = int_arg("FaultInject", "SHARD index", value)?;
                    e.active = shard == ctx.shard;
                }
                other => {
                    return Err(config_err(
                        "FaultInject",
                        format!("unknown clause {other:?}"),
                    ))
                }
            }
        }
        Ok(e)
    }

    /// One 32-bit draw from the element's LCG (the repo's standard
    /// multiplier; high bits are the strong ones).
    fn roll(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.state >> 32
    }

    /// Sends `p` through the delay line (or straight out when `DELAY` is
    /// unset / the line is warm).
    fn forward(&mut self, p: Packet, out: &mut Emitter) {
        if self.delay == 0 {
            out.emit(0, p);
            return;
        }
        self.line.push_back(p);
        while self.line.len() > self.delay {
            if let Some(front) = self.line.pop_front() {
                out.emit(0, front);
            }
        }
    }
}

impl Element for FaultInject {
    fn class_name(&self) -> &str {
        "FaultInject"
    }

    fn push(&mut self, _port: usize, mut p: Packet, out: &mut Emitter) {
        if !self.active {
            out.emit(0, p);
            return;
        }
        self.seen += 1;
        if self.seen <= self.after {
            self.forward(p, out);
            return;
        }
        if self.panic_t > 0 && self.roll() < self.panic_t {
            panic!("FaultInject: injected panic (chaos run)");
        }
        if self.wedge_t > 0 && self.roll() < self.wedge_t {
            // Livelock on purpose: never return. The shard stops
            // consuming and the runtime's wedge detection takes over.
            loop {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
        if self.drop_t > 0 && self.roll() < self.drop_t {
            self.dropped += 1;
            p.recycle();
            return;
        }
        if self.corrupt_t > 0 && self.roll() < self.corrupt_t && !p.data().is_empty() {
            let idx = (self.roll() as usize) % p.len();
            p.data_mut()[idx] ^= 0xFF;
            self.corrupted += 1;
        }
        if self.dup_t > 0 && self.roll() < self.dup_t {
            self.duplicated += 1;
            out.emit(0, p.clone());
        }
        self.forward(p, out);
    }

    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "seen" => Some(self.seen),
            "drops" => Some(self.dropped),
            "corrupted" => Some(self.corrupted),
            "duplicated" => Some(self.duplicated),
            "delayed" => Some(self.line.len() as u64),
            _ => None,
        }
    }
    fn take_state(&mut self) -> Option<ElementState> {
        // Arm-state: the fault counters, the arming progress (`seen`
        // gates AFTER clauses), the LCG cursor so the random sequence
        // continues instead of restarting, and the delay line's packets.
        let mut s = ElementState::new("FaultInject")
            .counter("seen", self.seen)
            .counter("lcg", self.state)
            .counter("drops", self.dropped)
            .counter("corrupted", self.corrupted)
            .counter("duplicated", self.duplicated);
        s.packets = self.line.drain(..).collect();
        Some(s)
    }
    fn restore_state(&mut self, state: ElementState) {
        self.seen += state.get("seen");
        self.dropped += state.get("drops");
        self.corrupted += state.get("corrupted");
        self.duplicated += state.get("duplicated");
        if let Some(lcg) = state.find("lcg") {
            self.state = lcg;
        }
        self.line.extend(state.packets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(e: &mut FaultInject, n: usize) -> Vec<Packet> {
        let mut got = Vec::new();
        for i in 0..n {
            let mut out = Emitter::new();
            e.push(0, Packet::from_data(&[i as u8; 8]), &mut out);
            got.extend(out.drain().map(|(_, p)| p));
        }
        got
    }

    #[test]
    fn empty_config_is_a_wire() {
        let mut e = FaultInject::from_config("", &mut CreateCtx::new()).unwrap();
        assert_eq!(push_n(&mut e, 10).len(), 10);
        assert_eq!(e.stat("seen"), Some(10));
        assert_eq!(e.stat("drops"), Some(0));
    }

    #[test]
    fn drop_all_drops_everything() {
        let mut e = FaultInject::from_config("DROP 1, SEED 42", &mut CreateCtx::new()).unwrap();
        assert!(push_n(&mut e, 20).is_empty());
        assert_eq!(e.stat("drops"), Some(20));
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let out1: Vec<usize> = {
            let mut e =
                FaultInject::from_config("DROP 0.5, SEED 7", &mut CreateCtx::new()).unwrap();
            push_n(&mut e, 64).iter().map(|p| p.len()).collect()
        };
        let out2: Vec<usize> = {
            let mut e =
                FaultInject::from_config("DROP 0.5, SEED 7", &mut CreateCtx::new()).unwrap();
            push_n(&mut e, 64).iter().map(|p| p.len()).collect()
        };
        assert_eq!(out1, out2);
        assert!(out1.len() < 64, "p=0.5 must drop something in 64 packets");
        assert!(!out1.is_empty(), "p=0.5 must pass something in 64 packets");
    }

    #[test]
    fn after_holds_fire() {
        let mut e =
            FaultInject::from_config("DROP 1, AFTER 5, SEED 1", &mut CreateCtx::new()).unwrap();
        assert_eq!(push_n(&mut e, 8).len(), 5, "first 5 pass, rest drop");
    }

    #[test]
    fn shard_clause_scopes_faults() {
        let mut other = CreateCtx::for_shard(1);
        let mut e = FaultInject::from_config("DROP 1, SHARD 0", &mut other).unwrap();
        assert_eq!(push_n(&mut e, 4).len(), 4, "wrong shard: transparent");
        let mut mine = CreateCtx::for_shard(0);
        let mut e = FaultInject::from_config("DROP 1, SHARD 0", &mut mine).unwrap();
        assert!(push_n(&mut e, 4).is_empty(), "matching shard: active");
    }

    #[test]
    fn delay_line_preserves_order() {
        let mut e = FaultInject::from_config("DELAY 3", &mut CreateCtx::new()).unwrap();
        let got = push_n(&mut e, 10);
        assert_eq!(got.len(), 7, "3 packets still in the line");
        let firsts: Vec<u8> = got.iter().map(|p| p.data()[0]).collect();
        assert_eq!(firsts, (0u8..7).collect::<Vec<_>>());
        assert_eq!(e.stat("delayed"), Some(3));
    }

    #[test]
    fn dup_duplicates() {
        let mut e = FaultInject::from_config("DUP 1, SEED 3", &mut CreateCtx::new()).unwrap();
        assert_eq!(push_n(&mut e, 5).len(), 10);
        assert_eq!(e.stat("duplicated"), Some(5));
    }

    #[test]
    fn corrupt_flips_one_byte() {
        let mut e = FaultInject::from_config("CORRUPT 1, SEED 9", &mut CreateCtx::new()).unwrap();
        let got = push_n(&mut e, 4);
        assert_eq!(got.len(), 4, "corruption forwards the packet");
        assert_eq!(e.stat("corrupted"), Some(4));
        for p in &got {
            let flipped = p.data().iter().filter(|&&b| b != p.data()[0]).count();
            // Exactly one byte differs from the fill — unless the flip hit
            // byte 0 itself, in which case seven differ.
            assert!(flipped == 1 || flipped == 7, "one byte flipped: {:?}", p);
        }
    }

    #[test]
    #[should_panic(expected = "injected panic")]
    fn panic_clause_panics() {
        let mut e = FaultInject::from_config("PANIC 1", &mut CreateCtx::new()).unwrap();
        push_n(&mut e, 1);
    }

    #[test]
    fn bad_configs_are_rejected() {
        for cfg in [
            "DROP",        // bare clause
            "DROP 1.5",    // probability out of range
            "DROP banana", // not a number
            "FROB 1",      // unknown keyword
            "DELAY -3",    // negative depth
            "PANIC 2, SEED 1",
        ] {
            assert!(
                FaultInject::from_config(cfg, &mut CreateCtx::new()).is_err(),
                "should reject {cfg:?}"
            );
        }
    }
}
