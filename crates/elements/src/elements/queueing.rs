//! Storage elements: `Queue` and `RED`.

use crate::batch::{BatchEmitter, PacketBatch};
use crate::element::{args, config_err, int_arg, CreateCtx, Element, Emitter, PullContext};
use crate::packet::Packet;
use crate::swap::ElementState;
use click_core::error::Result;
use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Default queue capacity, matching Click's 1000-packet default.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1000;

/// `Queue(capacity)`: push in, pull out, dropping when full. The boundary
/// between the push and pull halves of a configuration.
#[derive(Debug)]
pub struct Queue {
    q: VecDeque<Packet>,
    capacity: usize,
    drops: u64,
    highwater: usize,
    depth: Rc<Cell<usize>>,
}

impl Queue {
    /// Creates from a configuration string: optional capacity.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Queue> {
        let a = args(config);
        let capacity = match a.len() {
            0 => DEFAULT_QUEUE_CAPACITY,
            1 => int_arg("Queue", "capacity", &a[0])?,
            _ => return Err(config_err("Queue", "takes at most one capacity argument")),
        };
        if capacity == 0 {
            return Err(config_err("Queue", "capacity must be positive"));
        }
        Ok(Queue {
            q: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            drops: 0,
            highwater: 0,
            depth: Rc::new(Cell::new(0)),
        })
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Element for Queue {
    fn class_name(&self) -> &str {
        "Queue"
    }
    fn push(&mut self, _port: usize, p: Packet, _out: &mut Emitter) {
        if self.q.len() >= self.capacity {
            self.drops += 1;
        } else {
            self.q.push_back(p);
            self.highwater = self.highwater.max(self.q.len());
            self.depth.set(self.q.len());
        }
    }
    fn pull(&mut self, _port: usize, _ctx: &mut dyn PullContext) -> Option<Packet> {
        let p = self.q.pop_front();
        self.depth.set(self.q.len());
        p
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        // Bulk enqueue with one depth/highwater update; overflow drops go
        // back to the packet pool.
        for p in batch.drain() {
            if self.q.len() >= self.capacity {
                self.drops += 1;
                p.recycle();
            } else {
                self.q.push_back(p);
            }
        }
        self.highwater = self.highwater.max(self.q.len());
        self.depth.set(self.q.len());
        out.recycle_storage(batch);
    }
    fn pull_batch(
        &mut self,
        _port: usize,
        max: usize,
        _ctx: &mut dyn PullContext,
        into: &mut PacketBatch,
    ) -> usize {
        let n = max.min(self.q.len());
        into.extend(self.q.drain(..n));
        self.depth.set(self.q.len());
        n
    }
    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "drops" => Some(self.drops),
            "length" => Some(self.q.len() as u64),
            "highwater" => Some(self.highwater as u64),
            "capacity" => Some(self.capacity as u64),
            _ => None,
        }
    }
    fn queue_depth_handle(&self) -> Option<Rc<Cell<usize>>> {
        Some(Rc::clone(&self.depth))
    }
    fn take_state(&mut self) -> Option<ElementState> {
        let mut s = ElementState::new("Queue")
            .counter("drops", self.drops)
            .counter("highwater", self.highwater as u64);
        s.packets = self.q.drain(..).collect();
        self.depth.set(0);
        Some(s)
    }
    fn restore_state(&mut self, state: ElementState) {
        self.drops += state.get("drops");
        self.highwater = self.highwater.max(state.get("highwater") as usize);
        // Re-enqueue the predecessor's contents in FIFO order; if the new
        // queue is smaller, the overflow drops here and is visible in the
        // `drops` gauge, keeping the swap's loss accounted.
        for p in state.packets {
            if self.q.len() >= self.capacity {
                self.drops += 1;
                p.recycle();
            } else {
                self.q.push_back(p);
            }
        }
        self.highwater = self.highwater.max(self.q.len());
        self.depth.set(self.q.len());
    }
}

/// `RED(min_thresh, max_thresh, max_p_percent)`: random early detection.
///
/// Drops packets probabilistically as the average occupancy of the nearest
/// downstream `Queue` climbs between the two thresholds. The router
/// runtime wires the queue-depth handle after configuration (like Click's
/// `RED` finding its downstream `Storage` element). Randomness is a
/// deterministic LCG so runs are reproducible.
#[derive(Debug)]
pub struct Red {
    min_thresh: usize,
    max_thresh: usize,
    /// Drop probability at `max_thresh`, in 1/10000 units.
    max_p_e4: u64,
    avg_e8: u64, // EWMA of queue depth, fixed-point * 2^8
    depth: Option<Rc<Cell<usize>>>,
    drops: u64,
    rng: u64,
}

impl Red {
    /// Creates from a configuration string:
    /// `min_thresh, max_thresh, max_p` (`max_p` a fraction like `0.02`).
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<Red> {
        let a = args(config);
        if a.len() != 3 {
            return Err(config_err("RED", "expects `min_thresh, max_thresh, max_p`"));
        }
        let min_thresh: usize = int_arg("RED", "min_thresh", &a[0])?;
        let max_thresh: usize = int_arg("RED", "max_thresh", &a[1])?;
        let max_p: f64 = a[2]
            .trim()
            .parse()
            .map_err(|_| config_err("RED", format!("bad max_p {:?}", a[2])))?;
        if max_thresh <= min_thresh {
            return Err(config_err("RED", "max_thresh must exceed min_thresh"));
        }
        if !(0.0..=1.0).contains(&max_p) {
            return Err(config_err("RED", "max_p must be between 0 and 1"));
        }
        Ok(Red {
            min_thresh,
            max_thresh,
            max_p_e4: (max_p * 10000.0) as u64,
            avg_e8: 0,
            depth: None,
            drops: 0,
            rng: 0x243F6A8885A308D3,
        })
    }

    fn next_rand_e4(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng >> 33) % 10000
    }

    /// The current average queue depth estimate.
    pub fn avg_depth(&self) -> f64 {
        self.avg_e8 as f64 / 256.0
    }
}

impl Element for Red {
    fn class_name(&self) -> &str {
        "RED"
    }
    fn simple_action(&mut self, p: Packet) -> Option<Packet> {
        let depth = self.depth.as_ref().map(|d| d.get()).unwrap_or(0);
        // EWMA with weight 1/4: avg += (depth - avg) / 4.
        let depth_e8 = (depth as u64) << 8;
        self.avg_e8 = self.avg_e8 - (self.avg_e8 >> 2) + (depth_e8 >> 2);
        let avg = (self.avg_e8 >> 8) as usize;
        if avg < self.min_thresh {
            return Some(p);
        }
        if avg >= self.max_thresh {
            self.drops += 1;
            return None;
        }
        let span = (self.max_thresh - self.min_thresh) as u64;
        let prob_e4 = self.max_p_e4 * (avg - self.min_thresh) as u64 / span;
        if self.next_rand_e4() < prob_e4 {
            self.drops += 1;
            None
        } else {
            Some(p)
        }
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "drops").then_some(self.drops)
    }
    fn attach_downstream_queue(&mut self, handle: Rc<Cell<usize>>) {
        self.depth = Some(handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Emitter;

    struct NoPulls;
    impl PullContext for NoPulls {
        fn pull(&mut self, _port: usize) -> Option<Packet> {
            None
        }
        fn push_out(&mut self, _port: usize, _p: Packet) {}
        fn ninputs(&self) -> usize {
            0
        }
    }

    fn ctx() -> CreateCtx {
        CreateCtx::new()
    }

    #[test]
    fn queue_fifo_order() {
        let mut q = Queue::from_config("4", &mut ctx()).unwrap();
        let mut out = Emitter::new();
        for i in 0..3u8 {
            q.push(0, Packet::from_data(&[i]), &mut out);
        }
        assert!(out.is_empty(), "queue must not emit during push");
        for i in 0..3u8 {
            let p = q.pull(0, &mut NoPulls).unwrap();
            assert_eq!(p.data(), &[i]);
        }
        assert!(q.pull(0, &mut NoPulls).is_none());
    }

    #[test]
    fn queue_drops_when_full() {
        let mut q = Queue::from_config("2", &mut ctx()).unwrap();
        let mut out = Emitter::new();
        for i in 0..5u8 {
            q.push(0, Packet::from_data(&[i]), &mut out);
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.stat("drops"), Some(3));
        assert_eq!(q.stat("highwater"), Some(2));
    }

    #[test]
    fn queue_depth_handle_tracks_occupancy() {
        let mut q = Queue::from_config("10", &mut ctx()).unwrap();
        let h = q.queue_depth_handle().unwrap();
        let mut out = Emitter::new();
        q.push(0, Packet::new(1), &mut out);
        q.push(0, Packet::new(1), &mut out);
        assert_eq!(h.get(), 2);
        q.pull(0, &mut NoPulls);
        assert_eq!(h.get(), 1);
    }

    #[test]
    fn queue_config_validation() {
        assert!(Queue::from_config("0", &mut ctx()).is_err());
        assert!(Queue::from_config("1, 2", &mut ctx()).is_err());
        assert_eq!(
            Queue::from_config("", &mut ctx()).unwrap().capacity(),
            DEFAULT_QUEUE_CAPACITY
        );
    }

    #[test]
    fn red_passes_below_min_thresh() {
        let mut red = Red::from_config("5, 10, 0.5", &mut ctx()).unwrap();
        let depth = Rc::new(Cell::new(0));
        red.attach_downstream_queue(Rc::clone(&depth));
        for _ in 0..100 {
            assert!(red.simple_action(Packet::new(1)).is_some());
        }
        assert_eq!(red.stat("drops"), Some(0));
    }

    #[test]
    fn red_drops_everything_above_max_thresh() {
        let mut red = Red::from_config("2, 4, 0.5", &mut ctx()).unwrap();
        let depth = Rc::new(Cell::new(100));
        red.attach_downstream_queue(Rc::clone(&depth));
        // Warm the EWMA past max_thresh.
        for _ in 0..20 {
            red.simple_action(Packet::new(1));
        }
        let before = red.stat("drops").unwrap();
        for _ in 0..10 {
            assert!(red.simple_action(Packet::new(1)).is_none());
        }
        assert_eq!(red.stat("drops").unwrap(), before + 10);
    }

    #[test]
    fn red_drops_probabilistically_in_between() {
        let mut red = Red::from_config("10, 1000, 1.0", &mut ctx()).unwrap();
        let depth = Rc::new(Cell::new(500));
        red.attach_downstream_queue(Rc::clone(&depth));
        let mut dropped = 0;
        for _ in 0..2000 {
            if red.simple_action(Packet::new(1)).is_none() {
                dropped += 1;
            }
        }
        // Expected drop probability ~49% once the EWMA converges to 500.
        assert!(dropped > 500 && dropped < 1500, "dropped {dropped}/2000");
    }

    #[test]
    fn red_config_validation() {
        assert!(Red::from_config("10, 5, 0.1", &mut ctx()).is_err());
        assert!(Red::from_config("1, 2, 1.5", &mut ctx()).is_err());
        assert!(Red::from_config("1, 2", &mut ctx()).is_err());
    }
}
