//! Combination elements — the `click-xform` replacements of §6.2.
//!
//! "This optimization both lowers virtual function costs by reducing the
//! number of elements in a forwarding path, and reduces the overhead of
//! general-purpose code." `IPInputCombo` fuses the input-side
//! `Paint → Strip(14) → CheckIPHeader → GetIPAddress(16)` sequence;
//! `IPOutputCombo` fuses the output-side
//! `DropBroadcasts → PaintTee → IPGWOptions → FixIPSrc → DecIPTTL →
//! IPFragmenter` sequence. The paper discourages writing these by hand —
//! `click-xform` installs them automatically.

use crate::batch::{BatchEmitter, PacketBatch};
use crate::element::{args, config_err, int_arg, CreateCtx, Element, Emitter};
use crate::elements::ip::{CheckIPHeader, IPGWOptions};
use crate::headers::{ether, ipv4, parse_ip};
use crate::packet::Packet;
use click_core::error::Result;

/// `IPInputCombo(color)`: paints, strips the Ethernet header, validates
/// the IP header, and sets the destination annotation — in one pass.
/// Output 0: good packets; output 1: bad headers.
#[derive(Debug)]
pub struct IPInputCombo {
    color: u8,
    bad: u64,
}

impl IPInputCombo {
    /// Creates from a configuration string: the paint color.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<IPInputCombo> {
        let a = args(config);
        if a.len() != 1 {
            return Err(config_err(
                "IPInputCombo",
                "expects exactly one color argument",
            ));
        }
        Ok(IPInputCombo {
            color: int_arg("IPInputCombo", "color", &a[0])?,
            bad: 0,
        })
    }
}

impl Element for IPInputCombo {
    fn class_name(&self) -> &str {
        "IPInputCombo"
    }
    fn push(&mut self, _port: usize, mut p: Packet, out: &mut Emitter) {
        p.anno.paint = self.color;
        p.pull(ether::HLEN);
        if !CheckIPHeader::header_ok(p.data()) {
            self.bad += 1;
            out.emit(1, p);
            return;
        }
        let d = p.data();
        p.anno.dst_ip = Some(ipv4::dst(d));
        out.emit(0, p);
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        // The whole fused input path in one batch pass: paint, strip,
        // validate, annotate.
        for mut p in batch.drain() {
            p.anno.paint = self.color;
            p.pull(ether::HLEN);
            if !CheckIPHeader::header_ok(p.data()) {
                self.bad += 1;
                out.emit(1, p);
                continue;
            }
            let dst = ipv4::dst(p.data());
            p.anno.dst_ip = Some(dst);
            out.emit(0, p);
        }
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "bad").then_some(self.bad)
    }
}

/// `IPOutputCombo(color, fix_src_ip, mtu)`: the fused output path.
///
/// Outputs:
/// 0. forwarded packets (fragmented if needed and permitted);
/// 1. copy of packets leaving via their arrival interface (paint match —
///    feeds an ICMP redirect);
/// 2. packets with bad gateway options (feeds ICMP parameter problem);
/// 3. TTL-expired packets (feeds ICMP time exceeded);
/// 4. too-big packets with DF set (feeds ICMP "fragmentation needed").
#[derive(Debug)]
pub struct IPOutputCombo {
    color: u8,
    fix_src: u32,
    mtu: usize,
    broadcasts: u64,
    redirects: u64,
    expired: u64,
    fragments: u64,
}

impl IPOutputCombo {
    /// Creates from a configuration string: `color, fix_src_ip, mtu`.
    pub fn from_config(config: &str, _ctx: &mut CreateCtx) -> Result<IPOutputCombo> {
        let a = args(config);
        if a.len() != 3 {
            return Err(config_err(
                "IPOutputCombo",
                "expects `color, fix_src_ip, mtu`",
            ));
        }
        let color = int_arg("IPOutputCombo", "color", &a[0])?;
        let fix_src = parse_ip(&a[1])
            .ok_or_else(|| config_err("IPOutputCombo", format!("bad address {:?}", a[1])))?;
        let mtu: usize = int_arg("IPOutputCombo", "mtu", &a[2])?;
        if mtu < ipv4::HLEN + 8 {
            return Err(config_err("IPOutputCombo", "MTU too small"));
        }
        Ok(IPOutputCombo {
            color,
            fix_src,
            mtu,
            broadcasts: 0,
            redirects: 0,
            expired: 0,
            fragments: 0,
        })
    }

    fn fragment_out(&mut self, p: &Packet, out: &mut Emitter) {
        // Same framing as IPFragmenter::fragment, kept in sync by the
        // equivalence tests below.
        let data = p.data();
        let hlen = ipv4::header_len(data);
        let total = (ipv4::total_len(data) as usize).min(data.len());
        // A crafted header length beyond the total length must not panic.
        let payload = &data[hlen.min(total)..total];
        let step = (self.mtu - hlen) / 8 * 8;
        let orig_field = ipv4::frag_field(data);
        let orig_units = (orig_field & 0x1FFF) as usize;
        let orig_mf = orig_field & ipv4::FLAG_MF != 0;
        let mut pos = 0usize;
        while pos < payload.len() {
            let this_len = step.min(payload.len() - pos);
            let last = pos + this_len >= payload.len();
            let mut frag = Packet::new(hlen + this_len);
            frag.anno = p.anno.clone();
            let fd = frag.data_mut();
            fd[..hlen].copy_from_slice(&data[..hlen]);
            fd[hlen..].copy_from_slice(&payload[pos..pos + this_len]);
            fd[2..4].copy_from_slice(&((hlen + this_len) as u16).to_be_bytes());
            let mf = !last || orig_mf;
            let field =
                ((orig_units + pos / 8) as u16 & 0x1FFF) | if mf { ipv4::FLAG_MF } else { 0 };
            fd[6..8].copy_from_slice(&field.to_be_bytes());
            ipv4::set_checksum(fd);
            self.fragments += 1;
            out.emit(0, frag);
            pos += this_len;
        }
    }
}

impl Element for IPOutputCombo {
    fn class_name(&self) -> &str {
        "IPOutputCombo"
    }
    fn push(&mut self, _port: usize, mut p: Packet, out: &mut Emitter) {
        // DropBroadcasts
        if p.anno.link_broadcast {
            self.broadcasts += 1;
            return;
        }
        // PaintTee: copy to the redirect path.
        if p.anno.paint == self.color {
            self.redirects += 1;
            out.emit(1, p.clone());
        }
        // IPGWOptions
        if !IPGWOptions::options_ok(p.data()) {
            out.emit(2, p);
            return;
        }
        // FixIPSrc
        if p.anno.fix_ip_src && p.len() >= ipv4::HLEN {
            ipv4::set_src(p.data_mut(), self.fix_src);
            p.anno.fix_ip_src = false;
        }
        // DecIPTTL
        if p.len() < ipv4::HLEN || ipv4::ttl(p.data()) <= 1 {
            self.expired += 1;
            out.emit(3, p);
            return;
        }
        ipv4::dec_ttl(p.data_mut());
        // IPFragmenter
        if p.len() <= self.mtu {
            out.emit(0, p);
        } else if ipv4::frag_field(p.data()) & ipv4::FLAG_DF != 0 {
            out.emit(4, p);
        } else {
            self.fragment_out(&p, out);
        }
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        // The fused output path per packet, one dispatch per batch.
        for mut p in batch.drain() {
            if p.anno.link_broadcast {
                self.broadcasts += 1;
                p.recycle();
                continue;
            }
            if p.anno.paint == self.color {
                self.redirects += 1;
                out.emit(1, p.clone());
            }
            if !IPGWOptions::options_ok(p.data()) {
                out.emit(2, p);
                continue;
            }
            if p.anno.fix_ip_src && p.len() >= ipv4::HLEN {
                ipv4::set_src(p.data_mut(), self.fix_src);
                p.anno.fix_ip_src = false;
            }
            if p.len() < ipv4::HLEN || ipv4::ttl(p.data()) <= 1 {
                self.expired += 1;
                out.emit(3, p);
                continue;
            }
            ipv4::dec_ttl(p.data_mut());
            if p.len() <= self.mtu {
                out.emit(0, p);
            } else if ipv4::frag_field(p.data()) & ipv4::FLAG_DF != 0 {
                out.emit(4, p);
            } else {
                out.with_scalar(|e| self.fragment_out(&p, e));
                p.recycle();
            }
        }
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        match name {
            "broadcasts" => Some(self.broadcasts),
            "redirects" => Some(self.redirects),
            "expired" => Some(self.expired),
            "fragments" => Some(self.fragments),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::basic::{Paint, PaintTee, Strip};
    use crate::elements::ip::{DecIPTTL, DropBroadcasts, FixIPSrc, GetIPAddress, IPFragmenter};
    use crate::headers::build_udp_packet;

    fn ctx() -> CreateCtx {
        CreateCtx::new()
    }

    fn push_one(e: &mut dyn Element, p: Packet) -> Vec<(usize, Packet)> {
        let mut out = Emitter::new();
        e.push(0, p, &mut out);
        out.drain().collect()
    }

    fn framed_packet(dst: u32, ttl: u8) -> Packet {
        build_udp_packet([1; 6], [2; 6], 0x0A000001, dst, 1000, 2000, 18, ttl)
    }

    /// The reference chain IPInputCombo replaces.
    fn input_chain(p: Packet, color: u8) -> Vec<(usize, Packet)> {
        let mut c = ctx();
        let mut paint = Paint::from_config(&color.to_string(), &mut c).unwrap();
        let mut strip = Strip::from_config("14", &mut c).unwrap();
        let mut chk = CheckIPHeader::from_config("", &mut c).unwrap();
        let mut get = GetIPAddress::from_config("16", &mut c).unwrap();
        let p = paint.simple_action(p).unwrap();
        let p = strip.simple_action(p).unwrap();
        let mut out = Emitter::new();
        chk.push(0, p, &mut out);
        let mut results = Vec::new();
        for (port, q) in out.drain() {
            if port == 0 {
                let q = get.simple_action(q).unwrap();
                results.push((0, q));
            } else {
                results.push((1, q));
            }
        }
        results
    }

    #[test]
    fn input_combo_equals_chain_good_packet() {
        let p = framed_packet(0x0A000202, 64);
        let mut combo = IPInputCombo::from_config("3", &mut ctx()).unwrap();
        let a = push_one(&mut combo, p.clone());
        let b = input_chain(p, 3);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].0, b[0].0);
        assert_eq!(a[0].1.data(), b[0].1.data());
        assert_eq!(a[0].1.anno.paint, b[0].1.anno.paint);
        assert_eq!(a[0].1.anno.dst_ip, b[0].1.anno.dst_ip);
        assert_eq!(a[0].1.anno.dst_ip, Some(0x0A000202));
    }

    #[test]
    fn input_combo_equals_chain_bad_packet() {
        let mut p = framed_packet(0x0A000202, 64);
        p.data_mut()[14] = 0x55; // corrupt version/hl
        let mut combo = IPInputCombo::from_config("3", &mut ctx()).unwrap();
        let a = push_one(&mut combo, p.clone());
        let b = input_chain(p, 3);
        assert_eq!(a[0].0, 1);
        assert_eq!(b[0].0, 1);
        assert_eq!(a[0].1.data(), b[0].1.data());
        assert_eq!(combo.stat("bad"), Some(1));
    }

    /// The reference chain IPOutputCombo replaces.
    fn output_chain(p: Packet, color: u8, fix_ip: &str, mtu: usize) -> Vec<(usize, Packet)> {
        let mut c = ctx();
        let mut db = DropBroadcasts::from_config("", &mut c).unwrap();
        let mut pt = PaintTee::from_config(&color.to_string(), &mut c).unwrap();
        let mut gw = IPGWOptions::from_config("", &mut c).unwrap();
        let mut fix = FixIPSrc::from_config(fix_ip, &mut c).unwrap();
        let mut ttl = DecIPTTL::from_config("", &mut c).unwrap();
        let mut frag = IPFragmenter::from_config(&mtu.to_string(), &mut c).unwrap();
        let mut results = Vec::new();
        let Some(p) = db.simple_action(p) else {
            return results;
        };
        let mut out = Emitter::new();
        pt.push(0, p, &mut out);
        let mut forward = None;
        for (port, q) in out.drain() {
            if port == 0 {
                forward = Some(q);
            } else {
                results.push((1, q));
            }
        }
        let Some(p) = forward else { return results };
        let mut out = Emitter::new();
        gw.push(0, p, &mut out);
        let mut forward = None;
        for (port, q) in out.drain() {
            if port == 0 {
                forward = Some(q);
            } else {
                results.push((2, q));
            }
        }
        let Some(p) = forward else { return results };
        let p = fix.simple_action(p).unwrap();
        let mut out = Emitter::new();
        ttl.push(0, p, &mut out);
        let mut forward = None;
        for (port, q) in out.drain() {
            if port == 0 {
                forward = Some(q);
            } else {
                results.push((3, q));
            }
        }
        let Some(p) = forward else { return results };
        let mut out = Emitter::new();
        frag.push(0, p, &mut out);
        for (port, q) in out.drain() {
            results.push(if port == 0 { (0, q) } else { (4, q) });
        }
        results
    }

    fn ip_packet(dst: u32, ttl: u8, paint: u8) -> Packet {
        let mut p = framed_packet(dst, ttl);
        p.pull(14);
        p.anno.paint = paint;
        p
    }

    fn compare(p: Packet) {
        let mut combo = IPOutputCombo::from_config("2, 10.0.0.254, 576", &mut ctx()).unwrap();
        let a = push_one(&mut combo, p.clone());
        let b = output_chain(p, 2, "10.0.0.254", 576);
        assert_eq!(a.len(), b.len(), "combo {a:?} vs chain {b:?}");
        for ((pa, qa), (pb, qb)) in a.iter().zip(&b) {
            assert_eq!(pa, pb);
            assert_eq!(qa.data(), qb.data());
        }
    }

    #[test]
    fn output_combo_equals_chain_normal() {
        compare(ip_packet(0x0A000202, 64, 0));
    }

    #[test]
    fn output_combo_equals_chain_redirect() {
        compare(ip_packet(0x0A000202, 64, 2));
    }

    #[test]
    fn output_combo_equals_chain_ttl_expired() {
        compare(ip_packet(0x0A000202, 1, 0));
    }

    #[test]
    fn output_combo_equals_chain_broadcast_dropped() {
        let mut p = ip_packet(0x0A000202, 64, 0);
        p.anno.link_broadcast = true;
        compare(p);
    }

    #[test]
    fn output_combo_equals_chain_fix_src() {
        let mut p = ip_packet(0x0A000202, 64, 0);
        p.anno.fix_ip_src = true;
        compare(p);
    }

    #[test]
    fn output_combo_fragments_like_chain() {
        let mut big = Packet::new(1200);
        {
            let d = big.data_mut();
            d[0] = 0x45;
            d[2..4].copy_from_slice(&1200u16.to_be_bytes());
            d[8] = 64;
            d[9] = 17;
            ipv4::set_checksum(d);
        }
        compare(big);
    }

    #[test]
    fn config_validation() {
        assert!(IPInputCombo::from_config("", &mut ctx()).is_err());
        assert!(IPOutputCombo::from_config("1, 10.0.0.1", &mut ctx()).is_err());
        assert!(IPOutputCombo::from_config("1, bad, 1500", &mut ctx()).is_err());
        assert!(IPOutputCombo::from_config("1, 10.0.0.1, 5", &mut ctx()).is_err());
    }
}
