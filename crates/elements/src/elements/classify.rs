//! Classifier elements: the generic, tree-walking `Classifier` /
//! `IPClassifier` / `IPFilter` and the specialized `FastClassifier@@*`
//! classes that `click-fastclassifier` substitutes for them.

use crate::batch::{BatchEmitter, PacketBatch};
use crate::element::{config_err, CreateCtx, Element, Emitter};
use crate::packet::Packet;
use click_classifier::{build_tree, parse_rules, rules_noutputs, FastMatcher, TreeClassifier};
use click_core::error::Result;
use click_core::registry::{FASTCLASSIFIER_PREFIX, FASTIPFILTER_PREFIX};

/// The generic classifier element: compiles its configuration into a
/// decision tree at configuration time and walks heap-allocated nodes per
/// packet (the unoptimized inner loop of the paper's Figure 3a).
#[derive(Debug)]
pub struct ClassifierElement {
    class: &'static str,
    runtime: TreeClassifier,
    drops: u64,
}

impl ClassifierElement {
    /// Creates a `Classifier`.
    pub fn classifier(config: &str, _ctx: &mut CreateCtx) -> Result<ClassifierElement> {
        Self::with_class("Classifier", config)
    }

    /// Creates an `IPClassifier`.
    pub fn ip_classifier(config: &str, _ctx: &mut CreateCtx) -> Result<ClassifierElement> {
        Self::with_class("IPClassifier", config)
    }

    /// Creates an `IPFilter`.
    pub fn ip_filter(config: &str, _ctx: &mut CreateCtx) -> Result<ClassifierElement> {
        Self::with_class("IPFilter", config)
    }

    fn with_class(class: &'static str, config: &str) -> Result<ClassifierElement> {
        let rules = parse_rules(class, config)?;
        let noutputs = rules_noutputs(&rules);
        let tree = build_tree(&rules, noutputs);
        Ok(ClassifierElement {
            class,
            runtime: TreeClassifier::new(&tree),
            drops: 0,
        })
    }
}

impl Element for ClassifierElement {
    fn class_name(&self) -> &str {
        self.class
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        match self.runtime.classify(p.data()) {
            Some(port) => out.emit(port, p),
            None => self.drops += 1,
        }
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        // One tree walk per packet but a single dispatch for the batch;
        // outputs branch-sort so downstream hops stay coalesced.
        for p in batch.drain() {
            match self.runtime.classify(p.data()) {
                Some(port) => out.emit(port, p),
                None => {
                    self.drops += 1;
                    p.recycle();
                }
            }
        }
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "drops").then_some(self.drops)
    }
}

/// A specialized classifier produced by `click-fastclassifier`. Its class
/// name starts with `FastClassifier@@` (or `FastIPFilter@@`) and its
/// configuration string carries the serialized [`FastMatcher`].
#[derive(Debug)]
pub struct FastClassifierElement {
    class: String,
    matcher: FastMatcher,
    drops: u64,
}

impl FastClassifierElement {
    /// Creates from a generated class name and its serialized matcher.
    pub fn from_config(
        class: &str,
        config: &str,
        _ctx: &mut CreateCtx,
    ) -> Result<FastClassifierElement> {
        if !class.starts_with(FASTCLASSIFIER_PREFIX) && !class.starts_with(FASTIPFILTER_PREFIX) {
            return Err(config_err(
                class,
                "not a generated fast classifier class name",
            ));
        }
        let matcher: FastMatcher = config.trim().parse()?;
        Ok(FastClassifierElement {
            class: class.to_owned(),
            matcher,
            drops: 0,
        })
    }

    /// The specialization shape chosen for this element.
    pub fn shape(&self) -> &'static str {
        self.matcher.shape()
    }
}

impl Element for FastClassifierElement {
    fn class_name(&self) -> &str {
        &self.class
    }
    fn push(&mut self, _port: usize, p: Packet, out: &mut Emitter) {
        match self.matcher.classify(p.data()) {
            Some(port) => out.emit(port, p),
            None => self.drops += 1,
        }
    }
    fn push_batch(&mut self, _port: usize, mut batch: PacketBatch, out: &mut BatchEmitter) {
        for p in batch.drain() {
            match self.matcher.classify(p.data()) {
                Some(port) => out.emit(port, p),
                None => {
                    self.drops += 1;
                    p.recycle();
                }
            }
        }
        out.recycle_storage(batch);
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "drops").then_some(self.drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_classifier::optimize;

    fn ctx() -> CreateCtx {
        CreateCtx::new()
    }

    fn push_one(e: &mut dyn Element, p: Packet) -> Vec<(usize, Packet)> {
        let mut out = Emitter::new();
        e.push(0, p, &mut out);
        out.drain().collect()
    }

    fn ether_pkt(ethertype: u16) -> Packet {
        let mut p = Packet::new(60);
        p.data_mut()[12..14].copy_from_slice(&ethertype.to_be_bytes());
        p
    }

    #[test]
    fn classifier_element_routes_by_pattern() {
        let mut c = ClassifierElement::classifier("12/0800, 12/0806, -", &mut ctx()).unwrap();
        assert_eq!(push_one(&mut c, ether_pkt(0x0800))[0].0, 0);
        assert_eq!(push_one(&mut c, ether_pkt(0x0806))[0].0, 1);
        assert_eq!(push_one(&mut c, ether_pkt(0x86DD))[0].0, 2);
    }

    #[test]
    fn classifier_without_match_drops() {
        let mut c = ClassifierElement::classifier("12/0800", &mut ctx()).unwrap();
        assert!(push_one(&mut c, ether_pkt(0x0806)).is_empty());
        assert_eq!(c.stat("drops"), Some(1));
    }

    #[test]
    fn ip_filter_element() {
        let mut f =
            ClassifierElement::ip_filter("allow udp dst port 53, deny all", &mut ctx()).unwrap();
        let mut p = Packet::new(40);
        {
            let d = p.data_mut();
            d[0] = 0x45;
            d[9] = 17;
            d[22..24].copy_from_slice(&53u16.to_be_bytes());
        }
        assert_eq!(push_one(&mut f, p.clone())[0].0, 0);
        p.data_mut()[9] = 6;
        assert!(push_one(&mut f, p).is_empty());
    }

    #[test]
    fn fast_classifier_matches_generic() {
        let config = "12/0806 20/0001, 12/0806 20/0002, 12/0800, -";
        let mut generic = ClassifierElement::classifier(config, &mut ctx()).unwrap();
        let rules = parse_rules("Classifier", config).unwrap();
        let tree = optimize(&build_tree(&rules, 4));
        let matcher = FastMatcher::compile(&tree);
        let mut fast = FastClassifierElement::from_config(
            "FastClassifier@@c",
            &matcher.to_string(),
            &mut ctx(),
        )
        .unwrap();
        for ethertype in [0x0800u16, 0x0806, 0x86DD, 0x8100] {
            for w in [0u8, 1, 2] {
                let mut p = ether_pkt(ethertype);
                p.data_mut()[21] = w;
                let a: Vec<usize> = push_one(&mut generic, p.clone())
                    .iter()
                    .map(|x| x.0)
                    .collect();
                let b: Vec<usize> = push_one(&mut fast, p).iter().map(|x| x.0).collect();
                assert_eq!(a, b, "ethertype {ethertype:#x} w {w}");
            }
        }
    }

    #[test]
    fn fast_classifier_rejects_bad_names_and_configs() {
        assert!(FastClassifierElement::from_config(
            "Classifier",
            "fast constant 1 out0",
            &mut ctx()
        )
        .is_err());
        assert!(
            FastClassifierElement::from_config("FastClassifier@@x", "garbage", &mut ctx()).is_err()
        );
    }

    #[test]
    fn bad_patterns_rejected_at_configure_time() {
        assert!(ClassifierElement::classifier("nothex/zz", &mut ctx()).is_err());
        assert!(ClassifierElement::ip_filter("frobnicate all", &mut ctx()).is_err());
    }
}
