//! Device endpoints: `FromDevice`/`PollDevice`, `ToDevice`, and
//! `RouterLink` (the element `click-combine` uses to splice routers
//! together, §7.2).
//!
//! Each router owns a [`DeviceBank`](crate::router::DeviceBank) of named
//! RX/TX queues that tests, benchmarks, and the hardware simulator feed
//! and drain — and that a real I/O backend
//! ([`crate::iodev::DeviceBackend`]) can sit beneath when the device name
//! carries a scheme (`pcap:trace.pcap`, `udp:ADDR>PEER`, `tap:NAME`).
//! These elements never talk to a backend directly: they only see the
//! queues, so the same configuration runs simulated or live, and every
//! I/O fault is absorbed by the supervision layer before it reaches the
//! graph. Click's polling discipline (paper §3: "polling device drivers
//! and a constantly-active kernel thread") maps to these elements being
//! *tasks* the router schedules.
//!
//! Audit note: these tasks and the `DeviceBank` queue paths they call
//! contain no `unwrap`/`expect`/indexing panics — a stale device id is an
//! accounted drop (`DeviceBank::lost_packets`), matching the PR 5
//! router.rs audit.

use crate::batch::PacketBatch;
use crate::element::{args, config_err, CreateCtx, DeviceId, Element, TaskContext};
use crate::headers::ether;
use click_core::error::Result;

/// Packets moved per task invocation, matching Click's device burst.
pub const BURST: usize = 8;

/// Device id as a packet annotation, saturating instead of silently
/// truncating if a configuration ever names more than 65535 devices.
fn dev_anno(dev: DeviceId) -> u16 {
    u16::try_from(dev.0).unwrap_or(u16::MAX)
}

/// `FromDevice(dev)` / `PollDevice(dev)`: pulls received packets from a
/// device RX queue and pushes them into the configuration.
#[derive(Debug)]
pub struct FromDevice {
    class: &'static str,
    dev: DeviceId,
    count: u64,
    scratch: PacketBatch,
}

impl FromDevice {
    /// Creates a `FromDevice`.
    pub fn from_config(config: &str, ctx: &mut CreateCtx) -> Result<FromDevice> {
        Self::with_class("FromDevice", config, ctx)
    }

    /// Creates a `PollDevice` (identical here: our devices always poll).
    pub fn poll_device(config: &str, ctx: &mut CreateCtx) -> Result<FromDevice> {
        Self::with_class("PollDevice", config, ctx)
    }

    fn with_class(class: &'static str, config: &str, ctx: &mut CreateCtx) -> Result<FromDevice> {
        let a = args(config);
        if a.len() != 1 || a[0].is_empty() {
            return Err(config_err(class, "expects exactly one device name"));
        }
        Ok(FromDevice {
            class,
            dev: ctx.devices.id_for(&a[0]),
            count: 0,
            scratch: PacketBatch::new(),
        })
    }

    /// The device this element reads.
    pub fn device(&self) -> DeviceId {
        self.dev
    }
}

impl Element for FromDevice {
    fn class_name(&self) -> &str {
        self.class
    }
    fn is_task(&self) -> bool {
        true
    }
    fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize {
        if ctx.batching() {
            // Batch mode: drain the device ring in one coalesced batch and
            // hand it to the batched push chain as a single hop.
            let moved = ctx.rx_pop_batch(self.dev, ctx.burst(), &mut self.scratch);
            if moved == 0 {
                return 0;
            }
            for p in self.scratch.iter_mut() {
                p.anno.device = Some(dev_anno(self.dev));
                if p.len() >= ether::HLEN {
                    p.anno.link_broadcast = ether::dst(p.data()) == ether::BROADCAST;
                }
            }
            self.count += moved as u64;
            ctx.emit_batch(0, &mut self.scratch);
            return moved;
        }
        let mut moved = 0;
        while moved < BURST {
            let Some(mut p) = ctx.rx_pop(self.dev) else {
                break;
            };
            p.anno.device = Some(dev_anno(self.dev));
            if p.len() >= ether::HLEN {
                p.anno.link_broadcast = ether::dst(p.data()) == ether::BROADCAST;
            }
            self.count += 1;
            moved += 1;
            ctx.emit(0, p);
        }
        moved
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "count").then_some(self.count)
    }
}

/// `ToDevice(dev)`: pulls packets from upstream and appends them to a
/// device TX queue.
#[derive(Debug)]
pub struct ToDevice {
    dev: DeviceId,
    count: u64,
    scratch: PacketBatch,
}

impl ToDevice {
    /// Creates from a configuration string: the device name.
    pub fn from_config(config: &str, ctx: &mut CreateCtx) -> Result<ToDevice> {
        let a = args(config);
        if a.len() != 1 || a[0].is_empty() {
            return Err(config_err("ToDevice", "expects exactly one device name"));
        }
        Ok(ToDevice {
            dev: ctx.devices.id_for(&a[0]),
            count: 0,
            scratch: PacketBatch::new(),
        })
    }

    /// The device this element writes.
    pub fn device(&self) -> DeviceId {
        self.dev
    }
}

impl Element for ToDevice {
    fn class_name(&self) -> &str {
        "ToDevice"
    }
    fn is_task(&self) -> bool {
        true
    }
    fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize {
        if ctx.batching() {
            // Batch mode: drain the upstream queue through one batched
            // pull, then append to the TX ring in one pass.
            let moved = ctx.pull_batch(0, ctx.burst(), &mut self.scratch);
            if moved == 0 {
                return 0;
            }
            self.count += moved as u64;
            ctx.tx_push_batch(self.dev, &mut self.scratch);
            return moved;
        }
        let mut moved = 0;
        while moved < BURST {
            let Some(p) = ctx.pull(0) else { break };
            self.count += 1;
            moved += 1;
            ctx.tx_push(self.dev, p);
        }
        moved
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "count").then_some(self.count)
    }
}

/// `RouterLink`: stands for a network link inside a combined multi-router
/// configuration — it actively pulls from the upstream router's queue and
/// pushes into the downstream router's input path.
#[derive(Debug, Default)]
pub struct RouterLink {
    count: u64,
    scratch: PacketBatch,
}

impl RouterLink {
    /// Creates from a configuration string (link metadata is advisory).
    pub fn from_config(_config: &str, _ctx: &mut CreateCtx) -> Result<RouterLink> {
        Ok(RouterLink::default())
    }
}

impl Element for RouterLink {
    fn class_name(&self) -> &str {
        "RouterLink"
    }
    fn is_task(&self) -> bool {
        true
    }
    fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize {
        if ctx.batching() {
            let moved = ctx.pull_batch(0, ctx.burst(), &mut self.scratch);
            if moved == 0 {
                return 0;
            }
            self.count += moved as u64;
            ctx.emit_batch(0, &mut self.scratch);
            return moved;
        }
        let mut moved = 0;
        while moved < BURST {
            let Some(p) = ctx.pull(0) else { break };
            self.count += 1;
            moved += 1;
            ctx.emit(0, p);
        }
        moved
    }
    fn stat(&self, name: &str) -> Option<u64> {
        (name == "count").then_some(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use std::collections::VecDeque;

    struct FakeIo {
        rx: VecDeque<Packet>,
        tx: Vec<Packet>,
        emitted: Vec<(usize, Packet)>,
        pullable: VecDeque<Packet>,
    }

    impl TaskContext for FakeIo {
        fn pull(&mut self, _port: usize) -> Option<Packet> {
            self.pullable.pop_front()
        }
        fn emit(&mut self, port: usize, p: Packet) {
            self.emitted.push((port, p));
        }
        fn rx_pop(&mut self, _dev: DeviceId) -> Option<Packet> {
            self.rx.pop_front()
        }
        fn tx_push(&mut self, _dev: DeviceId, p: Packet) {
            self.tx.push(p);
        }
    }

    fn io() -> FakeIo {
        FakeIo {
            rx: VecDeque::new(),
            tx: Vec::new(),
            emitted: Vec::new(),
            pullable: VecDeque::new(),
        }
    }

    #[test]
    fn from_device_bursts_and_annotates() {
        let mut ctx = CreateCtx::new();
        let mut fd = FromDevice::from_config("eth0", &mut ctx).unwrap();
        let mut io = io();
        for _ in 0..BURST + 3 {
            let mut p = Packet::new(60);
            ether::write(p.data_mut(), ether::BROADCAST, [1; 6], 0x0800);
            io.rx.push_back(p);
        }
        assert_eq!(fd.run_task(&mut io), BURST);
        assert_eq!(io.emitted.len(), BURST);
        assert!(io.emitted[0].1.anno.link_broadcast);
        assert_eq!(io.emitted[0].1.anno.device, Some(0));
        assert_eq!(fd.run_task(&mut io), 3);
        assert_eq!(fd.stat("count"), Some((BURST + 3) as u64));
        assert_eq!(fd.run_task(&mut io), 0);
    }

    #[test]
    fn to_device_drains_upstream() {
        let mut ctx = CreateCtx::new();
        let mut td = ToDevice::from_config("eth1", &mut ctx).unwrap();
        let mut io = io();
        io.pullable.push_back(Packet::new(10));
        io.pullable.push_back(Packet::new(11));
        assert_eq!(td.run_task(&mut io), 2);
        assert_eq!(io.tx.len(), 2);
        assert_eq!(td.stat("count"), Some(2));
    }

    #[test]
    fn router_link_moves_pull_to_push() {
        let mut ctx = CreateCtx::new();
        let mut rl = RouterLink::from_config("A.eth0->B.eth1", &mut ctx).unwrap();
        let mut io = io();
        io.pullable.push_back(Packet::from_data(&[5]));
        assert_eq!(rl.run_task(&mut io), 1);
        assert_eq!(io.emitted.len(), 1);
        assert_eq!(io.emitted[0].1.data(), &[5]);
    }

    #[test]
    fn device_names_share_ids() {
        let mut ctx = CreateCtx::new();
        let fd = FromDevice::from_config("eth0", &mut ctx).unwrap();
        let td = ToDevice::from_config("eth0", &mut ctx).unwrap();
        assert_eq!(fd.device(), td.device());
        let td2 = ToDevice::from_config("eth1", &mut ctx).unwrap();
        assert_ne!(fd.device(), td2.device());
    }

    #[test]
    fn config_validation() {
        let mut ctx = CreateCtx::new();
        assert!(FromDevice::from_config("", &mut ctx).is_err());
        assert!(ToDevice::from_config("a, b", &mut ctx).is_err());
    }
}
