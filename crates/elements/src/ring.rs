//! Bounded single-producer/single-consumer ring queues — the transfer
//! fabric of the sharded runtime ([`crate::parallel`]).
//!
//! Each worker shard owns one inbound and one outbound ring; the
//! injection side and the TX-collection side hold the matching
//! endpoints. Capacity is fixed at construction, so a slow consumer
//! exerts *backpressure* on its producer (the producer spins with
//! [`Backoff`]) instead of growing a queue without bound or dropping.
//!
//! The implementation is safe Rust (`click-elements` forbids `unsafe`):
//! monotonically increasing head/tail counters published with
//! acquire/release atomics select a slot, and a per-slot `Mutex<Option<T>>`
//! hands the value across the thread boundary. With one producer and one
//! consumer every slot lock is uncontended — acquiring it is a single
//! compare-and-swap — so the ring still behaves like a classic lock-free
//! SPSC queue, without the `UnsafeCell` machinery one would use outside
//! a `forbid(unsafe_code)` crate. The [`spsc`] constructor returns
//! distinct [`RingProducer`]/[`RingConsumer`] endpoint types (neither is
//! `Clone`), so the single-producer/single-consumer discipline is
//! enforced by ownership rather than by convention.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The shared ring state behind a producer/consumer endpoint pair.
#[derive(Debug)]
struct Ring<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next sequence number to pop. Only the consumer stores it.
    head: AtomicUsize,
    /// Next sequence number to push. Only the producer stores it.
    tail: AtomicUsize,
}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Ring<T> {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

/// Creates a bounded SPSC ring of `capacity` slots, returning the two
/// endpoints. Move the [`RingConsumer`] (or the producer) to another
/// thread; each endpoint is `Send` but deliberately not `Clone`.
pub fn spsc<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let ring = Arc::new(Ring::new(capacity));
    (
        RingProducer {
            ring: Arc::clone(&ring),
        },
        RingConsumer { ring },
    )
}

/// The producing endpoint of a [`spsc`] ring.
#[derive(Debug)]
pub struct RingProducer<T> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> RingProducer<T> {
    /// Attempts to enqueue one value; returns it back if the ring is full
    /// (the caller decides whether to back off or give up).
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= ring.slots.len() {
            return Err(value);
        }
        // A peer that panicked while holding the slot lock poisons it;
        // the Option protocol stays consistent regardless, so recover the
        // guard instead of propagating the panic into this thread.
        let mut slot = ring.slots[tail % ring.slots.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(slot.is_none(), "producer overran consumer");
        *slot = Some(value);
        drop(slot);
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues as many items from the front of `items` as fit; returns
    /// how many were moved. Items that do not fit stay in `items` (no
    /// drops — the caller retries after the consumer catches up).
    pub fn push_batch(&self, items: &mut Vec<T>) -> usize {
        // With a single producer the free-slot count can only grow while
        // this runs (the consumer drains concurrently), so one probe
        // bounds the whole batch safely.
        let want = (self.capacity() - self.len()).min(items.len());
        let mut moved = 0;
        // Cannot fail under the SPSC discipline (the probe bounds the
        // batch), but a lost value would be a leaked packet buffer — on a
        // refused push, keep the stragglers and put them back in order
        // instead of asserting.
        let mut leftover: Vec<T> = Vec::new();
        for value in items.drain(..want) {
            if leftover.is_empty() {
                match self.try_push(value) {
                    Ok(()) => moved += 1,
                    Err(v) => leftover.push(v),
                }
            } else {
                leftover.push(value);
            }
        }
        if !leftover.is_empty() {
            leftover.append(items);
            *items = leftover;
        }
        moved
    }

    /// Drains every queued value back out through the *producer* side.
    ///
    /// This deliberately breaks the SPSC role split and is only sound
    /// once the consumer is inert: the supervisor calls it after a worker
    /// shard's thread has died (panicked or exited) to salvage in-flight
    /// items for re-steering, and at shutdown to reclaim buffers. Values
    /// are appended to `into` in FIFO order; returns how many were
    /// salvaged.
    pub fn reclaim(&self, into: &mut Vec<T>) -> usize {
        let ring = &*self.ring;
        let mut moved = 0;
        loop {
            let head = ring.head.load(Ordering::Acquire);
            let tail = ring.tail.load(Ordering::Acquire);
            if head == tail {
                return moved;
            }
            let mut slot = ring.slots[head % ring.slots.len()]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(value) = slot.take() {
                into.push(value);
                moved += 1;
            }
            drop(slot);
            ring.head.store(head.wrapping_add(1), Ordering::Release);
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the ring has no free slot.
    pub fn is_full(&self) -> bool {
        self.len() >= self.ring.slots.len()
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

/// The consuming endpoint of a [`spsc`] ring.
#[derive(Debug)]
pub struct RingConsumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> RingConsumer<T> {
    /// Dequeues one value, or `None` if the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // See `try_push`: recover a poisoned slot lock rather than
        // cascading a peer's panic.
        let mut slot = ring.slots[head % ring.slots.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let value = slot.take();
        debug_assert!(value.is_some(), "consumer overran producer");
        drop(slot);
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Dequeues up to `max` values into `into`; returns how many arrived.
    pub fn pop_batch(&self, max: usize, into: &mut Vec<T>) -> usize {
        let mut moved = 0;
        while moved < max {
            let Some(v) = self.try_pop() else { break };
            into.push(v);
            moved += 1;
        }
        moved
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

/// Which pause a [`Backoff`] would take on its next unproductive poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffPhase {
    /// Busy-spin: the peer is expected to act within a few cycles.
    Spin,
    /// Yield the core to whoever holds the data we are waiting for.
    Yield,
    /// Sleep; each consecutive nap doubles up to the configured cap.
    Nap,
}

/// Busy-poll pacing for ring endpoints: spin briefly (the common case —
/// the peer is about to act), then yield the core, then sleep in naps
/// that grow *exponentially* — 2 µs doubling to a cap — so a worker
/// that has been idle for a while stops burning its CPU, yet wakes
/// quickly after a short stall. The spin budget and the nap cap are the
/// runtime's per-ring backoff knobs
/// ([`ParallelOpts::backoff_spins`](crate::parallel::ParallelOpts)).
///
/// `reset()` after productive work returns the machine to the spin
/// phase *and* shrinks the nap back to its floor, so one long idle
/// stretch cannot make the next stall start with a long sleep.
#[derive(Debug, Clone)]
pub struct Backoff {
    spins: u32,
    budget: u32,
    nap: std::time::Duration,
    max_nap: std::time::Duration,
}

/// First nap length once spins and yields are exhausted.
const NAP_FLOOR: std::time::Duration = std::time::Duration::from_micros(2);

/// Default ceiling for the exponential nap growth.
const NAP_CAP: std::time::Duration = std::time::Duration::from_micros(512);

impl Backoff {
    /// A backoff that spins `budget` times before yielding/sleeping,
    /// with the default nap cap.
    pub fn new(budget: u32) -> Backoff {
        Backoff::with_max_nap(budget, NAP_CAP)
    }

    /// A backoff with an explicit nap ceiling (per-ring tuning): short
    /// caps favor latency, long caps favor an idle core.
    pub fn with_max_nap(budget: u32, max_nap: std::time::Duration) -> Backoff {
        Backoff {
            spins: 0,
            budget,
            nap: NAP_FLOOR,
            max_nap: max_nap.max(NAP_FLOOR),
        }
    }

    /// The phase the next [`snooze`](Backoff::snooze) will execute.
    pub fn phase(&self) -> BackoffPhase {
        if self.spins < self.budget {
            BackoffPhase::Spin
        } else if self.spins < self.budget.saturating_mul(2).saturating_add(8) {
            BackoffPhase::Yield
        } else {
            BackoffPhase::Nap
        }
    }

    /// The nap the next [`snooze`](Backoff::snooze) would take if the
    /// machine is in (or reaches) the nap phase.
    pub fn next_nap(&self) -> std::time::Duration {
        self.nap
    }

    /// Records an unproductive poll and pauses accordingly.
    pub fn snooze(&mut self) {
        match self.phase() {
            BackoffPhase::Spin => {
                self.spins += 1;
                std::hint::spin_loop();
            }
            BackoffPhase::Yield => {
                self.spins += 1;
                std::thread::yield_now();
            }
            BackoffPhase::Nap => {
                // `park_timeout`, not `sleep`: a producer that knows this
                // endpoint's `Thread` can `unpark` it after a push (a
                // doorbell), cutting the nap short the moment work
                // arrives. Spurious or stale unparks only cost one extra
                // loop through the caller's poll.
                std::thread::park_timeout(self.nap);
                self.nap = self.nap.saturating_mul(2).min(self.max_nap);
            }
        }
    }

    /// Resets the pacing after productive work: back to the spin phase
    /// with the nap length at its floor.
    pub fn reset(&mut self) {
        self.spins = 0;
        self.nap = NAP_FLOOR;
    }
}

/// Occupancy-driven burst controller: grows the per-ring transfer burst
/// while the ring runs hot (amortizing hand-off cost over more packets)
/// and shrinks it while the ring runs cold (keeping latency low and the
/// peer busy). Replaces the fixed `batch_burst` on the sharded runtime's
/// enqueue and dequeue sides when
/// [`ParallelOpts::adaptive_burst`](crate::parallel::ParallelOpts) is on.
///
/// The rule is deliberately simple and branch-cheap: observe occupancy
/// after each transfer; above 3/4 capacity double the burst (up to
/// `max`), below 1/4 halve it (down to `min`). Hysteresis between the
/// two thresholds keeps the burst stable under steady load.
#[derive(Debug, Clone)]
pub struct AdaptiveBurst {
    cur: usize,
    min: usize,
    max: usize,
}

impl AdaptiveBurst {
    /// A controller starting at `initial`, clamped to `[min, max]`.
    pub fn new(initial: usize, min: usize, max: usize) -> AdaptiveBurst {
        let min = min.max(1);
        let max = max.max(min);
        AdaptiveBurst {
            cur: initial.clamp(min, max),
            min,
            max,
        }
    }

    /// A degenerate controller pinned at `n` — used when adaptive burst
    /// sizing is disabled so call sites need no branching.
    pub fn fixed(n: usize) -> AdaptiveBurst {
        let n = n.max(1);
        AdaptiveBurst::new(n, n, n)
    }

    /// The burst to use for the next transfer.
    pub fn get(&self) -> usize {
        self.cur
    }

    /// Feeds back the ring occupancy observed after a transfer.
    pub fn observe(&mut self, occupancy: usize, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if occupancy.saturating_mul(4) >= capacity.saturating_mul(3) {
            self.cur = self.cur.saturating_mul(2).min(self.max);
        } else if occupancy.saturating_mul(4) <= capacity {
            self.cur = (self.cur / 2).max(self.min);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_pops_nothing() {
        let (p, c) = spsc::<u32>(4);
        assert!(c.try_pop().is_none());
        assert!(p.is_empty() && c.is_empty());
        assert!(!p.is_full());
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    fn full_ring_rejects_push_and_recovers() {
        let (p, c) = spsc::<u32>(2);
        assert!(p.try_push(1).is_ok());
        assert!(p.try_push(2).is_ok());
        assert!(p.is_full());
        // Full: the value comes back, nothing is dropped.
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(c.try_pop(), Some(1));
        assert!(p.try_push(3).is_ok());
        assert_eq!(c.try_pop(), Some(2));
        assert_eq!(c.try_pop(), Some(3));
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn wraparound_preserves_fifo() {
        let (p, c) = spsc::<usize>(3);
        let mut next = 0usize;
        let mut expect = 0usize;
        for _ in 0..50 {
            while p.try_push(next).is_ok() {
                next += 1;
            }
            while let Some(v) = c.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn batch_enqueue_over_capacity_backpressures_without_drops() {
        let (p, c) = spsc::<u32>(4);
        let mut items: Vec<u32> = (0..10).collect();
        // Only 4 fit; the other 6 must remain queued on the caller side.
        assert_eq!(p.push_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(p.push_batch(&mut items), 0, "full ring accepts nothing");
        // Consumer catches up; the remainder goes through in order.
        let mut got = Vec::new();
        assert_eq!(c.pop_batch(usize::MAX, &mut got), 4);
        assert_eq!(p.push_batch(&mut items), 4);
        assert_eq!(p.push_batch(&mut items), 0, "full again until drained");
        assert_eq!(c.pop_batch(usize::MAX, &mut got), 4);
        assert_eq!(p.push_batch(&mut items), 2);
        assert!(items.is_empty());
        c.pop_batch(usize::MAX, &mut got);
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn pop_batch_respects_max() {
        let (p, c) = spsc::<u32>(8);
        let mut items: Vec<u32> = (0..6).collect();
        p.push_batch(&mut items);
        let mut got = Vec::new();
        assert_eq!(c.pop_batch(4, &mut got), 4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(c.pop_batch(4, &mut got), 2);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn two_thread_smoke_transfers_everything_in_order() {
        // The loom-free concurrency smoke test: a real producer thread
        // races a real consumer thread through a small ring, with
        // backpressure on both sides. Every value must arrive exactly
        // once, in order.
        const N: u64 = 20_000;
        let (p, c) = spsc::<u64>(8);
        let producer = std::thread::spawn(move || {
            let mut backoff = Backoff::new(64);
            for v in 0..N {
                loop {
                    match p.try_push(v) {
                        Ok(()) => {
                            backoff.reset();
                            break;
                        }
                        Err(_) => backoff.snooze(),
                    }
                }
            }
        });
        let mut backoff = Backoff::new(64);
        let mut expect = 0u64;
        while expect < N {
            match c.try_pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                    backoff.reset();
                }
                None => backoff.snooze(),
            }
        }
        producer.join().expect("producer thread");
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn backoff_snooze_terminates() {
        let mut b = Backoff::new(2);
        for _ in 0..10 {
            b.snooze();
        }
        b.reset();
        b.snooze();
    }

    #[test]
    fn backoff_walks_spin_yield_nap_in_order() {
        let mut b = Backoff::with_max_nap(2, std::time::Duration::from_micros(8));
        // budget = 2 → 2 spins, then yields until 2*2+8 = 12, then naps.
        assert_eq!(b.phase(), BackoffPhase::Spin);
        b.snooze();
        b.snooze();
        assert_eq!(b.phase(), BackoffPhase::Yield);
        for _ in 2..12 {
            assert_eq!(b.phase(), BackoffPhase::Yield);
            b.snooze();
        }
        assert_eq!(b.phase(), BackoffPhase::Nap);
    }

    #[test]
    fn backoff_naps_double_to_the_cap() {
        let cap = std::time::Duration::from_micros(16);
        let mut b = Backoff::with_max_nap(0, cap);
        // Skip the yield phase (8 yields at budget 0).
        for _ in 0..8 {
            b.snooze();
        }
        assert_eq!(b.phase(), BackoffPhase::Nap);
        let first = b.next_nap();
        assert_eq!(first, std::time::Duration::from_micros(2));
        b.snooze();
        assert_eq!(b.next_nap(), first * 2, "nap doubles after each sleep");
        b.snooze();
        b.snooze();
        b.snooze();
        assert_eq!(b.next_nap(), cap, "nap growth is capped");
        b.snooze();
        assert_eq!(b.next_nap(), cap, "stays at the cap");
    }

    #[test]
    fn backoff_reset_restores_spin_phase_and_nap_floor() {
        let mut b = Backoff::new(1);
        for _ in 0..64 {
            b.snooze();
        }
        assert_eq!(b.phase(), BackoffPhase::Nap);
        assert!(b.next_nap() > std::time::Duration::from_micros(2));
        b.reset();
        assert_eq!(b.phase(), BackoffPhase::Spin);
        assert_eq!(
            b.next_nap(),
            std::time::Duration::from_micros(2),
            "reset shrinks the nap back to the floor"
        );
    }

    #[test]
    fn backoff_nap_cap_never_below_floor() {
        let mut b = Backoff::with_max_nap(0, std::time::Duration::ZERO);
        for _ in 0..10 {
            b.snooze();
        }
        assert_eq!(b.next_nap(), std::time::Duration::from_micros(2));
    }

    #[test]
    fn adaptive_burst_grows_when_hot_and_shrinks_when_cold() {
        let mut ab = AdaptiveBurst::new(8, 1, 64);
        assert_eq!(ab.get(), 8);
        // Hot ring (≥ 3/4 full): burst doubles, capped at max.
        ab.observe(96, 128);
        assert_eq!(ab.get(), 16);
        ab.observe(128, 128);
        ab.observe(128, 128);
        assert_eq!(ab.get(), 64);
        ab.observe(128, 128);
        assert_eq!(ab.get(), 64, "capped at max");
        // Cold ring (≤ 1/4 full): burst halves, floored at min.
        ab.observe(32, 128);
        assert_eq!(ab.get(), 32);
        for _ in 0..10 {
            ab.observe(0, 128);
        }
        assert_eq!(ab.get(), 1, "floored at min");
        // Mid-band occupancy: hysteresis, no change.
        ab.observe(64, 128);
        assert_eq!(ab.get(), 1);
    }

    #[test]
    fn adaptive_burst_fixed_never_moves() {
        let mut ab = AdaptiveBurst::fixed(16);
        ab.observe(128, 128);
        assert_eq!(ab.get(), 16);
        ab.observe(0, 128);
        assert_eq!(ab.get(), 16);
    }

    #[test]
    fn adaptive_burst_clamps_constructor_arguments() {
        let ab = AdaptiveBurst::new(1000, 0, 32);
        assert_eq!(ab.get(), 32);
        let ab = AdaptiveBurst::new(0, 4, 32);
        assert_eq!(ab.get(), 4);
    }
}
