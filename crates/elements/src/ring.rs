//! Bounded single-producer/single-consumer ring queues — the transfer
//! fabric of the sharded runtime ([`crate::parallel`]).
//!
//! Each worker shard owns one inbound and one outbound ring; the
//! injection side and the TX-collection side hold the matching
//! endpoints. Capacity is fixed at construction, so a slow consumer
//! exerts *backpressure* on its producer (the producer spins with
//! [`Backoff`]) instead of growing a queue without bound or dropping.
//!
//! The implementation is safe Rust (`click-elements` forbids `unsafe`):
//! monotonically increasing head/tail counters published with
//! acquire/release atomics select a slot, and a per-slot `Mutex<Option<T>>`
//! hands the value across the thread boundary. With one producer and one
//! consumer every slot lock is uncontended — acquiring it is a single
//! compare-and-swap — so the ring still behaves like a classic lock-free
//! SPSC queue, without the `UnsafeCell` machinery one would use outside
//! a `forbid(unsafe_code)` crate. The [`spsc`] constructor returns
//! distinct [`RingProducer`]/[`RingConsumer`] endpoint types (neither is
//! `Clone`), so the single-producer/single-consumer discipline is
//! enforced by ownership rather than by convention.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The shared ring state behind a producer/consumer endpoint pair.
#[derive(Debug)]
struct Ring<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next sequence number to pop. Only the consumer stores it.
    head: AtomicUsize,
    /// Next sequence number to push. Only the producer stores it.
    tail: AtomicUsize,
}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Ring<T> {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

/// Creates a bounded SPSC ring of `capacity` slots, returning the two
/// endpoints. Move the [`RingConsumer`] (or the producer) to another
/// thread; each endpoint is `Send` but deliberately not `Clone`.
pub fn spsc<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let ring = Arc::new(Ring::new(capacity));
    (
        RingProducer {
            ring: Arc::clone(&ring),
        },
        RingConsumer { ring },
    )
}

/// The producing endpoint of a [`spsc`] ring.
#[derive(Debug)]
pub struct RingProducer<T> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> RingProducer<T> {
    /// Attempts to enqueue one value; returns it back if the ring is full
    /// (the caller decides whether to back off or give up).
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= ring.slots.len() {
            return Err(value);
        }
        // A peer that panicked while holding the slot lock poisons it;
        // the Option protocol stays consistent regardless, so recover the
        // guard instead of propagating the panic into this thread.
        let mut slot = ring.slots[tail % ring.slots.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(slot.is_none(), "producer overran consumer");
        *slot = Some(value);
        drop(slot);
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues as many items from the front of `items` as fit; returns
    /// how many were moved. Items that do not fit stay in `items` (no
    /// drops — the caller retries after the consumer catches up).
    pub fn push_batch(&self, items: &mut Vec<T>) -> usize {
        // With a single producer the free-slot count can only grow while
        // this runs (the consumer drains concurrently), so one probe
        // bounds the whole batch safely.
        let want = (self.capacity() - self.len()).min(items.len());
        let mut moved = 0;
        // Cannot fail under the SPSC discipline (the probe bounds the
        // batch), but a lost value would be a leaked packet buffer — on a
        // refused push, keep the stragglers and put them back in order
        // instead of asserting.
        let mut leftover: Vec<T> = Vec::new();
        for value in items.drain(..want) {
            if leftover.is_empty() {
                match self.try_push(value) {
                    Ok(()) => moved += 1,
                    Err(v) => leftover.push(v),
                }
            } else {
                leftover.push(value);
            }
        }
        if !leftover.is_empty() {
            leftover.append(items);
            *items = leftover;
        }
        moved
    }

    /// Drains every queued value back out through the *producer* side.
    ///
    /// This deliberately breaks the SPSC role split and is only sound
    /// once the consumer is inert: the supervisor calls it after a worker
    /// shard's thread has died (panicked or exited) to salvage in-flight
    /// items for re-steering, and at shutdown to reclaim buffers. Values
    /// are appended to `into` in FIFO order; returns how many were
    /// salvaged.
    pub fn reclaim(&self, into: &mut Vec<T>) -> usize {
        let ring = &*self.ring;
        let mut moved = 0;
        loop {
            let head = ring.head.load(Ordering::Acquire);
            let tail = ring.tail.load(Ordering::Acquire);
            if head == tail {
                return moved;
            }
            let mut slot = ring.slots[head % ring.slots.len()]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(value) = slot.take() {
                into.push(value);
                moved += 1;
            }
            drop(slot);
            ring.head.store(head.wrapping_add(1), Ordering::Release);
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the ring has no free slot.
    pub fn is_full(&self) -> bool {
        self.len() >= self.ring.slots.len()
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

/// The consuming endpoint of a [`spsc`] ring.
#[derive(Debug)]
pub struct RingConsumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> RingConsumer<T> {
    /// Dequeues one value, or `None` if the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // See `try_push`: recover a poisoned slot lock rather than
        // cascading a peer's panic.
        let mut slot = ring.slots[head % ring.slots.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let value = slot.take();
        debug_assert!(value.is_some(), "consumer overran producer");
        drop(slot);
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Dequeues up to `max` values into `into`; returns how many arrived.
    pub fn pop_batch(&self, max: usize, into: &mut Vec<T>) -> usize {
        let mut moved = 0;
        while moved < max {
            let Some(v) = self.try_pop() else { break };
            into.push(v);
            moved += 1;
        }
        moved
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

/// Busy-poll pacing for ring endpoints: spin briefly (the common case —
/// the peer is about to act), then yield the core, then sleep in short
/// naps so an idle worker does not monopolize a CPU. The spin budget is
/// the runtime's backoff knob
/// ([`ParallelOpts::backoff_spins`](crate::parallel::ParallelOpts)).
#[derive(Debug, Clone)]
pub struct Backoff {
    spins: u32,
    budget: u32,
}

/// Nap length once the spin budget is exhausted.
const NAP: std::time::Duration = std::time::Duration::from_micros(50);

impl Backoff {
    /// A backoff that spins `budget` times before yielding/sleeping.
    pub fn new(budget: u32) -> Backoff {
        Backoff { spins: 0, budget }
    }

    /// Records an unproductive poll and pauses accordingly.
    pub fn snooze(&mut self) {
        if self.spins < self.budget {
            self.spins += 1;
            std::hint::spin_loop();
        } else if self.spins < self.budget.saturating_mul(2).saturating_add(8) {
            self.spins += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(NAP);
        }
    }

    /// Resets the pacing after productive work.
    pub fn reset(&mut self) {
        self.spins = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_pops_nothing() {
        let (p, c) = spsc::<u32>(4);
        assert!(c.try_pop().is_none());
        assert!(p.is_empty() && c.is_empty());
        assert!(!p.is_full());
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    fn full_ring_rejects_push_and_recovers() {
        let (p, c) = spsc::<u32>(2);
        assert!(p.try_push(1).is_ok());
        assert!(p.try_push(2).is_ok());
        assert!(p.is_full());
        // Full: the value comes back, nothing is dropped.
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(c.try_pop(), Some(1));
        assert!(p.try_push(3).is_ok());
        assert_eq!(c.try_pop(), Some(2));
        assert_eq!(c.try_pop(), Some(3));
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn wraparound_preserves_fifo() {
        let (p, c) = spsc::<usize>(3);
        let mut next = 0usize;
        let mut expect = 0usize;
        for _ in 0..50 {
            while p.try_push(next).is_ok() {
                next += 1;
            }
            while let Some(v) = c.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn batch_enqueue_over_capacity_backpressures_without_drops() {
        let (p, c) = spsc::<u32>(4);
        let mut items: Vec<u32> = (0..10).collect();
        // Only 4 fit; the other 6 must remain queued on the caller side.
        assert_eq!(p.push_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(p.push_batch(&mut items), 0, "full ring accepts nothing");
        // Consumer catches up; the remainder goes through in order.
        let mut got = Vec::new();
        assert_eq!(c.pop_batch(usize::MAX, &mut got), 4);
        assert_eq!(p.push_batch(&mut items), 4);
        assert_eq!(p.push_batch(&mut items), 0, "full again until drained");
        assert_eq!(c.pop_batch(usize::MAX, &mut got), 4);
        assert_eq!(p.push_batch(&mut items), 2);
        assert!(items.is_empty());
        c.pop_batch(usize::MAX, &mut got);
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn pop_batch_respects_max() {
        let (p, c) = spsc::<u32>(8);
        let mut items: Vec<u32> = (0..6).collect();
        p.push_batch(&mut items);
        let mut got = Vec::new();
        assert_eq!(c.pop_batch(4, &mut got), 4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(c.pop_batch(4, &mut got), 2);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn two_thread_smoke_transfers_everything_in_order() {
        // The loom-free concurrency smoke test: a real producer thread
        // races a real consumer thread through a small ring, with
        // backpressure on both sides. Every value must arrive exactly
        // once, in order.
        const N: u64 = 20_000;
        let (p, c) = spsc::<u64>(8);
        let producer = std::thread::spawn(move || {
            let mut backoff = Backoff::new(64);
            for v in 0..N {
                loop {
                    match p.try_push(v) {
                        Ok(()) => {
                            backoff.reset();
                            break;
                        }
                        Err(_) => backoff.snooze(),
                    }
                }
            }
        });
        let mut backoff = Backoff::new(64);
        let mut expect = 0u64;
        while expect < N {
            match c.try_pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                    backoff.reset();
                }
                None => backoff.snooze(),
            }
        }
        producer.join().expect("producer thread");
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn backoff_snooze_terminates() {
        let mut b = Backoff::new(2);
        for _ in 0..10 {
            b.snooze();
        }
        b.reset();
        b.snooze();
    }
}
