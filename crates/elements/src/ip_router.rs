//! The reference IP router of the paper's Figure 1, generated as Click
//! source for any number of interfaces — so the optimization tools can
//! parse and transform it exactly as the paper's tools did.
//!
//! The forwarding path visits the paper's sixteen elements:
//! `PollDevice → Classifier → Paint → Strip → CheckIPHeader →
//! GetIPAddress → StaticIPLookup → DropBroadcasts → PaintTee →
//! IPGWOptions → FixIPSrc → DecIPTTL → IPFragmenter → ARPQuerier →
//! Queue → ToDevice`.

use crate::headers::{ip_to_string, mac_to_string};
use std::fmt::Write as _;

/// One router interface: device name, addresses, and its point-to-point
/// neighbor (whose ARP entry is pre-seeded, modeling a warm ARP cache on
/// the closed testbed).
#[derive(Debug, Clone)]
pub struct Interface {
    /// Device name (`eth0`).
    pub device: String,
    /// The router's IP address on this interface.
    pub ip: u32,
    /// The router's MAC address on this interface.
    pub mac: [u8; 6],
    /// The attached subnet (network address).
    pub network: u32,
    /// Subnet prefix length.
    pub prefix_len: u8,
    /// Neighbor host IP on this link.
    pub neighbor_ip: u32,
    /// Neighbor host MAC.
    pub neighbor_mac: [u8; 6],
}

impl Interface {
    /// The standard addressing for interface `i`: router `10.0.i.1/24`,
    /// neighbor host `10.0.i.2`.
    pub fn standard(i: usize) -> Interface {
        let i8 = u8::try_from(i).expect("at most 256 interfaces");
        Interface {
            device: format!("eth{i}"),
            ip: u32::from_be_bytes([10, 0, i8, 1]),
            mac: [0x00, 0x00, 0xC0, 0x01, i8, 0x01],
            network: u32::from_be_bytes([10, 0, i8, 0]),
            prefix_len: 24,
            neighbor_ip: u32::from_be_bytes([10, 0, i8, 2]),
            neighbor_mac: [0x00, 0x00, 0xAA, 0x02, i8, 0x02],
        }
    }
}

/// Parameters of a generated IP router configuration.
#[derive(Debug, Clone)]
pub struct IpRouterSpec {
    /// The interfaces.
    pub interfaces: Vec<Interface>,
    /// Per-interface output queue capacity.
    pub queue_capacity: usize,
    /// Interface MTU.
    pub mtu: usize,
}

impl IpRouterSpec {
    /// A standard `n`-interface router (the paper's testbed used eight
    /// 100 Mbit/s interfaces on the router host).
    pub fn standard(n: usize) -> IpRouterSpec {
        IpRouterSpec {
            interfaces: (0..n).map(Interface::standard).collect(),
            queue_capacity: 1000,
            mtu: 1500,
        }
    }

    /// The Click source for the full Figure-1 router.
    pub fn config(&self) -> String {
        let n = self.interfaces.len();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// {n}-interface standards-compliant IP router (paper Figure 1)"
        );

        // Shared routing table: one subnet route per interface.
        let routes: Vec<String> = self
            .interfaces
            .iter()
            .enumerate()
            .map(|(i, iface)| format!("{}/{} {}", ip_to_string(iface.network), iface.prefix_len, i))
            .collect();
        let _ = writeln!(out, "rt :: StaticIPLookup({});", routes.join(", "));

        for (i, iface) in self.interfaces.iter().enumerate() {
            let ip = ip_to_string(iface.ip);
            let mac = mac_to_string(iface.mac);
            let nip = ip_to_string(iface.neighbor_ip);
            let nmac = mac_to_string(iface.neighbor_mac);
            let dev = &iface.device;
            let _ = writeln!(out, "\n// interface {i} ({dev}, {ip})");
            // Input path.
            let _ = writeln!(out, "pd{i} :: PollDevice({dev});");
            let _ = writeln!(
                out,
                "c{i} :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);"
            );
            let _ = writeln!(out, "pd{i} -> c{i};");
            // ARP requests: answer them, out our own queue.
            let _ = writeln!(out, "ar{i} :: ARPResponder({ip} {mac});");
            let _ = writeln!(
                out,
                "c{i} [0] -> ar{i} -> q{i} :: Queue({});",
                self.queue_capacity
            );
            // ARP replies: feed the querier.
            let _ = writeln!(
                out,
                "c{i} [1] -> [1] aq{i} :: ARPQuerier({ip}, {mac}, {nip} {nmac});"
            );
            // IP packets: the forwarding path into the shared lookup.
            let _ = writeln!(
                out,
                "c{i} [2] -> Paint({}) -> Strip(14) -> CheckIPHeader -> GetIPAddress(16) -> rt;",
                i + 1
            );
            // Everything else.
            let _ = writeln!(out, "c{i} [3] -> Discard;");
            // Output path.
            let _ = writeln!(
                out,
                "rt [{i}] -> DropBroadcasts -> pt{i} :: PaintTee({});",
                i + 1
            );
            let _ = writeln!(out, "pt{i} [1] -> ICMPError({ip}, 5, 1) -> rt;");
            let _ = writeln!(out, "pt{i} [0] -> gio{i} :: IPGWOptions;");
            let _ = writeln!(out, "gio{i} [1] -> ICMPError({ip}, 12, 0) -> rt;");
            let _ = writeln!(out, "gio{i} [0] -> FixIPSrc({ip}) -> dt{i} :: DecIPTTL;");
            let _ = writeln!(out, "dt{i} [1] -> ICMPError({ip}, 11, 0) -> rt;");
            let _ = writeln!(out, "dt{i} [0] -> fr{i} :: IPFragmenter({});", self.mtu);
            let _ = writeln!(out, "fr{i} [1] -> ICMPError({ip}, 3, 4) -> rt;");
            let _ = writeln!(out, "fr{i} [0] -> [0] aq{i};");
            let _ = writeln!(out, "aq{i} -> q{i};");
            let _ = writeln!(out, "q{i} -> ToDevice({dev});");
        }
        out
    }
}

/// The "Simple" configuration of the paper's evaluation: "the minimal
/// configuration, consisting only of device handling and a single packet
/// queue" — here one `PollDevice → Queue → ToDevice` path per
/// input/output interface pair.
///
/// `pairs` maps input device index to output device index.
pub fn simple_config(pairs: &[(usize, usize)], queue_capacity: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// minimal device-to-device configuration (\"Simple\")"
    );
    for (k, &(i, o)) in pairs.iter().enumerate() {
        let _ = writeln!(
            out,
            "PollDevice(eth{i}) -> sq{k} :: Queue({queue_capacity}); sq{k} -> ToDevice(eth{o});"
        );
    }
    out
}

/// Builds the standard forwarded test packet: a 64-byte-on-the-wire UDP
/// packet from interface `src`'s neighbor to interface `dst`'s neighbor.
pub fn test_packet(spec: &IpRouterSpec, src: usize, dst: usize) -> crate::packet::Packet {
    test_packet_flow(spec, src, dst, 1234, 5678)
}

/// Like [`test_packet`], but with explicit UDP ports — distinct ports
/// make distinct flows for the RSS-steered parallel runtime and its cost
/// model (the 5-tuple hash spreads them across shards).
pub fn test_packet_flow(
    spec: &IpRouterSpec,
    src: usize,
    dst: usize,
    sport: u16,
    dport: u16,
) -> crate::packet::Packet {
    let s = &spec.interfaces[src];
    let d = &spec.interfaces[dst];
    crate::headers::build_udp_packet(
        s.neighbor_mac,
        s.mac, // addressed to the router
        s.neighbor_ip,
        d.neighbor_ip,
        sport,
        dport,
        18,
        64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::{ether, ipv4};
    use crate::router::DynRouter;
    use click_core::check::check;
    use click_core::lang::read_config;
    use click_core::registry::Library;

    #[test]
    fn config_parses_and_checks_clean() {
        for n in [2usize, 4, 8] {
            let spec = IpRouterSpec::standard(n);
            let graph = read_config(&spec.config()).unwrap();
            let report = check(&graph, &Library::standard());
            assert!(
                report.is_ok(),
                "{n}-interface router has errors: {:?}",
                report.errors().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn forwarding_path_element_count_matches_paper() {
        // Paper §3: sixteen elements on the forwarding path.
        let path = [
            "PollDevice",
            "Classifier",
            "Paint",
            "Strip",
            "CheckIPHeader",
            "GetIPAddress",
            "StaticIPLookup",
            "DropBroadcasts",
            "PaintTee",
            "IPGWOptions",
            "FixIPSrc",
            "DecIPTTL",
            "IPFragmenter",
            "ARPQuerier",
            "Queue",
            "ToDevice",
        ];
        assert_eq!(path.len(), 16);
        let spec = IpRouterSpec::standard(2);
        let graph = read_config(&spec.config()).unwrap();
        for class in path {
            assert!(
                graph.elements().any(|(_, e)| e.class() == class),
                "missing {class} in generated router"
            );
        }
    }

    #[test]
    fn router_forwards_udp_between_interfaces() {
        let spec = IpRouterSpec::standard(2);
        let graph = read_config(&spec.config()).unwrap();
        let mut r = DynRouter::from_graph(&graph, &Library::standard()).unwrap();
        let eth0 = r.devices.id("eth0").unwrap();
        let eth1 = r.devices.id("eth1").unwrap();

        let p = test_packet(&spec, 0, 1);
        r.devices.inject(eth0, p.clone());
        r.run_until_idle(1000);

        let tx = r.devices.take_tx(eth1);
        assert_eq!(tx.len(), 1, "packet should emerge on eth1");
        let d = tx[0].data();
        // Re-encapsulated with interface 1's addresses.
        assert_eq!(ether::src(d), spec.interfaces[1].mac);
        assert_eq!(ether::dst(d), spec.interfaces[1].neighbor_mac);
        assert_eq!(ether::ethertype(d), ether::TYPE_IP);
        let ip = &d[14..];
        assert_eq!(ipv4::ttl(ip), 63, "TTL decremented");
        assert!(ipv4::checksum_ok(ip));
        assert_eq!(ipv4::dst(ip), spec.interfaces[1].neighbor_ip);
    }

    #[test]
    fn router_answers_arp_requests() {
        let spec = IpRouterSpec::standard(2);
        let graph = read_config(&spec.config()).unwrap();
        let mut r = DynRouter::from_graph(&graph, &Library::standard()).unwrap();
        let eth0 = r.devices.id("eth0").unwrap();

        let mut req = crate::packet::Packet::new(14 + 28);
        {
            let d = req.data_mut();
            ether::write(
                d,
                ether::BROADCAST,
                spec.interfaces[0].neighbor_mac,
                ether::TYPE_ARP,
            );
            crate::headers::arp::write(
                &mut d[14..],
                crate::headers::arp::OP_REQUEST,
                spec.interfaces[0].neighbor_mac,
                spec.interfaces[0].neighbor_ip,
                [0; 6],
                spec.interfaces[0].ip,
            );
        }
        r.devices.inject(eth0, req);
        r.run_until_idle(1000);
        let tx = r.devices.take_tx(eth0);
        assert_eq!(tx.len(), 1, "ARP reply should go back out eth0");
        let d = tx[0].data();
        assert_eq!(ether::ethertype(d), ether::TYPE_ARP);
        assert_eq!(
            crate::headers::arp::opcode(&d[14..]),
            crate::headers::arp::OP_REPLY
        );
        assert_eq!(
            crate::headers::arp::sender_eth(&d[14..]),
            spec.interfaces[0].mac
        );
    }

    #[test]
    fn ttl_expiry_generates_icmp_back_to_source() {
        let spec = IpRouterSpec::standard(2);
        let graph = read_config(&spec.config()).unwrap();
        let mut r = DynRouter::from_graph(&graph, &Library::standard()).unwrap();
        let eth0 = r.devices.id("eth0").unwrap();

        let mut p = test_packet(&spec, 0, 1);
        {
            let ip = &mut p.data_mut()[14..];
            ip[8] = 1; // TTL 1: expires at the router
            ipv4::set_checksum(ip);
        }
        r.devices.inject(eth0, p);
        r.run_until_idle(1000);

        // The ICMP time-exceeded goes back toward the source (eth0).
        let tx = r.devices.take_tx(eth0);
        assert_eq!(tx.len(), 1, "ICMP error should emerge on eth0");
        let ip = &tx[0].data()[14..];
        assert_eq!(ipv4::protocol(ip), ipv4::PROTO_ICMP);
        assert_eq!(ip[20], 11, "time exceeded");
        assert_eq!(ipv4::dst(ip), spec.interfaces[0].neighbor_ip);
        assert_eq!(ipv4::src(ip), spec.interfaces[0].ip, "FixIPSrc applied");
        assert!(ipv4::checksum_ok(ip));
    }

    #[test]
    fn non_ip_non_arp_is_discarded() {
        let spec = IpRouterSpec::standard(2);
        let graph = read_config(&spec.config()).unwrap();
        let mut r = DynRouter::from_graph(&graph, &Library::standard()).unwrap();
        let eth0 = r.devices.id("eth0").unwrap();
        let mut p = crate::packet::Packet::new(60);
        ether::write(p.data_mut(), spec.interfaces[0].mac, [9; 6], 0x86DD); // IPv6
        r.devices.inject(eth0, p);
        r.run_until_idle(1000);
        assert_eq!(r.class_stat("Discard", "count"), 1);
    }

    #[test]
    fn simple_config_moves_packets_straight_through() {
        let text = simple_config(&[(0, 1), (2, 3)], 64);
        let graph = read_config(&text).unwrap();
        let mut r = DynRouter::from_graph(&graph, &Library::standard()).unwrap();
        let eth0 = r.devices.id("eth0").unwrap();
        let eth1 = r.devices.id("eth1").unwrap();
        for _ in 0..10 {
            r.devices.inject(eth0, crate::packet::Packet::new(60));
        }
        r.run_until_idle(1000);
        assert_eq!(r.devices.tx_len(eth1), 10);
    }

    #[test]
    fn eight_interface_router_forwards_all_pairs() {
        let spec = IpRouterSpec::standard(8);
        let graph = read_config(&spec.config()).unwrap();
        let mut r = DynRouter::from_graph(&graph, &Library::standard()).unwrap();
        for src in 0..4usize {
            let dst = src + 4;
            let dev = r.devices.id(&format!("eth{src}")).unwrap();
            r.devices.inject(dev, test_packet(&spec, src, dst));
        }
        r.run_until_idle(2000);
        for dst in 4..8usize {
            let dev = r.devices.id(&format!("eth{dst}")).unwrap();
            assert_eq!(
                r.devices.tx_len(dev),
                1,
                "eth{dst} should transmit one packet"
            );
        }
    }
}
