//! The devirtualized element store.
//!
//! `click-devirtualize` "addresses virtual function call overhead by
//! changing packet-transfer virtual function calls into conventional
//! function calls" (paper §6.1). Rust's analogue: instead of
//! `Box<dyn Element>` and vtable dispatch, [`FastElement`] is an enum over
//! the concrete element types, so every transfer is a direct, inlinable
//! `match` on a discriminant — no indirect branch for the BTB to
//! mispredict, and element state lives inline.
//!
//! Classes without a variant fall back to boxed dynamic dispatch, so a
//! [`CompiledRouter`] runs *any* configuration; only the hot classes gain.

use crate::batch::{BatchEmitter, PacketBatch};
use crate::element::{CreateCtx, Element, Emitter, PullContext, TaskContext};
use crate::elements::{basic, classify, combo, device, ether, ip, queueing};
use crate::packet::Packet;
use crate::router::{Router, Slot};
use crate::swap::ElementState;
use click_core::error::Result;
use click_core::registry::{devirt_base, FASTCLASSIFIER_PREFIX, FASTIPFILTER_PREFIX};
use std::cell::Cell;
use std::rc::Rc;

macro_rules! fast_elements {
    ($( $variant:ident ( $ty:ty ) ),* $(,)?) => {
        /// An element stored inline and dispatched by `match` — the
        /// devirtualized counterpart of `Box<dyn Element>`.
        pub enum FastElement {
            $(
                #[doc = concat!("Inline `", stringify!($variant), "`.")]
                $variant($ty),
            )*
            /// Fallback: a class without an inline variant.
            Dyn(Box<dyn Element>),
        }

        impl FastElement {
            /// A short label for the chosen storage (used by tests).
            pub fn storage(&self) -> &'static str {
                match self {
                    $( FastElement::$variant(_) => stringify!($variant), )*
                    FastElement::Dyn(_) => "Dyn",
                }
            }
        }

        impl Slot for FastElement {
            fn create(class: &str, config: &str, ctx: &mut CreateCtx) -> Result<Self> {
                if class.starts_with(FASTCLASSIFIER_PREFIX) || class.starts_with(FASTIPFILTER_PREFIX) {
                    return Ok(FastElement::FastClassifier(
                        classify::FastClassifierElement::from_config(class, config, ctx)?,
                    ));
                }
                let base = devirt_base(class).unwrap_or(class);
                Ok(match base {
                    "Paint" => FastElement::Paint(basic::Paint::from_config(config, ctx)?),
                    "PaintTee" => FastElement::PaintTee(basic::PaintTee::from_config(config, ctx)?),
                    "CheckPaint" => FastElement::CheckPaint(basic::CheckPaint::from_config(config, ctx)?),
                    "Strip" => FastElement::Strip(basic::Strip::from_config(config, ctx)?),
                    "Counter" => FastElement::Counter(basic::Counter::from_config(config, ctx)?),
                    "Discard" => FastElement::Discard(basic::Discard::from_config(config, ctx)?),
                    "Tee" => FastElement::Tee(basic::Tee::from_config(config, ctx)?),
                    "Null" => FastElement::Null(basic::Null::from_config(config, ctx)?),
                    "Queue" => FastElement::Queue(queueing::Queue::from_config(config, ctx)?),
                    "RED" => FastElement::Red(queueing::Red::from_config(config, ctx)?),
                    "EtherEncap" | "EtherEncapCombo" => {
                        FastElement::EtherEncap(ether::EtherEncap::from_config(config, ctx)?)
                    }
                    "ARPQuerier" => FastElement::ArpQuerier(ether::ArpQuerier::from_config(config, ctx)?),
                    "ARPResponder" => {
                        FastElement::ArpResponder(ether::ArpResponder::from_config(config, ctx)?)
                    }
                    "CheckIPHeader" => {
                        FastElement::CheckIPHeader(ip::CheckIPHeader::from_config(config, ctx)?)
                    }
                    "GetIPAddress" => {
                        FastElement::GetIPAddress(ip::GetIPAddress::from_config(config, ctx)?)
                    }
                    "DropBroadcasts" => {
                        FastElement::DropBroadcasts(ip::DropBroadcasts::from_config(config, ctx)?)
                    }
                    "IPGWOptions" => FastElement::IPGWOptions(ip::IPGWOptions::from_config(config, ctx)?),
                    "FixIPSrc" => FastElement::FixIPSrc(ip::FixIPSrc::from_config(config, ctx)?),
                    "DecIPTTL" => FastElement::DecIPTTL(ip::DecIPTTL::from_config(config, ctx)?),
                    "IPFragmenter" => {
                        FastElement::IPFragmenter(ip::IPFragmenter::from_config(config, ctx)?)
                    }
                    "ICMPError" => FastElement::ICMPError(ip::ICMPError::from_config(config, ctx)?),
                    "StaticIPLookup" => {
                        FastElement::StaticIPLookup(ip::StaticIPLookup::from_config(config, ctx)?)
                    }
                    "LookupIPRoute" => {
                        FastElement::StaticIPLookup(ip::StaticIPLookup::lookup_ip_route(config, ctx)?)
                    }
                    "Classifier" => {
                        FastElement::Classifier(classify::ClassifierElement::classifier(config, ctx)?)
                    }
                    "IPClassifier" => {
                        FastElement::Classifier(classify::ClassifierElement::ip_classifier(config, ctx)?)
                    }
                    "IPFilter" => {
                        FastElement::Classifier(classify::ClassifierElement::ip_filter(config, ctx)?)
                    }
                    "IPInputCombo" => {
                        FastElement::IPInputCombo(combo::IPInputCombo::from_config(config, ctx)?)
                    }
                    "IPOutputCombo" => {
                        FastElement::IPOutputCombo(combo::IPOutputCombo::from_config(config, ctx)?)
                    }
                    "FromDevice" => FastElement::FromDevice(device::FromDevice::from_config(config, ctx)?),
                    "PollDevice" => FastElement::FromDevice(device::FromDevice::poll_device(config, ctx)?),
                    "ToDevice" => FastElement::ToDevice(device::ToDevice::from_config(config, ctx)?),
                    "RouterLink" | "Unqueue" => {
                        FastElement::RouterLink(device::RouterLink::from_config(config, ctx)?)
                    }
                    _ => FastElement::Dyn(crate::elements::create_element(class, config, ctx)?),
                })
            }

            #[inline]
            fn push(&mut self, port: usize, p: Packet, out: &mut Emitter) {
                match self {
                    $( FastElement::$variant(e) => e.push(port, p, out), )*
                    FastElement::Dyn(e) => e.push(port, p, out),
                }
            }

            #[inline]
            fn pull<C: PullContext>(&mut self, port: usize, ctx: &mut C) -> Option<Packet> {
                match self {
                    $( FastElement::$variant(e) => e.pull(port, ctx), )*
                    FastElement::Dyn(e) => e.pull(port, ctx),
                }
            }

            #[inline]
            fn push_batch(&mut self, port: usize, batch: PacketBatch, out: &mut BatchEmitter) {
                match self {
                    $( FastElement::$variant(e) => e.push_batch(port, batch, out), )*
                    FastElement::Dyn(e) => e.push_batch(port, batch, out),
                }
            }

            #[inline]
            fn pull_batch<C: PullContext>(
                &mut self,
                port: usize,
                max: usize,
                ctx: &mut C,
                into: &mut PacketBatch,
            ) -> usize {
                match self {
                    $( FastElement::$variant(e) => e.pull_batch(port, max, ctx, into), )*
                    FastElement::Dyn(e) => e.pull_batch(port, max, ctx, into),
                }
            }

            fn is_task(&self) -> bool {
                match self {
                    $( FastElement::$variant(e) => e.is_task(), )*
                    FastElement::Dyn(e) => e.is_task(),
                }
            }

            fn run_task(&mut self, ctx: &mut dyn TaskContext) -> usize {
                match self {
                    $( FastElement::$variant(e) => e.run_task(ctx), )*
                    FastElement::Dyn(e) => e.run_task(ctx),
                }
            }

            fn stat(&self, name: &str) -> Option<u64> {
                match self {
                    $( FastElement::$variant(e) => e.stat(name), )*
                    FastElement::Dyn(e) => e.stat(name),
                }
            }

            fn queue_depth_handle(&self) -> Option<Rc<Cell<usize>>> {
                match self {
                    $( FastElement::$variant(e) => e.queue_depth_handle(), )*
                    FastElement::Dyn(e) => e.queue_depth_handle(),
                }
            }

            fn attach_downstream_queue(&mut self, handle: Rc<Cell<usize>>) {
                match self {
                    $( FastElement::$variant(e) => e.attach_downstream_queue(handle), )*
                    FastElement::Dyn(e) => e.attach_downstream_queue(handle),
                }
            }

            fn take_state(&mut self) -> Option<ElementState> {
                match self {
                    $( FastElement::$variant(e) => e.take_state(), )*
                    FastElement::Dyn(e) => e.take_state(),
                }
            }

            fn restore_state(&mut self, state: ElementState) {
                match self {
                    $( FastElement::$variant(e) => e.restore_state(state), )*
                    FastElement::Dyn(e) => e.restore_state(state),
                }
            }
        }
    };
}

fast_elements! {
    Paint(basic::Paint),
    PaintTee(basic::PaintTee),
    CheckPaint(basic::CheckPaint),
    Strip(basic::Strip),
    Counter(basic::Counter),
    Discard(basic::Discard),
    Tee(basic::Tee),
    Null(basic::Null),
    Queue(queueing::Queue),
    Red(queueing::Red),
    EtherEncap(ether::EtherEncap),
    ArpQuerier(ether::ArpQuerier),
    ArpResponder(ether::ArpResponder),
    CheckIPHeader(ip::CheckIPHeader),
    GetIPAddress(ip::GetIPAddress),
    DropBroadcasts(ip::DropBroadcasts),
    IPGWOptions(ip::IPGWOptions),
    FixIPSrc(ip::FixIPSrc),
    DecIPTTL(ip::DecIPTTL),
    IPFragmenter(ip::IPFragmenter),
    ICMPError(ip::ICMPError),
    StaticIPLookup(ip::StaticIPLookup),
    Classifier(classify::ClassifierElement),
    FastClassifier(classify::FastClassifierElement),
    IPInputCombo(combo::IPInputCombo),
    IPOutputCombo(combo::IPOutputCombo),
    FromDevice(device::FromDevice),
    ToDevice(device::ToDevice),
    RouterLink(device::RouterLink),
}

/// A router whose elements dispatch statically through [`FastElement`] —
/// the devirtualized runtime.
pub type CompiledRouter = Router<FastElement>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::DynRouter;
    use click_core::lang::read_config;
    use click_core::registry::Library;

    fn both(src: &str) -> (DynRouter, CompiledRouter) {
        let graph = read_config(src).unwrap();
        let lib = Library::standard();
        (
            Router::from_graph(&graph, &lib).unwrap(),
            Router::from_graph(&graph, &lib).unwrap(),
        )
    }

    #[test]
    fn fast_store_uses_inline_variants() {
        let mut ctx = CreateCtx::new();
        let e = FastElement::create("Counter", "", &mut ctx).unwrap();
        assert_eq!(e.storage(), "Counter");
        let dv = FastElement::create("Counter__DV3", "", &mut ctx).unwrap();
        assert_eq!(dv.storage(), "Counter");
        let fc =
            FastElement::create("FastClassifier@@c", "fast constant 1 out0", &mut ctx).unwrap();
        assert_eq!(fc.storage(), "FastClassifier");
        let other = FastElement::create("Idle", "", &mut ctx).unwrap();
        assert_eq!(other.storage(), "Dyn");
    }

    #[test]
    fn compiled_router_matches_dyn_router() {
        let src = "FromDevice(in0) -> c :: Classifier(12/0800, -) ; \
                   c [0] -> Strip(14) -> CheckIPHeader -> Counter -> Unstrip(14) -> q :: Queue(64); \
                   c [1] -> q; q -> ToDevice(out0);";
        let (mut a, mut b) = both(src);
        let in_a = a.devices.id("in0").unwrap();
        let out_a = a.devices.id("out0").unwrap();
        let in_b = b.devices.id("in0").unwrap();
        let out_b = b.devices.id("out0").unwrap();
        for i in 0..20u8 {
            let mut p = crate::headers::build_udp_packet(
                [1; 6],
                [2; 6],
                0x0A000001,
                0x0A000100 + u32::from(i),
                1,
                2,
                18,
                64,
            );
            if i % 3 == 0 {
                p.data_mut()[12] = 0x86; // not IP: takes the other branch
            }
            a.devices.inject(in_a, p.clone());
            b.devices.inject(in_b, p);
        }
        a.run_until_idle(1000);
        b.run_until_idle(1000);
        let ta = a.devices.take_tx(out_a);
        let tb = b.devices.take_tx(out_b);
        assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(&tb) {
            assert_eq!(x.data(), y.data());
        }
        assert_eq!(a.stat("c", "drops"), b.stat("c", "drops"));
    }
}
