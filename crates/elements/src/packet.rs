//! The packet abstraction.
//!
//! "The Click packet abstraction is a thin veneer over the Linux kernel's
//! sk_buff" (paper §3): a contiguous byte buffer with headroom and tailroom
//! so headers can be stripped and prepended without copying, plus a small
//! set of annotations (paint, destination IP address, receiving device)
//! that elements use to communicate out of band.

use std::cell::RefCell;
use std::fmt;

/// Default headroom reserved in front of packet data.
///
/// Room for a re-prepended Ethernet header plus slack, while landing the
/// default data pointer at offset 2 mod 4 — the classic NIC trick that
/// makes the IP header word-aligned after a 14-byte Ethernet header is
/// stripped (see `click-align`).
pub const DEFAULT_HEADROOM: usize = 30;

/// Default tailroom reserved after packet data.
pub const DEFAULT_TAILROOM: usize = 64;

/// Most buffers the thread-local packet pool will hold before retired
/// buffers are released to the allocator instead.
const POOL_CAPACITY: usize = 8192;

/// Buffers larger than this are not pooled (a jumbo buffer would pin too
/// much memory for the common 64-byte forwarding case).
const POOL_MAX_BUF: usize = 1 << 16;

/// Counters describing packet-pool effectiveness.
///
/// `hits / (hits + misses)` after warmup is the figure of merit: a
/// steady-state forwarding path should allocate (nearly) every packet
/// buffer from recycled capacity rather than the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a recycled buffer.
    pub hits: u64,
    /// Allocations that fell through to the heap.
    pub misses: u64,
    /// Buffers returned to the pool by [`Packet::recycle`].
    pub recycled: u64,
    /// Buffers refused by the pool (full, or out of size bounds).
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of allocations served from the pool (1.0 when no
    /// allocations happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Pool {
    bufs: Vec<Vec<u8>>,
    stats: PoolStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

impl Pool {
    /// A zeroed buffer of exactly `len` bytes, reusing retired capacity
    /// when possible (Click's packet-pool analogue: the buffer vector is
    /// the `sk_buff` data area).
    fn alloc(&mut self, len: usize) -> Vec<u8> {
        // Retired buffers all come from the same forwarding path, so the
        // most recently retired one (cache-warm) almost always fits.
        for i in (0..self.bufs.len()).rev() {
            if self.bufs[i].capacity() >= len {
                let mut buf = self.bufs.swap_remove(i);
                buf.clear();
                buf.resize(len, 0);
                self.stats.hits += 1;
                return buf;
            }
        }
        self.stats.misses += 1;
        vec![0u8; len]
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        if self.bufs.len() < POOL_CAPACITY && (1..=POOL_MAX_BUF).contains(&buf.capacity()) {
            self.stats.recycled += 1;
            self.bufs.push(buf);
        } else {
            self.stats.dropped += 1;
        }
    }
}

/// Snapshot of this thread's packet-pool counters.
pub fn pool_stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Resets this thread's packet-pool counters (e.g. after benchmark
/// warmup, to measure the steady state only).
pub fn reset_pool_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Releases every pooled buffer on this thread (test isolation).
pub fn drain_pool() {
    POOL.with(|p| p.borrow_mut().bufs.clear());
}

/// Out-of-band per-packet annotations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Anno {
    /// Paint color (set by `Paint`, tested by `PaintTee`/`CheckPaint`).
    pub paint: u8,
    /// Destination IP address annotation (set by `GetIPAddress` /
    /// `SetIPAddress`, consumed by `StaticIPLookup` and `ARPQuerier`).
    pub dst_ip: Option<u32>,
    /// Index of the device the packet arrived on.
    pub device: Option<u16>,
    /// True if the packet was addressed to the link-level broadcast
    /// address (set by device input, tested by `DropBroadcasts`).
    pub link_broadcast: bool,
    /// Set by `ICMPError`; tells `FixIPSrc` to overwrite the source
    /// address.
    pub fix_ip_src: bool,
    /// Arrival timestamp in simulated nanoseconds (0 if unset).
    pub timestamp: u64,
}

/// A network packet: an owned byte buffer with headroom/tailroom and
/// annotations.
///
/// # Examples
///
/// ```
/// use click_elements::packet::Packet;
///
/// let mut p = Packet::from_data(&[0xAA; 20]);
/// assert_eq!(p.len(), 20);
/// p.pull(14); // strip a header
/// assert_eq!(p.len(), 6);
/// p.push(14); // put it back (contents preserved from the buffer)
/// assert_eq!(p.len(), 20);
/// ```
#[derive(PartialEq, Eq)]
pub struct Packet {
    buf: Vec<u8>,
    head: usize,
    tail: usize,
    /// Annotations.
    pub anno: Anno,
}

impl Packet {
    /// Allocates a zero-filled packet of `len` bytes with default
    /// headroom and tailroom.
    pub fn new(len: usize) -> Packet {
        Packet::with_headroom(len, DEFAULT_HEADROOM)
    }

    /// Allocates a zero-filled packet with a specific headroom, which also
    /// determines the initial alignment of the data pointer.
    pub fn with_headroom(len: usize, headroom: usize) -> Packet {
        let buf = POOL.with(|p| p.borrow_mut().alloc(headroom + len + DEFAULT_TAILROOM));
        Packet {
            buf,
            head: headroom,
            tail: headroom + len,
            anno: Anno::default(),
        }
    }

    /// Retires this packet, returning its buffer to the thread-local pool
    /// so a later allocation can reuse the capacity without touching the
    /// heap. Annotations die with the packet; the next allocation of the
    /// buffer starts zeroed with a fresh [`Anno`].
    #[inline]
    pub fn recycle(self) {
        POOL.with(|p| p.borrow_mut().recycle(self.buf));
    }

    /// Creates a packet holding a copy of `data`.
    pub fn from_data(data: &[u8]) -> Packet {
        let mut p = Packet::new(data.len());
        p.data_mut().copy_from_slice(data);
        p
    }

    /// The packet contents.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.buf[self.head..self.tail]
    }

    /// Mutable packet contents.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.head..self.tail]
    }

    /// Packet length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// True if the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Available headroom in front of the data.
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Available tailroom after the data.
    pub fn tailroom(&self) -> usize {
        self.buf.len() - self.tail
    }

    /// Removes `n` bytes from the front (e.g. stripping an Ethernet
    /// header). Removes at most `len()` bytes.
    pub fn pull(&mut self, n: usize) {
        self.head = (self.head + n).min(self.tail);
    }

    /// Prepends `n` bytes to the front, reallocating for extra headroom if
    /// necessary. Newly exposed bytes retain whatever the buffer held
    /// (zero for fresh allocations).
    pub fn push(&mut self, n: usize) {
        if n > self.head {
            // Grow headroom, preserving data alignment mod 4.
            let want = n + DEFAULT_HEADROOM;
            let shift = want - self.head;
            let shift = shift.div_ceil(4) * 4; // keep alignment of head
            let mut nbuf = POOL.with(|p| p.borrow_mut().alloc(self.buf.len() + shift));
            nbuf[self.head + shift..self.tail + shift]
                .copy_from_slice(&self.buf[self.head..self.tail]);
            let old = std::mem::replace(&mut self.buf, nbuf);
            POOL.with(|p| p.borrow_mut().recycle(old));
            self.head += shift;
            self.tail += shift;
        }
        self.head -= n;
    }

    /// Removes `n` bytes from the end.
    pub fn take(&mut self, n: usize) {
        self.tail -= n.min(self.len());
    }

    /// Appends `n` zero bytes to the end, reallocating if necessary.
    pub fn put(&mut self, n: usize) {
        if n > self.tailroom() {
            self.buf.resize(self.tail + n + DEFAULT_TAILROOM, 0);
        }
        for b in &mut self.buf[self.tail..self.tail + n] {
            *b = 0;
        }
        self.tail += n;
    }

    /// The alignment of the data pointer: `data() as usize % 4`, modeled
    /// as the head offset so it is deterministic. Used by alignment tests
    /// and the `Align` element.
    pub fn alignment_offset(&self) -> usize {
        self.head % 4
    }

    /// Copies the packet so its data starts at `offset` modulo `modulus`
    /// (the `Align` element's operation).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is 0 or not a power of two, or `offset >=
    /// modulus`.
    pub fn align_to(&mut self, modulus: usize, offset: usize) {
        assert!(
            modulus.is_power_of_two(),
            "alignment modulus must be a power of two"
        );
        assert!(offset < modulus);
        if self.head % modulus == offset {
            return;
        }
        let len = self.len();
        let headroom = DEFAULT_HEADROOM / modulus * modulus + offset;
        let mut nbuf = POOL.with(|p| p.borrow_mut().alloc(headroom + len + DEFAULT_TAILROOM));
        nbuf[headroom..headroom + len].copy_from_slice(self.data());
        let old = std::mem::replace(&mut self.buf, nbuf);
        POOL.with(|p| p.borrow_mut().recycle(old));
        self.head = headroom;
        self.tail = headroom + len;
    }
}

impl Clone for Packet {
    /// Copies the packet through the pool: the clone's buffer comes from
    /// recycled capacity when available, so fan-out (`Tee`, `PaintTee`)
    /// stays allocation-free in steady state. Byte-for-byte identical to
    /// a plain field-wise copy.
    fn clone(&self) -> Packet {
        let mut buf = POOL.with(|p| p.borrow_mut().alloc(self.buf.len()));
        buf.copy_from_slice(&self.buf);
        Packet {
            buf,
            head: self.head,
            tail: self.tail,
            anno: self.anno.clone(),
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet({} bytes", self.len())?;
        if self.anno.paint != 0 {
            write!(f, ", paint {}", self.anno.paint)?;
        }
        if let Some(ip) = self.anno.dst_ip {
            write!(f, ", dst_ip {}", crate::headers::ip_to_string(ip))?;
        }
        let preview: Vec<String> = self
            .data()
            .iter()
            .take(8)
            .map(|b| format!("{b:02x}"))
            .collect();
        write!(f, ", data {}..)", preview.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_is_zeroed() {
        let p = Packet::new(32);
        assert_eq!(p.len(), 32);
        assert!(p.data().iter().all(|&b| b == 0));
    }

    #[test]
    fn pull_and_push_are_inverse() {
        let mut p = Packet::from_data(&(0..40).collect::<Vec<u8>>());
        p.pull(14);
        assert_eq!(p.data()[0], 14);
        assert_eq!(p.len(), 26);
        p.push(14);
        assert_eq!(p.len(), 40);
        assert_eq!(p.data()[0], 0); // original bytes preserved in buffer
    }

    #[test]
    fn push_beyond_headroom_reallocates() {
        let mut p = Packet::with_headroom(8, 2);
        let align_before = p.alignment_offset();
        p.push(10);
        assert_eq!(p.len(), 18);
        // Reallocation preserves alignment mod 4.
        assert_eq!((p.alignment_offset() + 10) % 4, align_before % 4);
    }

    #[test]
    fn pull_clamps_to_length() {
        let mut p = Packet::from_data(&[1, 2, 3]);
        p.pull(10);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn take_and_put() {
        let mut p = Packet::from_data(&[1, 2, 3, 4]);
        p.take(2);
        assert_eq!(p.data(), &[1, 2]);
        p.put(3);
        assert_eq!(p.data(), &[1, 2, 0, 0, 0]);
    }

    #[test]
    fn put_beyond_tailroom_reallocates() {
        let mut p = Packet::from_data(&[7; 4]);
        p.put(DEFAULT_TAILROOM + 100);
        assert_eq!(p.len(), 4 + DEFAULT_TAILROOM + 100);
        assert_eq!(&p.data()[..4], &[7; 4]);
    }

    #[test]
    fn default_headroom_gives_mod4_offset_2() {
        // The 2-byte offset trick: data starts at 2 mod 4 so the IP header
        // is aligned after stripping 14 bytes of Ethernet.
        let p = Packet::new(64);
        assert_eq!(p.alignment_offset(), 2);
        let mut q = p.clone();
        q.pull(14);
        assert_eq!(q.alignment_offset(), 0);
    }

    #[test]
    fn align_to_changes_offset_and_preserves_data() {
        let mut p = Packet::from_data(&(0..32).collect::<Vec<u8>>());
        let before = p.data().to_vec();
        p.align_to(4, 0);
        assert_eq!(p.alignment_offset(), 0);
        assert_eq!(p.data(), &before[..]);
        p.align_to(4, 2);
        assert_eq!(p.alignment_offset(), 2);
        assert_eq!(p.data(), &before[..]);
    }

    #[test]
    fn align_to_is_idempotent() {
        let mut p = Packet::from_data(&[9; 16]);
        p.align_to(4, 2);
        let head = p.headroom();
        p.align_to(4, 2);
        assert_eq!(p.headroom(), head);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_to_rejects_non_power_of_two() {
        Packet::new(4).align_to(3, 0);
    }

    #[test]
    fn annotations_travel_with_clone() {
        let mut p = Packet::new(8);
        p.anno.paint = 3;
        p.anno.dst_ip = Some(0x0A000001);
        let q = p.clone();
        assert_eq!(q.anno.paint, 3);
        assert_eq!(q.anno.dst_ip, Some(0x0A000001));
    }

    #[test]
    fn pool_round_trips_capacity() {
        drain_pool();
        reset_pool_stats();
        let p = Packet::new(64);
        assert_eq!(pool_stats().hits, 0);
        p.recycle();
        assert_eq!(pool_stats().recycled, 1);
        // The next same-size allocation must reuse the retired buffer.
        let q = Packet::new(64);
        assert_eq!(pool_stats().hits, 1, "{:?}", pool_stats());
        assert_eq!(q.len(), 64);
        assert!(
            q.data().iter().all(|&b| b == 0),
            "pooled packet must be zeroed"
        );
        // A larger request than any pooled buffer misses.
        q.recycle();
        let _big = Packet::new(POOL_MAX_BUF * 2);
        let s = pool_stats();
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 1);
    }

    #[test]
    fn pool_never_leaks_annotations_between_reuses() {
        drain_pool();
        reset_pool_stats();
        let mut p = Packet::new(60);
        p.anno.paint = 7;
        p.anno.dst_ip = Some(0x0A000001);
        p.anno.device = Some(3);
        p.anno.link_broadcast = true;
        p.anno.fix_ip_src = true;
        p.anno.timestamp = 42;
        p.data_mut().fill(0xEE);
        p.recycle();
        let q = Packet::new(60);
        assert_eq!(pool_stats().hits, 1, "reuse expected: {:?}", pool_stats());
        assert_eq!(
            q.anno,
            Anno::default(),
            "annotations leaked through the pool"
        );
        assert!(
            q.data().iter().all(|&b| b == 0),
            "stale bytes leaked through the pool"
        );
    }

    #[test]
    fn pooled_clone_is_byte_identical() {
        let mut p = Packet::from_data(&(0..48).collect::<Vec<u8>>());
        p.pull(14);
        p.anno.paint = 5;
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(q.headroom(), p.headroom());
        assert_eq!(q.tailroom(), p.tailroom());
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        drain_pool();
        reset_pool_stats();
        Packet::new(POOL_MAX_BUF + 1).recycle();
        assert_eq!(pool_stats().recycled, 0);
        assert_eq!(pool_stats().dropped, 1);
    }

    #[test]
    fn debug_is_informative() {
        let mut p = Packet::from_data(&[0xDE, 0xAD]);
        p.anno.paint = 1;
        let s = format!("{p:?}");
        assert!(s.contains("2 bytes"));
        assert!(s.contains("de ad"));
    }
}
