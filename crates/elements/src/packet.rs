//! The packet abstraction.
//!
//! "The Click packet abstraction is a thin veneer over the Linux kernel's
//! sk_buff" (paper §3): a contiguous byte buffer with headroom and tailroom
//! so headers can be stripped and prepended without copying, plus a small
//! set of annotations (paint, destination IP address, receiving device)
//! that elements use to communicate out of band.

use std::fmt;

/// Default headroom reserved in front of packet data.
///
/// Room for a re-prepended Ethernet header plus slack, while landing the
/// default data pointer at offset 2 mod 4 — the classic NIC trick that
/// makes the IP header word-aligned after a 14-byte Ethernet header is
/// stripped (see `click-align`).
pub const DEFAULT_HEADROOM: usize = 30;

/// Default tailroom reserved after packet data.
pub const DEFAULT_TAILROOM: usize = 64;

/// Out-of-band per-packet annotations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Anno {
    /// Paint color (set by `Paint`, tested by `PaintTee`/`CheckPaint`).
    pub paint: u8,
    /// Destination IP address annotation (set by `GetIPAddress` /
    /// `SetIPAddress`, consumed by `StaticIPLookup` and `ARPQuerier`).
    pub dst_ip: Option<u32>,
    /// Index of the device the packet arrived on.
    pub device: Option<u16>,
    /// True if the packet was addressed to the link-level broadcast
    /// address (set by device input, tested by `DropBroadcasts`).
    pub link_broadcast: bool,
    /// Set by `ICMPError`; tells `FixIPSrc` to overwrite the source
    /// address.
    pub fix_ip_src: bool,
    /// Arrival timestamp in simulated nanoseconds (0 if unset).
    pub timestamp: u64,
}

/// A network packet: an owned byte buffer with headroom/tailroom and
/// annotations.
///
/// # Examples
///
/// ```
/// use click_elements::packet::Packet;
///
/// let mut p = Packet::from_data(&[0xAA; 20]);
/// assert_eq!(p.len(), 20);
/// p.pull(14); // strip a header
/// assert_eq!(p.len(), 6);
/// p.push(14); // put it back (contents preserved from the buffer)
/// assert_eq!(p.len(), 20);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Packet {
    buf: Vec<u8>,
    head: usize,
    tail: usize,
    /// Annotations.
    pub anno: Anno,
}

impl Packet {
    /// Allocates a zero-filled packet of `len` bytes with default
    /// headroom and tailroom.
    pub fn new(len: usize) -> Packet {
        Packet::with_headroom(len, DEFAULT_HEADROOM)
    }

    /// Allocates a zero-filled packet with a specific headroom, which also
    /// determines the initial alignment of the data pointer.
    pub fn with_headroom(len: usize, headroom: usize) -> Packet {
        let buf = vec![0u8; headroom + len + DEFAULT_TAILROOM];
        Packet { buf, head: headroom, tail: headroom + len, anno: Anno::default() }
    }

    /// Creates a packet holding a copy of `data`.
    pub fn from_data(data: &[u8]) -> Packet {
        let mut p = Packet::new(data.len());
        p.data_mut().copy_from_slice(data);
        p
    }

    /// The packet contents.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.buf[self.head..self.tail]
    }

    /// Mutable packet contents.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.head..self.tail]
    }

    /// Packet length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// True if the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Available headroom in front of the data.
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Available tailroom after the data.
    pub fn tailroom(&self) -> usize {
        self.buf.len() - self.tail
    }

    /// Removes `n` bytes from the front (e.g. stripping an Ethernet
    /// header). Removes at most `len()` bytes.
    pub fn pull(&mut self, n: usize) {
        self.head = (self.head + n).min(self.tail);
    }

    /// Prepends `n` bytes to the front, reallocating for extra headroom if
    /// necessary. Newly exposed bytes retain whatever the buffer held
    /// (zero for fresh allocations).
    pub fn push(&mut self, n: usize) {
        if n > self.head {
            // Grow headroom, preserving data alignment mod 4.
            let want = n + DEFAULT_HEADROOM;
            let shift = want - self.head;
            let shift = shift.div_ceil(4) * 4; // keep alignment of head
            let mut nbuf = vec![0u8; self.buf.len() + shift];
            nbuf[self.head + shift..self.tail + shift].copy_from_slice(&self.buf[self.head..self.tail]);
            self.buf = nbuf;
            self.head += shift;
            self.tail += shift;
        }
        self.head -= n;
    }

    /// Removes `n` bytes from the end.
    pub fn take(&mut self, n: usize) {
        self.tail -= n.min(self.len());
    }

    /// Appends `n` zero bytes to the end, reallocating if necessary.
    pub fn put(&mut self, n: usize) {
        if n > self.tailroom() {
            self.buf.resize(self.tail + n + DEFAULT_TAILROOM, 0);
        }
        for b in &mut self.buf[self.tail..self.tail + n] {
            *b = 0;
        }
        self.tail += n;
    }

    /// The alignment of the data pointer: `data() as usize % 4`, modeled
    /// as the head offset so it is deterministic. Used by alignment tests
    /// and the `Align` element.
    pub fn alignment_offset(&self) -> usize {
        self.head % 4
    }

    /// Copies the packet so its data starts at `offset` modulo `modulus`
    /// (the `Align` element's operation).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is 0 or not a power of two, or `offset >=
    /// modulus`.
    pub fn align_to(&mut self, modulus: usize, offset: usize) {
        assert!(modulus.is_power_of_two(), "alignment modulus must be a power of two");
        assert!(offset < modulus);
        if self.head % modulus == offset {
            return;
        }
        let len = self.len();
        let headroom = DEFAULT_HEADROOM / modulus * modulus + offset;
        let mut nbuf = vec![0u8; headroom + len + DEFAULT_TAILROOM];
        nbuf[headroom..headroom + len].copy_from_slice(self.data());
        self.buf = nbuf;
        self.head = headroom;
        self.tail = headroom + len;
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet({} bytes", self.len())?;
        if self.anno.paint != 0 {
            write!(f, ", paint {}", self.anno.paint)?;
        }
        if let Some(ip) = self.anno.dst_ip {
            write!(f, ", dst_ip {}", crate::headers::ip_to_string(ip))?;
        }
        let preview: Vec<String> =
            self.data().iter().take(8).map(|b| format!("{b:02x}")).collect();
        write!(f, ", data {}..)", preview.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_is_zeroed() {
        let p = Packet::new(32);
        assert_eq!(p.len(), 32);
        assert!(p.data().iter().all(|&b| b == 0));
    }

    #[test]
    fn pull_and_push_are_inverse() {
        let mut p = Packet::from_data(&(0..40).collect::<Vec<u8>>());
        p.pull(14);
        assert_eq!(p.data()[0], 14);
        assert_eq!(p.len(), 26);
        p.push(14);
        assert_eq!(p.len(), 40);
        assert_eq!(p.data()[0], 0); // original bytes preserved in buffer
    }

    #[test]
    fn push_beyond_headroom_reallocates() {
        let mut p = Packet::with_headroom(8, 2);
        let align_before = p.alignment_offset();
        p.push(10);
        assert_eq!(p.len(), 18);
        // Reallocation preserves alignment mod 4.
        assert_eq!((p.alignment_offset() + 10) % 4, align_before % 4);
    }

    #[test]
    fn pull_clamps_to_length() {
        let mut p = Packet::from_data(&[1, 2, 3]);
        p.pull(10);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn take_and_put() {
        let mut p = Packet::from_data(&[1, 2, 3, 4]);
        p.take(2);
        assert_eq!(p.data(), &[1, 2]);
        p.put(3);
        assert_eq!(p.data(), &[1, 2, 0, 0, 0]);
    }

    #[test]
    fn put_beyond_tailroom_reallocates() {
        let mut p = Packet::from_data(&[7; 4]);
        p.put(DEFAULT_TAILROOM + 100);
        assert_eq!(p.len(), 4 + DEFAULT_TAILROOM + 100);
        assert_eq!(&p.data()[..4], &[7; 4]);
    }

    #[test]
    fn default_headroom_gives_mod4_offset_2() {
        // The 2-byte offset trick: data starts at 2 mod 4 so the IP header
        // is aligned after stripping 14 bytes of Ethernet.
        let p = Packet::new(64);
        assert_eq!(p.alignment_offset(), 2);
        let mut q = p.clone();
        q.pull(14);
        assert_eq!(q.alignment_offset(), 0);
    }

    #[test]
    fn align_to_changes_offset_and_preserves_data() {
        let mut p = Packet::from_data(&(0..32).collect::<Vec<u8>>());
        let before = p.data().to_vec();
        p.align_to(4, 0);
        assert_eq!(p.alignment_offset(), 0);
        assert_eq!(p.data(), &before[..]);
        p.align_to(4, 2);
        assert_eq!(p.alignment_offset(), 2);
        assert_eq!(p.data(), &before[..]);
    }

    #[test]
    fn align_to_is_idempotent() {
        let mut p = Packet::from_data(&[9; 16]);
        p.align_to(4, 2);
        let head = p.headroom();
        p.align_to(4, 2);
        assert_eq!(p.headroom(), head);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_to_rejects_non_power_of_two() {
        Packet::new(4).align_to(3, 0);
    }

    #[test]
    fn annotations_travel_with_clone() {
        let mut p = Packet::new(8);
        p.anno.paint = 3;
        p.anno.dst_ip = Some(0x0A000001);
        let q = p.clone();
        assert_eq!(q.anno.paint, 3);
        assert_eq!(q.anno.dst_ip, Some(0x0A000001));
    }

    #[test]
    fn debug_is_informative() {
        let mut p = Packet::from_data(&[0xDE, 0xAD]);
        p.anno.paint = 1;
        let s = format!("{p:?}");
        assert!(s.contains("2 bytes"));
        assert!(s.contains("de ad"));
    }
}
