//! Integration tests for the checkpoint/restore subsystem: wire-format
//! fuzzing (a torn file must never panic the parser), per-class
//! `ElementState` round trips, store retention and torn-file fallback,
//! and full crash/restore drills on both engines with the
//! cross-incarnation ledger required to stay exact.

use click_core::lang::read_config;
use click_core::registry::Library;
use click_elements::element::{CreateCtx, Element};
use click_elements::elements::create_element;
use click_elements::ip_router::{test_packet_flow, IpRouterSpec};
use click_elements::packet::Packet;
use click_elements::parallel::{ParallelOpts, ParallelRouter};
use click_elements::persist::{
    config_hash, Checkpoint, CheckpointDaemon, CheckpointLedger, CheckpointStore, ElementRecord,
    PacketRecord,
};
use click_elements::router::Router;
use click_elements::swap::ElementState;
use std::path::PathBuf;

type DynRouter = Router<Box<dyn Element>>;

/// A unique scratch directory per test, wiped on entry so reruns start
/// clean.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("click-persist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_checkpoint() -> Checkpoint {
    let mut queue = ElementRecord {
        name: "q0".to_string(),
        class: "Queue".to_string(),
        counters: vec![("drops".to_string(), 3), ("highwater".to_string(), 9)],
        packets: Vec::new(),
    };
    queue.packets.push(PacketRecord {
        data: vec![0xDE, 0xAD, 0xBE, 0xEF],
        paint: 2,
        dst_ip: Some(0x0A00_0001),
        device: Some(1),
        link_broadcast: true,
        fix_ip_src: false,
        timestamp: 77,
    });
    queue.packets.push(PacketRecord {
        data: vec![1],
        ..PacketRecord::default()
    });
    Checkpoint {
        generation: 42,
        config: "a :: Counter -> Discard;".to_string(),
        config_hash: config_hash("a :: Counter -> Discard;"),
        ledger: CheckpointLedger {
            injected: 1000,
            tx: 900,
            drops: 60,
        },
        quiesce_ns: 12_345,
        elements: vec![
            queue,
            ElementRecord {
                name: "c".to_string(),
                class: "Counter".to_string(),
                counters: vec![
                    ("count".to_string(), 1000),
                    ("byte_count".to_string(), 64_000),
                ],
                packets: Vec::new(),
            },
        ],
        devices: vec![click_elements::persist::DeviceRecord {
            name: "eth0".to_string(),
            rx: vec![PacketRecord {
                data: vec![9, 9, 9],
                ..PacketRecord::default()
            }],
            tx: Vec::new(),
        }],
    }
}

#[test]
fn checkpoint_codec_round_trips() {
    let ckpt = sample_checkpoint();
    let decoded = Checkpoint::decode(&ckpt.encode()).expect("clean bytes decode");
    assert_eq!(decoded, ckpt);
}

#[test]
fn decoder_rejects_every_truncation() {
    // A crash can tear the file at any byte. Every prefix must come back
    // as a decode error — never a panic, never a half-parsed checkpoint.
    let bytes = sample_checkpoint().encode();
    for len in 0..bytes.len() {
        assert!(
            Checkpoint::decode(&bytes[..len]).is_err(),
            "truncation at {len}/{} must be rejected",
            bytes.len()
        );
    }
}

#[test]
fn decoder_rejects_trailing_garbage() {
    let mut bytes = sample_checkpoint().encode();
    bytes.push(0);
    assert!(Checkpoint::decode(&bytes).is_err());
}

#[test]
fn decoder_rejects_every_single_bit_flip() {
    // Bit rot anywhere — magic, version, length, CRC, payload — must be
    // caught. The CRC seals the payload; the header fields are each
    // validated explicitly.
    let bytes = sample_checkpoint().encode();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[i] ^= 1 << bit;
            assert!(
                Checkpoint::decode(&flipped).is_err(),
                "bit {bit} of byte {i} flipped and the decoder accepted it"
            );
        }
    }
}

#[test]
fn decoder_rejects_wrong_version() {
    let mut bytes = sample_checkpoint().encode();
    // Version field sits right after the 8-byte magic.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let err = Checkpoint::decode(&bytes).expect_err("future version must be rejected");
    assert!(
        format!("{err}").contains("version"),
        "error should name the version: {err}"
    );
}

#[test]
fn decoder_survives_random_garbage() {
    // An LCG-driven garbage storm: arbitrary bytes must produce errors,
    // not panics or huge allocations (the length guards cap what a
    // corrupt count field can ask for).
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..200 {
        let len = (rng() % 512) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| rng() as u8).collect();
        // Half the rounds get a valid magic so the deeper paths run too.
        if round % 2 == 0 && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(b"CLKCKPT1");
        }
        assert!(Checkpoint::decode(&bytes).is_err());
    }
}

#[test]
fn store_prunes_to_retention_and_numbers_generations() {
    let dir = scratch("retention");
    let store = CheckpointStore::open(&dir, 2).unwrap();
    let mut ckpt = sample_checkpoint();
    for generation in 1..=5 {
        ckpt.generation = generation;
        store.save(&ckpt).unwrap();
    }
    assert_eq!(store.generations(), vec![4, 5]);
    assert_eq!(store.next_generation(), 6);
    let (latest, torn) = store.latest_valid();
    assert_eq!(latest.unwrap().generation, 5);
    assert_eq!(torn, 0);
}

#[test]
fn recovery_falls_back_over_a_torn_newest_generation() {
    let dir = scratch("torn-fallback");
    let store = CheckpointStore::open(&dir, 4).unwrap();
    let mut ckpt = sample_checkpoint();
    for generation in 1..=3 {
        ckpt.generation = generation;
        store.save(&ckpt).unwrap();
    }
    // Tear generation 3 mid-file, as a crash during write would.
    let newest = store.path_of(3);
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    let mut daemon = CheckpointDaemon::new(store, 0, String::new());
    let recovered = daemon.recover().expect("generation 2 is still whole");
    assert_eq!(recovered.generation, 2);
    assert_eq!(daemon.gauges().torn_discarded, 1);
    assert_eq!(daemon.gauges().cold_starts, 0);
}

#[test]
fn recovery_of_an_empty_directory_is_a_counted_cold_start() {
    let dir = scratch("cold");
    let store = CheckpointStore::open(&dir, 4).unwrap();
    let mut daemon = CheckpointDaemon::new(store, 0, String::new());
    assert!(daemon.recover().is_none());
    assert_eq!(daemon.gauges().cold_starts, 1);
}

/// Sample configurations for every registered class, mirroring the
/// factory's coverage test: a class added to the registry without an
/// entry here fails the round-trip test by construction.
fn sample_config(class: &str) -> &'static str {
    match class {
        "Classifier" => "12/0800, -",
        "IPClassifier" => "tcp, -",
        "IPFilter" => "allow all",
        "Paint" | "PaintTee" | "CheckPaint" => "1",
        "Strip" | "Unstrip" => "14",
        "Align" => "4, 0",
        "Switch" | "StaticSwitch" | "StaticPullSwitch" => "0",
        "Queue" => "",
        "RED" => "5, 50, 0.02",
        "EtherEncap" | "EtherEncapCombo" => "0x0800, 00:00:00:00:00:01, 00:00:00:00:00:02",
        "ARPQuerier" => "10.0.0.1, 00:00:00:00:00:01",
        "ARPResponder" => "10.0.0.1 00:00:00:00:00:01",
        "HostEtherFilter" => "00:00:00:00:00:01",
        "GetIPAddress" => "16",
        "SetIPAddress" | "FixIPSrc" => "10.0.0.1",
        "IPFragmenter" => "1500",
        "ICMPError" => "10.0.0.1, 11, 0",
        "ICMPPingResponder" => "10.0.0.1",
        "StaticIPLookup" | "LookupIPRoute" => "10.0.0.0/8 0",
        "IPInputCombo" => "1",
        "IPOutputCombo" => "1, 10.0.0.1, 1500",
        "FromDevice" | "PollDevice" | "ToDevice" => "eth0",
        _ => "",
    }
}

#[test]
fn element_state_survives_the_wire_for_every_registered_class() {
    // For each registered class: seed the element's own counters with
    // distinct values, take its state, push the record through a full
    // encode/decode, and require the decoded record to be identical.
    // Stateless classes (take_state == None) are skipped — they have
    // nothing to lose across a restart by definition.
    let lib = Library::standard();
    let mut stateful = 0;
    for spec in lib.iter() {
        let mut ctx = CreateCtx::new();
        let mut element = create_element(&spec.name, sample_config(&spec.name), &mut ctx)
            .unwrap_or_else(|e| panic!("add a sample config for {:?}: {e}", spec.name));
        let Some(template) = element.take_state() else {
            continue;
        };
        stateful += 1;
        let mut seed = ElementState::new(&template.class);
        for (i, (name, _)) in template.counters.iter().enumerate() {
            seed = seed.counter(name, 11 + 7 * i as u64);
        }
        seed.packets.push(Packet::from_data(&[0xAB, 0xCD]));
        template.recycle_packets();
        element.restore_state(seed);

        let state = element
            .take_state()
            .unwrap_or_else(|| panic!("{:?} lost its state on the second take", spec.name));
        let record = ElementRecord::from_state("e0", &state.class, &state);
        state.recycle_packets();

        let mut ckpt = sample_checkpoint();
        ckpt.elements = vec![record.clone()];
        let decoded = Checkpoint::decode(&ckpt.encode())
            .unwrap_or_else(|e| panic!("{:?} record failed to decode: {e}", spec.name));
        assert_eq!(
            decoded.elements[0], record,
            "state of {:?} must survive serialize -> parse intact",
            spec.name
        );
    }
    assert!(
        stateful >= 5,
        "expected several stateful classes, saw {stateful}"
    );
}

#[test]
fn counter_totals_round_trip_exactly() {
    let mut ctx = CreateCtx::new();
    let mut a = create_element("Counter", "", &mut ctx).unwrap();
    a.restore_state(
        ElementState::new("Counter")
            .counter("count", 41)
            .counter("byte_count", 4100),
    );
    let state = a.take_state().unwrap();
    let record = ElementRecord::from_state("c", "Counter", &state);
    state.recycle_packets();

    let mut ckpt = sample_checkpoint();
    ckpt.elements = vec![record];
    let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();

    let mut b = create_element("Counter", "", &mut ctx).unwrap();
    b.restore_state(decoded.elements[0].to_state());
    let after = b.take_state().unwrap();
    assert_eq!(after.get("count"), 41);
    assert_eq!(after.get("byte_count"), 4100);
    after.recycle_packets();
}

#[test]
fn queue_contents_round_trip_in_fifo_order() {
    let mut ctx = CreateCtx::new();
    let mut a = create_element("Queue", "8", &mut ctx).unwrap();
    let mut seed = ElementState::new("Queue").counter("drops", 3);
    seed.packets = (0u8..5).map(|i| Packet::from_data(&[i, 100 + i])).collect();
    a.restore_state(seed);

    let state = a.take_state().unwrap();
    let record = ElementRecord::from_state("q", "Queue", &state);
    state.recycle_packets();
    let mut ckpt = sample_checkpoint();
    ckpt.elements = vec![record];
    let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();

    let mut b = create_element("Queue", "8", &mut ctx).unwrap();
    b.restore_state(decoded.elements[0].to_state());
    let after = b.take_state().unwrap();
    let contents: Vec<Vec<u8>> = after.packets.iter().map(|p| p.data().to_vec()).collect();
    let expected: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i, 100 + i]).collect();
    assert_eq!(contents, expected, "FIFO order must survive the restart");
    assert_eq!(after.get("drops"), 3);
    after.recycle_packets();
}

#[test]
fn fault_inject_rng_cursor_continues_across_restart() {
    // The LCG cursor and arming progress must restore *exactly*: a
    // restarted FaultInject continues the original fault sequence
    // instead of replaying it from the seed.
    let mut ctx = CreateCtx::new();
    let mut a = create_element("FaultInject", "DROP 0.5, SEED 42", &mut ctx).unwrap();
    a.restore_state(
        ElementState::new("FaultInject")
            .counter("seen", 7)
            .counter("lcg", 0xDEAD_BEEF_0BAD_F00D)
            .counter("drops", 2),
    );
    let state = a.take_state().unwrap();
    let record = ElementRecord::from_state("f", "FaultInject", &state);
    state.recycle_packets();
    let mut ckpt = sample_checkpoint();
    ckpt.elements = vec![record];
    let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();

    let mut b = create_element("FaultInject", "DROP 0.5, SEED 42", &mut ctx).unwrap();
    b.restore_state(decoded.elements[0].to_state());
    let after = b.take_state().unwrap();
    assert_eq!(after.get("seen"), 7);
    assert_eq!(after.get("drops"), 2);
    assert_eq!(
        after.get("lcg"),
        0xDEAD_BEEF_0BAD_F00D,
        "the RNG cursor must continue, not restart from the seed"
    );
    after.recycle_packets();
}

// ---------------------------------------------------------------------
// Engine-level crash/restore drills
// ---------------------------------------------------------------------

fn drain_serial_tx(r: &mut DynRouter) -> u64 {
    let names: Vec<String> = r.devices.names().iter().map(|s| s.to_string()).collect();
    let mut n = 0;
    for name in &names {
        let Some(id) = r.devices.id(name) else {
            continue;
        };
        for p in r.devices.take_tx(id) {
            p.recycle();
            n += 1;
        }
    }
    n
}

#[test]
fn serial_crash_restore_resumes_exact_ledger() {
    let dir = scratch("serial-ledger");
    let spec = IpRouterSpec::standard(2);
    let graph = read_config(&spec.config()).unwrap();
    let lib = Library::standard();
    let mut r: DynRouter = Router::from_graph(&graph, &lib).unwrap();
    let eth0 = r.devices.id("eth0").unwrap();

    let mut injected = 0u64;
    for i in 0..300u64 {
        r.devices.inject(
            eth0,
            test_packet_flow(&spec, 0, 1, 2000 + (i % 32) as u16, 7000),
        );
        injected += 1;
    }
    r.run_until_idle(1_000_000);
    let mut tx = drain_serial_tx(&mut r);

    let store = CheckpointStore::open(&dir, 4).unwrap();
    let mut daemon = CheckpointDaemon::new(store, 0, spec.config());
    let generation = daemon.checkpoint_now(&mut r, injected, tx).unwrap();
    assert_eq!(generation, 1);
    let drops_at_cut = r.total_drops();

    // Feed a dead window the "crash" destroys: these frames reach the
    // doomed incarnation only.
    let dead_window = 57u64;
    for i in 0..dead_window {
        r.devices.inject(
            eth0,
            test_packet_flow(&spec, 0, 1, 2000 + (i % 32) as u16, 7000),
        );
    }
    r.run_until_idle(1_000_000);
    drop(r); // the crash — everything since the cut is gone

    let ckpt = daemon.recover().expect("generation 1 is recoverable");
    assert_eq!(ckpt.generation, 1);
    assert_eq!(ckpt.ledger.injected, injected);
    assert_eq!(ckpt.ledger.tx, tx);
    assert_eq!(config_hash(&ckpt.config), ckpt.config_hash);

    let (mut r2, stats) = DynRouter::restore_from(&ckpt, &lib).unwrap();
    assert_eq!(stats.unmatched, 0, "every checkpointed element must match");
    assert_eq!(
        r2.total_drops(),
        drops_at_cut,
        "the drop gauge must resume exactly at its checkpointed value"
    );

    // Second incarnation: resume traffic. Offered = accounted + the dead
    // window; the ledger closes with the dead window as the only loss.
    let eth0 = r2.devices.id("eth0").unwrap();
    for i in 0..100u64 {
        r2.devices.inject(
            eth0,
            test_packet_flow(&spec, 0, 1, 2000 + (i % 32) as u16, 7000),
        );
        injected += 1;
    }
    r2.run_until_idle(1_000_000);
    tx += drain_serial_tx(&mut r2);

    let offered = injected + dead_window;
    let loss = offered - tx - r2.total_drops();
    assert_eq!(
        injected,
        tx + r2.total_drops(),
        "accounted frames must balance exactly across incarnations"
    );
    assert_eq!(loss, dead_window, "only the dead window may be lost");
}

#[test]
fn serial_restore_carries_queued_packets_home() {
    // A FaultInject delay line holds packets across the cut; they must
    // come back in order and eventually drain to TX after the restart.
    let dir = scratch("serial-delay");
    let config = "FromDevice(eth0) -> c :: Counter \
                  -> f :: FaultInject(DELAY 4) -> Queue(64) -> ToDevice(eth1);";
    let graph = read_config(config).unwrap();
    let lib = Library::standard();
    let mut r: DynRouter = Router::from_graph(&graph, &lib).unwrap();
    let eth0 = r.devices.id("eth0").unwrap();
    for i in 0..10u8 {
        r.devices.inject(eth0, Packet::from_data(&[i; 60]));
    }
    r.run_until_idle(1_000_000);
    let tx_before = drain_serial_tx(&mut r);
    assert_eq!(tx_before, 6, "a 4-deep delay line holds the last 4 frames");

    let store = CheckpointStore::open(&dir, 2).unwrap();
    let mut daemon = CheckpointDaemon::new(store, 0, config.to_string());
    daemon.checkpoint_now(&mut r, 10, tx_before).unwrap();
    assert_eq!(
        daemon.gauges().packets_persisted,
        4,
        "the delay line's packets must be persisted"
    );
    drop(r);

    let ckpt = daemon.recover().unwrap();
    let (mut r2, stats) = DynRouter::restore_from(&ckpt, &lib).unwrap();
    assert_eq!(stats.packets_restored, 4);
    // Four more frames push the held ones out of the line.
    let eth0 = r2.devices.id("eth0").unwrap();
    for i in 10..14u8 {
        r2.devices.inject(eth0, Packet::from_data(&[i; 60]));
    }
    r2.run_until_idle(1_000_000);
    assert_eq!(
        drain_serial_tx(&mut r2),
        4,
        "the restored packets drain first"
    );
}

#[test]
fn parallel_crash_restore_resumes_exact_ledger() {
    let dir = scratch("parallel-ledger");
    let spec = IpRouterSpec::standard(2);
    let graph = read_config(&spec.config()).unwrap();
    let mut r =
        ParallelRouter::from_graph::<Box<dyn Element>>(&graph, ParallelOpts::new(2)).unwrap();
    let eth0 = r.device_id("eth0").unwrap();

    let mut injected = 0u64;
    for i in 0..256u64 {
        r.inject(
            eth0,
            test_packet_flow(&spec, 0, 1, 2000 + (i % 32) as u16, 7000),
        );
        injected += 1;
    }
    r.run_until_idle();
    let mut tx = 0u64;
    let names: Vec<String> = r.device_names().to_vec();
    for name in &names {
        let Some(id) = r.device_id(name) else {
            continue;
        };
        for p in r.take_tx(id) {
            p.recycle();
            tx += 1;
        }
    }

    let store = CheckpointStore::open(&dir, 4).unwrap();
    let mut daemon = CheckpointDaemon::new(store, 0, spec.config());
    daemon.checkpoint_now(&mut r, injected, tx).unwrap();
    let drops_at_cut = r.total_drops();
    r.shutdown(); // the crash

    let ckpt = daemon.recover().expect("checkpoint survives the crash");
    assert_eq!(ckpt.ledger.drops, drops_at_cut);
    let (mut r2, stats) =
        ParallelRouter::restore_from::<Box<dyn Element>>(&ckpt, ParallelOpts::new(2)).unwrap();
    assert_eq!(stats.unmatched, 0);
    assert_eq!(
        r2.total_drops(),
        drops_at_cut,
        "the merged drop gauge resumes at its checkpointed value"
    );

    let eth0 = r2.device_id("eth0").unwrap();
    for i in 0..128u64 {
        r2.inject(
            eth0,
            test_packet_flow(&spec, 0, 1, 2000 + (i % 32) as u16, 7000),
        );
        injected += 1;
    }
    r2.run_until_idle();
    for name in &names {
        let Some(id) = r2.device_id(name) else {
            continue;
        };
        for p in r2.take_tx(id) {
            p.recycle();
            tx += 1;
        }
    }
    assert_eq!(
        injected,
        tx + r2.total_drops(),
        "the sharded ledger must balance exactly across incarnations"
    );
    r2.shutdown();
}
