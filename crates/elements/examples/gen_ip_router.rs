fn main() {
    print!(
        "{}",
        click_elements::ip_router::IpRouterSpec::standard(2).config()
    );
}
