//! Parallel/serial equivalence: the sharded runtime must be
//! observationally identical to the serial engine. The same input trace
//! through `Router` and `ParallelRouter` (at 1, 2, and 4 shards) must
//! produce identical per-class statistics and identical per-flow packet
//! order, on both the dynamic and the compiled engine.
//!
//! Cross-shard (total) output order is *not* compared — shards complete
//! independently and the runtime only promises per-flow FIFO, the same
//! guarantee hardware RSS gives a multi-queue NIC.

use click::core::RouterGraph;
use click::elements::ip_router::{test_packet_flow, IpRouterSpec};
use click::elements::packet::Packet;
use click::elements::parallel::{ParallelOpts, ParallelRouter};
use click::elements::router::Slot;
use click::elements::steer::flow_key;
use click::elements::Router;
use click_bench::ip_router_variants;

const N: usize = 4;
const FLOWS: u16 = 12;
const PER_FLOW: u8 = 6;

/// The trace: FLOWS cross-interface UDP flows, PER_FLOW packets each,
/// interleaved round-robin, with a per-flow sequence number in the
/// payload.
fn trace(spec: &IpRouterSpec) -> Vec<(usize, Packet)> {
    let mut out = Vec::new();
    for seq in 0..PER_FLOW {
        for flow in 0..FLOWS {
            let src = usize::from(flow) % (N / 2);
            let dst = src + N / 2;
            let mut p = test_packet_flow(spec, src, dst, 2000 + flow, 7000);
            let n = p.len();
            p.data_mut()[n - 1] = seq;
            out.push((src, p));
        }
    }
    out
}

/// What equivalence compares: per-class stats that must match exactly,
/// and each flow's observed payload sequence on each output device.
#[derive(Debug, PartialEq)]
struct Observation {
    counters: Vec<(String, u64)>,
    unconnected_drops: u64,
    reentrant_drops: u64,
    /// (output device, flow source port) → payload sequence numbers.
    flows: Vec<((usize, u16), Vec<u8>)>,
}

const CLASSES: [(&str, &str); 3] = [
    ("Queue", "drops"),
    ("Discard", "count"),
    ("IPFragmenter", "drops"),
];

fn flows_of(outputs: Vec<(usize, Vec<Packet>)>) -> Vec<((usize, u16), Vec<u8>)> {
    let mut flows: Vec<((usize, u16), Vec<u8>)> = Vec::new();
    for (dev, packets) in outputs {
        for p in packets {
            let sport = flow_key(p.data()).map_or(0, |k| k.3);
            let seq = p.data()[p.len() - 1];
            match flows.iter_mut().find(|(k, _)| *k == (dev, sport)) {
                Some((_, seqs)) => seqs.push(seq),
                None => flows.push(((dev, sport), vec![seq])),
            }
        }
    }
    flows.sort_by_key(|(k, _)| *k);
    flows
}

fn run_serial<S: Slot>(graph: &RouterGraph, batched: bool) -> Observation {
    let spec = IpRouterSpec::standard(N);
    let lib = click::core::registry::Library::standard();
    let mut router: Router<S> = Router::from_graph(graph, &lib).expect("router builds");
    if batched {
        router.set_batching(true);
        router.set_batch_burst(8);
    }
    for (src, p) in trace(&spec) {
        let id = router.devices.id(&format!("eth{src}")).expect("device");
        router.devices.inject(id, p);
    }
    router.run_until_idle(100_000);
    let outputs = (0..N)
        .map(|d| {
            let id = router.devices.id(&format!("eth{d}")).expect("device");
            (d, router.devices.take_tx(id))
        })
        .collect();
    Observation {
        counters: CLASSES
            .iter()
            .map(|(c, s)| (format!("{c}.{s}"), router.class_stat(c, s)))
            .collect(),
        unconnected_drops: router.unconnected_drops(),
        reentrant_drops: router.reentrant_drops(),
        flows: flows_of(outputs),
    }
}

fn run_parallel<S: Slot + 'static>(
    graph: &RouterGraph,
    shards: usize,
    batched: bool,
) -> Observation {
    let spec = IpRouterSpec::standard(N);
    let mut opts = ParallelOpts::new(shards);
    if batched {
        opts = opts.batched(8);
    }
    let mut router = ParallelRouter::from_graph::<S>(graph, opts).expect("parallel router builds");
    for (src, p) in trace(&spec) {
        let id = router.device_id(&format!("eth{src}")).expect("device");
        router.inject(id, p);
    }
    router.run_until_idle();
    let outputs = (0..N)
        .map(|d| {
            let id = router.device_id(&format!("eth{d}")).expect("device");
            (d, router.take_tx(id))
        })
        .collect();
    Observation {
        counters: CLASSES
            .iter()
            .map(|(c, s)| (format!("{c}.{s}"), router.class_stat(c, s)))
            .collect(),
        unconnected_drops: router.unconnected_drops(),
        reentrant_drops: router.reentrant_drops(),
        flows: flows_of(outputs),
    }
}

fn check_engine<S: Slot + 'static>(graph: &RouterGraph, batched: bool) {
    let reference = run_serial::<S>(graph, batched);
    // Sanity: every packet of every flow was forwarded, in order.
    assert_eq!(reference.flows.len(), usize::from(FLOWS));
    for ((_, sport), seqs) in &reference.flows {
        assert_eq!(
            *seqs,
            (0..PER_FLOW).collect::<Vec<u8>>(),
            "serial reference reordered flow {sport}"
        );
    }
    for shards in [1usize, 2, 4] {
        let got = run_parallel::<S>(graph, shards, batched);
        assert_eq!(
            got, reference,
            "{shards}-shard runtime diverges from serial (batched={batched})"
        );
    }
}

#[test]
fn dyn_engine_parallel_matches_serial() {
    let variants = ip_router_variants(N).expect("variants build");
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    check_engine::<Box<dyn click::elements::Element>>(base, false);
}

#[test]
fn dyn_engine_parallel_matches_serial_batched() {
    let variants = ip_router_variants(N).expect("variants build");
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    check_engine::<Box<dyn click::elements::Element>>(base, true);
}

#[test]
fn compiled_engine_parallel_matches_serial() {
    let variants = ip_router_variants(N).expect("variants build");
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    check_engine::<click::elements::fast::FastElement>(all, false);
}

#[test]
fn compiled_engine_parallel_matches_serial_batched() {
    let variants = ip_router_variants(N).expect("variants build");
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    check_engine::<click::elements::fast::FastElement>(all, true);
}

#[test]
fn parallel_and_serial_agree_across_optimization_levels() {
    // The optimizer-equivalence property and the sharding-equivalence
    // property compose: optimized graphs on the sharded runtime still
    // match the unoptimized serial reference.
    let variants = ip_router_variants(N).expect("variants build");
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    let reference = run_serial::<Box<dyn click::elements::Element>>(base, false);
    let got = run_parallel::<click::elements::fast::FastElement>(all, 4, true);
    assert_eq!(got, reference);
}
