//! Parallel/serial equivalence: the sharded runtime must be
//! observationally identical to the serial engine. The same input trace
//! through `Router` and `ParallelRouter` (at 1, 2, and 4 shards) must
//! produce identical per-class statistics and identical per-flow packet
//! order, on both the dynamic and the compiled engine.
//!
//! Cross-shard (total) output order is *not* compared — shards complete
//! independently and the runtime only promises per-flow FIFO, the same
//! guarantee hardware RSS gives a multi-queue NIC.

use click::core::RouterGraph;
use click::elements::ip_router::{test_packet_flow, IpRouterSpec};
use click::elements::packet::Packet;
use click::elements::parallel::{ParallelOpts, ParallelRouter};
use click::elements::router::Slot;
use click::elements::steer::flow_key;
use click::elements::Router;
use click_bench::ip_router_variants;

const N: usize = 4;
const FLOWS: u16 = 12;
const PER_FLOW: u8 = 6;

/// The trace: FLOWS cross-interface UDP flows, PER_FLOW packets each,
/// interleaved round-robin, with a per-flow sequence number in the
/// payload.
fn trace(spec: &IpRouterSpec) -> Vec<(usize, Packet)> {
    let mut out = Vec::new();
    for seq in 0..PER_FLOW {
        for flow in 0..FLOWS {
            let src = usize::from(flow) % (N / 2);
            let dst = src + N / 2;
            let mut p = test_packet_flow(spec, src, dst, 2000 + flow, 7000);
            let n = p.len();
            p.data_mut()[n - 1] = seq;
            out.push((src, p));
        }
    }
    out
}

/// What equivalence compares: per-class stats that must match exactly,
/// and each flow's observed payload sequence on each output device.
#[derive(Debug, PartialEq)]
struct Observation {
    counters: Vec<(String, u64)>,
    unconnected_drops: u64,
    reentrant_drops: u64,
    /// (output device, flow source port) → payload sequence numbers.
    flows: Vec<((usize, u16), Vec<u8>)>,
}

const CLASSES: [(&str, &str); 3] = [
    ("Queue", "drops"),
    ("Discard", "count"),
    ("IPFragmenter", "drops"),
];

fn flows_of(outputs: Vec<(usize, Vec<Packet>)>) -> Vec<((usize, u16), Vec<u8>)> {
    let mut flows: Vec<((usize, u16), Vec<u8>)> = Vec::new();
    for (dev, packets) in outputs {
        for p in packets {
            let sport = flow_key(p.data()).map_or(0, |k| k.3);
            let seq = p.data()[p.len() - 1];
            match flows.iter_mut().find(|(k, _)| *k == (dev, sport)) {
                Some((_, seqs)) => seqs.push(seq),
                None => flows.push(((dev, sport), vec![seq])),
            }
        }
    }
    flows.sort_by_key(|(k, _)| *k);
    flows
}

fn run_serial<S: Slot>(graph: &RouterGraph, batched: bool) -> Observation {
    let spec = IpRouterSpec::standard(N);
    let lib = click::core::registry::Library::standard();
    let mut router: Router<S> = Router::from_graph(graph, &lib).expect("router builds");
    if batched {
        router.set_batching(true);
        router.set_batch_burst(8);
    }
    for (src, p) in trace(&spec) {
        let id = router.devices.id(&format!("eth{src}")).expect("device");
        router.devices.inject(id, p);
    }
    router.run_until_idle(100_000);
    let outputs = (0..N)
        .map(|d| {
            let id = router.devices.id(&format!("eth{d}")).expect("device");
            (d, router.devices.take_tx(id))
        })
        .collect();
    Observation {
        counters: CLASSES
            .iter()
            .map(|(c, s)| (format!("{c}.{s}"), router.class_stat(c, s)))
            .collect(),
        unconnected_drops: router.unconnected_drops(),
        reentrant_drops: router.reentrant_drops(),
        flows: flows_of(outputs),
    }
}

fn run_parallel<S: Slot + 'static>(
    graph: &RouterGraph,
    shards: usize,
    batched: bool,
) -> Observation {
    run_parallel_steered::<S>(graph, shards, batched, 0)
}

fn run_parallel_steered<S: Slot + 'static>(
    graph: &RouterGraph,
    shards: usize,
    batched: bool,
    steerers: usize,
) -> Observation {
    let spec = IpRouterSpec::standard(N);
    let mut opts = ParallelOpts::new(shards).with_steerers(steerers);
    if batched {
        opts = opts.batched(8);
    }
    let mut router = ParallelRouter::from_graph::<S>(graph, opts).expect("parallel router builds");
    for (src, p) in trace(&spec) {
        let id = router.device_id(&format!("eth{src}")).expect("device");
        router.inject(id, p);
    }
    router.run_until_idle();
    let outputs = (0..N)
        .map(|d| {
            let id = router.device_id(&format!("eth{d}")).expect("device");
            (d, router.take_tx(id))
        })
        .collect();
    Observation {
        counters: CLASSES
            .iter()
            .map(|(c, s)| (format!("{c}.{s}"), router.class_stat(c, s)))
            .collect(),
        unconnected_drops: router.unconnected_drops(),
        reentrant_drops: router.reentrant_drops(),
        flows: flows_of(outputs),
    }
}

fn check_engine<S: Slot + 'static>(graph: &RouterGraph, batched: bool) {
    let reference = run_serial::<S>(graph, batched);
    // Sanity: every packet of every flow was forwarded, in order.
    assert_eq!(reference.flows.len(), usize::from(FLOWS));
    for ((_, sport), seqs) in &reference.flows {
        assert_eq!(
            *seqs,
            (0..PER_FLOW).collect::<Vec<u8>>(),
            "serial reference reordered flow {sport}"
        );
    }
    for shards in [1usize, 2, 4] {
        let got = run_parallel::<S>(graph, shards, batched);
        assert_eq!(
            got, reference,
            "{shards}-shard runtime diverges from serial (batched={batched})"
        );
    }
}

#[test]
fn dyn_engine_parallel_matches_serial() {
    let variants = ip_router_variants(N).expect("variants build");
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    check_engine::<Box<dyn click::elements::Element>>(base, false);
}

#[test]
fn dyn_engine_parallel_matches_serial_batched() {
    let variants = ip_router_variants(N).expect("variants build");
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    check_engine::<Box<dyn click::elements::Element>>(base, true);
}

#[test]
fn compiled_engine_parallel_matches_serial() {
    let variants = ip_router_variants(N).expect("variants build");
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    check_engine::<click::elements::fast::FastElement>(all, false);
}

#[test]
fn compiled_engine_parallel_matches_serial_batched() {
    let variants = ip_router_variants(N).expect("variants build");
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    check_engine::<click::elements::fast::FastElement>(all, true);
}

#[test]
fn multi_steerer_parallel_matches_serial() {
    // Parallel steering moves classification off the injection thread
    // onto N steerer threads; the observable behavior (per-flow order,
    // per-class stats) must stay bit-identical to the serial reference
    // at every steerer count, on both engines.
    let variants = ip_router_variants(N).expect("variants build");
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    let dyn_reference = run_serial::<Box<dyn click::elements::Element>>(base, true);
    let fast_reference = run_serial::<click::elements::fast::FastElement>(all, true);
    for shards in [2usize, 4] {
        for steerers in [1usize, 2, 3] {
            let got = run_parallel_steered::<Box<dyn click::elements::Element>>(
                base, shards, true, steerers,
            );
            assert_eq!(
                got, dyn_reference,
                "{shards}-shard/{steerers}-steerer dyn runtime diverges from serial"
            );
            let got = run_parallel_steered::<click::elements::fast::FastElement>(
                all, shards, true, steerers,
            );
            assert_eq!(
                got, fast_reference,
                "{shards}-shard/{steerers}-steerer compiled runtime diverges from serial"
            );
        }
    }
}

#[test]
fn multi_steerer_survives_mid_stream_shard_kill() {
    // Compose parallel steering with the chaos contract: a shard panic
    // mid-trace must degrade, not abort, and the ingress path through
    // the steerer threads must keep per-flow order for everything that
    // is delivered. Survivor-homed flows arrive complete and in order;
    // dead-homed flows may have a gap (the in-flight loss) but never
    // reorder; accounting is exact.
    use click::core::lang::read_config;
    use click::elements::headers::build_udp_packet;

    const KILLED: usize = 1;
    const PER_SHARD_FLOWS: usize = 4;
    const KILL_PER_FLOW: u8 = 30;

    let g = read_config(&format!(
        "FromDevice(in0) -> FaultInject(PANIC 1, AFTER 100, SHARD {KILLED}) \
         -> Queue(8192) -> ToDevice(out0);"
    ))
    .expect("chaos graph parses");
    let udp = |sport: u16, seq: u8| {
        let mut p = build_udp_packet([1; 6], [2; 6], 0x0A00_0002, 0x0A00_0102, sport, 9, 18, 64);
        let n = p.len();
        p.data_mut()[n - 1] = seq;
        p
    };
    for steerers in [1usize, 2] {
        let opts = ParallelOpts::new(4).batched(8).with_steerers(steerers);
        let mut r = ParallelRouter::from_graph::<Box<dyn click::elements::Element>>(&g, opts)
            .expect("router builds");
        let in0 = r.device_id("in0").expect("in0 exists");
        let out0 = r.device_id("out0").expect("out0 exists");
        // PER_SHARD_FLOWS flows homed on each shard, found by probing
        // the steering hash — so the doomed shard sees enough traffic
        // to trip its FaultInject mid-wave.
        let mut flows: Vec<Vec<u16>> = vec![Vec::new(); r.shards()];
        let mut sport = 2000u16;
        while flows.iter().any(|f| f.len() < PER_SHARD_FLOWS) {
            let home = r.shard_for(udp(sport, 0).data(), in0);
            if flows[home].len() < PER_SHARD_FLOWS {
                flows[home].push(sport);
            }
            sport += 1;
        }
        let mut injected = 0u64;
        for seq in 0..KILL_PER_FLOW {
            for shard_flows in &flows {
                for &sport in shard_flows {
                    r.inject(in0, udp(sport, seq));
                    injected += 1;
                }
            }
        }
        r.run_until_idle();
        let faults = r.fault_gauges();
        assert_eq!(faults.shard_deaths, 1, "{steerers} steerers: one death");
        assert_eq!(faults.live_shards, 3);
        assert_eq!(faults.no_live_shard_drops, 0);
        let tx = r.take_tx(out0);
        assert_eq!(
            tx.len() as u64 + faults.lost_packets,
            injected,
            "{steerers} steerers: injected packets must be transmitted or accounted lost"
        );
        let observed = flows_of(vec![(0, tx)]);
        for (shard, shard_flows) in flows.iter().enumerate() {
            for &sport in shard_flows {
                let seqs = &observed
                    .iter()
                    .find(|((_, k), _)| *k == sport)
                    .unwrap_or_else(|| panic!("flow {sport} vanished entirely"))
                    .1;
                if shard == KILLED {
                    assert!(
                        seqs.windows(2).all(|w| w[0] < w[1]),
                        "dead-homed flow {sport} reordered: {seqs:?}"
                    );
                } else {
                    assert_eq!(
                        *seqs,
                        (0..KILL_PER_FLOW).collect::<Vec<u8>>(),
                        "survivor-homed flow {sport} lost or reordered packets"
                    );
                }
            }
        }
        r.shutdown();
    }
}

#[test]
fn parallel_and_serial_agree_across_optimization_levels() {
    // The optimizer-equivalence property and the sharding-equivalence
    // property compose: optimized graphs on the sharded runtime still
    // match the unoptimized serial reference.
    let variants = ip_router_variants(N).expect("variants build");
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    let reference = run_serial::<Box<dyn click::elements::Element>>(base, false);
    let got = run_parallel::<click::elements::fast::FastElement>(all, 4, true);
    assert_eq!(got, reference);
}
