//! Failure injection: malformed inputs at every boundary must produce
//! errors, not panics or silent corruption.

use click::core::archive::{Archive, CONFIG_ENTRY};
use click::core::lang::read_config;
use click::core::registry::Library;
use click::elements::headers::{ether, ipv4};
use click::elements::ip_router::{test_packet_flow, IpRouterSpec};
use click::elements::router::{DynRouter, Slot};
use click::elements::steer::{flow_key, RssSteering};
use click::elements::{Packet, Router};

#[test]
fn malformed_sources_error_cleanly() {
    for src in [
        "a ->",                                                           // truncated
        "a :: ;",                                                         // missing class
        "-> b;",                                                          // missing source
        "a [x] -> b;",                                                    // non-numeric port
        "elementclass {}",                                                // unnamed compound
        "a :: B(unclosed;",                                               // unterminated config
        "/* forever",                                                     // unterminated comment
        "a :: B; a :: C;",                                                // redeclaration
        "input -> Discard;", // pseudo port at top level
        "elementclass R { input -> R -> output; } Idle -> R -> Discard;", // recursion
    ] {
        assert!(read_config(src).is_err(), "should reject: {src}");
    }
}

#[test]
fn malformed_archives_error_cleanly() {
    for text in [
        "!<click-archive>\n@entry config 999\nshort",
        "!<click-archive>\nnot-an-entry\n",
        "!<click-archive>\n@entry noconfig 2\nhi\n",
    ] {
        assert!(
            read_config(text).is_err(),
            "should reject archive: {text:?}"
        );
    }
}

#[test]
fn archive_config_with_bad_generated_code_fails_at_instantiation() {
    // A FastClassifier whose serialized matcher is corrupt: parse
    // succeeds (config strings are opaque), instantiation fails.
    let mut a = Archive::new();
    a.insert(
        CONFIG_ENTRY,
        "Idle -> fc :: FastClassifier@@x(fast corrupted nonsense); fc [0] -> Discard;",
    );
    let graph = read_config(&a.to_string()).expect("opaque configs parse");
    let err = DynRouter::from_graph(&graph, &Library::standard());
    assert!(
        err.is_err(),
        "corrupt matcher must fail element construction"
    );
}

#[test]
fn bad_element_configs_fail_at_construction_not_at_runtime() {
    for src in [
        "Idle -> Strip(notanumber) -> Discard;",
        "Idle -> Paint(1, 2) -> Discard;",
        "FromDevice(a) -> Queue(0) -> ToDevice(b);",
        "Idle -> EtherEncap(0x0800, junk, 00:00:00:00:00:01) -> Discard;",
        "Idle -> Classifier(zz/top) -> Discard;",
        "Idle -> IPFilter(frobnicate everything) -> Discard;",
        "Idle -> r :: StaticIPLookup(10.0.0.0/99 0); r [0] -> Discard;",
        "Idle -> RED(50, 10, 0.5) -> Discard;",
    ] {
        let graph = read_config(src).expect("syntax is fine");
        assert!(
            DynRouter::from_graph(&graph, &Library::standard()).is_err(),
            "should reject config: {src}"
        );
    }
}

#[test]
fn tools_reject_what_they_cannot_transform() {
    // fastclassifier on a syntactically valid but uncompilable classifier.
    let mut g =
        read_config("Idle -> c :: Classifier(12/0800, -); c [0] -> Discard; c [1] -> Discard;")
            .unwrap();
    g.set_config(g.find("c").unwrap(), "bad pattern");
    assert!(click::opt::fastclassifier::fastclassifier(&mut g).is_err());

    // devirtualize on a push/pull-broken graph.
    let mut broken = read_config("FromDevice(a) -> ToDevice(b);").unwrap();
    assert!(click::opt::devirtualize::devirtualize(
        &mut broken,
        &Library::standard(),
        &Default::default()
    )
    .is_err());

    // uncombine without a manifest.
    let plain = read_config("Idle -> Discard;").unwrap();
    assert!(click::opt::combine::uncombine(&plain, "A").is_err());
}

#[test]
fn runtime_survives_adversarial_packets() {
    // Truncated, oversized, and garbage frames through the full IP router
    // must never panic; they are dropped or error-routed.
    let spec = click::elements::ip_router::IpRouterSpec::standard(2);
    let graph = read_config(&spec.config()).unwrap();
    let mut r: DynRouter = Router::from_graph(&graph, &Library::standard()).unwrap();
    let eth0 = r.devices.id("eth0").unwrap();
    let mut seed = 7u64;
    let mut rand_byte = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as u8
    };
    for len in [0usize, 1, 13, 14, 15, 33, 34, 59, 60, 61, 1500, 9000] {
        let mut p = click::elements::Packet::new(len);
        for b in p.data_mut() {
            *b = rand_byte();
        }
        r.devices.inject(eth0, p);
    }
    r.run_until_idle(10_000);
    // Whatever happened, the router reached quiescence without panicking.
    assert_eq!(r.devices.rx_len(eth0), 0);
}

/// CheckIPHeader semantics are drop-and-count, not panic: malformed IP
/// frames land in the `bad` counter (and are engine-dropped off the
/// unconnected error port) while good traffic keeps forwarding.
fn check_ip_header_counts_bad_frames<S: Slot>() {
    let spec = IpRouterSpec::standard(2);
    let graph = read_config(&spec.config()).unwrap();
    let mut r: Router<S> = Router::from_graph(&graph, &Library::standard()).unwrap();
    let eth0 = r.devices.id("eth0").unwrap();
    let eth1 = r.devices.id("eth1").unwrap();

    let good = || test_packet_flow(&spec, 0, 1, 1234, 5678);

    // Bad checksum: flip one bit in the IP checksum field.
    let mut bad_csum = good();
    bad_csum.data_mut()[ether::HLEN + 10] ^= 0x01;

    // Bad version: not IPv4 behind an 0x0800 ethertype.
    let mut bad_version = good();
    bad_version.data_mut()[ether::HLEN] = 0x60 | 0x05;

    // Truncated: the header claims more payload than the frame carries.
    let mut truncated = good();
    let keep = ether::HLEN + ipv4::HLEN + 2;
    let cut = truncated.len() - keep;
    truncated.take(cut);

    // IHL shorter than a minimal header.
    let mut runt_ihl = good();
    runt_ihl.data_mut()[ether::HLEN] = 0x41; // version 4, IHL 1 word
    let h = &mut runt_ihl.data_mut()[ether::HLEN..];
    let c = ipv4::compute_checksum(h);
    h[10..12].copy_from_slice(&c.to_be_bytes());

    let bad: Vec<Packet> = vec![bad_csum, bad_version, truncated, runt_ihl];
    let n_bad = bad.len() as u64;
    for p in bad {
        r.devices.inject(eth0, p);
    }
    r.devices.inject(eth0, good());
    r.run_until_idle(100_000);

    assert_eq!(
        r.class_stat("CheckIPHeader", "bad"),
        n_bad,
        "every malformed frame counted, none forwarded"
    );
    assert_eq!(
        r.devices.tx_len(eth1),
        1,
        "the good packet still forwards next to the bad ones"
    );
}

#[test]
fn check_ip_header_counts_bad_frames_dyn_engine() {
    check_ip_header_counts_bad_frames::<Box<dyn click::elements::Element>>();
}

#[test]
fn check_ip_header_counts_bad_frames_compiled_engine() {
    check_ip_header_counts_bad_frames::<click::elements::fast::FastElement>();
}

#[test]
fn flow_key_fuzz_never_panics_and_steers_stably() {
    // LCG-driven fuzz over frame lengths and contents — including frames
    // whose ethertype says IPv4 but whose header lies about its IHL, and
    // runts shorter than an Ethernet header. `flow_key` must never
    // panic, and shard assignment must be a pure function of the bytes.
    let steer = RssSteering::new(4);
    let dev = click::elements::element::DeviceId(1);
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut rand = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 32
    };
    for round in 0..2000 {
        let len = (rand() as usize) % 80;
        let mut frame = vec![0u8; len];
        for b in &mut frame {
            *b = rand() as u8;
        }
        if round % 3 == 0 && len >= 14 {
            // Force the IPv4 ethertype so the parser goes deep.
            frame[12] = 0x08;
            frame[13] = 0x00;
            if len >= 15 {
                // Claimed IHL often exceeds the actual frame.
                frame[14] = 0x40 | (rand() as u8 & 0x0F);
            }
        }
        let k1 = flow_key(&frame);
        let k2 = flow_key(&frame);
        assert_eq!(k1, k2, "flow_key must be deterministic");
        let s1 = steer.shard_for(&frame, dev);
        let s2 = steer.shard_for(&frame, dev);
        assert_eq!(s1, s2, "shard assignment must be stable");
        assert!(s1 < 4);
        // A frame too short for a full IP header must have no key at all
        // (never a garbage key built from out-of-bounds reads), and a
        // header claiming more IHL than the frame carries is a runt too.
        if frame.len() < 14 + 20 {
            assert_eq!(k1, None, "short frame produced a key: len {len}");
        }
        if frame.len() >= 15 && usize::from(frame[14] & 0x0F) * 4 > frame.len() - 14 {
            assert_eq!(k1, None, "lying IHL produced a key: len {len}");
        }
    }
}

#[test]
fn dead_shard_mask_keeps_assignments_stable_for_survivors() {
    // Killing one shard re-homes only that shard's flows: every flow
    // homed elsewhere keeps its exact assignment (the per-flow-order
    // guarantee of degraded mode), and nothing ever lands on the corpse.
    let mut steer = RssSteering::new(4);
    let dev = click::elements::element::DeviceId(0);
    let frames: Vec<Vec<u8>> = (0..64u16)
        .map(|f| {
            let p = click::elements::headers::build_udp_packet(
                [1; 6],
                [2; 6],
                0x0A00_0002,
                0x0A00_0102,
                6000 + f,
                9,
                18,
                64,
            );
            p.data().to_vec()
        })
        .collect();
    let before: Vec<usize> = frames.iter().map(|f| steer.shard_for(f, dev)).collect();
    steer.mark_dead(2);
    for (frame, &home) in frames.iter().zip(&before) {
        let now = steer
            .live_shard_for(frame, dev)
            .expect("three shards remain");
        assert_ne!(now, 2, "steered to the dead shard");
        if home != 2 {
            assert_eq!(now, home, "survivor-homed flow moved");
        }
    }
}

#[test]
fn compiled_engine_survives_the_same_adversarial_packets() {
    let spec = click::elements::ip_router::IpRouterSpec::standard(2);
    let graph = read_config(&spec.config()).unwrap();
    let mut r: click::elements::CompiledRouter =
        Router::from_graph(&graph, &Library::standard()).unwrap();
    let eth0 = r.devices.id("eth0").unwrap();
    for len in [0usize, 7, 14, 20, 34, 60, 4096] {
        let mut p = click::elements::Packet::new(len);
        for (i, b) in p.data_mut().iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31);
        }
        r.devices.inject(eth0, p);
    }
    r.run_until_idle(10_000);
    assert_eq!(r.devices.rx_len(eth0), 0);
}
