//! Failure injection: malformed inputs at every boundary must produce
//! errors, not panics or silent corruption.

use click::core::archive::{Archive, CONFIG_ENTRY};
use click::core::lang::read_config;
use click::core::registry::Library;
use click::elements::router::DynRouter;
use click::elements::Router;

#[test]
fn malformed_sources_error_cleanly() {
    for src in [
        "a ->",                                                           // truncated
        "a :: ;",                                                         // missing class
        "-> b;",                                                          // missing source
        "a [x] -> b;",                                                    // non-numeric port
        "elementclass {}",                                                // unnamed compound
        "a :: B(unclosed;",                                               // unterminated config
        "/* forever",                                                     // unterminated comment
        "a :: B; a :: C;",                                                // redeclaration
        "input -> Discard;", // pseudo port at top level
        "elementclass R { input -> R -> output; } Idle -> R -> Discard;", // recursion
    ] {
        assert!(read_config(src).is_err(), "should reject: {src}");
    }
}

#[test]
fn malformed_archives_error_cleanly() {
    for text in [
        "!<click-archive>\n@entry config 999\nshort",
        "!<click-archive>\nnot-an-entry\n",
        "!<click-archive>\n@entry noconfig 2\nhi\n",
    ] {
        assert!(
            read_config(text).is_err(),
            "should reject archive: {text:?}"
        );
    }
}

#[test]
fn archive_config_with_bad_generated_code_fails_at_instantiation() {
    // A FastClassifier whose serialized matcher is corrupt: parse
    // succeeds (config strings are opaque), instantiation fails.
    let mut a = Archive::new();
    a.insert(
        CONFIG_ENTRY,
        "Idle -> fc :: FastClassifier@@x(fast corrupted nonsense); fc [0] -> Discard;",
    );
    let graph = read_config(&a.to_string()).expect("opaque configs parse");
    let err = DynRouter::from_graph(&graph, &Library::standard());
    assert!(
        err.is_err(),
        "corrupt matcher must fail element construction"
    );
}

#[test]
fn bad_element_configs_fail_at_construction_not_at_runtime() {
    for src in [
        "Idle -> Strip(notanumber) -> Discard;",
        "Idle -> Paint(1, 2) -> Discard;",
        "FromDevice(a) -> Queue(0) -> ToDevice(b);",
        "Idle -> EtherEncap(0x0800, junk, 00:00:00:00:00:01) -> Discard;",
        "Idle -> Classifier(zz/top) -> Discard;",
        "Idle -> IPFilter(frobnicate everything) -> Discard;",
        "Idle -> r :: StaticIPLookup(10.0.0.0/99 0); r [0] -> Discard;",
        "Idle -> RED(50, 10, 0.5) -> Discard;",
    ] {
        let graph = read_config(src).expect("syntax is fine");
        assert!(
            DynRouter::from_graph(&graph, &Library::standard()).is_err(),
            "should reject config: {src}"
        );
    }
}

#[test]
fn tools_reject_what_they_cannot_transform() {
    // fastclassifier on a syntactically valid but uncompilable classifier.
    let mut g =
        read_config("Idle -> c :: Classifier(12/0800, -); c [0] -> Discard; c [1] -> Discard;")
            .unwrap();
    g.set_config(g.find("c").unwrap(), "bad pattern");
    assert!(click::opt::fastclassifier::fastclassifier(&mut g).is_err());

    // devirtualize on a push/pull-broken graph.
    let mut broken = read_config("FromDevice(a) -> ToDevice(b);").unwrap();
    assert!(click::opt::devirtualize::devirtualize(
        &mut broken,
        &Library::standard(),
        &Default::default()
    )
    .is_err());

    // uncombine without a manifest.
    let plain = read_config("Idle -> Discard;").unwrap();
    assert!(click::opt::combine::uncombine(&plain, "A").is_err());
}

#[test]
fn runtime_survives_adversarial_packets() {
    // Truncated, oversized, and garbage frames through the full IP router
    // must never panic; they are dropped or error-routed.
    let spec = click::elements::ip_router::IpRouterSpec::standard(2);
    let graph = read_config(&spec.config()).unwrap();
    let mut r: DynRouter = Router::from_graph(&graph, &Library::standard()).unwrap();
    let eth0 = r.devices.id("eth0").unwrap();
    let mut seed = 7u64;
    let mut rand_byte = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as u8
    };
    for len in [0usize, 1, 13, 14, 15, 33, 34, 59, 60, 61, 1500, 9000] {
        let mut p = click::elements::Packet::new(len);
        for b in p.data_mut() {
            *b = rand_byte();
        }
        r.devices.inject(eth0, p);
    }
    r.run_until_idle(10_000);
    // Whatever happened, the router reached quiescence without panicking.
    assert_eq!(r.devices.rx_len(eth0), 0);
}

#[test]
fn compiled_engine_survives_the_same_adversarial_packets() {
    let spec = click::elements::ip_router::IpRouterSpec::standard(2);
    let graph = read_config(&spec.config()).unwrap();
    let mut r: click::elements::CompiledRouter =
        Router::from_graph(&graph, &Library::standard()).unwrap();
    let eth0 = r.devices.id("eth0").unwrap();
    for len in [0usize, 7, 14, 20, 34, 60, 4096] {
        let mut p = click::elements::Packet::new(len);
        for (i, b) in p.data_mut().iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31);
        }
        r.devices.inject(eth0, p);
    }
    r.run_until_idle(10_000);
    assert_eq!(r.devices.rx_len(eth0), 0);
}
