//! Property tests: the three classifier runtimes (pointer-chasing tree,
//! compiled program, specialized matcher) and the reference condition
//! evaluator agree on every packet, for randomly generated rule sets —
//! and tree optimization never changes classification.
//!
//! Randomness comes from a fixed-seed LCG so the suite is deterministic
//! and dependency-free; change the seed to explore a different corner of
//! the space.

use click::classifier::{
    build_tree, optimize, parse_rules, Action, Check, ClassifierProgram, Cond, FastMatcher, Rule,
    TreeClassifier,
};

/// Deterministic 64-bit LCG (MMIX constants); high bits are well mixed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
    fn word(&mut self) -> u32 {
        (self.next() as u32) ^ ((self.next() as u32) << 16)
    }
}

/// A random single-word check with plausible packet offsets.
fn gen_check(r: &mut Lcg) -> Cond {
    let word = r.below(6) as u32;
    let mask = r.word() | 1; // never trivially empty
    let value = r.word() & mask;
    Cond::Check(Check::new(word * 4, mask, value))
}

fn gen_cond(r: &mut Lcg, depth: usize) -> Cond {
    if depth == 0 || r.below(2) == 0 {
        return match r.below(6) {
            0 => Cond::True,
            1 => Cond::False,
            _ => gen_check(r),
        };
    }
    match r.below(3) {
        0 => Cond::And(
            (0..1 + r.below(3))
                .map(|_| gen_cond(r, depth - 1))
                .collect(),
        ),
        1 => Cond::Or(
            (0..1 + r.below(3))
                .map(|_| gen_cond(r, depth - 1))
                .collect(),
        ),
        _ => Cond::Not(Box::new(gen_cond(r, depth - 1))),
    }
}

fn gen_rules(r: &mut Lcg) -> Vec<Rule> {
    (0..1 + r.below(5))
        .map(|i| Rule {
            cond: gen_cond(r, 3),
            action: if r.below(2) == 0 {
                Action::Emit(i)
            } else {
                Action::Drop
            },
        })
        .collect()
}

fn gen_packet(r: &mut Lcg) -> Vec<u8> {
    (0..r.below(48)).map(|_| r.next() as u8).collect()
}

/// Reference semantics: first matching rule decides.
fn reference(rules: &[Rule], data: &[u8]) -> Option<usize> {
    for r in rules {
        if r.cond.eval(data) {
            return match r.action {
                Action::Emit(o) => Some(o),
                Action::Drop => None,
            };
        }
    }
    None
}

#[test]
fn all_runtimes_agree() {
    let mut r = Lcg(0xC1A551F1E5);
    for case in 0..128 {
        let rules = gen_rules(&mut r);
        let noutputs = rules.len();
        let tree = build_tree(&rules, noutputs);
        let opt = optimize(&tree);
        let interp = TreeClassifier::new(&tree);
        let prog = ClassifierProgram::compile(&tree);
        let fast = FastMatcher::compile(&opt);
        for _ in 0..1 + r.below(7) {
            let data = gen_packet(&mut r);
            let expected = reference(&rules, &data);
            assert_eq!(
                tree.classify(&data),
                expected,
                "tree vs reference, case {case}"
            );
            assert_eq!(
                opt.classify(&data),
                expected,
                "optimized tree vs reference, case {case}"
            );
            assert_eq!(
                interp.classify(&data),
                expected,
                "interpreter vs reference, case {case}"
            );
            assert_eq!(
                prog.classify(&data),
                expected,
                "program vs reference, case {case}"
            );
            assert_eq!(
                fast.classify(&data),
                expected,
                "fast matcher vs reference, case {case}"
            );
        }
    }
}

#[test]
fn optimization_never_grows_depth() {
    let mut r = Lcg(0xDEE9);
    for _ in 0..128 {
        let rules = gen_rules(&mut r);
        let tree = build_tree(&rules, rules.len());
        let opt = optimize(&tree);
        assert!(opt.depth().unwrap() <= tree.depth().unwrap());
        assert!(opt.validate().is_ok());
    }
}

#[test]
fn program_serialization_round_trips() {
    let mut r = Lcg(0x5E11A11);
    for _ in 0..128 {
        let rules = gen_rules(&mut r);
        let tree = build_tree(&rules, rules.len());
        let prog = ClassifierProgram::compile(&tree);
        let text = prog.to_string();
        let back: ClassifierProgram = text.parse().unwrap();
        assert_eq!(prog.instrs(), back.instrs());
    }
}

#[test]
fn tree_serialization_round_trips() {
    let mut r = Lcg(0x7EE5);
    for _ in 0..128 {
        let rules = gen_rules(&mut r);
        let tree = build_tree(&rules, rules.len());
        let back: click::classifier::DecisionTree = tree.to_string().parse().unwrap();
        assert_eq!(tree, back);
    }
}

#[test]
fn ip_language_agrees_with_runtimes_on_structured_packets() {
    // Deterministic cross-check over the richer IPFilter language.
    let config = "allow src net 10.0.0.0/8 and tcp dst port 80, \
                  deny icmp type 8, \
                  allow udp, \
                  deny all";
    let rules = parse_rules("IPFilter", config).unwrap();
    let tree = build_tree(&rules, 1);
    let fast = FastMatcher::compile(&optimize(&tree));
    let mut seed = 0x5EEDu64;
    let mut rand_byte = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as u8
    };
    for _ in 0..500 {
        let mut p = vec![0u8; 40];
        p[0] = 0x45;
        p[9] = [1u8, 6, 17, 47][rand_byte() as usize % 4];
        p[12] = [10u8, 11, 192][rand_byte() as usize % 3];
        p[20] = rand_byte();
        p[22..24].copy_from_slice(&(if rand_byte() % 2 == 0 { 80u16 } else { 443 }).to_be_bytes());
        let expected = rules
            .iter()
            .find(|r| r.cond.eval(&p))
            .and_then(|r| match r.action {
                Action::Emit(o) => Some(o),
                Action::Drop => None,
            });
        assert_eq!(tree.classify(&p), expected);
        assert_eq!(fast.classify(&p), expected);
    }
}
