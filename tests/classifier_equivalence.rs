//! Property tests: the three classifier runtimes (pointer-chasing tree,
//! compiled program, specialized matcher) and the reference condition
//! evaluator agree on every packet, for randomly generated rule sets —
//! and tree optimization never changes classification.

use click::classifier::{
    build_tree, optimize, parse_rules, Action, ClassifierProgram, Cond, FastMatcher, Rule,
    TreeClassifier,
};
use proptest::prelude::*;

/// A random single-word check with plausible packet offsets.
fn arb_check() -> impl Strategy<Value = Cond> {
    (0u32..6, any::<u32>(), any::<u32>()).prop_map(|(word, mask, value)| {
        let mask = mask | 1; // never trivially empty
        Cond::Check(click::classifier::Check::new(word * 4, mask, value & mask))
    })
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    let leaf = prop_oneof![
        4 => arb_check(),
        1 => Just(Cond::True),
        1 => Just(Cond::False),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Cond::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Cond::Or),
            inner.prop_map(|c| Cond::Not(Box::new(c))),
        ]
    })
}

fn arb_rules() -> impl Strategy<Value = Vec<Rule>> {
    prop::collection::vec((arb_cond(), any::<bool>()), 1..6).prop_map(|rules| {
        rules
            .into_iter()
            .enumerate()
            .map(|(i, (cond, emit))| Rule {
                cond,
                action: if emit { Action::Emit(i) } else { Action::Drop },
            })
            .collect()
    })
}

/// Reference semantics: first matching rule decides.
fn reference(rules: &[Rule], data: &[u8]) -> Option<usize> {
    for r in rules {
        if r.cond.eval(data) {
            return match r.action {
                Action::Emit(o) => Some(o),
                Action::Drop => None,
            };
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_runtimes_agree(rules in arb_rules(), packets in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..8)) {
        let noutputs = rules.len();
        let tree = build_tree(&rules, noutputs);
        let opt = optimize(&tree);
        let interp = TreeClassifier::new(&tree);
        let prog = ClassifierProgram::compile(&tree);
        let fast = FastMatcher::compile(&opt);
        for data in &packets {
            let expected = reference(&rules, data);
            prop_assert_eq!(tree.classify(data), expected, "tree vs reference");
            prop_assert_eq!(opt.classify(data), expected, "optimized tree vs reference");
            prop_assert_eq!(interp.classify(data), expected, "interpreter vs reference");
            prop_assert_eq!(prog.classify(data), expected, "program vs reference");
            prop_assert_eq!(fast.classify(data), expected, "fast matcher vs reference");
        }
    }

    #[test]
    fn optimization_never_grows_depth(rules in arb_rules()) {
        let tree = build_tree(&rules, rules.len());
        let opt = optimize(&tree);
        prop_assert!(opt.depth().unwrap() <= tree.depth().unwrap());
        prop_assert!(opt.validate().is_ok());
    }

    #[test]
    fn program_serialization_round_trips(rules in arb_rules()) {
        let tree = build_tree(&rules, rules.len());
        let prog = ClassifierProgram::compile(&tree);
        let text = prog.to_string();
        let back: ClassifierProgram = text.parse().unwrap();
        prop_assert_eq!(prog.instrs(), back.instrs());
    }

    #[test]
    fn tree_serialization_round_trips(rules in arb_rules()) {
        let tree = build_tree(&rules, rules.len());
        let back: click::classifier::DecisionTree = tree.to_string().parse().unwrap();
        prop_assert_eq!(tree, back);
    }
}

#[test]
fn ip_language_agrees_with_runtimes_on_structured_packets() {
    // Deterministic cross-check over the richer IPFilter language.
    let config = "allow src net 10.0.0.0/8 and tcp dst port 80, \
                  deny icmp type 8, \
                  allow udp, \
                  deny all";
    let rules = parse_rules("IPFilter", config).unwrap();
    let tree = build_tree(&rules, 1);
    let fast = FastMatcher::compile(&optimize(&tree));
    let mut seed = 0x5EEDu64;
    let mut rand_byte = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as u8
    };
    for _ in 0..500 {
        let mut p = vec![0u8; 40];
        p[0] = 0x45;
        p[9] = [1u8, 6, 17, 47][rand_byte() as usize % 4];
        p[12] = [10u8, 11, 192][rand_byte() as usize % 3];
        p[20] = rand_byte();
        p[22..24].copy_from_slice(&(if rand_byte() % 2 == 0 { 80u16 } else { 443 }).to_be_bytes());
        let expected = rules
            .iter()
            .find(|r| r.cond.eval(&p))
            .and_then(|r| match r.action {
                Action::Emit(o) => Some(o),
                Action::Drop => None,
            });
        assert_eq!(tree.classify(&p), expected);
        assert_eq!(fast.classify(&p), expected);
    }
}
