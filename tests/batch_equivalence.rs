//! Property tests for the batched (vector-transfer) engine: on the
//! Figure-1 IP router it must be output- and stats-equivalent to the
//! scalar per-packet engine at every batch size, on both element stores —
//! and the packet pool must serve (nearly) every steady-state allocation.
//!
//! Randomness comes from a fixed-seed LCG so the suite is deterministic
//! and dependency-free.

use click::core::registry::Library;
use click::core::RouterGraph;
use click::elements::headers::ipv4;
use click::elements::ip_router::{test_packet, IpRouterSpec};
use click::elements::packet::{pool_stats, reset_pool_stats, Packet};
use click::elements::router::Slot;
use click::elements::Router;

const N: usize = 4;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

/// A pure-forwarding workload: valid cross-interface UDP only, all from
/// one input so even inter-device scheduling order is fixed.
fn pure_workload(spec: &IpRouterSpec, r: &mut Lcg, count: usize) -> Vec<(usize, Packet)> {
    (0..count)
        .map(|_| {
            let mut p = test_packet(spec, 0, 2 + r.below(2));
            p.data_mut()[50] = r.next() as u8;
            (0, p)
        })
        .collect()
}

/// A branchy workload: forwarding mixed with TTL expiries (ICMP errors),
/// non-IP junk, and runts, spread over every input interface.
fn branchy_workload(spec: &IpRouterSpec, r: &mut Lcg, count: usize) -> Vec<(usize, Packet)> {
    (0..count)
        .map(|_| {
            let src = r.below(N);
            match r.below(10) {
                0 => {
                    // TTL 1: expires at the router, ICMP error back out.
                    let mut p = test_packet(spec, src, (src + 1) % N);
                    {
                        let ip = &mut p.data_mut()[14..];
                        ip[8] = 1;
                        ipv4::set_checksum(ip);
                    }
                    (src, p)
                }
                1 => {
                    // Non-IP ethertype: classified out and discarded.
                    let mut p = Packet::new(60);
                    p.data_mut()[12] = 0x86;
                    p.data_mut()[13] = 0xDD;
                    (src, p)
                }
                2 => {
                    // Runt frame.
                    (src, Packet::new(r.below(34)))
                }
                _ => {
                    let mut dst = r.below(N);
                    if dst == src {
                        dst = (dst + 1) % N;
                    }
                    let mut p = test_packet(spec, src, dst);
                    p.data_mut()[50] = r.next() as u8;
                    (src, p)
                }
            }
        })
        .collect()
}

/// Runs a workload through one engine, returning per-device output frames
/// and the stats the ISSUE names as the equivalence surface.
fn run<S: Slot>(
    graph: &RouterGraph,
    workload: &[(usize, Packet)],
    batch: Option<usize>,
) -> (Vec<Vec<Vec<u8>>>, [u64; 3]) {
    let lib = Library::standard();
    let mut router: Router<S> = Router::from_graph(graph, &lib).expect("router builds");
    if let Some(b) = batch {
        router.set_batching(true);
        router.set_batch_burst(b);
    }
    for (src, p) in workload {
        let id = router.devices.id(&format!("eth{src}")).expect("device");
        router.devices.inject(id, p.clone());
    }
    router.run_until_idle(100_000);
    let outputs = (0..N)
        .map(|d| {
            let id = router.devices.id(&format!("eth{d}")).expect("device");
            router
                .devices
                .take_tx(id)
                .iter()
                .map(|p| p.data().to_vec())
                .collect()
        })
        .collect();
    let stats = [
        router.class_stat("Discard", "count"),
        router.class_stat("Queue", "drops"),
        router.class_stat("CheckIPHeader", "bad"),
    ];
    (outputs, stats)
}

fn sorted(mut outputs: Vec<Vec<Vec<u8>>>) -> Vec<Vec<Vec<u8>>> {
    for dev in &mut outputs {
        dev.sort();
    }
    outputs
}

#[test]
fn batched_engine_matches_scalar_exactly_on_pure_forwarding() {
    let spec = IpRouterSpec::standard(N);
    let graph = click::core::lang::read_config(&spec.config()).unwrap();
    let mut r = Lcg(0xBA7C4);
    let workload = pure_workload(&spec, &mut r, 96);
    type Dyn = Box<dyn click::elements::Element>;
    let (reference, ref_stats) = run::<Dyn>(&graph, &workload, None);
    assert!(
        reference.iter().map(Vec::len).sum::<usize>() == 96,
        "reference forwards all"
    );
    for batch in [1usize, 8, 64] {
        let (out, stats) = run::<Dyn>(&graph, &workload, Some(batch));
        assert_eq!(
            out, reference,
            "dyn batched({batch}) reorders or alters packets"
        );
        assert_eq!(stats, ref_stats, "dyn batched({batch}) stats");
        let (out, stats) =
            run::<click::elements::fast::FastElement>(&graph, &workload, Some(batch));
        assert_eq!(
            out, reference,
            "compiled batched({batch}) reorders or alters packets"
        );
        assert_eq!(stats, ref_stats, "compiled batched({batch}) stats");
    }
}

#[test]
fn batched_engine_matches_scalar_on_branchy_mixes() {
    // Error paths (ICMP generation, discards) make cross-device task
    // interleaving visible, so compare per-device multisets plus the
    // drop/discard counters rather than global arrival order.
    let spec = IpRouterSpec::standard(N);
    let graph = click::core::lang::read_config(&spec.config()).unwrap();
    type Dyn = Box<dyn click::elements::Element>;
    for seed in [1u64, 0xFEED, 0xD00D] {
        let mut r = Lcg(seed);
        let workload = branchy_workload(&spec, &mut r, 128);
        let (reference, ref_stats) = run::<Dyn>(&graph, &workload, None);
        let reference = sorted(reference);
        for batch in [1usize, 8, 64] {
            let (out, stats) = run::<Dyn>(&graph, &workload, Some(batch));
            assert_eq!(
                sorted(out),
                reference,
                "dyn batched({batch}), seed {seed:#x}"
            );
            assert_eq!(
                stats, ref_stats,
                "dyn batched({batch}) stats, seed {seed:#x}"
            );
            let (out, stats) =
                run::<click::elements::fast::FastElement>(&graph, &workload, Some(batch));
            assert_eq!(
                sorted(out),
                reference,
                "compiled batched({batch}), seed {seed:#x}"
            );
            assert_eq!(
                stats, ref_stats,
                "compiled batched({batch}) stats, seed {seed:#x}"
            );
        }
    }
}

#[test]
fn pool_serves_steady_state_allocations() {
    // After warmup, a forwarding loop that recycles what it drains should
    // allocate >= 99% of its packets from the pool, in both modes.
    let spec = IpRouterSpec::standard(N);
    let graph = click::core::lang::read_config(&spec.config()).unwrap();
    let lib = Library::standard();
    for batch in [None, Some(64usize)] {
        let mut router: click::elements::CompiledRouter = Router::from_graph(&graph, &lib).unwrap();
        if let Some(b) = batch {
            router.set_batching(true);
            router.set_batch_burst(b);
        }
        let mut r = Lcg(0x9001);
        let devs: Vec<_> = (0..N)
            .map(|i| router.devices.id(&format!("eth{i}")).unwrap())
            .collect();
        let iteration = |router: &mut click::elements::CompiledRouter, r: &mut Lcg| {
            for _ in 0..32 {
                let src = r.below(N);
                let p = test_packet(&spec, src, (src + 2) % N);
                router.devices.inject(devs[src], p);
            }
            router.run_until_idle(10_000);
            for &d in &devs {
                for p in router.devices.take_tx(d) {
                    p.recycle();
                }
            }
        };
        for _ in 0..32 {
            iteration(&mut router, &mut r);
        }
        reset_pool_stats();
        for _ in 0..64 {
            iteration(&mut router, &mut r);
        }
        let s = pool_stats();
        assert!(
            s.hit_rate() >= 0.99,
            "steady-state pool hit rate {:.4} (batch {batch:?}): {s:?}",
            s.hit_rate()
        );
    }
}
