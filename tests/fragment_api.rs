//! Tests of the fragment-elaboration API (`elaborate_fragment`) that
//! `click-xform` patterns ride on, exercised directly from the public
//! surface.

use click::core::lang::ast::Item;
use click::core::lang::{elaborate_fragment, parse, PSEUDO_INPUT_CLASS, PSEUDO_OUTPUT_CLASS};

fn items(src: &str) -> Vec<Item> {
    parse(src).unwrap().items
}

#[test]
fn fragment_keeps_top_level_pseudo_ports() {
    let f = elaborate_fragment(&items("input -> Strip(14) -> output;"), &[]).unwrap();
    assert_eq!(f.graph.element(f.input).class(), PSEUDO_INPUT_CLASS);
    assert_eq!(f.graph.element(f.output).class(), PSEUDO_OUTPUT_CLASS);
    assert_eq!(f.graph.element_count(), 3);
    assert_eq!(f.graph.connections().len(), 2);
}

#[test]
fn fragment_expands_nested_compounds() {
    // Inner compounds are fully spliced; only the top-level ports remain.
    let f = elaborate_fragment(
        &items(
            "elementclass Pair { input -> Counter -> Counter -> output; } \
             input -> Pair -> output;",
        ),
        &[],
    )
    .unwrap();
    let counters = f
        .graph
        .elements()
        .filter(|(_, e)| e.class() == "Counter")
        .count();
    assert_eq!(counters, 2);
    let pseudo = f
        .graph
        .elements()
        .filter(|(_, e)| e.class().starts_with('@'))
        .count();
    assert_eq!(pseudo, 2, "only the top-level input/output survive");
}

#[test]
fn fragment_formals_stay_symbolic() {
    // Pattern formals must remain `$var` wildcards after elaboration.
    let f = elaborate_fragment(
        &items("input -> Paint($color) -> output;"),
        &["color".into()],
    )
    .unwrap();
    let paint = f
        .graph
        .elements()
        .find(|(_, e)| e.class() == "Paint")
        .unwrap()
        .1;
    assert_eq!(paint.config(), "$color");
}

#[test]
fn fragment_multi_port_boundaries() {
    let f = elaborate_fragment(
        &items("input -> dt :: DecIPTTL; dt [0] -> output; dt [1] -> [1] output;"),
        &[],
    )
    .unwrap();
    assert_eq!(f.graph.outputs_of(f.input).len(), 1);
    let out_edges = f.graph.inputs_of(f.output);
    assert_eq!(out_edges.len(), 2);
    let mut ports: Vec<usize> = out_edges.iter().map(|c| c.to.port).collect();
    ports.sort_unstable();
    assert_eq!(ports, vec![0, 1]);
}

#[test]
fn fragment_without_ports_is_fine() {
    // A source-only fragment never references input/output.
    let f = elaborate_fragment(&items("Idle -> Discard;"), &[]).unwrap();
    assert!(f.graph.outputs_of(f.input).is_empty());
    assert!(f.graph.inputs_of(f.output).is_empty());
}

#[test]
fn fragment_rejects_malformed_bodies() {
    assert!(elaborate_fragment(&items("input -> F(1) -> output;"), &[]).is_ok());
    // Recursive compound inside a fragment still errors.
    let bad = "elementclass R { input -> R -> output; } input -> R -> output;";
    assert!(elaborate_fragment(&items(bad), &[]).is_err());
}
