//! Chaos suite: kill, wedge, and starve worker shards on purpose and
//! prove the sharded runtime degrades instead of dying.
//!
//! The contract under test (see `crates/elements/src/parallel.rs`):
//!
//! * a `FaultInject(PANIC …)` in one shard must not abort the process —
//!   the panic is caught in the worker, the supervisor salvages the dead
//!   shard's in-flight rings, and forwarding continues on the survivors
//!   (degraded mode) or on a restarted shard;
//! * per-flow order holds for flows homed on surviving shards;
//! * loss is bounded by the dead shard's in-flight occupancy at kill
//!   time, and the accounting is exact:
//!   `injected == tx + lost + no_live_shard_drops`;
//! * a wedged (livelocked) shard surfaces as a typed backpressure
//!   timeout, never as a hang, and `Drop` still returns;
//! * an abortive teardown recycles every buffered packet it can reach,
//!   so pool accounting balances.

use click::core::lang::read_config;
use click::core::RouterGraph;
use click::elements::element::Element;
use click::elements::headers::build_udp_packet;
use click::elements::packet::{self, Packet};
use click::elements::parallel::{ParallelOpts, ParallelRouter};
use click::elements::telemetry::FaultGauges;
use std::time::Duration;

/// The forwarding graph every test uses; `fault_cfg` is the
/// `FaultInject` configuration armed on the path.
fn chaos_graph(fault_cfg: &str) -> RouterGraph {
    read_config(&format!(
        "FromDevice(in0) -> FaultInject({fault_cfg}) -> c :: Counter \
         -> Queue(8192) -> ToDevice(out0);"
    ))
    .expect("chaos graph parses")
}

/// A UDP packet of flow `sport` with sequence number `seq` in the last
/// payload byte.
fn udp(sport: u16, seq: u8) -> Packet {
    let mut p = build_udp_packet([1; 6], [2; 6], 0x0A00_0002, 0x0A00_0102, sport, 9, 18, 64);
    let n = p.len();
    p.data_mut()[n - 1] = seq;
    p
}

/// Source ports of `per_shard` flows homed on each of the router's
/// shards (when all shards are live), found by probing the steering
/// function — so tests control exactly how much traffic a target shard
/// receives.
fn flows_per_shard(r: &ParallelRouter, per_shard: usize) -> Vec<Vec<u16>> {
    let dev = r.device_id("in0").expect("in0 exists");
    let mut flows: Vec<Vec<u16>> = vec![Vec::new(); r.shards()];
    let mut sport = 2000u16;
    while flows.iter().any(|f| f.len() < per_shard) {
        let home = r.shard_for(udp(sport, 0).data(), dev);
        if flows[home].len() < per_shard {
            flows[home].push(sport);
        }
        sport += 1;
    }
    flows
}

/// Per-flow sequence numbers observed on the output device.
fn flow_seqs(tx: &[Packet]) -> Vec<(u16, Vec<u8>)> {
    let mut flows: Vec<(u16, Vec<u8>)> = Vec::new();
    for p in tx {
        let sport = click::elements::steer::flow_key(p.data())
            .expect("udp frame")
            .3;
        let seq = p.data()[p.len() - 1];
        match flows.iter_mut().find(|(k, _)| *k == sport) {
            Some((_, seqs)) => seqs.push(seq),
            None => flows.push((sport, vec![seq])),
        }
    }
    flows
}

const KILLED: usize = 2;
const PER_SHARD_FLOWS: usize = 8;
const PER_FLOW: u8 = 25;

/// Injects one full wave (every flow, `PER_FLOW` packets, interleaved)
/// and returns how many packets went in.
fn inject_wave(r: &mut ParallelRouter, flows: &[Vec<u16>], base_seq: u8) -> u64 {
    let dev = r.device_id("in0").expect("in0 exists");
    let mut injected = 0;
    for seq in 0..PER_FLOW {
        for shard_flows in flows {
            for &sport in shard_flows {
                r.inject(dev, udp(sport, base_seq + seq));
                injected += 1;
            }
        }
    }
    injected
}

#[test]
fn killing_one_of_four_shards_degrades_gracefully() {
    // Shard KILLED's FaultInject panics on the 151st packet it sees;
    // the other shards' clones stay transparent (SHARD clause).
    let g = chaos_graph(&format!("PANIC 1, AFTER 150, SHARD {KILLED}"));
    let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(4).batched(8))
        .expect("router builds");
    let out0 = r.device_id("out0").expect("out0 exists");
    let flows = flows_per_shard(&r, PER_SHARD_FLOWS);

    // Wave 1 delivers 8 × 25 = 200 packets to each shard: shard KILLED
    // dies mid-wave. The process must not abort and the call must return.
    let mut injected = inject_wave(&mut r, &flows, 0);
    r.run_until_idle();
    let faults = r.fault_gauges();
    assert_eq!(faults.shard_deaths, 1, "exactly one shard died");
    assert_eq!(faults.degraded_entries, 1, "death degraded, no restart");
    assert_eq!(faults.restarts, 0);
    assert_eq!(faults.live_shards, 3);
    assert_eq!(faults.shards, 4);
    assert_eq!(faults.no_live_shard_drops, 0);
    assert!(faults.lost_packets >= 1, "the panicking packet is lost");
    // Loss bound: at most the worker's in-flight window at kill time —
    // the batches it had popped but not completed (≤ 16 items × burst 8).
    assert!(
        faults.lost_packets <= 128,
        "loss {} exceeds the in-flight bound",
        faults.lost_packets
    );

    // Wave 2: forwarding must continue on the three survivors, with the
    // dead shard's flows re-homed.
    injected += inject_wave(&mut r, &flows, PER_FLOW);
    r.run_until_idle();
    let faults = r.fault_gauges();
    assert_eq!(faults.shard_deaths, 1, "no further deaths");
    assert_eq!(faults.no_live_shard_drops, 0);

    // Exact accounting: every injected packet is either in the TX bank
    // or counted lost.
    let tx = r.take_tx(out0);
    assert_eq!(
        tx.len() as u64 + faults.lost_packets,
        injected,
        "injected packets must be transmitted or accounted lost"
    );

    // Per-flow order: flows homed on survivors arrive complete and in
    // order; the dead shard's flows may have a gap (the in-flight loss)
    // but never reorder.
    let observed = flow_seqs(&tx);
    for (shard, shard_flows) in flows.iter().enumerate() {
        for &sport in shard_flows {
            let seqs = &observed
                .iter()
                .find(|(k, _)| *k == sport)
                .unwrap_or_else(|| panic!("flow {sport} vanished entirely"))
                .1;
            if shard == KILLED {
                assert!(
                    seqs.windows(2).all(|w| w[0] < w[1]),
                    "dead-homed flow {sport} reordered: {seqs:?}"
                );
            } else {
                assert_eq!(
                    *seqs,
                    (0..2 * PER_FLOW).collect::<Vec<u8>>(),
                    "survivor-homed flow {sport} lost or reordered packets"
                );
            }
        }
    }
    r.shutdown();
}

#[test]
fn restart_policy_respawns_the_dead_shard() {
    let g = chaos_graph(&format!("PANIC 1, AFTER 150, SHARD {KILLED}"));
    let opts = ParallelOpts::new(4).batched(8).restart_on_fault(8);
    let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).expect("router builds");
    let out0 = r.device_id("out0").expect("out0 exists");
    let flows = flows_per_shard(&r, PER_SHARD_FLOWS);

    // Wave 1 (200 packets to the doomed shard) kills it once; the
    // supervisor restarts it from the retained graph. The restarted
    // clone's FaultInject counts from zero, so wave 2 kills it again.
    let mut injected = inject_wave(&mut r, &flows, 0);
    r.run_until_idle();
    injected += inject_wave(&mut r, &flows, PER_FLOW);
    r.run_until_idle();

    let faults = r.fault_gauges();
    assert_eq!(faults.shard_deaths, 2, "one death per wave");
    assert_eq!(faults.restarts, 2, "every death restarted");
    assert_eq!(faults.degraded_entries, 0, "restart budget never ran out");
    assert_eq!(faults.live_shards, 4, "full strength after restart");
    let health = r.shard_health();
    assert!(health[KILLED].live, "restarted shard reports live");
    assert_eq!(health[KILLED].restarts, 2);
    r.ping(KILLED)
        .expect("restarted shard answers control queries");

    // Accounting still exact across two deaths and two restarts.
    let tx = r.take_tx(out0);
    assert_eq!(tx.len() as u64 + faults.lost_packets, injected);

    // Stats salvage: the graveyard's Counters still contribute, so the
    // merged count covers every transmitted packet.
    let counted = r.class_stat("Counter", "count");
    assert!(
        counted >= tx.len() as u64,
        "merged Counter ({counted}) must cover all {} TX packets",
        tx.len()
    );
    r.shutdown();
}

#[test]
fn all_shards_dead_drops_at_injection_with_accounting() {
    // A single shard that dies on its first packet: once nothing is
    // live, injection drops (and counts) instead of wedging.
    let g = chaos_graph("PANIC 1, SHARD 0");
    let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(1))
        .expect("router builds");
    let dev = r.device_id("in0").expect("in0 exists");
    let out0 = r.device_id("out0").expect("out0 exists");
    for seq in 0..20u8 {
        r.inject(dev, udp(4000, seq));
    }
    r.run_until_idle();
    for seq in 20..30u8 {
        r.inject(dev, udp(4000, seq)); // router already dead
    }
    r.run_until_idle();
    let faults = r.fault_gauges();
    assert_eq!(faults.shard_deaths, 1);
    assert_eq!(faults.live_shards, 0);
    assert!(
        faults.no_live_shard_drops >= 10,
        "post-death injections drop"
    );
    let tx = r.take_tx(out0);
    assert_eq!(
        tx.len() as u64 + faults.lost_packets + faults.no_live_shard_drops,
        30,
        "every packet transmitted, lost, or dropped-at-injection"
    );
}

#[test]
fn wedged_shard_surfaces_as_backpressure_timeout_not_a_hang() {
    // Shard 0's FaultInject livelocks on its 11th packet: the shard
    // stops consuming, its ring fills, and the runtime must report a
    // typed error instead of spinning forever — then Drop must still
    // return (the wedged thread is abandoned, not joined).
    let g = chaos_graph("WEDGE 1, AFTER 10, SHARD 0");
    let mut opts = ParallelOpts::new(2).with_wedge_timeout(Duration::from_millis(300));
    opts.ring_capacity = 4;
    let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, opts).expect("router builds");
    let flows = flows_per_shard(&r, 1);
    let dev = r.device_id("in0").expect("in0 exists");
    let wedge_flow = flows[0][0];
    for seq in 0..60u8 {
        r.inject(dev, udp(wedge_flow, seq));
    }
    let err = r
        .try_run_until_idle()
        .expect_err("a wedged shard must surface as an error");
    let msg = err.to_string();
    assert!(
        msg.contains("backpressure timeout"),
        "error should name the backpressure timeout, got: {msg}"
    );
    // The healthy shard still answers the control plane.
    r.ping(1).expect("healthy shard still responsive");
    drop(r); // bounded: abandons the wedged thread after the timeout
}

#[test]
fn abortive_teardown_recycles_buffered_packets() {
    // Inject without ever flushing, then drop: every buffered packet
    // must come back to this thread's pool — recycled or (if the pool is
    // full) counted dropped — so accounting balances.
    let g = chaos_graph(""); // FaultInject with no clauses is a wire
    let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(2))
        .expect("router builds");
    let dev = r.device_id("in0").expect("in0 exists");
    packet::reset_pool_stats();
    let before = packet::pool_stats();
    for seq in 0..100u8 {
        r.inject(dev, udp(5000 + u16::from(seq % 10), seq));
    }
    let mid = packet::pool_stats();
    assert_eq!(
        (mid.hits + mid.misses) - (before.hits + before.misses),
        100,
        "all 100 buffers came from this thread's pool"
    );
    drop(r); // must not deadlock, must recycle the pending buffers
    let after = packet::pool_stats();
    assert_eq!(
        (after.recycled + after.dropped) - (mid.recycled + mid.dropped),
        100,
        "teardown must return every buffered packet to the pool"
    );
}

#[test]
fn healthy_runs_report_zero_fault_gauges() {
    // The supervisor must be invisible when nothing goes wrong.
    let g = chaos_graph("DROP 0.1, SEED 11"); // lossy but never fatal
    let mut r = ParallelRouter::from_graph::<Box<dyn Element>>(&g, ParallelOpts::new(4).batched(8))
        .expect("router builds");
    let flows = flows_per_shard(&r, 2);
    let injected = inject_wave(&mut r, &flows, 0);
    r.run_until_idle();
    assert_eq!(
        r.fault_gauges(),
        FaultGauges {
            live_shards: 4,
            shards: 4,
            ..FaultGauges::default()
        }
    );
    let out0 = r.device_id("out0").expect("out0 exists");
    let dropped = r.class_stat("FaultInject", "drops");
    assert!(dropped > 0, "DROP 0.1 over {injected} packets drops some");
    assert_eq!(r.tx_len(out0) as u64 + dropped, injected);
    r.shutdown();
}
