//! Integration tests of complete optimizer chains: tools compose "much
//! like compiler optimization passes" (paper §1), every intermediate
//! stage is a valid, serializable configuration, and the chained result
//! matches applying the tools programmatically.

use click::core::check::check;
use click::core::lang::{read_config, write_config};
use click::core::registry::Library;
use click::elements::ip_router::IpRouterSpec;
use click::opt;
use std::collections::HashSet;

fn lib() -> Library {
    Library::standard()
}

/// Serialize → reparse, asserting validity (what a pipe between two CLI
/// tools does).
fn through_pipe(g: &click::core::RouterGraph) -> click::core::RouterGraph {
    let text = write_config(g);
    let back = read_config(&text).expect("intermediate stage must reparse");
    assert!(g.same_configuration(&back));
    back
}

#[test]
fn full_chain_with_serialization_between_stages() {
    let spec = IpRouterSpec::standard(4);
    let mut g = read_config(&spec.config()).unwrap();

    // click-xform
    let n = opt::xform::apply_patterns(&mut g, &opt::xform::ip_combo_patterns().unwrap()).unwrap();
    assert_eq!(n, 8);
    let mut g = through_pipe(&g);
    assert!(check(&g, &lib()).is_ok());

    // click-fastclassifier
    let fc = opt::fastclassifier::fastclassifier(&mut g).unwrap();
    assert_eq!(fc.specialized.len(), 4);
    let mut g = through_pipe(&g);
    assert!(check(&g, &lib()).is_ok());
    // The generated source rides in the archive across the pipe.
    assert!(g.archive().iter().any(|e| e.name.ends_with(".rs")));

    // click-devirtualize (last, per §6.1)
    let dv = opt::devirtualize::devirtualize(&mut g, &lib(), &HashSet::new()).unwrap();
    assert!(!dv.classes.is_empty());
    let g = through_pipe(&g);
    assert!(check(&g, &lib()).is_ok());
    assert!(g.has_requirement("fastclassifier"));
    assert!(g.has_requirement("devirtualize"));
}

#[test]
fn tool_order_differences_converge() {
    // FC then XF vs XF then FC: both end with the same element classes
    // modulo generated names.
    let spec = IpRouterSpec::standard(2);
    let patterns = opt::xform::ip_combo_patterns().unwrap();

    let mut a = read_config(&spec.config()).unwrap();
    opt::fastclassifier::fastclassifier(&mut a).unwrap();
    opt::xform::apply_patterns(&mut a, &patterns).unwrap();

    let mut b = read_config(&spec.config()).unwrap();
    opt::xform::apply_patterns(&mut b, &patterns).unwrap();
    opt::fastclassifier::fastclassifier(&mut b).unwrap();

    assert_eq!(a.element_count(), b.element_count());
    let classes = |g: &click::core::RouterGraph| {
        let mut v: Vec<String> = g
            .elements()
            .map(|(_, e)| {
                // Normalize generated names.
                let c = e.class();
                if c.starts_with("FastClassifier@@") {
                    "FastClassifier".to_owned()
                } else {
                    c.to_owned()
                }
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(classes(&a), classes(&b));
}

#[test]
fn undead_then_align_on_compound_heavy_config() {
    // A configuration leaning on compound abstractions with dead branches
    // and an alignment hazard — the two "static analysis" tools in
    // sequence.
    let mut g = read_config(
        "elementclass Input { $dev, $mode | \
            input -> output; \
            pd :: PollDevice($dev) -> s :: StaticSwitch($mode); \
            s [0] -> Strip(12) -> chk :: CheckIPHeader -> output; \
            s [1] -> Strip(14) -> chk2 :: CheckIPHeader -> output; } \
         in1 :: Input(eth0, 0); in2 :: Input(eth1, 1); \
         in1 -> q :: Queue(64); in2 -> q; q -> ToDevice(eth2);",
    )
    .unwrap();
    let before = g.element_count();

    let undead = opt::undead::undead(&mut g, &lib()).unwrap();
    assert_eq!(undead.folded_switches.len(), 2);
    assert!(g.element_count() < before);
    assert!(check(&g, &lib()).is_ok());

    let align = opt::align::align(&mut g).unwrap();
    // Only the surviving Strip(12) branch misaligns.
    assert_eq!(align.inserted.len(), 1);
    assert!(check(&g, &lib()).is_ok());

    // Everything still serializes.
    let back = read_config(&write_config(&g)).unwrap();
    assert!(g.same_configuration(&back));
}

#[test]
fn mkmindriver_reflects_chain_output() {
    let spec = IpRouterSpec::standard(2);
    let mut g = read_config(&spec.config()).unwrap();
    opt::xform::apply_patterns(&mut g, &opt::xform::ip_combo_patterns().unwrap()).unwrap();
    opt::fastclassifier::fastclassifier(&mut g).unwrap();
    opt::devirtualize::devirtualize(&mut g, &lib(), &HashSet::new()).unwrap();
    let manifest = opt::mkmindriver::mkmindriver(&g);
    assert!(manifest.classes.contains(&"IPInputCombo".to_owned()));
    assert!(manifest.classes.contains(&"FastClassifier".to_owned()));
    assert!(!manifest.generated.is_empty());
    // Non-combo input-path classes are gone from the driver.
    assert!(!manifest.classes.contains(&"Paint".to_owned()));
}

#[test]
fn pretty_renders_optimized_config() {
    let spec = IpRouterSpec::standard(2);
    let mut g = read_config(&spec.config()).unwrap();
    opt::fastclassifier::fastclassifier(&mut g).unwrap();
    let html = opt::pretty::pretty_html(&g, "optimized");
    assert!(html.contains("FastClassifier@@"));
    assert!(html.contains("<table>"));
}

#[test]
fn check_tool_rejects_broken_output_of_bad_edit() {
    // Simulate a hand-edit that breaks the graph after optimization.
    let spec = IpRouterSpec::standard(2);
    let mut g = read_config(&spec.config()).unwrap();
    opt::devirtualize::devirtualize(&mut g, &lib(), &HashSet::new()).unwrap();
    let rt = g.find("rt").unwrap();
    g.remove_element(rt);
    let report = check(&g, &lib());
    assert!(!report.is_ok());
}
