//! Telemetry guards: the observability layer must never change what the
//! router *does* — only what it can *report*.
//!
//! Three properties are pinned here:
//!
//! 1. **Overhead guard** — forwarding results (per-flow order, per-class
//!    stats, tx counts) are byte-identical whether the `telemetry`
//!    feature is on or off: the same assertions compile and pass in both
//!    modes. With the feature off, every counter reads zero.
//! 2. **Counter correctness** (feature on) — per-element packet counters
//!    match independently observable statistics, and the merged 4-shard
//!    profile equals the serial profile element-for-element.
//! 3. **`click-profile` round-trip** (either mode) — applying a profile
//!    to the IP router reorders hot classifier branches without changing
//!    any per-class packet count or per-flow output sequence.

use click::core::registry::Library;
use click::core::RouterGraph;
use click::elements::element::Element;
use click::elements::ip_router::{test_packet_flow, IpRouterSpec};
use click::elements::packet::Packet;
use click::elements::parallel::{ParallelOpts, ParallelRouter};
use click::elements::router::Slot;
use click::elements::steer::flow_key;
use click::elements::telemetry::{self, ElementProfile};
use click::elements::Router;
use click::opt::profile::{apply_profile, Profile, PROFILE_VERSION};
use click_bench::ip_router_variants;

const N: usize = 4;
const FLOWS: u16 = 12;
const PER_FLOW: u8 = 6;

/// The parallel-equivalence trace: FLOWS cross-interface UDP flows,
/// PER_FLOW packets each, sequence number in the last payload byte.
fn trace(spec: &IpRouterSpec) -> Vec<(usize, Packet)> {
    let mut out = Vec::new();
    for seq in 0..PER_FLOW {
        for flow in 0..FLOWS {
            let src = usize::from(flow) % (N / 2);
            let dst = src + N / 2;
            let mut p = test_packet_flow(spec, src, dst, 2000 + flow, 7000);
            let n = p.len();
            p.data_mut()[n - 1] = seq;
            out.push((src, p));
        }
    }
    out
}

/// Packets the trace injects on each interface.
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
fn injected_per_device(spec: &IpRouterSpec) -> Vec<u64> {
    let mut counts = vec![0u64; N];
    for (src, _) in trace(spec) {
        counts[src] += 1;
    }
    counts
}

/// The forwarding outcome every run must reproduce exactly.
#[derive(Debug, PartialEq)]
struct Outcome {
    class_stats: Vec<(String, u64)>,
    /// (output device, flow source port) → payload sequence numbers.
    flows: Vec<((usize, u16), Vec<u8>)>,
}

const CLASSES: [(&str, &str); 3] = [
    ("Queue", "drops"),
    ("Discard", "count"),
    ("IPFragmenter", "drops"),
];

fn flows_of(outputs: Vec<(usize, Vec<Packet>)>) -> Vec<((usize, u16), Vec<u8>)> {
    let mut flows: Vec<((usize, u16), Vec<u8>)> = Vec::new();
    for (dev, packets) in outputs {
        for p in packets {
            let sport = flow_key(p.data()).map_or(0, |k| k.3);
            let seq = p.data()[p.len() - 1];
            match flows.iter_mut().find(|(k, _)| *k == (dev, sport)) {
                Some((_, seqs)) => seqs.push(seq),
                None => flows.push(((dev, sport), vec![seq])),
            }
        }
    }
    flows.sort_by_key(|(k, _)| *k);
    flows
}

/// Runs the trace on the serial engine; returns the forwarding outcome
/// and the telemetry profiles.
fn run_serial<S: Slot>(graph: &RouterGraph) -> (Outcome, Vec<ElementProfile>) {
    let spec = IpRouterSpec::standard(N);
    let mut router: Router<S> =
        Router::from_graph(graph, &Library::standard()).expect("router builds");
    for (src, p) in trace(&spec) {
        let id = router.devices.id(&format!("eth{src}")).expect("device");
        router.devices.inject(id, p);
    }
    router.run_until_idle(100_000);
    let outputs = (0..N)
        .map(|d| {
            let id = router.devices.id(&format!("eth{d}")).expect("device");
            (d, router.devices.take_tx(id))
        })
        .collect();
    let outcome = Outcome {
        class_stats: CLASSES
            .iter()
            .map(|(c, s)| (format!("{c}.{s}"), router.class_stat(c, s)))
            .collect(),
        flows: flows_of(outputs),
    };
    (outcome, router.telemetry_profiles())
}

fn base_graph() -> RouterGraph {
    let variants = ip_router_variants(N).expect("variants build");
    variants
        .iter()
        .find(|v| v.name == "Base")
        .expect("Base variant")
        .graph
        .clone()
}

#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
fn profile_of<'a>(profiles: &'a [ElementProfile], name: &str) -> &'a ElementProfile {
    profiles
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("no profile for {name}"))
}

/// Every packet of every flow forwarded in order, no drops anywhere —
/// the assertions are feature-independent, so compiling and running this
/// test with and without `--features telemetry` *is* the overhead guard.
#[test]
fn forwarding_outcome_is_feature_independent() {
    let (outcome, _) = run_serial::<Box<dyn Element>>(&base_graph());
    for (stat, v) in &outcome.class_stats {
        assert_eq!(*v, 0, "{stat} must be zero on the clean trace");
    }
    assert_eq!(outcome.flows.len(), usize::from(FLOWS));
    for ((_, sport), seqs) in &outcome.flows {
        assert_eq!(
            *seqs,
            (0..PER_FLOW).collect::<Vec<u8>>(),
            "flow {sport} lost or reordered packets"
        );
    }
}

#[cfg(not(feature = "telemetry"))]
#[test]
fn profiles_read_zero_when_disabled() {
    // `ENABLED` mirroring the cfg is itself part of the contract.
    #[allow(clippy::assertions_on_constants)]
    {
        assert!(!telemetry::ENABLED);
    }
    let (_, profiles) = run_serial::<Box<dyn Element>>(&base_graph());
    assert!(
        !profiles.is_empty(),
        "snapshot structure exists even when off"
    );
    for p in &profiles {
        assert_eq!(
            (p.calls, p.packets, p.bytes, p.self_ns),
            (0, 0, 0, 0),
            "{}",
            p.name
        );
        assert!(p.out_ports.iter().all(|&n| n == 0), "{}", p.name);
        assert!(p.lat_buckets.iter().all(|&n| n == 0), "{}", p.name);
    }
    // The sharded runtime's gauges are likewise dead weightless stubs.
    let mut router =
        ParallelRouter::from_graph::<Box<dyn Element>>(&base_graph(), ParallelOpts::new(2))
            .expect("parallel router builds");
    router.run_until_idle();
    for g in router.shard_gauges() {
        assert_eq!(
            (g.batches, g.packets, g.ring_high_water, g.backoff_snoozes),
            (0, 0, 0, 0)
        );
    }
    router.shutdown();
}

#[cfg(feature = "telemetry")]
#[test]
fn counters_match_observed_statistics() {
    // `ENABLED` mirroring the cfg is itself part of the contract.
    #[allow(clippy::assertions_on_constants)]
    {
        assert!(telemetry::ENABLED);
    }
    let spec = IpRouterSpec::standard(N);
    let injected = injected_per_device(&spec);
    let (outcome, profiles) = run_serial::<Box<dyn Element>>(&base_graph());

    // Each interface's Classifier sees exactly the packets injected on
    // that interface, and the trace is pure IP: every packet leaves on
    // the IP branch (output 2 of `Classifier(arp-req, arp-resp, ip, -)`).
    for (i, &rx) in injected.iter().enumerate() {
        let c = profile_of(&profiles, &format!("c{i}"));
        assert_eq!(c.class, "Classifier");
        assert_eq!(c.packets, rx, "c{i} packet count");
        assert_eq!(c.out_ports.iter().sum::<u64>(), rx, "c{i} emissions");
        // `out_ports` grows on demand, so an idle classifier's is empty.
        assert_eq!(
            c.out_ports.get(2).copied().unwrap_or(0),
            rx,
            "c{i} IP branch"
        );
        if rx > 0 {
            assert!(c.self_ns > 0, "c{i} must have accumulated self time");
            assert!(c.bytes > 0, "c{i} must have accumulated bytes");
            assert_eq!(
                c.lat_buckets.iter().sum::<u64>(),
                c.calls,
                "c{i} histogram covers every call"
            );
        }
    }

    // Forwarded packets cross each destination queue once in and once
    // out (push + pull are both counted), and nothing was dropped.
    let forwarded: u64 = outcome
        .flows
        .iter()
        .map(|(_, seqs)| seqs.len() as u64)
        .sum();
    let queue_packets: u64 = profiles
        .iter()
        .filter(|p| p.class == "Queue")
        .map(|p| p.packets)
        .sum();
    assert_eq!(queue_packets, 2 * forwarded, "queue in+out traffic");
}

#[cfg(feature = "telemetry")]
#[test]
fn four_shard_merge_matches_serial() {
    let graph = base_graph();
    let spec = IpRouterSpec::standard(N);
    let (_, serial) = run_serial::<Box<dyn Element>>(&graph);

    let mut router = ParallelRouter::from_graph::<Box<dyn Element>>(&graph, ParallelOpts::new(4))
        .expect("parallel router builds");
    for (src, p) in trace(&spec) {
        let id = router.device_id(&format!("eth{src}")).expect("device");
        router.inject(id, p);
    }
    router.run_until_idle();
    let merged = router.telemetry_profiles();
    let gauges = router.shard_gauges();
    router.shutdown();

    // Work counters merge exactly; timing (calls, self_ns) legitimately
    // differs because idle polling depends on the schedule.
    let key = |ps: &[ElementProfile]| {
        let mut v: Vec<(String, String, u64, u64, Vec<u64>)> = ps
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    p.class.clone(),
                    p.packets,
                    p.bytes,
                    p.out_ports.clone(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        key(&merged),
        key(&serial),
        "4-shard merge diverges from serial"
    );

    // Every injected packet crossed exactly one shard's inbound ring.
    let injected: u64 = injected_per_device(&spec).iter().sum();
    assert_eq!(gauges.iter().map(|g| g.packets).sum::<u64>(), injected);
    assert!(gauges.iter().all(|g| g.batches <= g.packets.max(1)));
}

#[cfg(feature = "telemetry")]
#[test]
fn steering_gauges_attribute_every_packet_to_one_steerer() {
    let graph = base_graph();
    let spec = IpRouterSpec::standard(N);
    let opts = ParallelOpts::new(4).batched(8).with_steerers(2);
    let mut router = ParallelRouter::from_graph::<Box<dyn Element>>(&graph, opts)
        .expect("parallel router builds");
    for (src, p) in trace(&spec) {
        let id = router.device_id(&format!("eth{src}")).expect("device");
        router.inject(id, p);
    }
    router.run_until_idle();
    let steering = router.steer_gauges();
    router.shutdown();

    assert_eq!(steering.len(), 2, "one gauge record per steerer");
    let injected: u64 = injected_per_device(&spec).iter().sum();
    assert_eq!(
        steering.iter().map(|g| g.packets).sum::<u64>(),
        injected,
        "every packet classified by exactly one steerer"
    );
    // The flow hash splits this 64-flow trace across both steerers, and
    // classification work takes measurable time.
    assert!(steering.iter().all(|g| g.packets > 0), "both steerers fed");
    assert!(steering.iter().any(|g| g.steer_ns > 0), "self time tracked");

    // The export format carries the records losslessly.
    let profile = Profile {
        version: PROFILE_VERSION,
        source: "steering-test".into(),
        shards: 4,
        telemetry: true,
        elements: Vec::new(),
        gauges: Vec::new(),
        steering,
        faults: None,
        swap: None,
        reopt: None,
        devices: Vec::new(),
        checkpoints: None,
    };
    let back = Profile::from_json(&profile.to_json()).expect("round trip");
    assert_eq!(back, profile);
}

/// The profile-guided reorder must be invisible to forwarding: same
/// per-class stats, same per-flow output sequences — only the classifier
/// pattern order (and its wiring) changes. Runs in both feature modes;
/// the profile is synthetic, so no live counters are needed.
#[test]
fn click_profile_round_trip_preserves_classification() {
    let base = base_graph();
    let mut profiled = base.clone();

    // A synthetic profile recording what the IP workload produces: all
    // traffic on the classifiers' IP branch (output 2 of 4).
    let elements = (0..N)
        .map(|i| {
            let mut p = ElementProfile::new(&format!("c{i}"), "Classifier");
            p.packets = 500;
            p.out_ports = vec![0, 0, 500, 0];
            p
        })
        .collect();
    let profile = Profile {
        version: PROFILE_VERSION,
        source: "synthetic".into(),
        shards: 1,
        telemetry: true,
        elements,
        gauges: Vec::new(),
        steering: Vec::new(),
        faults: None,
        swap: None,
        reopt: None,
        devices: Vec::new(),
        checkpoints: None,
    };

    let report = apply_profile(&mut profiled, &profile).expect("profile applies");
    assert_eq!(report.reordered.len(), N, "all four classifiers reorder");
    for r in &report.reordered {
        assert_eq!(
            r.order,
            vec![2, 0, 1, 3],
            "{} hoists the IP branch",
            r.element
        );
    }
    for id in profiled.element_ids().collect::<Vec<_>>() {
        let decl = profiled.element(id);
        if decl.class() == "Classifier" {
            assert_eq!(
                decl.config(),
                "12/0800, 12/0806 20/0001, 12/0806 20/0002, -",
                "{} pattern order",
                decl.name()
            );
        }
    }

    let (before, _) = run_serial::<Box<dyn Element>>(&base);
    let (after, _) = run_serial::<Box<dyn Element>>(&profiled);
    assert_eq!(after, before, "reordering changed observable forwarding");
}
