//! Property tests on the runtime substrates: packet buffer invariants,
//! push/pull resolution consistency, and routing-table behavior under
//! random operation sequences.
//!
//! Randomness comes from a fixed-seed LCG so the suite is deterministic
//! and dependency-free.

use click::core::lang::read_config;
use click::core::pushpull::resolve;
use click::core::registry::Library;
use click::core::spec::PortKind;
use click::elements::packet::Packet;
use click::elements::routing::IpTrie;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
    fn word(&mut self) -> u32 {
        (self.next() as u32) ^ ((self.next() as u32) << 16)
    }
}

#[derive(Debug, Clone)]
enum PacketOp {
    Pull(usize),
    Push(usize),
    Take(usize),
    Put(usize),
    Align(u8, u8),
}

fn gen_op(r: &mut Lcg) -> PacketOp {
    match r.below(5) {
        0 => PacketOp::Pull(r.below(40)),
        1 => PacketOp::Push(r.below(40)),
        2 => PacketOp::Take(r.below(40)),
        3 => PacketOp::Put(r.below(40)),
        _ => {
            let modulus = 1u8 << (r.below(3) as u8 + 1); // 2, 4, 8
            PacketOp::Align(modulus, (r.below(8) as u8) % modulus)
        }
    }
}

/// The packet buffer never panics, never loses interior data on
/// pull/push round trips, and align preserves contents.
#[test]
fn packet_ops_never_corrupt() {
    let mut r = Lcg(0x9AC4E7);
    for _ in 0..256 {
        let data: Vec<u8> = (0..1 + r.below(79)).map(|_| r.next() as u8).collect();
        let mut p = Packet::from_data(&data);
        for _ in 0..r.below(24) {
            let before = p.data().to_vec();
            match gen_op(&mut r) {
                PacketOp::Pull(n) => {
                    p.pull(n);
                    let kept = before.len().saturating_sub(n);
                    assert_eq!(p.len(), kept);
                    assert_eq!(p.data(), &before[before.len() - kept..]);
                }
                PacketOp::Push(n) => {
                    p.push(n);
                    assert_eq!(p.len(), before.len() + n);
                    assert_eq!(&p.data()[n..], &before[..]);
                }
                PacketOp::Take(n) => {
                    p.take(n);
                    let kept = before.len().saturating_sub(n);
                    assert_eq!(p.data(), &before[..kept]);
                }
                PacketOp::Put(n) => {
                    p.put(n);
                    assert_eq!(&p.data()[..before.len()], &before[..]);
                    assert!(p.data()[before.len()..].iter().all(|&b| b == 0));
                }
                PacketOp::Align(m, o) => {
                    p.align_to(m as usize, o as usize);
                    let m4 = (m as usize).clamp(1, 4);
                    assert_eq!(p.alignment_offset() % m4, (o as usize) % m4);
                    assert_eq!(p.data(), &before[..]);
                }
            }
        }
    }
}

/// Longest-prefix match agrees with a brute-force scan for arbitrary
/// route tables.
#[test]
fn trie_matches_linear_scan() {
    let mut r = Lcg(0x72E1E);
    for _ in 0..256 {
        let mut trie = IpTrie::new();
        let mut table: Vec<(u32, u8, usize)> = Vec::new();
        for i in 0..r.below(64) {
            let addr = r.word();
            let plen = r.below(33) as u8;
            let masked = if plen == 0 {
                0
            } else {
                addr & (u32::MAX << (32 - plen as u32))
            };
            trie.insert(masked, plen, i);
            table.retain(|&(a, l, _)| !(a == masked && l == plen));
            table.push((masked, plen, i));
        }
        for _ in 0..1 + r.below(63) {
            let q = r.word();
            let expected = table
                .iter()
                .filter(|&&(a, l, _)| l == 0 || (q ^ a) >> (32 - l as u32) == 0)
                .max_by_key(|&&(_, l, _)| l)
                .map(|&(_, _, v)| v);
            assert_eq!(trie.lookup(q).copied(), expected);
        }
    }
}

/// Push/pull resolution invariant: in any successfully resolved
/// configuration, the two endpoints of every connection carry the same
/// kind, and no port is left agnostic.
#[test]
fn resolution_is_consistent_across_random_chains() {
    // Generate chains mixing agnostic, push, and pull elements with a
    // deterministic PRNG; whenever resolution succeeds, check the
    // invariant; whenever it fails, verify a genuine conflict exists.
    let lib = Library::standard();
    let mut seed = 0xC0FFEEu64;
    let mut rand = move |n: usize| {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as usize) % n
    };
    for _ in 0..200 {
        let len = 2 + rand(5);
        let mut src = String::from("FromDevice(in) -> ");
        let mut queues = 0usize;
        for i in 0..len {
            match rand(3) {
                0 => src.push_str(&format!("n{i} :: Null -> ")),
                1 => src.push_str(&format!("c{i} :: Counter -> ")),
                _ => {
                    src.push_str(&format!("q{i} :: Queue -> "));
                    queues += 1;
                }
            }
        }
        src.push_str("ToDevice(out);");
        let graph = read_config(&src).unwrap();
        // Oracle: a linear device-to-device chain resolves iff it crosses
        // push→pull exactly once, i.e. contains exactly one Queue.
        match resolve(&graph, &lib) {
            Ok(pa) => {
                assert_eq!(
                    queues, 1,
                    "push source to pull sink requires exactly one queue:\n{src}"
                );
                for c in graph.connections() {
                    let out = pa.output(c.from.element, c.from.port);
                    let inp = pa.input(c.to.element, c.to.port);
                    assert_eq!(out, inp, "mismatched connection in:\n{src}");
                    assert_ne!(out, PortKind::Agnostic, "unresolved port in:\n{src}");
                }
            }
            Err(_) => {
                assert_ne!(
                    queues, 1,
                    "resolution failed despite exactly one queue:\n{src}"
                );
            }
        }
    }
}

/// Two queues in sequence resolve (push→pull, then a pull→push boundary
/// needs an active element — an unqueued stretch between two queues is
/// pulled end-to-end by the second queue's consumer side only through a
/// scheduler; directly connecting queue output to queue input is a
/// conflict).
#[test]
fn queue_to_queue_is_a_conflict() {
    let lib = Library::standard();
    let g = read_config("FromDevice(a) -> Queue -> Queue -> ToDevice(b);").unwrap();
    assert!(
        resolve(&g, &lib).is_err(),
        "pull output into push input must conflict"
    );
}

/// Pull→push bridges: both `RouterLink` (combined configurations) and
/// `Unqueue` (the classic Click element) actively pull upstream and push
/// downstream.
#[test]
fn pull_to_push_bridges_resolve_and_run() {
    let lib = Library::standard();
    for bridge in ["RouterLink", "Unqueue"] {
        let src = format!("FromDevice(a) -> Queue -> {bridge} -> Queue -> ToDevice(b);");
        let g = read_config(&src).unwrap();
        let pa = resolve(&g, &lib).unwrap();
        let link = g.elements().find(|(_, e)| e.class() == bridge).unwrap().0;
        assert_eq!(pa.input(link, 0), PortKind::Pull, "{bridge}");
        assert_eq!(pa.output(link, 0), PortKind::Push, "{bridge}");
        // And it actually moves packets.
        let mut r: click::elements::DynRouter =
            click::elements::Router::from_graph(&g, &lib).unwrap();
        let a = r.devices.id("a").unwrap();
        let b = r.devices.id("b").unwrap();
        for _ in 0..5 {
            r.devices.inject(a, Packet::new(60));
        }
        r.run_until_idle(1000);
        assert_eq!(r.devices.tx_len(b), 5, "{bridge}");
    }
}
