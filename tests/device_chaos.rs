//! Device-chaos suite: kill, storm, and wedge the real-I/O backends
//! mid-stream and prove the supervision layer degrades gracefully with
//! an exact loss ledger.
//!
//! The contracts under test (see `crates/elements/src/iodev.rs`):
//!
//! * a device that goes hard `Down` mid-run (injected `DOWN-AFTER`) must
//!   not stop forwarding: RX keeps flowing, pending TX is flushed within
//!   the drain deadline or *counted* lost, and the accounting is exact —
//!   `injected == tx + drain_lost + router drops`;
//! * an `EAGAIN` storm is absorbed by bounded retry/backoff inside the
//!   op deadline; nothing is lost, and the gauges record every block,
//!   retry, and backoff;
//! * a killed RX source is re-opened automatically within the recovery
//!   budget (`Down -> Recovering -> Up`) and the trace completes;
//! * a device whose re-opens are refused past the budget is *abandoned*:
//!   it stays `Down`, everything queued for it becomes counted loss, and
//!   the rest of the router keeps running.

use click::core::lang::read_config;
use click::core::RouterGraph;
use click::elements::driver::DeviceDriver;
use click::elements::element::Element;
use click::elements::headers::build_udp_packet;
use click::elements::iodev::{
    FaultInjectBackend, HealthPolicy, MemBackend, MemQueues, RetryPolicy, SupervisedDevice,
};
use click::elements::parallel::{ParallelOpts, ParallelRouter};
use std::time::{Duration, Instant};

const FRAMES: usize = 400;

fn chaos_graph() -> RouterGraph {
    read_config("FromDevice(in0) -> Counter -> Queue(8192) -> ToDevice(out0);")
        .expect("chaos graph parses")
}

fn router_4shard(graph: &RouterGraph) -> ParallelRouter {
    ParallelRouter::from_graph::<Box<dyn Element>>(graph, ParallelOpts::new(4).batched(8))
        .expect("4-shard router builds")
}

/// A UDP frame of flow `sport` so the 4-shard steerer spreads the trace.
fn frame(i: usize) -> Vec<u8> {
    let sport = 2000 + (i as u16 % 32);
    let mut p = build_udp_packet([1; 6], [2; 6], 0x0A00_0002, 0x0A00_0102, sport, 9, 18, 64);
    let len = p.len();
    p.data_mut()[len - 1] = i as u8;
    let bytes = p.data().to_vec();
    p.recycle();
    bytes
}

/// Test-speed supervision: microsecond backoffs, a drain deadline short
/// enough to expire inside the test, default-shaped thresholds.
fn fast_policies(drain_deadline_us: u64, reopen_budget: u32) -> (RetryPolicy, HealthPolicy) {
    (
        RetryPolicy {
            max_retries: 3,
            backoff_base_us: 1,
            backoff_max_us: 20,
            op_deadline_us: 500,
        },
        HealthPolicy {
            flap_threshold: 3,
            window: 16,
            down_errors: 6,
            recovery_ops: 2,
            reopen_budget,
            drain_deadline_us,
            reopen_backoff_us: 200,
        },
    )
}

/// Pumps driver and router until the ledger balances at a quiescent
/// point (source drained, no pending TX) or the deadline passes.
fn pump_to_quiescence(
    drv: &mut DeviceDriver,
    r: &mut ParallelRouter,
    source: &MemQueues,
    total: u64,
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        drv.pump(r, 16).expect("pump");
        r.run_until_idle();
        let accounted = drv.sent() + drv.lost() + r.total_drops();
        if drv.injected() == total
            && drv.pending() == 0
            && source.rx_len() == 0
            && accounted == total
        {
            return;
        }
    }
    panic!(
        "no quiescence: injected {} sent {} lost {} drops {} pending {}",
        drv.injected(),
        drv.sent(),
        drv.lost(),
        r.total_drops(),
        drv.pending()
    );
}

#[test]
fn tx_device_killed_mid_run_keeps_exact_ledger() {
    let graph = chaos_graph();
    let mut r = router_4shard(&graph);
    let mut drv = DeviceDriver::new();

    let (in_be, in_q) = MemBackend::with_handles();
    drv.attach("in0", Box::new(in_be));

    // The TX device dies mid-run and refuses its first three re-opens:
    // with 200 µs re-open backoff doubling per refusal, the outage
    // outlives the 300 µs drain deadline, so some pending TX *must*
    // become counted loss before the device comes back.
    let (out_be, out_q) = MemBackend::with_handles();
    let fault = FaultInjectBackend::new(Box::new(out_be))
        .down_after(120)
        .down_for(3);
    let (retry, health) = fast_policies(300, 16);
    drv.attach_supervised(
        "out0",
        SupervisedDevice::with_policies(Box::new(fault), retry, health),
    );

    for i in 0..FRAMES {
        in_q.push_rx(&frame(i));
    }
    pump_to_quiescence(&mut drv, &mut r, &in_q, FRAMES as u64);

    // Exact ledger: every injected frame is transmitted, counted lost,
    // or a counted router drop — nothing vanishes.
    assert_eq!(drv.injected(), FRAMES as u64);
    assert_eq!(
        drv.injected(),
        drv.sent() + drv.lost() + r.total_drops(),
        "ledger must balance exactly"
    );
    assert_eq!(out_q.tx_len() as u64, drv.sent());

    // The outage is visible in the gauges, and the device recovered.
    let g = &drv.gauges()[1];
    assert_eq!(g.device, "out0");
    assert!(g.flaps >= 1, "flap gauge: {g:?}");
    assert!(g.down_events >= 1, "down gauge: {g:?}");
    assert!(g.reopens >= 1, "reopen gauge: {g:?}");
    assert!(g.drain_lost >= 1, "loss gauge: {g:?}");
    assert!(drv.lost() >= 1);
    assert!(
        g.health == "up" || g.health == "recovering",
        "device must be back after the flap: {g:?}"
    );
    // Forwarding continued after the flap: more frames were delivered
    // than could have been before the kill at op 120.
    assert!(drv.sent() > 120, "forwarding must survive the outage");
    r.shutdown();
}

#[test]
fn eagain_storm_is_absorbed_without_loss() {
    let graph = chaos_graph();
    let mut r = router_4shard(&graph);
    let mut drv = DeviceDriver::new();

    let (in_be, in_q) = MemBackend::with_handles();
    drv.attach("in0", Box::new(in_be));

    // A bursty TX device: 25% of ops start a 4-op EAGAIN storm. With a
    // generous drain deadline every frame must still get through.
    let (out_be, out_q) = MemBackend::with_handles();
    let fault = FaultInjectBackend::new(Box::new(out_be))
        .eagain(0.25)
        .storm(4)
        .seed(9);
    let (retry, health) = fast_policies(1_000_000, 8);
    drv.attach_supervised(
        "out0",
        SupervisedDevice::with_policies(Box::new(fault), retry, health),
    );

    for i in 0..FRAMES {
        in_q.push_rx(&frame(i));
    }
    pump_to_quiescence(&mut drv, &mut r, &in_q, FRAMES as u64);

    assert_eq!(drv.injected(), FRAMES as u64);
    assert_eq!(drv.sent(), FRAMES as u64, "a storm must not lose frames");
    assert_eq!(drv.lost(), 0);
    assert_eq!(r.total_drops(), 0);
    assert_eq!(out_q.tx_len(), FRAMES);

    let g = &drv.gauges()[1];
    assert!(g.would_blocks > 0, "storm must be visible: {g:?}");
    assert!(g.retries > 0, "retries must be counted: {g:?}");
    assert!(g.backoffs > 0, "backoffs must be counted: {g:?}");
    r.shutdown();
}

#[test]
fn rx_device_killed_mid_run_replugs_within_budget() {
    let graph = chaos_graph();
    let mut r = router_4shard(&graph);
    let mut drv = DeviceDriver::new();

    // The RX source dies after 150 ops and refuses two re-opens; the
    // supervision layer must re-plug it within the budget and finish the
    // trace with zero loss (the kill consumes no frame).
    let (in_be, in_q) = MemBackend::with_handles();
    let fault = FaultInjectBackend::new(Box::new(in_be))
        .down_after(150)
        .down_for(2);
    let (retry, health) = fast_policies(1_000_000, 16);
    drv.attach_supervised(
        "in0",
        SupervisedDevice::with_policies(Box::new(fault), retry, health),
    );

    let (out_be, out_q) = MemBackend::with_handles();
    drv.attach("out0", Box::new(out_be));

    for i in 0..FRAMES {
        in_q.push_rx(&frame(i));
    }
    pump_to_quiescence(&mut drv, &mut r, &in_q, FRAMES as u64);

    assert_eq!(drv.injected(), FRAMES as u64, "the whole trace must arrive");
    assert_eq!(drv.sent(), FRAMES as u64);
    assert_eq!(drv.lost(), 0);
    assert_eq!(out_q.tx_len(), FRAMES);

    let g = &drv.gauges()[0];
    assert_eq!(g.device, "in0");
    assert!(g.flaps >= 1, "kill must register: {g:?}");
    assert!(g.down_events >= 1, "down must register: {g:?}");
    assert!(g.reopens >= 1, "re-plug must register: {g:?}");
    assert!(
        g.health == "up" || g.health == "recovering",
        "device must be back: {g:?}"
    );
    r.shutdown();
}

#[test]
fn abandoned_tx_device_turns_backlog_into_counted_loss() {
    let graph = chaos_graph();
    let mut r = router_4shard(&graph);
    let mut drv = DeviceDriver::new();

    let (in_be, in_q) = MemBackend::with_handles();
    drv.attach("in0", Box::new(in_be));

    // Dead for good: every re-open is refused, and the budget is tiny.
    let (out_be, out_q) = MemBackend::with_handles();
    let fault = FaultInjectBackend::new(Box::new(out_be))
        .down_after(60)
        .down_for(1_000_000);
    let (retry, health) = fast_policies(300, 3);
    drv.attach_supervised(
        "out0",
        SupervisedDevice::with_policies(Box::new(fault), retry, health),
    );

    for i in 0..FRAMES {
        in_q.push_rx(&frame(i));
    }
    pump_to_quiescence(&mut drv, &mut r, &in_q, FRAMES as u64);

    // The router itself never stalled: the whole trace was injected and
    // every frame is accounted as sent-before-death or counted loss.
    assert_eq!(drv.injected(), FRAMES as u64);
    assert_eq!(
        drv.injected(),
        drv.sent() + drv.lost() + r.total_drops(),
        "ledger must balance exactly even for an abandoned device"
    );
    assert_eq!(out_q.tx_len() as u64, drv.sent());
    assert!(drv.lost() > 0, "the backlog must be counted, not leaked");

    let g = &drv.gauges()[1];
    assert_eq!(g.health, "down", "an abandoned device stays down: {g:?}");
    assert!(g.drain_lost > 0, "{g:?}");
    assert_eq!(g.reopens, 0, "no refused re-open may count as success");
    r.shutdown();
}
