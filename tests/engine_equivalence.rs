//! The central correctness property of the whole reproduction: every
//! optimizer preserves router semantics. Each Figure-9 variant of the IP
//! router must forward an identical packet set to byte-identical outputs,
//! on whichever engine (dynamic or devirtualized) it targets.

use click::core::registry::Library;
use click::elements::ip_router::{test_packet, IpRouterSpec};
use click::elements::packet::Packet;
use click::elements::router::Slot;
use click::elements::Router;
use click_bench::ip_router_variants;

const N: usize = 4;

/// The workload: cross-interface UDP, an ARP request for the router, and
/// a TTL-expiring packet. Returns (per-output-device frames, discards).
fn run_workload<S: Slot>(graph: &click::core::RouterGraph) -> (Vec<Vec<Vec<u8>>>, u64) {
    let spec = IpRouterSpec::standard(N);
    let lib = Library::standard();
    let mut router: Router<S> = Router::from_graph(graph, &lib).expect("router builds");
    let mut inject = |dev: usize, p: Packet| {
        let id = router.devices.id(&format!("eth{dev}")).expect("device");
        router.devices.inject(id, p);
    };
    // Normal forwarding, several flows.
    for i in 0..8usize {
        let src = i % 2;
        let dst = 2 + (i % 2);
        let mut p = test_packet(&spec, src, dst);
        p.data_mut()[50] = i as u8;
        inject(src, p);
    }
    // A TTL-1 packet: generates an ICMP error back out the source side.
    let mut dying = test_packet(&spec, 0, 2);
    {
        let ip = &mut dying.data_mut()[14..];
        ip[8] = 1;
        click::elements::headers::ipv4::set_checksum(ip);
    }
    inject(0, dying);
    // A non-IP frame: discarded.
    let mut junk = Packet::new(60);
    junk.data_mut()[12] = 0x86;
    junk.data_mut()[13] = 0xDD;
    inject(1, junk);

    router.run_until_idle(50_000);
    let outputs = (0..N)
        .map(|d| {
            let id = router.devices.id(&format!("eth{d}")).expect("device");
            router
                .devices
                .take_tx(id)
                .iter()
                .map(|p| p.data().to_vec())
                .collect()
        })
        .collect();
    (outputs, router.class_stat("Discard", "count"))
}

#[test]
fn every_variant_forwards_identically() {
    let variants = ip_router_variants(N).expect("variants build");
    let base = variants.iter().find(|v| v.name == "Base").unwrap();
    let (reference, _) = run_workload::<Box<dyn click::elements::Element>>(&base.graph);
    // Sanity on the reference itself: 8 forwarded + 1 ICMP error.
    let forwarded: usize = reference.iter().map(Vec::len).sum();
    assert_eq!(forwarded, 9, "reference forwarded {forwarded}");

    for v in &variants {
        if v.name == "Simple" || v.name == "Base" {
            continue; // Simple is a different topology
        }
        let (outputs, _) = if v.graph.has_requirement("devirtualize") {
            run_workload::<click::elements::fast::FastElement>(&v.graph)
        } else {
            run_workload::<Box<dyn click::elements::Element>>(&v.graph)
        };
        assert_eq!(outputs, reference, "variant {} diverges from Base", v.name);
    }
}

#[test]
fn devirtualized_variants_also_run_on_dyn_engine() {
    // The generated `Class__DVn` names resolve to their base behavior in
    // the dynamic factory too, so a devirtualized config is still portable.
    let variants = ip_router_variants(N).expect("variants build");
    let base = variants.iter().find(|v| v.name == "Base").unwrap();
    let all = variants.iter().find(|v| v.name == "All").unwrap();
    let (reference, _) = run_workload::<Box<dyn click::elements::Element>>(&base.graph);
    let (outputs, _) = run_workload::<Box<dyn click::elements::Element>>(&all.graph);
    assert_eq!(outputs, reference);
}

#[test]
fn dyn_and_compiled_engines_agree_on_base() {
    let variants = ip_router_variants(N).expect("variants build");
    let base = variants.iter().find(|v| v.name == "Base").unwrap();
    let (a, da) = run_workload::<Box<dyn click::elements::Element>>(&base.graph);
    let (b, db) = run_workload::<click::elements::fast::FastElement>(&base.graph);
    assert_eq!(a, b);
    assert_eq!(da, db);
}
