//! Real-I/O backend suite: the same configuration must forward the same
//! packets whether its devices are simulated queues, pcap replay, UDP
//! sockets, or a kernel tap — and the supervision layer must never let a
//! backend fault corrupt the ledger.
//!
//! The contracts under test (see `crates/elements/src/iodev.rs`):
//!
//! * **Differential**: replaying a pcap trace through `FromDevice` is
//!   bit-identical to injecting the same frames in memory — on both
//!   engines (dyn and compiled) and both runtimes (serial and 4-shard);
//!   re-captured output pcaps are byte-for-byte equal (deterministic
//!   counter timestamps).
//! * **UDP loopback**: frames sent from a plain `std::net::UdpSocket`
//!   traverse the router and come back out of a `udp:` backend, end to
//!   end on the local stack.
//! * **Tap**: with a `tap:` device, the kernel itself is the peer — its
//!   ARP queries are answered by `ARPResponder` and its ICMP echo
//!   requests by `ICMPPingResponder`, i.e. the router is pingable.
//!   (Runtime-skipped where `/dev/net/tun` is unavailable.)

use click::core::lang::read_config;
use click::core::registry::Library;
use click::core::RouterGraph;
use click::elements::driver::DeviceDriver;
use click::elements::element::Element;
use click::elements::fast::FastElement;
use click::elements::headers::build_udp_packet;
use click::elements::iodev::{write_pcap, PcapBackend, SupervisedDevice};
use click::elements::packet::Packet;
use click::elements::parallel::{ParallelOpts, ParallelRouter};
use click::elements::router::{Router, Slot};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A scratch directory unique to this test process.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("click-devio-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The forwarding pipeline both injection modes run: enough elements to
/// exercise real per-packet work (classification would reorder nothing).
const PIPELINE: &str =
    "FromDevice(in0) -> Counter -> Queue(4096) -> c2 :: Counter -> ToDevice(out0);";

/// A deterministic trace: UDP frames across 16 flows with a sequence
/// number in the last payload byte.
fn trace_frames(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let sport = 2000 + (i as u16 % 16);
            let mut p =
                build_udp_packet([1; 6], [2; 6], 0x0A00_0002, 0x0A00_0102, sport, 9, 18, 64);
            let len = p.len();
            p.data_mut()[len - 1] = i as u8;
            p.data().to_vec()
        })
        .collect()
}

/// Serial run with in-memory injection; returns the forwarded frames in
/// order.
fn serial_mem<S: Slot>(graph: &RouterGraph, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut r: Router<S> = Router::from_graph(graph, &Library::standard()).unwrap();
    let in0 = r.devices.id("in0").unwrap();
    for f in frames {
        r.devices.inject(in0, Packet::from_data(f));
    }
    r.run_until_idle(1_000_000);
    let out0 = r.devices.id("out0").unwrap();
    r.devices
        .take_tx(out0)
        .into_iter()
        .map(|p| p.data().to_vec())
        .collect()
}

/// Serial run with pcap replay on `in0`; returns the forwarded frames in
/// order.
fn serial_pcap<S: Slot>(graph: &RouterGraph, trace: &std::path::Path) -> Vec<Vec<u8>> {
    let mut r: Router<S> = Router::from_graph(graph, &Library::standard()).unwrap();
    let in0 = r.devices.id("in0").unwrap();
    let pcap = PcapBackend::open(trace.to_str().unwrap(), None).unwrap();
    r.devices
        .attach_supervised(in0, SupervisedDevice::new(Box::new(pcap)));
    r.run_with_devices(1_000_000);
    let out0 = r.devices.id("out0").unwrap();
    r.devices
        .take_tx(out0)
        .into_iter()
        .map(|p| p.data().to_vec())
        .collect()
}

/// 4-shard run with in-memory injection; forwarded frames in arrival
/// order at `out0` (inter-flow order is scheduling-dependent).
fn sharded_mem<S: Slot + 'static>(graph: &RouterGraph, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut r = ParallelRouter::from_graph::<S>(graph, ParallelOpts::new(4).batched(8)).unwrap();
    let in0 = r.device_id("in0").unwrap();
    for f in frames {
        r.inject(in0, Packet::from_data(f));
    }
    r.run_until_idle();
    let out0 = r.device_id("out0").unwrap();
    let out = r
        .take_tx(out0)
        .into_iter()
        .map(|p| p.data().to_vec())
        .collect();
    r.shutdown();
    out
}

/// 4-shard run with pcap replay via the device driver.
fn sharded_pcap<S: Slot + 'static>(graph: &RouterGraph, trace: &std::path::Path) -> Vec<Vec<u8>> {
    let mut r = ParallelRouter::from_graph::<S>(graph, ParallelOpts::new(4).batched(8)).unwrap();
    let mut drv = DeviceDriver::new();
    let pcap = PcapBackend::open(trace.to_str().unwrap(), None).unwrap();
    drv.attach_supervised("in0", SupervisedDevice::new(Box::new(pcap)));
    drv.run(&mut r, 64, 1_000_000).unwrap();
    let out0 = r.device_id("out0").unwrap();
    let out = r
        .take_tx(out0)
        .into_iter()
        .map(|p| p.data().to_vec())
        .collect();
    r.shutdown();
    out
}

/// Canonical order for runs where global arrival order is legitimately
/// scheduling-dependent.
fn sorted(mut frames: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    frames.sort();
    frames
}

#[test]
fn pcap_replay_matches_memory_injection_both_engines() {
    let dir = scratch("diff");
    let trace = dir.join("trace.pcap");
    let frames = trace_frames(300);
    write_pcap(&trace, &frames).unwrap();
    let graph = read_config(PIPELINE).unwrap();

    // Serial, dyn engine: replay must be *identical in order*, and both
    // must equal the injected trace exactly (this pipeline reorders
    // nothing).
    let mem = serial_mem::<Box<dyn Element>>(&graph, &frames);
    let pcap = serial_pcap::<Box<dyn Element>>(&graph, &trace);
    assert_eq!(mem, frames);
    assert_eq!(pcap, mem);

    // Serial, compiled engine.
    let mem_fast = serial_mem::<FastElement>(&graph, &frames);
    let pcap_fast = serial_pcap::<FastElement>(&graph, &trace);
    assert_eq!(mem_fast, mem);
    assert_eq!(pcap_fast, mem);

    // Re-captured pcaps are bit-identical: deterministic counter
    // timestamps make the bytes a function of the frames alone.
    let out_a = dir.join("out-mem.pcap");
    let out_b = dir.join("out-pcap.pcap");
    write_pcap(&out_a, &mem).unwrap();
    write_pcap(&out_b, &pcap).unwrap();
    assert_eq!(
        std::fs::read(&out_a).unwrap(),
        std::fs::read(&out_b).unwrap(),
        "re-captured pcap files must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pcap_replay_matches_memory_injection_sharded() {
    let dir = scratch("diff4");
    let trace = dir.join("trace.pcap");
    let frames = trace_frames(300);
    write_pcap(&trace, &frames).unwrap();
    let graph = read_config(PIPELINE).unwrap();

    // 4-shard: global order is scheduling-dependent, so compare the
    // canonicalized captures — still bit-identical as files.
    let mem = sorted(sharded_mem::<Box<dyn Element>>(&graph, &frames));
    let pcap = sorted(sharded_pcap::<Box<dyn Element>>(&graph, &trace));
    assert_eq!(mem, sorted(frames.clone()));
    assert_eq!(pcap, mem);

    let mem_fast = sorted(sharded_mem::<FastElement>(&graph, &frames));
    let pcap_fast = sorted(sharded_pcap::<FastElement>(&graph, &trace));
    assert_eq!(mem_fast, mem);
    assert_eq!(pcap_fast, mem);

    let out_a = dir.join("out-mem.pcap");
    let out_b = dir.join("out-pcap.pcap");
    write_pcap(&out_a, &mem).unwrap();
    write_pcap(&out_b, &pcap).unwrap();
    assert_eq!(
        std::fs::read(&out_a).unwrap(),
        std::fs::read(&out_b).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn udp_loopback_end_to_end() {
    // Host-side sockets: one feeds the router's RX, one receives its TX.
    let feeder = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let sink = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    sink.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let rx_sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let rx_port = rx_sock.local_addr().unwrap().port();
    let sink_port = sink.local_addr().unwrap().port();
    drop(rx_sock); // the router's backend re-binds this port

    let graph = read_config(&format!(
        "FromDevice(udp:127.0.0.1:{rx_port}>127.0.0.1:{sink_port}) -> Counter \
         -> Queue(256) -> ToDevice(udp:127.0.0.1:{rx_port}>127.0.0.1:{sink_port});"
    ))
    .unwrap();
    let mut r: Router<Box<dyn Element>> = Router::from_graph(&graph, &Library::standard()).unwrap();
    assert_eq!(r.devices.open_backends().unwrap(), 1);

    for i in 0..20u8 {
        feeder
            .send_to(&[0xAB, i, i, i], ("127.0.0.1", rx_port))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got: Vec<Vec<u8>> = Vec::new();
    let mut buf = [0u8; 2048];
    while got.len() < 20 && Instant::now() < deadline {
        r.run_with_devices(10_000);
        while let Ok((n, _)) = sink.recv_from(&mut buf) {
            got.push(buf[..n].to_vec());
        }
    }
    assert_eq!(got.len(), 20, "all frames must come back over loopback");
    got.sort();
    let mut want: Vec<Vec<u8>> = (0..20u8).map(|i| vec![0xAB, i, i, i]).collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn tap_router_answers_kernel_arp_and_ping() {
    use click::elements::iodev::sys;

    // The kernel side needs /dev/net/tun and root; skip (visibly) where
    // the environment cannot provide them.
    let probe = sys::tap_open("clktest-probe");
    let Ok(probe_tap) = probe else {
        eprintln!("SKIP: tap unavailable: {}", probe.err().unwrap());
        return;
    };
    drop(probe_tap);

    // Router at 10.207.0.2/24 on tap `clktest0`; host side 10.207.0.1.
    // ARP requests are answered by ARPResponder, echo requests by
    // ICMPPingResponder; everything else is dropped.
    let graph = read_config(
        "fd :: FromDevice(tap:clktest0) -> cl :: Classifier(12/0806 20/0001, 12/0800, -); \
         cl [0] -> ARPResponder(10.207.0.2 02:00:00:00:00:02) -> q :: Queue(256); \
         cl [1] -> ICMPPingResponder(10.207.0.2) -> q; \
         cl [2] -> Discard; \
         q -> ToDevice(tap:clktest0);",
    )
    .unwrap();
    let mut r: Router<Box<dyn Element>> = Router::from_graph(&graph, &Library::standard()).unwrap();
    assert_eq!(r.devices.open_backends().unwrap(), 1);
    sys::configure_iface("clktest0", [10, 207, 0, 1], 24).unwrap();

    let icmp = sys::icmp_socket([10, 207, 0, 2]).unwrap();

    // An ICMP echo request; the raw socket adds the IP header for us.
    let mut req = vec![8u8, 0, 0, 0, 0x12, 0x34, 0, 1, 0xDE, 0xAD, 0xBE, 0xEF];
    let mut sum = 0u32;
    for c in req.chunks(2) {
        sum += u32::from(u16::from_be_bytes([c[0], *c.get(1).unwrap_or(&0)]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    let c = !(sum as u16);
    req[2..4].copy_from_slice(&c.to_be_bytes());

    use std::io::{Read, Write};
    let mut icmp = icmp;
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut reply = None;
    let mut buf = [0u8; 2048];
    while reply.is_none() && Instant::now() < deadline {
        // Re-send periodically: the first requests may be consumed by
        // the kernel's ARP resolution.
        let _ = icmp.write(&req);
        for _ in 0..50 {
            r.run_with_devices(10_000);
            match icmp.read(&mut buf) {
                Ok(n) if n > 0 => {
                    // Raw ICMP sockets deliver the full IP packet.
                    let hlen = ((buf[0] & 0x0f) as usize) * 4;
                    if buf.len() > hlen && buf[hlen] == 0 {
                        reply = Some(buf[..n].to_vec());
                        break;
                    }
                }
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }
    let reply = reply.expect("kernel ping must be answered through the tap router");
    let hlen = ((reply[0] & 0x0f) as usize) * 4;
    // Echo reply, same identifier and payload as the request.
    assert_eq!(reply[hlen], 0);
    assert_eq!(&reply[hlen + 4..hlen + 6], &[0x12, 0x34]);
    assert_eq!(&reply[hlen + 8..hlen + 12], &[0xDE, 0xAD, 0xBE, 0xEF]);
    // The responder actually did the work (ARP may or may not have been
    // needed depending on the kernel's neighbor cache).
    let gauges = r.devices.device_gauges();
    assert_eq!(gauges.len(), 1);
    assert!(gauges[0].rx_packets >= 1);
    assert!(gauges[0].tx_packets >= 1);
    assert_eq!(gauges[0].health, "up");
}
