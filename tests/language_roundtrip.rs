//! Property tests on the configuration language: every graph the tools
//! can produce must serialize to Click text that parses back to the same
//! configuration — the paper's §5.2 requirement that optimizers "generate
//! Click-language files corresponding exactly to the results".
//!
//! Randomness comes from a fixed-seed LCG so the suite is deterministic
//! and dependency-free.

use click::core::graph::{PortRef, RouterGraph};
use click::core::lang::{read_config, write_config};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
    fn pick(&mut self, chars: &[u8]) -> char {
        chars[self.below(chars.len())] as char
    }
    fn string(&mut self, first: &[u8], rest: &[u8], max_rest: usize) -> String {
        let mut s = String::new();
        s.push(self.pick(first));
        for _ in 0..self.below(max_rest + 1) {
            s.push(self.pick(rest));
        }
        s
    }
}

const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const LOWER_NUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
const UPPER: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const ALNUM: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

/// Printable ASCII minus the characters the language reserves in config
/// position: `(`, `)`, `,`, `"`, `\`, `;` — the class the original
/// property used.
fn config_charset() -> Vec<u8> {
    (0x20u8..0x7f)
        .filter(|c| !matches!(c, b'(' | b')' | b',' | b'"' | b'\\' | b';'))
        .collect()
}

/// Full printable ASCII, for archive entry data.
fn printable() -> Vec<u8> {
    (0x20u8..0x7f).collect()
}

/// A random DAG-ish graph with Click-legal names and classes.
fn gen_graph(r: &mut Lcg, cfg_chars: &[u8]) -> RouterGraph {
    let mut g = RouterGraph::new();
    let mut ids = Vec::new();
    for _ in 0..1 + r.below(9) {
        let name = r.string(LOWER, LOWER_NUM, 8);
        let class = r.string(UPPER, ALNUM, 8);
        let config: String = (0..r.below(13)).map(|_| r.pick(cfg_chars)).collect();
        // Names must be unique; skip duplicates.
        if g.find(&name).is_none() {
            ids.push(
                g.add_element(name, class, config.trim().to_owned())
                    .unwrap(),
            );
        }
    }
    for _ in 0..r.below(16) {
        if ids.is_empty() {
            break;
        }
        let from = ids[r.below(ids.len())];
        let to = ids[r.below(ids.len())];
        let _ = g.connect(PortRef::new(from, r.below(4)), PortRef::new(to, r.below(4)));
    }
    g
}

#[test]
fn unparse_parse_round_trips() {
    let mut r = Lcg(0x0C0FFEE);
    let cfg_chars = config_charset();
    for _ in 0..192 {
        let g = gen_graph(&mut r, &cfg_chars);
        let text = write_config(&g);
        let back = read_config(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert!(
            g.same_configuration(&back),
            "round trip changed the configuration:\n{}\nvs\n{}",
            text,
            write_config(&back)
        );
    }
}

#[test]
fn archive_round_trips() {
    let mut r = Lcg(0xA2C417E);
    let cfg_chars = config_charset();
    let data_chars = printable();
    for _ in 0..192 {
        let mut g = gen_graph(&mut r, &cfg_chars);
        for _ in 0..r.below(4) {
            let name = format!("{}.rs", r.string(LOWER, LOWER, 7));
            let data: String = (0..r.below(65)).map(|_| r.pick(&data_chars)).collect();
            g.archive_mut().insert(name, data);
        }
        let text = write_config(&g);
        let back = read_config(&text).unwrap();
        assert!(g.same_configuration(&back));
        for e in g.archive().iter() {
            assert_eq!(back.archive().get(&e.name), Some(e.data.as_str()));
        }
    }
}

#[test]
fn generated_names_round_trip() {
    // Names the tools generate: anonymous (`Class@3`), flattened
    // (`compound/inner`), devirtualized classes, fast classifiers.
    let mut g = RouterGraph::new();
    let a = g.add_anon_element("Idle", "");
    let b = g.add_element("router/q1", "Queue__DV3", "64").unwrap();
    let c = g
        .add_element("c", "FastClassifier@@c", "fast constant 1 out0")
        .unwrap();
    let d = g
        .add_element("link@A.eth0@B.eth1", "RouterLink", "A.eth0 -> B.eth1")
        .unwrap();
    g.connect(PortRef::new(a, 0), PortRef::new(b, 0)).unwrap();
    g.connect(PortRef::new(b, 0), PortRef::new(c, 0)).unwrap();
    g.connect(PortRef::new(c, 0), PortRef::new(d, 0)).unwrap();
    let text = write_config(&g);
    let back = read_config(&text).unwrap();
    assert!(g.same_configuration(&back), "text was:\n{text}");
}

#[test]
fn requirements_and_high_ports_round_trip() {
    let mut g = RouterGraph::new();
    g.add_requirement("fastclassifier");
    g.add_requirement("devirtualize");
    let a = g
        .add_element("a", "Classifier", "0/01, 0/02, 0/03, -")
        .unwrap();
    let b = g.add_element("b", "X", "").unwrap();
    let idle = g.add_element("i", "Idle", "").unwrap();
    g.connect(PortRef::new(idle, 0), PortRef::new(a, 0))
        .unwrap();
    for p in 0..4 {
        g.connect(PortRef::new(a, p), PortRef::new(b, p)).unwrap();
    }
    let back = read_config(&write_config(&g)).unwrap();
    assert!(g.same_configuration(&back));
    assert!(back.has_requirement("fastclassifier"));
    assert!(back.has_requirement("devirtualize"));
}
