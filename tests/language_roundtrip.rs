//! Property tests on the configuration language: every graph the tools
//! can produce must serialize to Click text that parses back to the same
//! configuration — the paper's §5.2 requirement that optimizers "generate
//! Click-language files corresponding exactly to the results".

use click::core::graph::{PortRef, RouterGraph};
use click::core::lang::{read_config, write_config};
use proptest::prelude::*;

/// Strategy: a random DAG-ish graph with Click-legal names and classes.
fn arb_graph() -> impl Strategy<Value = RouterGraph> {
    let elem = ("[a-z][a-z0-9_]{0,8}", "[A-Z][A-Za-z0-9]{0,8}", "[ -~&&[^(),\"\\\\;]]{0,12}");
    (prop::collection::vec(elem, 1..10), prop::collection::vec((0usize..10, 0usize..4, 0usize..10, 0usize..4), 0..16))
        .prop_map(|(elems, conns)| {
            let mut g = RouterGraph::new();
            let mut ids = Vec::new();
            for (name, class, config) in elems {
                // Names must be unique; skip duplicates.
                if g.find(&name).is_none() {
                    ids.push(g.add_element(name, class, config.trim().to_owned()).unwrap());
                }
            }
            for (f, fp, t, tp) in conns {
                if ids.is_empty() {
                    break;
                }
                let from = ids[f % ids.len()];
                let to = ids[t % ids.len()];
                let _ = g.connect(PortRef::new(from, fp), PortRef::new(to, tp));
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn unparse_parse_round_trips(g in arb_graph()) {
        let text = write_config(&g);
        let back = read_config(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert!(
            g.same_configuration(&back),
            "round trip changed the configuration:\n{}\nvs\n{}",
            text,
            write_config(&back)
        );
    }

    #[test]
    fn archive_round_trips(g in arb_graph(), entries in prop::collection::vec(("[a-z]{1,8}\\.rs", "[ -~]{0,64}"), 0..4)) {
        let mut g = g;
        for (name, data) in entries {
            g.archive_mut().insert(name, data);
        }
        let text = write_config(&g);
        let back = read_config(&text).unwrap();
        prop_assert!(g.same_configuration(&back));
        for e in g.archive().iter() {
            prop_assert_eq!(back.archive().get(&e.name), Some(e.data.as_str()));
        }
    }
}

#[test]
fn generated_names_round_trip() {
    // Names the tools generate: anonymous (`Class@3`), flattened
    // (`compound/inner`), devirtualized classes, fast classifiers.
    let mut g = RouterGraph::new();
    let a = g.add_anon_element("Idle", "");
    let b = g.add_element("router/q1", "Queue__DV3", "64").unwrap();
    let c = g
        .add_element("c", "FastClassifier@@c", "fast constant 1 out0")
        .unwrap();
    let d = g.add_element("link@A.eth0@B.eth1", "RouterLink", "A.eth0 -> B.eth1").unwrap();
    g.connect(PortRef::new(a, 0), PortRef::new(b, 0)).unwrap();
    g.connect(PortRef::new(b, 0), PortRef::new(c, 0)).unwrap();
    g.connect(PortRef::new(c, 0), PortRef::new(d, 0)).unwrap();
    let text = write_config(&g);
    let back = read_config(&text).unwrap();
    assert!(g.same_configuration(&back), "text was:\n{text}");
}

#[test]
fn requirements_and_high_ports_round_trip() {
    let mut g = RouterGraph::new();
    g.add_requirement("fastclassifier");
    g.add_requirement("devirtualize");
    let a = g.add_element("a", "Classifier", "0/01, 0/02, 0/03, -").unwrap();
    let b = g.add_element("b", "X", "").unwrap();
    let idle = g.add_element("i", "Idle", "").unwrap();
    g.connect(PortRef::new(idle, 0), PortRef::new(a, 0)).unwrap();
    for p in 0..4 {
        g.connect(PortRef::new(a, p), PortRef::new(b, p)).unwrap();
    }
    let back = read_config(&write_config(&g)).unwrap();
    assert!(g.same_configuration(&back));
    assert!(back.has_requirement("fastclassifier"));
    assert!(back.has_requirement("devirtualize"));
}
