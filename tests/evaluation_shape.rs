//! Shape tests for the paper's evaluation: the quantitative relationships
//! from §8 must hold in the models (who wins, by roughly what factor,
//! where the bottleneck regimes fall). EXPERIMENTS.md records exact
//! model-vs-paper values; these tests pin the shape so regressions in
//! any crate show up here.

use click::sim::cost::path::router_cpu_cost;
use click::sim::{evaluation_traffic, mlffr, run_at_rate, Platform, RunConfig};
use click_bench::{evaluation_spec, ip_router_variants};
use std::collections::HashMap;

fn forwarding_costs() -> HashMap<&'static str, f64> {
    let spec = evaluation_spec();
    let variants = ip_router_variants(8).unwrap();
    let traffic = evaluation_traffic(&spec);
    let simple: click::sim::TrafficSpec =
        (0..4).map(|i| (format!("eth{i}"), vec![0u8; 60])).collect();
    let p0 = Platform::p0();
    variants
        .iter()
        .map(|v| {
            let t = if v.name == "Simple" {
                &simple
            } else {
                &traffic
            };
            (
                v.name,
                router_cpu_cost(&v.graph, &p0, t).unwrap().forwarding_ns,
            )
        })
        .collect()
}

#[test]
fn figure8_breakdown_matches_paper_within_tolerance() {
    let spec = evaluation_spec();
    let g = click::core::lang::read_config(&spec.config()).unwrap();
    let cost = router_cpu_cost(&g, &Platform::p0(), &evaluation_traffic(&spec)).unwrap();
    let close = |model: f64, paper: f64, tol: f64| (model - paper).abs() / paper < tol;
    assert!(
        close(cost.forwarding_ns, 1657.0, 0.05),
        "fwd {}",
        cost.forwarding_ns
    );
    assert!(
        close(cost.total_ns(), 2905.0, 0.05),
        "total {}",
        cost.total_ns()
    );
}

#[test]
fn figure9_orderings_hold() {
    let c = forwarding_costs();
    // FC helps a little; XF and DV help a lot and are similar; All beats
    // both; MR+All beats All; Simple is far below everything.
    assert!(c["FC"] < c["Base"]);
    assert!(c["Base"] - c["FC"] < 0.1 * c["Base"], "FC saves little");
    assert!(c["XF"] < 0.85 * c["Base"]);
    assert!(c["DV"] < 0.85 * c["Base"]);
    let ratio = c["XF"] / c["DV"];
    assert!((0.85..=1.15).contains(&ratio), "XF≈DV (ratio {ratio:.2})");
    assert!(c["All"] < c["XF"] && c["All"] < c["DV"]);
    assert!(c["MR+All"] < c["All"]);
    assert!(c["Simple"] < 0.5 * c["All"]);
    // Headline: 34% reduction Base → All (paper), within a few points.
    let reduction = 1.0 - c["All"] / c["Base"];
    assert!(
        (0.30..=0.38).contains(&reduction),
        "reduction {reduction:.2}"
    );
    // Overlap: XF + DV savings do not add up (paper: "applying both ...
    // is not much more useful than applying either one alone").
    let sum = (c["Base"] - c["XF"]) + (c["Base"] - c["DV"]);
    assert!(c["Base"] - c["All"] < 0.8 * sum);
}

#[test]
fn figure10_mlffr_ordering_and_factors() {
    let spec = evaluation_spec();
    let variants = ip_router_variants(8).unwrap();
    let traffic = evaluation_traffic(&spec);
    let p0 = Platform::p0();
    let rate = |name: &str| {
        let v = variants.iter().find(|v| v.name == name).unwrap();
        let cpu = router_cpu_cost(&v.graph, &p0, &traffic).unwrap().total_ns();
        mlffr(&RunConfig::new(p0.clone(), cpu))
    };
    let base = rate("Base");
    let all = rate("All");
    let mr_all = rate("MR+All");
    // Paper: 357k → 446k (+89k, a 1.25× ratio), MR+All a bit higher.
    assert!((320_000.0..380_000.0).contains(&base), "base {base}");
    assert!(
        (1.15..1.35).contains(&(all / base)),
        "All/Base {}",
        all / base
    );
    assert!(mr_all > all);
}

#[test]
fn figure11_bottleneck_regimes() {
    let spec = evaluation_spec();
    let variants = ip_router_variants(8).unwrap();
    let traffic = evaluation_traffic(&spec);
    let p0 = Platform::p0();
    let cpu_of = |name: &str| {
        let v = variants.iter().find(|v| v.name == name).unwrap();
        router_cpu_cost(&v.graph, &p0, &traffic).unwrap().total_ns()
    };
    // Base at overload: CPU-limited, so all drops are missed frames.
    let o = run_at_rate(&RunConfig::new(p0.clone(), cpu_of("Base")), 500_000.0);
    assert!(o.missed_frame > 0);
    assert_eq!(o.fifo_overflow + o.queue_drop, 0, "{o:?}");
    // Simple at maximum input: not CPU-limited — no missed frames.
    let simple_cpu = {
        let v = variants.iter().find(|v| v.name == "Simple").unwrap();
        let t: click::sim::TrafficSpec =
            (0..4).map(|i| (format!("eth{i}"), vec![0u8; 60])).collect();
        router_cpu_cost(&v.graph, &p0, &t).unwrap().total_ns()
    };
    let o = run_at_rate(&RunConfig::new(p0.clone(), simple_cpu), 591_000.0);
    assert_eq!(o.missed_frame, 0, "{o:?}");
    assert!(o.fifo_overflow + o.queue_drop > 0, "{o:?}");
}

#[test]
fn figure12_platform_ratios() {
    let spec = evaluation_spec();
    let variants = ip_router_variants(8).unwrap();
    let base = &variants.iter().find(|v| v.name == "Base").unwrap().graph;
    let all = &variants.iter().find(|v| v.name == "All").unwrap().graph;
    let traffic = evaluation_traffic(&spec);
    let mut ratios = HashMap::new();
    let mut rates = HashMap::new();
    for p in Platform::all() {
        let b = mlffr(&RunConfig::new(
            p.clone(),
            router_cpu_cost(base, &p, &traffic).unwrap().total_ns(),
        ));
        let a = mlffr(&RunConfig::new(
            p.clone(),
            router_cpu_cost(all, &p, &traffic).unwrap().total_ns(),
        ));
        ratios.insert(p.name, a / b);
        rates.insert(p.name, (a, b));
    }
    // The optimizations help on every platform (paper: ratios 1.16–1.36).
    for (name, r) in &ratios {
        assert!((1.05..1.5).contains(r), "{name} ratio {r:.2}");
    }
    // P3's faster CPU roughly doubles Base over P2, less for All
    // (paper: 1.9× and 1.6×).
    let (a2, b2) = rates["P2"];
    let (a3, b3) = rates["P3"];
    assert!(b3 / b2 > 1.5, "P3/P2 base {}", b3 / b2);
    assert!(a3 / a2 > 1.3, "P3/P2 all {}", a3 / a2);
    assert!(
        b3 / b2 > a3 / a2 * 0.99,
        "Base gains at least as much as All from CPU speed"
    );
}

#[test]
fn section4_firewall_factor() {
    use click::classifier::firewall::{dns5_packet, firewall_config};
    use click::classifier::{build_tree, optimize, parse_rules, FastMatcher};
    let rules = parse_rules("IPFilter", &firewall_config()).unwrap();
    let tree = build_tree(&rules, 1);
    let opt = optimize(&tree);
    let fast = FastMatcher::compile(&opt);
    let pkt = dns5_packet();
    assert_eq!(tree.classify(&pkt), Some(0));
    assert_eq!(fast.classify(&pkt), Some(0));
    // Paper: >2× cheaper after specialization. Model the costs.
    let params = click::sim::CostParams::default();
    let count = |t: &click::classifier::DecisionTree| {
        let mut v = 0usize;
        let mut s = t.start;
        while let click::classifier::Step::Node(i) = s {
            v += 1;
            let e = &t.exprs[i];
            let w = click::classifier::tree::load_word(&pkt, e.offset as usize);
            s = if w & e.mask == e.value { e.yes } else { e.no };
        }
        v
    };
    let generic = params.tree_entry + count(&tree) as f64 * params.tree_node;
    let specialized = params.fast_entry + count(&opt) as f64 * params.fast_node;
    assert!(
        generic / specialized > 2.0,
        "factor {:.2}",
        generic / specialized
    );
}
