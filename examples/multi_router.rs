//! Multi-router configurations (§7.2): combine two IP routers, eliminate
//! ARP on the point-to-point link between them, and extract the optimized
//! routers back out — then prove the optimized router forwards the same
//! packets.
//!
//! ```sh
//! cargo run --release --example multi_router
//! ```

use click::core::lang::read_config;
use click::core::registry::Library;
use click::elements::ip_router::{test_packet, IpRouterSpec};
use click::elements::router::DynRouter;
use click::elements::Router;
use click::opt::combine::{combine, eliminate_arp, uncombine, LinkSpec};

fn forward(graph: &click::core::RouterGraph, spec: &IpRouterSpec) -> Vec<Vec<u8>> {
    let lib = Library::standard();
    let mut router: DynRouter = Router::from_graph(graph, &lib).expect("router builds");
    let eth0 = router.devices.id("eth0").expect("device");
    for i in 0..4u8 {
        let mut p = test_packet(spec, 0, 1);
        p.data_mut()[50] = i; // distinguishable payloads
        router.devices.inject(eth0, p);
    }
    router.run_until_idle(10_000);
    let eth1 = router.devices.id("eth1").expect("device");
    router
        .devices
        .take_tx(eth1)
        .iter()
        .map(|p| p.data().to_vec())
        .collect()
}

fn main() -> click::core::Result<()> {
    let spec = IpRouterSpec::standard(2);
    let router_a = read_config(&spec.config())?;
    // Router B sits where A's eth1 neighbor used to be: give its eth0 the
    // neighbor's addresses so the link swap is transparent.
    let mut spec_b = IpRouterSpec::standard(2);
    spec_b.interfaces[0].ip = spec.interfaces[1].neighbor_ip;
    spec_b.interfaces[0].mac = spec.interfaces[1].neighbor_mac;
    spec_b.interfaces[0].network = spec.interfaces[1].network;
    let router_b = read_config(&spec_b.config())?;

    // Combine: A's eth1 now feeds B's eth0 over a point-to-point link.
    let link = LinkSpec::parse("A.eth1 -> B.eth0")?;
    let mut combined = combine(
        &[("A".into(), router_a.clone()), ("B".into(), router_b)],
        &[link],
    )?;
    println!(
        "combined configuration: {} elements, {} RouterLink(s)",
        combined.element_count(),
        combined
            .elements()
            .filter(|(_, e)| e.class() == "RouterLink")
            .count()
    );

    // The link is point-to-point, so ARP on it is redundant.
    let report = eliminate_arp(&mut combined)?;
    for (querier, encap) in &report.rewritten {
        println!("eliminated ARP: {querier} -> EtherEncap({encap})");
    }

    // Extract router A with the optimization baked in.
    let optimized_a = uncombine(&combined, "A")?;
    let aq1 = optimized_a.find("aq1").expect("element exists");
    println!(
        "extracted router A: aq1 is now {}",
        optimized_a.element(aq1).class()
    );

    // Behavioral check: with a warm ARP cache, the original and
    // ARP-eliminated routers emit byte-identical frames.
    let before = forward(&router_a, &spec);
    let after = forward(&optimized_a, &spec);
    assert_eq!(before.len(), 4);
    assert_eq!(before, after, "ARP elimination changed forwarding behavior");
    println!(
        "forwarded {} packets; byte-identical with and without ARP machinery",
        before.len()
    );

    // Cost-model view of the saving (the paper's MR bar in Figure 9).
    let traffic = vec![(
        spec.interfaces[0].device.clone(),
        test_packet(&spec, 0, 1).data().to_vec(),
    )];
    let p0 = click::sim::Platform::p0();
    let base_ns = click::sim::cost::path::router_cpu_cost(&router_a, &p0, &traffic)?.forwarding_ns;
    let mr_ns = click::sim::cost::path::router_cpu_cost(&optimized_a, &p0, &traffic)?.forwarding_ns;
    println!();
    println!("forwarding path @700 MHz: {base_ns:.0} ns -> {mr_ns:.0} ns");
    println!("(the paper's MR step: 1101 -> 1061 ns when stacked on All)");
    Ok(())
}
