//! Quickstart: write a configuration, check it, optimize it, run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use click::core::check::check;
use click::core::lang::{read_config, write_config};
use click::core::registry::Library;
use click::elements::packet::Packet;
use click::elements::router::DynRouter;
use click::elements::Router;
use std::collections::HashSet;

fn main() -> click::core::Result<()> {
    // A little router: classify Ethernet frames; count IP, drop the rest.
    let source = "
        // quickstart.click
        FromDevice(in0)
            -> c :: Classifier(12/0800, -);   // IP vs everything else
        c [0] -> ip_count :: Counter -> Queue(64) -> ToDevice(out0);
        c [1] -> other :: Counter -> Discard;
    ";

    // 1. Parse (compound elements would be elaborated away here too).
    let mut graph = read_config(source)?;
    println!(
        "parsed {} elements, {} connections",
        graph.element_count(),
        graph.connections().len()
    );

    // 2. Check it like Click would at install time.
    let lib = Library::standard();
    let report = check(&graph, &lib);
    assert!(report.is_ok(), "{:?}", report.diagnostics);
    println!("configuration checks clean");

    // 3. Optimize: specialize the classifier, devirtualize transfers.
    let fc = click::opt::fastclassifier::fastclassifier(&mut graph)?;
    println!(
        "click-fastclassifier: specialized {} classifier(s) (shape: {})",
        fc.specialized.len(),
        fc.specialized[0].2
    );
    let dv = click::opt::devirtualize::devirtualize(&mut graph, &lib, &HashSet::new())?;
    println!(
        "click-devirtualize: {} specialized class(es)",
        dv.classes.len()
    );

    // 4. The optimized configuration is still a plain Click file.
    let text = write_config(&graph);
    println!("--- optimized configuration (first lines) ---");
    for line in text.lines().take(6) {
        println!("{line}");
    }

    // 5. Run packets through it.
    let mut router: DynRouter = Router::from_graph(&graph, &lib)?;
    let in0 = router.devices.id("in0").expect("device exists");
    let out0 = router.devices.id("out0").expect("device exists");
    for i in 0..10u16 {
        let mut p = Packet::new(60);
        // Every third frame is ARP (0x0806); the rest are IP (0x0800).
        let ethertype: u16 = if i % 3 == 0 { 0x0806 } else { 0x0800 };
        p.data_mut()[12..14].copy_from_slice(&ethertype.to_be_bytes());
        router.devices.inject(in0, p);
    }
    router.run_until_idle(1000);
    println!("--- run ---");
    println!("transmitted on out0:   {}", router.devices.tx_len(out0));
    println!(
        "IP packets counted:    {}",
        router.stat("ip_count", "count").unwrap()
    );
    println!(
        "non-IP discarded:      {}",
        router.stat("other", "count").unwrap()
    );
    Ok(())
}
