//! The paper's Figure-1 IP router, unoptimized and fully optimized,
//! forwarding real packets through both execution engines — then priced
//! by the cost model.
//!
//! ```sh
//! cargo run --release --example ip_router
//! ```

use click::core::lang::read_config;
use click::core::registry::Library;
use click::elements::ip_router::{test_packet, IpRouterSpec};
use click::elements::router::DynRouter;
use click::elements::{CompiledRouter, Router};
use click::sim::cost::path::router_cpu_cost;
use click::sim::{evaluation_traffic, Platform};
use std::collections::HashSet;

fn main() -> click::core::Result<()> {
    let spec = IpRouterSpec::standard(8);
    let base = read_config(&spec.config())?;
    let lib = Library::standard();
    println!(
        "reference IP router: {} interfaces, {} elements, {} connections",
        spec.interfaces.len(),
        base.element_count(),
        base.connections().len()
    );

    // Optimize: xform -> fastclassifier -> devirtualize (last, per §6.1).
    let mut optimized = base.clone();
    let n = click::opt::xform::apply_patterns(
        &mut optimized,
        &click::opt::xform::ip_combo_patterns()?,
    )?;
    click::opt::fastclassifier::fastclassifier(&mut optimized)?;
    click::opt::devirtualize::devirtualize(&mut optimized, &lib, &HashSet::new())?;
    println!(
        "after optimization:  {} elements ({} xform replacements)",
        optimized.element_count(),
        n
    );

    // Forward the same packets through both engines; outputs must agree.
    let mut dyn_router: DynRouter = Router::from_graph(&base, &lib)?;
    let mut fast_router: CompiledRouter = Router::from_graph(&optimized, &lib)?;
    let mut sent = (0usize, 0usize);
    for src in 0..4usize {
        let dst = src + 4;
        let p = test_packet(&spec, src, dst);
        let dev_d = dyn_router.devices.id(&format!("eth{src}")).expect("device");
        let dev_f = fast_router
            .devices
            .id(&format!("eth{src}"))
            .expect("device");
        dyn_router.devices.inject(dev_d, p.clone());
        fast_router.devices.inject(dev_f, p);
    }
    dyn_router.run_until_idle(10_000);
    fast_router.run_until_idle(10_000);
    for dst in 4..8usize {
        let dev_d = dyn_router.devices.id(&format!("eth{dst}")).expect("device");
        let dev_f = fast_router
            .devices
            .id(&format!("eth{dst}"))
            .expect("device");
        let a = dyn_router.devices.take_tx(dev_d);
        let b = fast_router.devices.take_tx(dev_f);
        assert_eq!(a.len(), b.len(), "engines disagree on eth{dst}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data(), "payload mismatch on eth{dst}");
        }
        sent.0 += a.len();
        sent.1 += b.len();
    }
    println!(
        "both engines forwarded {} packets with identical bytes",
        sent.0
    );

    // Price both on the paper's 700 MHz testbed machine.
    let traffic = evaluation_traffic(&spec);
    let p0 = Platform::p0();
    let base_cost = router_cpu_cost(&base, &p0, &traffic)?;
    let opt_cost = router_cpu_cost(&optimized, &p0, &traffic)?;
    println!();
    println!("cost model @700 MHz (paper: 1657 -> 1101 ns, a 34% reduction):");
    println!(
        "  unoptimized forwarding path: {:.0} ns ({} elements, {} transfers)",
        base_cost.forwarding_ns,
        base_cost.elements.round(),
        base_cost.hops.round()
    );
    println!(
        "  optimized forwarding path:   {:.0} ns ({} elements, {} transfers)",
        opt_cost.forwarding_ns,
        opt_cost.elements.round(),
        opt_cost.hops.round()
    );
    println!(
        "  reduction:                   {:.0}%",
        (1.0 - opt_cost.forwarding_ns / base_cost.forwarding_ns) * 100.0
    );
    Ok(())
}
