//! A differentiated-services edge: two traffic classes split by an
//! `IPClassifier`, RED-policed queues, and a priority scheduler — the
//! kind of "fundamentally different functionality from the same
//! components" the paper's introduction motivates. The same optimizer
//! chain applies unchanged.
//!
//! ```sh
//! cargo run --release --example qos_scheduler
//! ```

use click::core::lang::read_config;
use click::core::registry::Library;
use click::elements::headers::build_udp_packet;
use click::elements::router::DynRouter;
use click::elements::Router;
use std::collections::HashSet;

fn main() -> click::core::Result<()> {
    // VoIP-ish UDP (small ports) gets the priority queue; bulk traffic
    // gets a RED-policed best-effort queue.
    let source = "
        FromDevice(in) -> Strip(14)
            -> chk :: CheckIPHeader
            -> c :: IPClassifier(udp dst port 5060, -);
        c [0] -> prio_count :: Counter -> pq :: Queue(64);
        c [1] -> RED(8, 32, 0.1) -> bulk_count :: Counter -> bq :: Queue(64);
        pq -> [0] sched :: PrioSched;
        bq -> [1] sched;
        sched -> Unstrip(14) -> ToDevice(out);
    ";
    let mut graph = read_config(source)?;
    let lib = Library::standard();

    // The optimizers are workload-agnostic: same chain as the IP router.
    click::opt::fastclassifier::fastclassifier(&mut graph)?;
    click::opt::devirtualize::devirtualize(&mut graph, &lib, &HashSet::new())?;

    let mut router: DynRouter = Router::from_graph(&graph, &lib)?;
    let input = router.devices.id("in").expect("device");
    let out = router.devices.id("out").expect("device");

    // Offer a burst: 10 priority packets interleaved with 40 bulk.
    for i in 0..50u16 {
        let dport = if i % 5 == 0 { 5060 } else { 8000 };
        let p = build_udp_packet(
            [1; 6],
            [2; 6],
            0x0A000001,
            0x0A000002,
            40_000 + i,
            dport,
            18,
            64,
        );
        router.devices.inject(input, p);
    }
    router.run_until_idle(10_000);

    let sent = router.devices.take_tx(out);
    println!(
        "classified: {} priority, {} bulk",
        router.stat("prio_count", "count").unwrap(),
        router.stat("bulk_count", "count").unwrap()
    );
    println!("transmitted: {}", sent.len());
    println!("RED drops: {}", router.class_stat("RED", "drops"));

    // Priority packets ride ahead of the backlog: within the transmitted
    // stream, every priority packet that shared a scheduling round with
    // bulk traffic appears no later than the bulk packets offered before
    // it would dictate.
    let first_bulk = sent
        .iter()
        .position(|p| {
            let d = p.data();
            u16::from_be_bytes([d[14 + 22], d[14 + 23]]) != 5060
        })
        .unwrap_or(sent.len());
    println!("first bulk packet leaves at position {first_bulk}");
    assert!(
        sent.iter().take(2).all(|p| {
            let d = p.data();
            u16::from_be_bytes([d[14 + 22], d[14 + 23]]) == 5060
        }),
        "priority class must lead the output"
    );
    Ok(())
}
