//! The §4 firewall experiment as an application: an `IPFilter` running
//! the 17-rule *Building Internet Firewalls* rule set, before and after
//! `click-fastclassifier`.
//!
//! ```sh
//! cargo run --release --example firewall
//! ```

use click::classifier::firewall::{
    denied_packet, dns5_packet, firewall_config, smtp_packet, RULE_COUNT,
};
use click::core::lang::read_config;
use click::core::registry::Library;
use click::elements::packet::Packet;
use click::elements::router::DynRouter;
use click::elements::Router;

fn run_firewall(graph: &click::core::RouterGraph, packets: &[(&str, Vec<u8>)]) -> (u64, u64) {
    let lib = Library::standard();
    let mut router: DynRouter = Router::from_graph(graph, &lib).expect("router builds");
    let input = router.devices.id("in").expect("device");
    for (_, bytes) in packets {
        // The firewall operates on IP packets (no Ethernet header).
        router.devices.inject(input, Packet::from_data(bytes));
    }
    router.run_until_idle(10_000);
    let passed = router.stat("passed", "count").expect("counter exists");
    let out = router.devices.id("out").expect("device");
    let _ = router.devices.take_tx(out);
    let dropped = router.class_stat("IPFilter", "drops")
        + router
            .find("fw")
            .map(|i| router.class_of(i).to_owned())
            .filter(|c| c.starts_with("FastClassifier@@") || c.starts_with("FastIPFilter@@"))
            .and_then(|_| router.stat("fw", "drops"))
            .unwrap_or(0);
    (passed, dropped)
}

fn main() -> click::core::Result<()> {
    let config = format!(
        "FromDevice(in) -> fw :: IPFilter({}) -> passed :: Counter -> Queue(64) -> ToDevice(out);",
        firewall_config()
    );
    let base = read_config(&config)?;
    println!("17-rule firewall (RULE_COUNT = {RULE_COUNT})");

    let mut optimized = base.clone();
    let report = click::opt::fastclassifier::fastclassifier(&mut optimized)?;
    let (name, class, shape) = &report.specialized[0];
    println!("click-fastclassifier: {name} -> {class} (shape: {shape})");

    let workload: Vec<(&str, Vec<u8>)> = vec![
        ("dns5 (allowed, next-to-last rule)", dns5_packet()),
        ("smtp (allowed, early rule)", smtp_packet()),
        ("irc (denied)", denied_packet()),
        ("dns5 again", dns5_packet()),
    ];
    let (passed_base, dropped_base) = run_firewall(&base, &workload);
    let (passed_fast, dropped_fast) = run_firewall(&optimized, &workload);
    println!();
    println!("generic IPFilter:    {passed_base} passed, {dropped_base} dropped");
    println!("specialized:         {passed_fast} passed, {dropped_fast} dropped");
    assert_eq!(
        passed_base, passed_fast,
        "optimization must not change policy"
    );
    assert_eq!(dropped_base, dropped_fast);

    // The decision-tree view of what the optimizer did.
    let rules = click::classifier::parse_rules("IPFilter", &firewall_config())?;
    let tree = click::classifier::build_tree(&rules, 1);
    let opt = click::classifier::optimize(&tree);
    println!();
    println!(
        "decision tree: depth {} -> {} after BPF+-style optimization",
        tree.depth().expect("acyclic"),
        opt.depth().expect("acyclic")
    );
    println!("paper anchor: DNS-5 classification 388 ns -> 188 ns on the 700 MHz testbed");
    Ok(())
}
