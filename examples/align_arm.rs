//! `click-align` (§7.1): making a configuration safe for
//! alignment-strict architectures like ARM without complicating the
//! packet data model.
//!
//! ```sh
//! cargo run --example align_arm
//! ```

use click::core::lang::{read_config, write_config};
use click::core::registry::Library;
use click::elements::packet::Packet;
use click::elements::router::DynRouter;
use click::elements::Router;
use click::opt::align::{align, analyze, Alignment};

fn main() -> click::core::Result<()> {
    // Strip(12) leaves the IP header at offset 2 mod 4 (devices deliver
    // frames at 4/2): on ARM, CheckIPHeader's word loads would fault.
    let mut graph = read_config(
        "FromDevice(in0) -> Strip(12) -> chk :: CheckIPHeader \
         -> Queue(64) -> ToDevice(out0);",
    )?;

    // What does the data-flow analysis see before the fix?
    let analysis = analyze(&graph);
    let chk = graph.find("chk").expect("element exists");
    let have = analysis.at_input[&chk];
    let want = Alignment::new(4, 0);
    println!(
        "CheckIPHeader expects {want}, would receive {have} — conflict: {}",
        !have.satisfies(want)
    );

    // click-align inserts the minimal set of Align elements.
    let report = align(&mut graph)?;
    for (upstream, port, req) in &report.inserted {
        println!(
            "inserted Align({}, {}) after {upstream}[{port}]",
            req.modulus, req.offset
        );
    }

    // The corrected configuration is ordinary Click text.
    println!();
    println!("--- aligned configuration ---");
    print!("{}", write_config(&graph));

    // Run it: the packet arriving at CheckIPHeader is now word-aligned.
    let lib = Library::standard();
    let mut router: DynRouter = Router::from_graph(&graph, &lib)?;
    let in0 = router.devices.id("in0").expect("device");
    let out0 = router.devices.id("out0").expect("device");
    // 12 filler bytes, then a valid 20-byte IP header.
    let mut p = Packet::new(32);
    {
        let d = p.data_mut();
        d[12] = 0x45;
        d[14] = 0;
        d[15] = 20; // total length
        click::elements::headers::ipv4::set_checksum(&mut d[12..]);
    }
    assert_eq!(p.alignment_offset(), 2, "device delivers at 4/2");
    router.devices.inject(in0, p);
    router.run_until_idle(100);
    let tx = router.devices.take_tx(out0);
    assert_eq!(tx.len(), 1);
    assert_eq!(
        tx[0].alignment_offset(),
        0,
        "Align produced a word-aligned packet"
    );
    println!();
    println!(
        "forwarded packet data alignment: {} mod 4 (safe on ARM)",
        tx[0].alignment_offset()
    );

    // Running click-align again changes nothing (idempotent).
    let second = align(&mut graph)?;
    assert!(second.inserted.is_empty() && second.removed.is_empty());
    println!("click-align is idempotent: second run inserted nothing");
    Ok(())
}
