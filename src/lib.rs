//! # click — a Rust reproduction of the Click configuration optimizers
//!
//! This workspace reimplements, from scratch, the system described in
//! *"Programming Language Optimizations for Modular Router
//! Configurations"* (Kohler, Morris, Chen — ASPLOS 2002): the Click
//! configuration language and element framework, the router runtime, the
//! generic packet classifiers, and — the paper's contribution — the
//! configuration-level optimization tools `click-fastclassifier`,
//! `click-devirtualize`, `click-xform`, `click-undead`, `click-align`,
//! and `click-combine`/`click-uncombine`, plus the evaluation harness
//! that regenerates every table and figure.
//!
//! The umbrella crate re-exports the member crates:
//!
//! * [`core`] — language, graph IR, specs, checking, archives;
//! * [`classifier`] — decision trees and compiled matchers;
//! * [`elements`] — element library and router runtime;
//! * [`opt`] — the optimization tools;
//! * [`sim`] — the CPU-cost and testbed simulation models.
//!
//! ## Five-minute tour
//!
//! ```
//! use click::core::lang::{read_config, write_config};
//! use click::core::registry::Library;
//! use click::elements::ip_router::IpRouterSpec;
//! use click::opt;
//! use std::collections::HashSet;
//!
//! // 1. Generate and parse the paper's Figure-1 IP router.
//! let spec = IpRouterSpec::standard(2);
//! let mut graph = read_config(&spec.config())?;
//! let before = graph.element_count();
//!
//! // 2. Run the optimizer chain:
//! //    click-xform | click-fastclassifier | click-devirtualize
//! opt::xform::apply_patterns(&mut graph, &opt::xform::ip_combo_patterns()?)?;
//! opt::fastclassifier::fastclassifier(&mut graph)?;
//! opt::devirtualize::devirtualize(&mut graph, &Library::standard(), &HashSet::new())?;
//! assert!(graph.element_count() < before);
//!
//! // 3. The result is an ordinary configuration file (with its generated
//! //    code riding in the archive).
//! let optimized = write_config(&graph);
//! assert!(optimized.contains("IPInputCombo"));
//! # Ok::<(), click::core::Error>(())
//! ```

pub use click_classifier as classifier;
pub use click_core as core;
pub use click_elements as elements;
pub use click_opt as opt;
pub use click_sim as sim;
