#!/usr/bin/env python3
"""Check that relative links in the repository's markdown files resolve.

External (http/https/mailto) URLs are skipped — CI has no business
probing the network — as are pure in-page anchors. A link with an
anchor (`FILE.md#section`) is checked for the file only.

Usage: python3 .github/check_markdown_links.py [root]
Exits non-zero listing every broken link.
"""

import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "target", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    broken = []
    checked = 0
    for path in markdown_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK.findall(text):
            if target.startswith(SKIP_SCHEMES):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            dest = os.path.normpath(os.path.join(os.path.dirname(path), rel))
            checked += 1
            if not os.path.exists(dest):
                broken.append(f"{path}: ({target}) -> {dest}")
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"all {checked} relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
